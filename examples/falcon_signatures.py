#!/usr/bin/env python3
"""Falcon signatures with swappable Gaussian sampler backends.

The paper's case study (Table 1): the Falcon signing algorithm draws
2n discrete Gaussian samples per signature through a base sampler; this
example generates a key pair, signs with each of the four backends, and
reports timings and modeled sampling costs.

Run:  python examples/falcon_signatures.py [n]
"""

import sys
import time

from repro.analysis import format_table
from repro.falcon import BASE_SAMPLER_BACKENDS, SecretKey
from repro.rng import ChaChaSource


def main(n: int = 128) -> None:
    print(f"Generating Falcon key pair for ring degree n = {n} ...")
    started = time.perf_counter()
    sk = SecretKey.generate(n=n, seed=2024)
    print(f"  keygen took {time.perf_counter() - started:.2f}s; "
          f"NTRU equation holds: {sk.keys.verify_ntru_equation()}")
    low, high = sk.leaf_sigma_range()
    print(f"  ffLDL leaf sigmas in [{low:.3f}, {high:.3f}] "
          f"(must stay below the base sigma 2)\n")

    message = b"repro: constant-time sampling inside Falcon"
    rows = []
    for backend in sorted(BASE_SAMPLER_BACKENDS):
        sk.use_base_sampler(backend, source=ChaChaSource(7))
        sk.sign(message)  # warm-up (compiles the bitsliced kernel once)
        started = time.perf_counter()
        repeats = 5
        for _ in range(repeats):
            signature = sk.sign(message)
        elapsed = (time.perf_counter() - started) / repeats
        ok = sk.public_key.verify(message, signature)
        counts = sk.base_sampler.counter.counts
        modeled = counts.modeled_cycles(prng="chacha20")
        rows.append([backend, f"{elapsed * 1000:.1f} ms",
                     "yes" if ok else "NO",
                     f"{sk.sampler_z.acceptance_rate:.2f}",
                     f"{modeled / max(1, sk.sampler_z.base_draws):,.0f}"])
    print(format_table(
        ["backend", "sign time", "verifies", "samplerZ accept",
         "modeled cycles/base draw"],
        rows,
        title=f"Falcon-{n} signing across sampler backends "
              "(wall clock is interpreter-bound; see benchmarks/ for "
              "the modeled Table 1)"))

    print(f"\nsignature size: {signature.size_bytes} bytes "
          f"(salt {len(signature.salt)} + payload "
          f"{len(signature.compressed)} + header)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 128)
