#!/usr/bin/env python3
"""Export the compiled sampler as hardware netlists (Verilog / BLIF).

The Knuth-Yao Boolean-function approach originated in hardware ([17],
[32] are FPGA papers), and the minimized circuits this library compiles
are directly synthesizable.  This example emits the sigma = 2 sampler
as a Verilog module and a BLIF model ready for ABC/Yosys-style flows,
and prints the netlist statistics a hardware designer would look at.

Run:  python examples/hardware_export.py
"""

from repro.analysis import format_table
from repro.boolfunc import gate_counts
from repro.boolfunc.netlist import blif_statistics, to_blif, to_verilog
from repro.core import GaussianParams, compile_sampler_circuit

SIGMA = 2
PRECISION = 32


def main() -> None:
    params = GaussianParams.from_sigma(SIGMA, PRECISION)
    circuit = compile_sampler_circuit(params)
    counts = gate_counts(circuit.roots)

    verilog = to_verilog(circuit.roots, module_name="gauss_sampler")
    blif = to_blif(circuit.roots, model_name="gauss_sampler")
    stats = blif_statistics(blif)

    print(format_table(
        ["metric", "value"],
        [["inputs (random bits)", PRECISION],
         ["outputs", f"{circuit.num_magnitude_bits} magnitude + valid"],
         ["2-input gates", counts["total"]],
         ["  and / or / not", f"{counts['and']} / {counts['or']} / "
                              f"{counts['not']}"],
         ["logic depth", circuit.depth()],
         ["BLIF tables", stats["tables"]],
         ["BLIF cubes", stats["cubes"]]],
        title=f"sigma={SIGMA}, n={PRECISION} sampler as a netlist"))

    with open("gauss_sampler.v", "w", encoding="utf-8") as handle:
        handle.write(verilog)
    with open("gauss_sampler.blif", "w", encoding="utf-8") as handle:
        handle.write(blif)
    print("\nwrote gauss_sampler.v "
          f"({len(verilog.splitlines())} lines) and gauss_sampler.blif "
          f"({len(blif.splitlines())} lines)")

    print("\nVerilog header:")
    for line in verilog.splitlines()[:8]:
        print("  " + line)
    print("  ...")


if __name__ == "__main__":
    main()
