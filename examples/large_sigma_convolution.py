#!/usr/bin/env python3
"""Large standard deviations by convolving base samplers.

The paper positions its sampler as a *base sampler* for the convolution
frameworks of Pöppelmann–Ducas and Micciancio–Walter (Sec. 3), and its
Delta table goes up to sigma = 215.  This example builds sigma = 215
two ways and compares:

* directly (a 2796-row probability matrix — heavy to compile), vs.
* by convolution of a small-sigma constant-time base sampler.

Run:  python examples/large_sigma_convolution.py
"""

import time

from repro.baselines import (
    ConvolutionSampler,
    empirical_moments,
    plan_convolution,
)
from repro.core import compile_sampler

TARGET_SIGMA = 215.0
BASE_LIMIT = 8.0


def base_factory(sigma: float, source):
    return compile_sampler(round(sigma, 5), precision=32, source=source)


def main() -> None:
    plan = plan_convolution(TARGET_SIGMA, BASE_LIMIT)
    print(f"target sigma   : {TARGET_SIGMA}")
    print(f"base sigma     : {plan.base_sigma:.5f}")
    print(f"stage k values : {plan.stages}")
    print(f"base draws per : {plan.base_draws_per_sample}")
    print(f"achieved sigma : {plan.achieved_sigma:.5f}\n")

    started = time.perf_counter()
    sampler = ConvolutionSampler(TARGET_SIGMA, base_factory,
                                 max_base_sigma=BASE_LIMIT)
    print(f"built in {time.perf_counter() - started:.2f}s "
          "(compiles one small-sigma bitsliced sampler)")

    draws = 20_000
    started = time.perf_counter()
    samples = sampler.sample_many(draws)
    elapsed = time.perf_counter() - started
    mean, std = empirical_moments(samples)
    print(f"{draws} samples in {elapsed:.2f}s "
          f"({draws / elapsed:,.0f} samples/s)")
    print(f"empirical mean {mean:+.2f} (expect ~0), "
          f"std {std:.2f} (expect ~{TARGET_SIGMA})")

    inside_one_sigma = sum(1 for s in samples
                           if abs(s) <= TARGET_SIGMA) / draws
    print(f"fraction within one sigma: {inside_one_sigma:.3f} "
          "(Gaussian: ~0.683)")


if __name__ == "__main__":
    main()
