#!/usr/bin/env python3
"""dudect in action: catch the timing leak, certify its absence.

Recreates the paper's Sec. 5.2 verification ("we used the tool dudect
... to affirm the constant running time of our algorithm") under the
op-count machine model, where the verdicts are deterministic:

* Algorithm 1 and the early-exit CDT samplers leak — their operation
  traces correlate with the sampled value;
* the linear-scan CDT and the bitsliced sampler pass.

Run:  python examples/constant_time_audit.py
"""

from repro.baselines import (
    ByteScanCdtSampler,
    CdtBinarySearchSampler,
    KnuthYaoIntegerSampler,
    LinearScanCdtSampler,
)
from repro.core import GaussianParams, compile_sampler
from repro.ct import audit_batch_sampler, audit_sampler
from repro.rng import ChaChaSource

PARAMS = GaussianParams.from_sigma(2, 64)


def main() -> None:
    print("dudect audit: classes are 'sample magnitude <= 1' vs the")
    print("rest; Welch t on per-call modeled-cycle traces; |t| > 4.5")
    print("flags a leak.\n")

    samplers = [
        KnuthYaoIntegerSampler(PARAMS, ChaChaSource(1)),
        ByteScanCdtSampler(PARAMS, ChaChaSource(2)),
        CdtBinarySearchSampler(PARAMS, ChaChaSource(3)),
        LinearScanCdtSampler(PARAMS, ChaChaSource(4)),
    ]
    for sampler in samplers:
        print(audit_sampler(sampler, calls=4000).render())
        print()

    bitsliced = compile_sampler(2, 64, source=ChaChaSource(5))
    print(audit_batch_sampler(bitsliced, batches=300).render())
    print("\n(The bitsliced sampler runs whole batches through a fixed")
    print("straight-line kernel; its trace cannot vary, so t = 0.)")


if __name__ == "__main__":
    main()
