#!/usr/bin/env python3
"""Inspect and export the compiled Boolean sampler.

The paper's companion tool generates bitsliced C code from (sigma, n);
this example shows the same artifacts from this library's compiler:

* the sorted list L and its sublists (Fig. 3),
* per-sublist exact minimization results,
* the paper-vs-baseline gate-count comparison (Table 2's direction),
* exported C and Python source of the final circuit.

Run:  python examples/compile_and_export.py
"""

from repro.analysis import format_table
from repro.boolfunc import to_c_source
from repro.core import GaussianParams, compile_sampler_circuit

SIGMA = 2
PRECISION = 16  # small enough to print everything


def main() -> None:
    params = GaussianParams.from_sigma(SIGMA, PRECISION)

    print(f"Compiling sigma={SIGMA}, n={PRECISION} "
          "with both methods ...\n")
    efficient = compile_sampler_circuit(params, method="efficient")
    simple = compile_sampler_circuit(params, method="simple")

    print("Sorted list L divided into sublists (Fig. 3):")
    print(efficient.partition.render())

    rows = []
    for report in efficient.reports:
        rows.append([f"l_{report.k}", report.width, report.num_entries,
                     report.cube_count, report.literal_count,
                     "exact" if report.exact else "heuristic"])
    print("\n" + format_table(
        ["sublist", "Delta_k", "entries", "cubes", "literals",
         "minimizer"],
        rows, title="Per-sublist minimization (QMC + Petrick, the "
                    "Espresso -Dso -S1 role)"))

    gates_e = efficient.gate_count()
    gates_s = simple.gate_count()
    print("\n" + format_table(
        ["method", "gates", "and", "or", "not", "depth"],
        [["efficient (this paper)", gates_e["total"], gates_e["and"],
          gates_e["or"], gates_e["not"], efficient.depth()],
         ["simple ([21] baseline)", gates_s["total"], gates_s["and"],
          gates_s["or"], gates_s["not"], simple.depth()]],
        title="Gate counts (bitwise instructions per 64-sample batch)"))
    saved = 100 * (gates_s["total"] - gates_e["total"]) / gates_s["total"]
    print(f"-> efficient minimization saves {saved:.0f}% "
          "(paper Table 2 reports 37% for sigma = 2)")

    print("\nGenerated C for the first output bit (excerpt):")
    c_source = to_c_source([efficient.output_bits[0]],
                           function_name="sample_bit0")
    for line in c_source.splitlines()[:14]:
        print("  " + line)
    print("  ...")

    with open("sampler_sigma2.c", "w", encoding="utf-8") as handle:
        handle.write(to_c_source(efficient.roots, function_name="sampler"))
    print("\nFull circuit exported to sampler_sigma2.c "
          f"({len(to_c_source(efficient.roots).splitlines())} lines)")


if __name__ == "__main__":
    main()
