#!/usr/bin/env python3
"""Compare all sampler backends: distribution, cost model, leakage.

Reproduces the paper's core comparison outside Falcon: the three CDT
baselines, the column-scanning Knuth-Yao reference (Algorithm 1) and
the bitsliced constant-time sampler all target the same distribution
but differ wildly in timing behaviour.

Run:  python examples/sampler_comparison.py
"""

from collections import Counter

from repro.analysis import format_table, render_comparison
from repro.baselines import (
    ByteScanCdtSampler,
    CdtBinarySearchSampler,
    KnuthYaoIntegerSampler,
    LinearScanCdtSampler,
)
from repro.core import GaussianParams, compile_sampler
from repro.ct import audit_batch_sampler, audit_sampler
from repro.rng import ChaChaSource

SIGMA = 2
PRECISION = 64
DRAWS = 20_000


def main() -> None:
    params = GaussianParams.from_sigma(SIGMA, PRECISION)
    backends = {
        "cdt-byte-scan": ByteScanCdtSampler(params, ChaChaSource(1)),
        "cdt-binary": CdtBinarySearchSampler(params, ChaChaSource(2)),
        "cdt-linear": LinearScanCdtSampler(params, ChaChaSource(3)),
        "knuth-yao": KnuthYaoIntegerSampler(params, ChaChaSource(4)),
    }
    bitsliced = compile_sampler(SIGMA, PRECISION, source=ChaChaSource(5))

    print("Drawing", DRAWS, "samples per backend ...\n")
    tallies = {}
    rows = []
    for name, sampler in backends.items():
        values = sampler.sample_many(DRAWS)
        tallies[name] = Counter(values)
        cycles = sampler.counter.counts.modeled_cycles("chacha20") / DRAWS
        report = audit_sampler(sampler, calls=3000)
        rows.append([name, f"{cycles:.1f}",
                     "yes" if sampler.constant_time else "no",
                     f"{report.max_abs_t:.1f}",
                     "LEAK" if report.leaking else "ok"])

    values = bitsliced.sample_many(DRAWS)
    tallies["bitsliced"] = Counter(values)
    per_sample = (bitsliced.word_ops_per_batch
                  + bitsliced.random_bytes_per_batch * 3.5) \
        / bitsliced.batch_width
    report = audit_batch_sampler(bitsliced, batches=200)
    rows.append(["bitsliced (this paper)", f"{per_sample:.1f}", "yes",
                 f"{report.max_abs_t:.1f}",
                 "LEAK" if report.leaking else "ok"])

    print(format_table(
        ["backend", "modeled cycles/sample", "constant-time by design",
         "dudect max |t|", "verdict"],
        rows, title="Cost and leakage summary (op-count model, "
                    "ChaCha20 randomness)"))

    print("\nDistribution agreement (relative frequencies, sigma = 2):")
    print(render_comparison(tallies, value_range=(-4, 4)))


if __name__ == "__main__":
    main()
