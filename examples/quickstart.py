#!/usr/bin/env python3
"""Quickstart: compile and use a constant-time discrete Gaussian sampler.

Walks the paper's whole story on one page:

1. build the probability matrix (Fig. 1) for sigma = 2,
2. compile the constant-time bitsliced sampler (Fig. 4 pipeline),
3. draw samples and show the histogram against the ideal Gaussian,
4. show why it is constant time (fixed instruction count per batch).

Run:  python examples/quickstart.py
"""

from repro import GaussianParams, compile_sampler, probability_matrix
from repro.analysis import (
    histogram_counts,
    ideal_signed_gaussian_pmf,
    render_histogram,
)

SIGMA = 2
PRECISION = 32  # binary digits per probability ("n" in the paper)


def main() -> None:
    print("=" * 64)
    print("1. The probability matrix (paper Fig. 1 uses sigma=2, n=6)")
    print("=" * 64)
    tiny = probability_matrix(GaussianParams.from_sigma(SIGMA, 6))
    print(tiny.render()[: tiny.num_rows * 20])
    print(f"column weights h_i = {tiny.column_weights}")
    print(f"mass = {tiny.mass}/64 -> {tiny.failure_count} of 64 bit "
          "strings never terminate (Theorem 1's all-ones family)\n")

    print("=" * 64)
    print(f"2. Compile the sampler: sigma={SIGMA}, n={PRECISION}")
    print("=" * 64)
    sampler = compile_sampler(sigma=SIGMA, precision=PRECISION)
    circuit = sampler.circuit
    gates = circuit.gate_count()
    print(f"method: {circuit.method} (per-sublist exact minimization)")
    print(f"sublists: {len(circuit.partition.sublists)}, "
          f"global Delta = {circuit.partition.delta}")
    print(f"circuit: {gates['total']} gates "
          f"(and={gates['and']}, or={gates['or']}, not={gates['not']}), "
          f"depth {circuit.depth()}")
    print(f"modeled cost: {sampler.cycles_per_sample:.1f} cycles/sample "
          f"at batch width {sampler.batch_width}\n")

    print("=" * 64)
    print("3. Sample and compare against the ideal discrete Gaussian")
    print("=" * 64)
    values = sampler.sample_many(64_000)
    counts = histogram_counts(values)
    ideal = ideal_signed_gaussian_pmf(float(SIGMA), 8)
    print(render_histogram(counts, ideal=ideal, width=48,
                           value_range=(-8, 8)))
    print("('#' bars are observed frequency; '|' marks the ideal)\n")

    print("=" * 64)
    print("4. Why constant time?")
    print("=" * 64)
    print("Every batch executes the same straight-line kernel:")
    print(f"  {sampler.word_ops_per_batch} bitwise word instructions, "
          f"{sampler.random_bytes_per_batch} PRNG bytes,")
    print("regardless of which samples come out. The first lines of the")
    print("generated kernel:")
    for line in sampler.kernel.source.splitlines()[:6]:
        print("  " + line)
    print("  ...")


if __name__ == "__main__":
    main()
