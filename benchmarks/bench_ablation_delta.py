"""Ablation A2 — per-sublist Delta_k versus the global Delta.

The paper frames minimization in terms of one global Delta ("we can
generate Boolean functions f^i_Delta ... for each sublist"), but each
sublist only ever needs its own Delta_k <= Delta variables.  Shrinking
the variable set cannot hurt exactness and shrinks don't-care space;
this ablation measures the gate-count and compile-time effect.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.core import GaussianParams, compile_sampler_circuit

from _report import full_or, once, report

PRECISION = full_or(48, 128)


@pytest.mark.parametrize("use_global", [False, True],
                         ids=["per-sublist", "global"])
def test_compile_speed(benchmark, use_global):
    params = GaussianParams.from_sigma(2, 32)
    benchmark.pedantic(
        lambda: compile_sampler_circuit(params,
                                        use_global_delta=use_global,
                                        cache=False),
        rounds=1, iterations=1)


def test_delta_ablation_report(benchmark):
    def build() -> str:
        rows = []
        for sigma in (2, 6.15543):
            params = GaussianParams.from_sigma(sigma, PRECISION)
            for use_global, label in ((False, "per-sublist Delta_k"),
                                      (True, "global Delta")):
                circuit = compile_sampler_circuit(
                    params, use_global_delta=use_global)
                rows.append([sigma, label,
                             circuit.gate_count()["total"],
                             f"{circuit.compile_seconds:.2f}s"])
        return format_table(
            ["sigma", "variable window", "gates", "compile time"],
            rows,
            title=f"Delta-window ablation at n = {PRECISION} "
                  "(identical sampling functions either way)")

    text = once(benchmark, build)
    report("ablation_delta", text)
