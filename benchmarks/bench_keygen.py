"""Key-generation throughput: scalar vs vectorized keygen pipeline.

The paper's Table 1 workload assumes keys exist; this benchmark puts a
number on producing them.  Three measured rows per ring degree:

* **seed pipeline** — the keygen loop as PR 3 left it: one lazy
  byte-at-a-time CDT draw per coefficient, candidates filtered one at
  a time on the scalar kernels.  Rebuilt here from the still-present
  building blocks (``CdtBinarySearchSampler``, scalar Gram–Schmidt)
  so the speedup denominator stays measurable; it shares today's
  NTRUSolve, so the recorded speedups *understate* the true gain over
  the seed commit.  Its keys are valid but follow the old stream
  contract (sequence of draws), not the block contract;
* **scalar spine** — this PR's pure-Python route: bulk ``bisect`` CDT
  blocks, candidate-block filters, exact deep-tower Babai;
* **numpy spine** — the vectorized pipeline: bulk CDT block draws,
  batched NTT invertibility, batched FFT Gram–Schmidt, array-kernel
  Babai quotients;

plus a **pooled** row (``KeyStore`` generate-ahead over a process
pool) — the serving-layer configuration, which is how a deployment
actually provisions keys (its value shows on multi-core hosts; a
single-core container serializes the workers).  The scalar and numpy
spines generate byte-identical keys for the same seeds (the spine
contract, pinned by the KAT suite); only the clock differs.

Results go to the text report and to
``benchmarks/reports/BENCH_keygen.json``.  Runs standalone
(``PYTHONPATH=src python benchmarks/bench_keygen.py --quick``) or
under pytest like the other benchmarks.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

import pytest

from repro.analysis import format_table
from repro.falcon import (
    HAVE_NUMPY,
    NtruKeys,
    NtruSolveError,
    Q,
    div_ntt,
    generate_keys,
    gram_schmidt_norm_sq,
    is_invertible,
    ntru_solve,
)
from repro.falcon.keystore import KeyStore
from repro.falcon.ntrugen import _keygen_table
from repro.falcon.params import falcon_params
from repro.rng import ChaChaSource

from _report import REPORT_DIR, once, report

JSON_NAME = "BENCH_keygen.json"

#: Ring degrees swept by default (512 is the acceptance gate; 64 keeps
#: a fast row for eyeballing regressions).  Level 3 (n=1024, the PR-5
#: Babai re-tune target) joins via ``--level3``; its seed-pipeline row
#: is skipped — the per-coefficient lazy-draw loop needs tens of
#: seconds *per key* there, and the n<=512 rows already anchor the
#: speedup denominator.
DEGREES = (64, 256, 512)
LEVEL3_DEGREE = 1024

#: Degrees whose seed-pipeline row is skipped (too slow to measure in
#: a routine run).
SKIP_SEED_PIPELINE_FROM = 1024

#: Process-pool width for the pooled serving row.
POOL_WORKERS = 4


def _row_rate(n: int, keys: int, seed_base: int, spine: str) -> float:
    sources = [ChaChaSource(seed_base + i) for i in range(keys)]
    started = time.perf_counter()
    for source in sources:
        generate_keys(n, source=source, spine=spine)
    return keys / (time.perf_counter() - started)


def _seed_pipeline_generate(n: int, source) -> NtruKeys:
    """The PR-3 keygen loop, reconstructed: per-coefficient lazy CDT
    draws, one candidate at a time through the scalar filters."""
    from repro.baselines.cdt import CdtBinarySearchSampler

    params = falcon_params(n)
    table = _keygen_table(round(params.keygen_sigma, 6))
    bound = (1.17 ** 2) * Q

    def sample_poly():
        sampler = CdtBinarySearchSampler(table.params, source=source,
                                         table=table)
        return [sampler.sample() for _ in range(params.n)]

    for _ in range(1024):
        f = sample_poly()
        g = sample_poly()
        if sum(f) % 2 == 0 and sum(g) % 2 == 0:
            continue
        if not is_invertible(f):
            continue
        if gram_schmidt_norm_sq(f, g) > bound:
            continue
        try:
            F, G = ntru_solve(list(f), list(g), spine="scalar")
        except NtruSolveError:
            continue
        return NtruKeys(f=f, g=g, F=F, G=G, h=div_ntt(g, f))
    raise RuntimeError("seed pipeline failed")


def _seed_pipeline_rate(n: int, keys: int, seed_base: int) -> float:
    started = time.perf_counter()
    for i in range(keys):
        _seed_pipeline_generate(n, ChaChaSource(seed_base + i))
    return keys / (time.perf_counter() - started)


def _pooled_rate(n: int, keys: int, workers: int) -> float:
    """Saturated generate-ahead throughput: ``workers * keys`` keys in
    one pool pass, so the one-time fork cost amortizes the way it does
    in a real provisioning run."""
    store = KeyStore(master_seed=1, workers=workers)
    try:
        total = keys * workers
        started = time.perf_counter()
        store.generate_ahead(n, total)
        return total / (time.perf_counter() - started)
    finally:
        # The store owns a persistent worker pool now; shut it down
        # deterministically so the next level's pool never races a
        # garbage-collected one for its pipes.
        store.close()


def run_sweep(degrees=DEGREES, keys: int = 8, seed_base: int = 1,
              quick: bool = False, workers: int = POOL_WORKERS) -> dict:
    if quick:
        degrees = (64,)
        keys = min(keys, 4)
        workers = min(workers, 2)
    levels = {}
    for n in degrees:
        seed_keys = max(2, keys // 4) if n >= 256 else keys
        scalar_keys = max(2, keys // 4) if n >= 1024 else keys
        # Untimed warmup: one key per available spine, so whichever
        # row runs first is not charged the one-time costs (CDT table
        # construction, kernel caches) the others inherit for free.
        generate_keys(n, source=ChaChaSource(seed_base - 1),
                      spine="scalar")
        if HAVE_NUMPY:
            generate_keys(n, source=ChaChaSource(seed_base - 1),
                          spine="numpy")
        rows = {"scalar": _row_rate(n, scalar_keys, seed_base,
                                    "scalar")}
        if n < SKIP_SEED_PIPELINE_FROM:
            rows["seed_pipeline"] = _seed_pipeline_rate(n, seed_keys,
                                                        seed_base)
        if HAVE_NUMPY:
            rows["numpy"] = _row_rate(n, keys, seed_base, "numpy")
        pooled_spine = "numpy" if HAVE_NUMPY else "scalar"
        rows[f"pooled_{pooled_spine}_x{workers}"] = \
            _pooled_rate(n, keys, workers)
        vectorized = rows.get("numpy")
        seed_rate = rows.get("seed_pipeline")
        best_parallel = rows[f"pooled_{pooled_spine}_x{workers}"]
        levels[n] = {
            "keys_per_sec": {name: round(rate, 2)
                             for name, rate in rows.items()},
            "vectorized_speedup_vs_scalar":
                round(vectorized / rows["scalar"], 2)
                if vectorized else None,
            "vectorized_speedup_vs_seed_pipeline":
                round(vectorized / seed_rate, 2)
                if vectorized and seed_rate else None,
            "scalar_speedup_vs_seed_pipeline":
                round(rows["scalar"] / seed_rate, 2)
                if seed_rate else None,
            "pooled_speedup_vs_scalar":
                round(best_parallel / rows["scalar"], 2),
        }
    return {
        "benchmark": "keygen",
        "python": platform.python_version(),
        "have_numpy": HAVE_NUMPY,
        "cpu_count": os.cpu_count(),
        "keys_per_row": keys,
        "pool_workers": workers,
        "levels": levels,
    }


def render_report(payload: dict) -> str:
    rows = []
    for n, level in payload["levels"].items():
        for name, rate in level["keys_per_sec"].items():
            rows.append([f"n={n}", name, f"{rate:,.2f}"])
    table = format_table(
        ["degree", "path", "keys/s"], rows,
        title="Falcon key-generation throughput "
              f"({payload['keys_per_row']} keys per row; the scalar "
              "and numpy spines emit identical keys per seed)")
    lines = [table, ""]
    for n, level in payload["levels"].items():
        if level["vectorized_speedup_vs_scalar"]:
            seed_part = (
                f"{level['vectorized_speedup_vs_seed_pipeline']:.2f}x "
                "the seed (PR 3) pipeline"
                if level["vectorized_speedup_vs_seed_pipeline"]
                else "seed-pipeline row skipped (too slow at Level 3)")
            lines.append(
                f"n={n}: numpy spine "
                f"{level['vectorized_speedup_vs_scalar']:.2f}x the "
                f"scalar spine, {seed_part}; pooled serving row "
                f"{level['pooled_speedup_vs_scalar']:.2f}x the scalar "
                f"spine")
    return "\n".join(lines)


def write_json(payload: dict) -> None:
    REPORT_DIR.mkdir(exist_ok=True)
    path = REPORT_DIR / JSON_NAME
    path.write_text(json.dumps(payload, indent=2) + "\n",
                    encoding="utf-8")


# -- pytest entry points --------------------------------------------------

@pytest.mark.parametrize("spine",
                         ["scalar"] + (["numpy"] if HAVE_NUMPY else []))
def test_keygen_speed(benchmark, spine):
    """Wall-clock keygen at n=256 per spine."""
    counter = iter(range(1000, 2000))

    def generate():
        generate_keys(256, source=ChaChaSource(next(counter)),
                      spine=spine)

    benchmark.pedantic(generate, rounds=3, iterations=1)


def test_keygen_report(benchmark):
    """Assemble the keygen throughput report (small sweep).

    Deliberately does NOT write the JSON: the committed
    ``BENCH_keygen.json`` comes from a full standalone run and must
    not be clobbered by this test's small, noisy sweep.
    """
    payload = once(benchmark,
                   lambda: run_sweep(degrees=(64, 256), keys=4))
    report("keygen", render_report(payload))
    if HAVE_NUMPY:
        for level in payload["levels"].values():
            assert level["vectorized_speedup_vs_scalar"] > 1.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--keys", type=int, default=8,
                        help="keys per measured row")
    parser.add_argument("--workers", type=int, default=POOL_WORKERS,
                        help="process-pool width for the pooled row")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: n=64 only, few keys")
    parser.add_argument("--level3", action="store_true",
                        help="add the n=1024 (Falcon Level 3) row")
    parser.add_argument("--no-json", action="store_true",
                        help="skip writing " + JSON_NAME)
    args = parser.parse_args(argv)
    degrees = DEGREES + ((LEVEL3_DEGREE,) if args.level3 else ())
    payload = run_sweep(degrees=degrees, keys=args.keys,
                        quick=args.quick, workers=args.workers)
    print(render_report(payload))
    if not args.no_json:
        write_json(payload)
        print(f"\nwrote {REPORT_DIR / JSON_NAME}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
