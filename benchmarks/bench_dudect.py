"""Sec. 5.2's constant-time verification with dudect.

The paper: "we used the tool dudect ... to affirm the constant running
time of our algorithm."  This bench runs the reimplemented dudect over
every backend's op-count traces and tabulates the verdicts; the
non-constant-time samplers must be flagged and the constant-time ones
must pass, deterministically.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.baselines import (
    ByteScanCdtSampler,
    CdtBinarySearchSampler,
    KnuthYaoIntegerSampler,
    LinearScanCdtSampler,
)
from repro.core import BitslicedSampler, GaussianParams
from repro.ct import audit_batch_sampler, audit_sampler
from repro.rng import ChaChaSource

from _report import full_or, once, report

PARAMS = GaussianParams.from_sigma(2, 64)
CALLS = full_or(3000, 20000)

PER_CALL_BACKENDS = {
    "knuth-yao (Alg. 1)": KnuthYaoIntegerSampler,
    "cdt-byte-scan": ByteScanCdtSampler,
    "cdt-binary": CdtBinarySearchSampler,
    "cdt-linear": LinearScanCdtSampler,
}


@pytest.mark.parametrize("name", sorted(PER_CALL_BACKENDS))
def test_audit_speed(benchmark, name):
    """Time of a 500-call dudect audit per backend."""
    sampler = PER_CALL_BACKENDS[name](PARAMS, ChaChaSource(1))
    benchmark.pedantic(
        lambda: audit_sampler(sampler, calls=500),
        rounds=1, iterations=1)


def test_dudect_report(benchmark, sigma2_circuit):
    def build() -> tuple[str, dict[str, bool]]:
        rows = []
        verdicts = {}
        for name, backend in PER_CALL_BACKENDS.items():
            sampler = backend(PARAMS, ChaChaSource(2))
            result = audit_sampler(sampler, calls=CALLS)
            verdicts[name] = result.leaking
            rows.append([name, "no" if "linear" not in name else "yes",
                         f"{result.max_abs_t:.1f}",
                         "LEAK" if result.leaking else "pass"])
        bitsliced = BitslicedSampler(sigma2_circuit,
                                     source=ChaChaSource(3))
        result = audit_batch_sampler(bitsliced, batches=300)
        verdicts["bitsliced"] = result.leaking
        rows.append(["bitsliced (this work)", "yes",
                     f"{result.max_abs_t:.1f}",
                     "LEAK" if result.leaking else "pass"])
        table = format_table(
            ["backend", "claims constant time", "max |t|", "dudect"],
            rows,
            title=f"dudect on op-count traces ({CALLS} calls/backend, "
                  "classes: |sample| <= 1 vs rest, threshold 4.5)")
        return table, verdicts

    text, verdicts = once(benchmark, build)
    report("dudect_verdicts", text)
    assert verdicts["knuth-yao (Alg. 1)"]
    assert verdicts["cdt-byte-scan"]
    assert verdicts["cdt-binary"]
    assert not verdicts["cdt-linear"]
    assert not verdicts["bitsliced"]
