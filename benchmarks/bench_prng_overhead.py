"""Sec. 7's PRNG-overhead observation.

The conclusion reports that 80-85% of total sampling time goes to
pseudorandom number generation with Keccak, dropping to ~60% with
ChaCha, and suggests AES-NI as a further improvement.  This bench
reproduces the breakdown both ways:

* **modeled**: sampler logic cycles (gate count) vs PRNG cycles
  (bytes x backend cycles-per-byte) per 64-sample batch;
* **measured**: wall-clock of kernel evaluation vs word generation
  with the real from-scratch SHAKE256/ChaCha20 implementations.
"""

from __future__ import annotations

import time

import pytest

from repro.analysis import format_table
from repro.core import BitslicedSampler
from repro.ct import PRNG_CYCLES_PER_BYTE
from repro.rng import ChaChaSource, CounterSource, ShakeSource

from _report import once, report

PRNG_FACTORIES = {
    "shake256": lambda: ShakeSource(1, variant=256),
    "chacha20": lambda: ChaChaSource(1),
    "chacha8": lambda: ChaChaSource(1, rounds=8),
    "counter": lambda: CounterSource(1),
}

PAPER_CLAIM = {"shake256": (80, 85), "chacha20": (55, 70)}


@pytest.mark.parametrize("prng", sorted(PRNG_FACTORIES))
def test_prng_word_generation_speed(benchmark, sigma2_circuit, prng):
    """Wall-clock of generating one batch worth of random words."""
    source = PRNG_FACTORIES[prng]()
    words = sigma2_circuit.num_input_bits + 1

    def generate():
        for _ in range(words):
            source.read_word(64)

    benchmark(generate)


def test_prng_overhead_report(benchmark, sigma2_circuit):
    def build() -> str:
        sampler = BitslicedSampler(sigma2_circuit,
                                   source=ChaChaSource(1))
        logic_cycles = sampler.word_ops_per_batch
        rng_bytes = sampler.random_bytes_per_batch
        rows = []
        for prng in ("shake256", "chacha20", "chacha8", "counter",
                     "aesni"):
            prng_cycles = rng_bytes * PRNG_CYCLES_PER_BYTE[prng]
            share = 100 * prng_cycles / (prng_cycles + logic_cycles)
            claim = PAPER_CLAIM.get(prng)
            rows.append([prng, f"{prng_cycles:,.0f}",
                         f"{logic_cycles:,}", f"{share:.0f}%",
                         f"{claim[0]}-{claim[1]}%" if claim else "-"])
        modeled = format_table(
            ["PRNG", "prng cycles/batch", "logic cycles/batch",
             "prng share", "paper"],
            rows,
            title=f"Modeled PRNG overhead per {sampler.batch_width}-"
                  f"sample batch (sigma=2, "
                  f"n={sigma2_circuit.num_input_bits}, "
                  f"{rng_bytes} random bytes)")

        # Measured: real implementations, wall clock.
        measured_rows = []
        words = sigma2_circuit.num_input_bits + 1
        for name, factory in PRNG_FACTORIES.items():
            source = factory()
            reps = 40
            started = time.perf_counter()
            for _ in range(reps):
                for _ in range(words):
                    source.read_word(64)
            rng_time = (time.perf_counter() - started) / reps
            sampler = BitslicedSampler(sigma2_circuit, source=factory())
            sampler.sample_batch()  # warm
            started = time.perf_counter()
            for _ in range(reps):
                sampler.sample_batch()
            total_time = (time.perf_counter() - started) / reps
            share = 100 * min(rng_time / total_time, 1.0)
            measured_rows.append(
                [name, f"{rng_time * 1e6:.0f}",
                 f"{total_time * 1e6:.0f}", f"{share:.0f}%"])
        measured = format_table(
            ["PRNG", "randomness us/batch", "total us/batch",
             "prng share"],
            measured_rows,
            title="Measured (pure-Python primitives, wall clock)")
        return modeled + "\n\n" + measured

    text = once(benchmark, build)
    report("prng_overhead", text)
