"""Sec. 7's PRNG-overhead observation, scalar vs vectorized.

The conclusion reports that 80-85% of total sampling time goes to
pseudorandom number generation with Keccak, dropping to ~60% with
ChaCha, and suggests AES-NI as a further improvement.  PR 1's
measurements made the same point brutally for the reproduction: the
pure-Python ChaCha block function ate >90% of ``sample_many`` wall
time, capping the NumPy word engine 15x below its counter-PRNG
ceiling.  This bench reproduces the breakdown three ways:

* **modeled**: sampler logic cycles (gate count) vs PRNG cycles
  (bytes x backend cycles-per-byte) per 64-sample batch;
* **keystream**: raw bulk throughput of every PRNG configuration —
  scalar vs vectorized ChaCha20/12/8, SHAKE128/256, the SplitMix64
  counter — which is what the buffered sources amortize against; and
* **end-to-end**: ``sample_many`` throughput on the auto engine per
  PRNG, with the measured share of wall time spent generating
  randomness (regenerating the consumed byte count source-side).

Results go to the text report and to
``benchmarks/reports/BENCH_prng_overhead.json``.  Runs standalone
(``PYTHONPATH=src python benchmarks/bench_prng_overhead.py --quick``)
or under pytest like the other benchmarks.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time

import pytest

from repro.analysis import format_table
from repro.bitslice import AUTO_ENGINE
from repro.core import BitslicedSampler, GaussianParams, \
    compile_sampler_circuit
from repro.ct import PRNG_CYCLES_PER_BYTE
from repro.rng import HAVE_VECTOR_CHACHA, ChaChaSource, CounterSource, \
    ShakeSource

from _report import REPORT_DIR, drain_buffer, full_or, once, \
    prng_share_percent, report

JSON_NAME = "BENCH_prng_overhead.json"

#: Every PRNG configuration the sweep measures.  The default ChaCha
#: rows evaluate the block function over NumPy uint32 lanes when
#: available (one lane per block counter) behind a 64 KiB keystream
#: buffer; ``-scalar`` rows force the unbuffered RFC reference path.
#: Both are byte-identical, so rows differ in speed only.
PRNG_CONFIGS = {
    "chacha20": lambda: ChaChaSource(1),
    "chacha20-scalar": lambda: ChaChaSource(1, buffer_bytes=0,
                                            vectorized=False),
    "chacha12": lambda: ChaChaSource(1, rounds=12),
    "chacha12-scalar": lambda: ChaChaSource(1, rounds=12,
                                            buffer_bytes=0,
                                            vectorized=False),
    "chacha8": lambda: ChaChaSource(1, rounds=8),
    "chacha8-scalar": lambda: ChaChaSource(1, rounds=8,
                                           buffer_bytes=0,
                                           vectorized=False),
    "shake128": lambda: ShakeSource(1, variant=128),
    "shake256": lambda: ShakeSource(1, variant=256),
    "counter": lambda: CounterSource(1),
}

#: Subset used by the per-batch pytest micro-benchmarks.
PRNG_FACTORIES = {
    "shake256": PRNG_CONFIGS["shake256"],
    "chacha20": PRNG_CONFIGS["chacha20"],
    "chacha20-scalar": PRNG_CONFIGS["chacha20-scalar"],
    "chacha8": PRNG_CONFIGS["chacha8"],
    "counter": PRNG_CONFIGS["counter"],
}

PAPER_CLAIM = {"shake256": (80, 85), "chacha20": (55, 70)}

#: End-to-end rows: the sampler PRNGs of interest (scalar ChaCha20 is
#: included as the PR 1 regression baseline).
END_TO_END_PRNGS = ("chacha20", "chacha20-scalar", "chacha8",
                    "shake256", "counter")


def _keystream_mbps(factory, seconds: float, chunk: int = 16384) -> float:
    """Sustained read_bytes throughput in MB/s."""
    source = factory()
    source.read_bytes(chunk)  # warm (first slab, buffers)
    total = 0
    started = time.perf_counter()
    while time.perf_counter() - started < seconds:
        source.read_bytes(chunk)
        total += chunk
    elapsed = time.perf_counter() - started
    return total / elapsed / 1e6


def _end_to_end(circuit, factory, samples: int) -> dict:
    """sample_many wall time + the PRNG share of it, auto engine."""
    sampler = BitslicedSampler(circuit, source=factory(),
                               batch_width="auto", engine=AUTO_ENGINE)
    sampler.sample_many(sampler.batch_width)  # warm
    drain_buffer(sampler.source.inner)  # steady-state timing
    sampler.source.reset_count()
    started = time.perf_counter()
    sampler.sample_many(samples)
    total = time.perf_counter() - started
    consumed = sampler.source.bytes_read
    return {
        "samples_per_second": round(samples / total, 1),
        "batch_width": sampler.batch_width,
        "bytes_consumed": consumed,
        "prng_share_percent": round(
            prng_share_percent(factory, consumed, total), 1),
    }


def run_sweep(samples: int | None = None,
              keystream_seconds: float = 0.15) -> dict:
    samples = samples if samples is not None else full_or(65_536, 262_144)
    precision = full_or(32, 64)
    params = GaussianParams.from_sigma(2, precision)
    circuit = compile_sampler_circuit(params)

    keystream = {name: round(_keystream_mbps(factory, keystream_seconds),
                             3)
                 for name, factory in PRNG_CONFIGS.items()}
    end_to_end = {name: _end_to_end(circuit, PRNG_CONFIGS[name], samples)
                  for name in END_TO_END_PRNGS}

    # Modeled share (the paper's cycle accounting), unchanged by the
    # vectorization work: it describes the paper's target CPU.
    sampler = BitslicedSampler(circuit)
    logic_cycles = sampler.word_ops_per_batch
    rng_bytes = sampler.random_bytes_per_batch
    modeled = {}
    for prng in ("shake256", "chacha20", "chacha8", "counter", "aesni"):
        prng_cycles = rng_bytes * PRNG_CYCLES_PER_BYTE[prng]
        modeled[prng] = {
            "prng_cycles_per_batch": prng_cycles,
            "logic_cycles_per_batch": logic_cycles,
            "prng_share_percent": round(
                100 * prng_cycles / (prng_cycles + logic_cycles), 1),
        }

    return {
        "benchmark": "prng_overhead",
        "sigma": 2,
        "precision": precision,
        "samples": samples,
        "engine": AUTO_ENGINE,
        "have_vector_chacha": HAVE_VECTOR_CHACHA,
        "python": platform.python_version(),
        "keystream_mbps": keystream,
        "end_to_end": end_to_end,
        "modeled": modeled,
    }


def render_report(payload: dict) -> str:
    scalar_ref = payload["keystream_mbps"].get("chacha20-scalar")
    rows = []
    for name, mbps in payload["keystream_mbps"].items():
        speedup = (f"{mbps / scalar_ref:.1f}x"
                   if scalar_ref and name.startswith("chacha") else "-")
        rows.append([name, f"{mbps:.2f}", speedup])
    keystream = format_table(
        ["PRNG", "keystream MB/s", "vs scalar chacha20"],
        rows,
        title="Bulk keystream throughput (16 KiB reads; vectorized "
              "ChaCha evaluates one uint32 lane per block counter)"
        if payload["have_vector_chacha"] else
        "Bulk keystream throughput (16 KiB reads; NumPy absent — "
        "all ChaCha rows take the scalar RFC path)")

    rows = []
    for name, row in payload["end_to_end"].items():
        rows.append([name, f"{row['samples_per_second']:,.0f}",
                     row["batch_width"],
                     f"{row['prng_share_percent']:.0f}%"])
    end_to_end = format_table(
        ["PRNG", "sample_many (s/s)", "auto width w", "prng share"],
        rows,
        title=f"End-to-end sampling, engine={payload['engine']}, "
              f"{payload['samples']:,} samples (share = wall time to "
              "regenerate the consumed bytes)")

    rows = []
    for prng, row in payload["modeled"].items():
        claim = PAPER_CLAIM.get(prng)
        rows.append([prng, f"{row['prng_cycles_per_batch']:,.0f}",
                     f"{row['logic_cycles_per_batch']:,}",
                     f"{row['prng_share_percent']:.0f}%",
                     f"{claim[0]}-{claim[1]}%" if claim else "-"])
    modeled = format_table(
        ["PRNG", "prng cycles/batch", "logic cycles/batch",
         "prng share", "paper"],
        rows,
        title="Modeled PRNG overhead per 64-sample batch "
              "(paper's target-CPU cycle accounting)")

    return keystream + "\n\n" + end_to_end + "\n\n" + modeled


def write_json(payload: dict) -> None:
    REPORT_DIR.mkdir(exist_ok=True)
    path = REPORT_DIR / JSON_NAME
    path.write_text(json.dumps(payload, indent=2) + "\n",
                    encoding="utf-8")


# -- pytest entry points --------------------------------------------------

@pytest.mark.parametrize("prng", sorted(PRNG_FACTORIES))
def test_prng_word_generation_speed(benchmark, sigma2_circuit, prng):
    """Wall-clock of generating one batch worth of random words."""
    source = PRNG_FACTORIES[prng]()
    words = sigma2_circuit.num_input_bits + 1

    def generate():
        for _ in range(words):
            source.read_word(64)

    benchmark(generate)


def test_prng_overhead_report(benchmark):
    payload = once(benchmark, run_sweep)
    write_json(payload)
    report("prng_overhead", render_report(payload))
    if payload["have_vector_chacha"]:
        # Acceptance: the vectorized block function must clearly beat
        # the scalar path it replaces (the tentpole of PR 2).
        mbps = payload["keystream_mbps"]
        assert mbps["chacha20"] > 2 * mbps["chacha20-scalar"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--samples", type=int, default=None)
    parser.add_argument("--keystream-seconds", type=float, default=0.15)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: small sample count, short "
                             "keystream timing windows")
    parser.add_argument("--no-json", action="store_true",
                        help="skip writing " + JSON_NAME)
    args = parser.parse_args(argv)
    samples = args.samples
    keystream_seconds = args.keystream_seconds
    if args.quick:
        samples = samples or 8192
        keystream_seconds = min(keystream_seconds, 0.05)
    payload = run_sweep(samples=samples,
                        keystream_seconds=keystream_seconds)
    print(render_report(payload))
    if not args.no_json:
        write_json(payload)
        print(f"\nwrote {REPORT_DIR / JSON_NAME}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
