"""Shared infrastructure for the benchmark/report suite.

Each benchmark module regenerates one paper table or figure.  Since
``pytest --benchmark-only`` captures stdout, reports are written both to
the *real* stdout (``sys.__stdout__``, visible in the terminal and in
tee'd logs) and to ``benchmarks/reports/<name>.txt`` so EXPERIMENTS.md
can quote them.

``REPRO_FULL=1`` in the environment switches every experiment to its
full-size configuration (paper-scale precisions and sample counts);
the defaults are sized to finish the whole suite in a few minutes.
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

REPORT_DIR = Path(__file__).resolve().parent / "reports"

#: Full-size mode: paper-scale parameters (slower).
FULL = os.environ.get("REPRO_FULL", "") not in ("", "0")

#: Reports generated during this pytest session, in creation order.
#: The conftest terminal-summary hook replays them after the run
#: (pytest's fd capture would otherwise swallow mid-test output).
SESSION_REPORTS: list[str] = []


def full_or(default, full_value):
    """Pick the full-size value when REPRO_FULL=1."""
    return full_value if FULL else default


def drain_buffer(source) -> None:
    """Consume any keystream a warm-up left pre-generated in a buffered
    source, so a subsequent timed window pays for every byte it uses."""
    buffered = getattr(source, "buffered_bytes", 0)
    if buffered:
        source.read_bytes(buffered)


def prng_share_percent(source_factory, bytes_consumed: int,
                       elapsed: float) -> float:
    """Share of ``elapsed`` attributable to randomness generation.

    Regenerates ``bytes_consumed`` on a fresh source from
    ``source_factory`` and compares wall time, capped at 100%.  The
    shared protocol behind every "prng share" column in the reports.
    """
    source = source_factory()
    started = time.perf_counter()
    source.read_bytes(bytes_consumed)
    rng_time = time.perf_counter() - started
    return 100 * min(rng_time / elapsed, 1.0)


def report(name: str, text: str) -> None:
    """Emit a report block: file + live stdout + end-of-run summary."""
    banner = f"\n{'=' * 72}\n[{name}]\n{'=' * 72}\n"
    sys.__stdout__.write(banner + text + "\n")
    sys.__stdout__.flush()
    REPORT_DIR.mkdir(exist_ok=True)
    path = REPORT_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    if name not in SESSION_REPORTS:
        SESSION_REPORTS.append(name)


def once(benchmark, function):
    """Run ``function`` exactly once under pytest-benchmark.

    Report-style benchmarks regenerate artifacts; a single round keeps
    them cheap while still registering a timing row.
    """
    return benchmark.pedantic(function, rounds=1, iterations=1)
