"""Serving throughput: the asyncio coalescing service vs the sync loop.

The ROADMAP's serving story before this PR ended at a synchronous
per-request loop over one flat key store; this benchmark measures what
the coalescing front buys.  Rows per configuration:

* **sync_loop** — the baseline: one ``sk.sign(message)`` per request,
  sequentially (what a naive per-request server does);
* **direct_sign_many** — the spine ceiling: all messages through one
  ``sign_many`` call (no coalescing overhead, no concurrency);
* **service c=K / w=W** — the coalescing service: ``K`` concurrent
  client coroutines submitting requests over a sharded store, batch
  window ``W`` seconds.  Requests/s includes queueing, coalescing and
  the asyncio machinery, so ``direct_sign_many`` bounds it above and
  ``sync_loop`` is the number to beat;
* **mp …** — the same service with a :class:`ShardWorkerPool`: each
  shard's rounds run in a dedicated worker process with a warm spine
  (the multi-core path — on a 1-core runner the IPC tax makes these
  rows *slower*, which the JSON records honestly);
* **net …** (``--net``) — the full wire: requests travel as
  length-prefixed frames through :class:`NetServer` /
  :class:`NetClient` over a real loopback socket;
* **verify … / net_verify …** — the verify plane: every request
  pre-signed, then verified through the service's cross-tenant
  coalesced verify rounds (no signer checkout on the hot path —
  verify rounds run off the public-key cache and merge across
  tenants into maximal cross-key batches), in-process and over the
  wire;
* **ledger …** — the signed-ledger pipeline over the same keys:
  pre-signed records through the bounded mempool into batch-verified,
  hash-chained committed blocks; its p50/p99 column is per-*commit*
  (block) latency.

Every service-level row also records client-observed p50/p99 latency
in milliseconds (wall time from submit to signature, including queue
wait and the coalescing window), plus availability and error rate —
the share of requests that completed vs failed.  Fault-free rows are
100% by construction; the ``--chaos`` rows inject a pinned, seeded
:class:`FaultPlan` (dropped response frames at the wire, failed
keystore claims) and record what the retry/dedup/supervision machinery
actually delivers under it.

The acceptance gate (recorded in the JSON): the best coalesced
configuration among the concurrency >= 8 rows beats the synchronous
loop (coalescing needs in-flight requests well past the tenant count
to fill rounds — the committed sweep passes at 32 clients).  The
multi-process gate (``mp_beats_inproc``) is judged only on hosts with
more than one core; on a 1-core runner it is recorded as ``null``.
Results go to the text report and
``benchmarks/reports/BENCH_serving.json``.  Runs standalone
(``PYTHONPATH=src python benchmarks/bench_serving.py --quick``) or
under pytest like the other benchmarks.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import platform
import sys
import time

import pytest

from repro.analysis import format_table
from repro.falcon import HAVE_NUMPY, Ledger
from repro.falcon.serving import (
    FaultPlan,
    NetClient,
    NetServer,
    ShardedKeyStore,
    ShardWorkerPool,
    SigningService,
)

from _report import REPORT_DIR, once, report

JSON_NAME = "BENCH_serving.json"

#: Concurrency sweep (client coroutines submitting in parallel).
CONCURRENCY = (1, 8, 32)

#: Batch-window sweep, seconds (0 = drain only what is queued).
WINDOWS = (0.0, 0.002)

#: Tenants sharing the service.  Coalescing is per tenant key, so a
#: round's batch is roughly ``in-flight / tenants`` — the sweep keeps
#: tenants low enough that the concurrency axis actually exercises
#: the batch spine (at 32 clients over 2 tenants, rounds reach ~16).
TENANTS = 2
SHARDS = 2
MAX_BATCH = 32

#: The pinned fault plan the ``--chaos`` rows run under.  Seeded, so
#: every run of the same build injects the identical fault sequence:
#: ~5% of response frames dropped at the wire (retry + server dedup
#: must recover them) and ~25% of keystore claims failing (the round
#: fails, the client survives it).
CHAOS_PLAN = FaultPlan(seed=7, drop_frame=0.05, fail_claim=0.25)

#: Ledger row: records per committed block.
LEDGER_BLOCK = 32


def _messages(count: int) -> list[bytes]:
    return [b"serving-%d" % i for i in range(count)]


def _fresh_store(master_seed: int, n: int, tenants: int,
                 prewarm: bool = True,
                 fault_plan: FaultPlan | None = None) -> ShardedKeyStore:
    store = ShardedKeyStore(shards=SHARDS, master_seed=master_seed,
                            fault_plan=fault_plan)
    if prewarm:
        # Check the per-tenant signers out up front: every row then
        # measures serving, not first-request keygen.
        for tenant in range(tenants):
            store.signer(f"tenant-{tenant}", n)
    return store


def _sync_loop_rate(store: ShardedKeyStore, n: int,
                    messages: list[bytes], tenants: int) -> float:
    """The pre-serving baseline: per-request ``sign()`` calls in a
    synchronous loop, tenants served round-robin."""
    signers = [store.signer(f"tenant-{t}", n) for t in range(tenants)]
    started = time.perf_counter()
    for i, message in enumerate(messages):
        signers[i % tenants].sign(message)
    return len(messages) / (time.perf_counter() - started)


def _direct_batch_rate(store: ShardedKeyStore, n: int,
                       messages: list[bytes], tenants: int) -> float:
    """The spine ceiling: one ``sign_many`` per tenant, no service."""
    shares = [messages[t::tenants] for t in range(tenants)]
    started = time.perf_counter()
    for tenant, share in enumerate(shares):
        store.sign_many(f"tenant-{tenant}", n, share)
    return len(messages) / (time.perf_counter() - started)


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile (values pre-sorted ascending)."""
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1,
               max(0, int(round(q * (len(sorted_values) - 1)))))
    return sorted_values[rank]


def _latency_summary(latencies: list[float]) -> dict:
    """Client-observed latency percentiles, milliseconds."""
    ordered = sorted(latencies)
    return {"p50_ms": round(1000 * _percentile(ordered, 0.50), 3),
            "p99_ms": round(1000 * _percentile(ordered, 0.99), 3)}


def _service_rate(store: ShardedKeyStore, n: int,
                  messages: list[bytes], tenants: int,
                  concurrency: int, window: float,
                  worker_pool=None,
                  tolerate_failures: bool = False
                  ) -> tuple[float, list[float], int]:
    """Coalesced async throughput: ``concurrency`` client coroutines
    submit the request stream; returns (requests/s over the full
    drain, per-request client-observed latencies in seconds, failed
    request count).  With ``tolerate_failures`` (chaos rows) a failed
    request is counted instead of aborting the row."""

    async def drive() -> tuple[float, list[float], int]:
        service = SigningService(store, n=n, max_batch=MAX_BATCH,
                                 max_wait=window,
                                 queue_depth=max(4 * MAX_BATCH, 16),
                                 worker_pool=worker_pool)
        latencies: list[float] = []
        failed = 0

        async def client(which: int) -> None:
            nonlocal failed
            for i in range(which, len(messages), concurrency):
                submitted = time.perf_counter()
                try:
                    await service.sign(f"tenant-{i % tenants}",
                                       messages[i])
                except Exception:
                    if not tolerate_failures:
                        raise
                    failed += 1
                latencies.append(time.perf_counter() - submitted)

        async with service:
            if worker_pool is not None:
                # Warm the worker processes' per-tenant spines so the
                # timed section measures serving, not first-round
                # checkout inside the workers.
                await asyncio.gather(*[
                    service.sign(f"tenant-{t}", b"warmup")
                    for t in range(tenants)])
            started = time.perf_counter()
            await asyncio.gather(*[client(which)
                                   for which in range(concurrency)])
            rate = len(messages) / (time.perf_counter() - started)
        return rate, latencies, failed

    return asyncio.run(drive())


def _net_rate(store: ShardedKeyStore, n: int, messages: list[bytes],
              tenants: int, concurrency: int, window: float,
              worker_pool=None, fault_plan: FaultPlan | None = None,
              tolerate_failures: bool = False
              ) -> tuple[float, list[float], int]:
    """Over-the-wire throughput: the same request stream, but every
    request is a length-prefixed frame through a real loopback socket
    (one :class:`NetClient` connection per client coroutine)."""

    async def drive() -> tuple[float, list[float], int]:
        service = SigningService(store, n=n, max_batch=MAX_BATCH,
                                 max_wait=window,
                                 queue_depth=max(4 * MAX_BATCH, 16),
                                 worker_pool=worker_pool)
        latencies: list[float] = []
        failed = 0
        async with service:
            server = NetServer(service, fault_plan=fault_plan)
            await server.start("127.0.0.1", 0)
            connections = [
                await NetClient.connect(
                    "127.0.0.1", server.port,
                    # Short enough that a dropped response frame
                    # retries quickly instead of stalling the row.
                    request_timeout=1.0 if fault_plan else None)
                for _ in range(concurrency)]

            async def client(which: int) -> None:
                nonlocal failed
                net = connections[which]
                for i in range(which, len(messages), concurrency):
                    submitted = time.perf_counter()
                    try:
                        await net.sign(f"tenant-{i % tenants}",
                                       messages[i])
                    except Exception:
                        if not tolerate_failures:
                            raise
                        failed += 1
                    latencies.append(time.perf_counter() - submitted)

            try:
                await asyncio.gather(*[
                    connections[t % concurrency].sign(
                        f"tenant-{t}", b"warmup")
                    for t in range(tenants)])
                started = time.perf_counter()
                await asyncio.gather(*[
                    client(which) for which in range(concurrency)])
                rate = len(messages) / (time.perf_counter() - started)
            finally:
                for net in connections:
                    await net.close()
                await server.stop(stop_service=False)
        return rate, latencies, failed

    return asyncio.run(drive())


def _presigned(store: ShardedKeyStore, n: int, messages: list[bytes],
               tenants: int) -> list[tuple]:
    """(tenant, public_key, message, signature) for every message,
    signed outside any timed section with the tenant split the sign
    rows use (message ``i`` belongs to tenant ``i % tenants``)."""
    records = []
    for tenant in range(tenants):
        name = f"tenant-{tenant}"
        public_key = store.signer(name, n).public_key
        share = messages[tenant::tenants]
        for message, signature in zip(share,
                                      store.sign_many(name, n, share)):
            records.append((name, public_key, message, signature))
    return records


def _verify_rate(store: ShardedKeyStore, n: int,
                 messages: list[bytes], tenants: int,
                 concurrency: int, window: float
                 ) -> tuple[float, list[float], int]:
    """Verify-plane throughput: pre-signed requests through the
    service's cross-tenant coalesced verify rounds (public-key cache,
    no signer checkout, tenants merged into maximal batches)."""
    records = _presigned(store, n, messages, tenants)

    async def drive() -> tuple[float, list[float], int]:
        service = SigningService(store, n=n, max_batch=MAX_BATCH,
                                 max_wait=window,
                                 queue_depth=max(4 * MAX_BATCH, 16))
        latencies: list[float] = []
        failed = 0

        async def client(which: int) -> None:
            nonlocal failed
            for i in range(which, len(records), concurrency):
                tenant, _pk, message, signature = records[i]
                submitted = time.perf_counter()
                if not await service.verify(tenant, message, signature):
                    failed += 1
                latencies.append(time.perf_counter() - submitted)

        async with service:
            started = time.perf_counter()
            await asyncio.gather(*[client(which)
                                   for which in range(concurrency)])
            rate = len(records) / (time.perf_counter() - started)
        return rate, latencies, failed

    return asyncio.run(drive())


def _net_verify_rate(store: ShardedKeyStore, n: int,
                     messages: list[bytes], tenants: int,
                     concurrency: int, window: float
                     ) -> tuple[float, list[float], int]:
    """The verify plane over the wire: the same pre-signed stream as
    length-prefixed frames through a real loopback socket."""
    records = _presigned(store, n, messages, tenants)

    async def drive() -> tuple[float, list[float], int]:
        service = SigningService(store, n=n, max_batch=MAX_BATCH,
                                 max_wait=window,
                                 queue_depth=max(4 * MAX_BATCH, 16))
        latencies: list[float] = []
        failed = 0
        async with service:
            server = NetServer(service)
            await server.start("127.0.0.1", 0)
            connections = [
                await NetClient.connect("127.0.0.1", server.port)
                for _ in range(concurrency)]

            async def client(which: int) -> None:
                nonlocal failed
                net = connections[which]
                for i in range(which, len(records), concurrency):
                    tenant, _pk, message, signature = records[i]
                    submitted = time.perf_counter()
                    if not await net.verify(tenant, message, signature):
                        failed += 1
                    latencies.append(time.perf_counter() - submitted)

            try:
                started = time.perf_counter()
                await asyncio.gather(*[
                    client(which) for which in range(concurrency)])
                rate = len(records) / (time.perf_counter() - started)
            finally:
                for net in connections:
                    await net.close()
                await server.stop(stop_service=False)
        return rate, latencies, failed

    return asyncio.run(drive())


def _ledger_rate(store: ShardedKeyStore, n: int, messages: list[bytes],
                 tenants: int) -> tuple[float, list[float], int]:
    """The signed-ledger pipeline over the serving store's keys:
    pre-signed records through the bounded mempool into cross-key
    batch-verified, hash-chained blocks.  The latency list is per
    committed *block*, so this row's p50/p99 column reads as commit
    latency."""
    records = _presigned(store, n, messages, tenants)
    ledger = Ledger(max_block_records=LEDGER_BLOCK,
                    capacity=max(len(records), LEDGER_BLOCK))
    latencies: list[float] = []
    started = time.perf_counter()
    for _tenant, public_key, message, signature in records:
        ledger.submit_signed(public_key, message, signature)
        if len(ledger.mempool) >= LEDGER_BLOCK:
            commit_start = time.perf_counter()
            ledger.commit()
            latencies.append(time.perf_counter() - commit_start)
    while len(ledger.mempool):
        commit_start = time.perf_counter()
        ledger.commit()
        latencies.append(time.perf_counter() - commit_start)
    rate = len(records) / (time.perf_counter() - started)
    return rate, latencies, 0


def run_sweep(n: int = 256, signs: int = 64, tenants: int = TENANTS,
              quick: bool = False, net: bool = False,
              chaos: bool = False) -> dict:
    if quick:
        n = min(n, 64)
        signs = min(signs, 24)
    messages = _messages(signs)
    store = _fresh_store(1, n, tenants)
    rows = {
        "sync_loop": _sync_loop_rate(store, n, messages, tenants),
        "direct_sign_many": _direct_batch_rate(store, n, messages,
                                               tenants),
    }
    service_rows: dict[str, float] = {}
    latency_rows: dict[str, dict] = {}
    availability_rows: dict[str, dict] = {}

    def record(label: str,
               outcome: tuple[float, list[float], int]) -> None:
        rate, latencies, failed = outcome
        service_rows[label] = rate
        latency_rows[label] = _latency_summary(latencies)
        availability_rows[label] = {
            "failed": failed,
            "availability": round((signs - failed) / signs, 4)
            if signs else 1.0,
            "error_rate": round(failed / signs, 4) if signs else 0.0,
        }

    for window in WINDOWS:
        for concurrency in CONCURRENCY:
            if quick and (window, concurrency) not in (
                    (WINDOWS[0], 1), (WINDOWS[-1], 8)):
                continue
            label = f"c{concurrency}_w{window * 1000:g}ms"
            record(label, _service_rate(store, n, messages, tenants,
                                        concurrency, window))

    # Multi-process rows: dedicated worker process per shard.  Each
    # pool gets a fresh derived key universe in its workers, so the
    # rows measure warm serving after a tenant warm-up pass.
    mp_configs = [(CONCURRENCY[-1], WINDOWS[-1])]
    if quick:
        mp_configs = [(8, WINDOWS[-1])]
    for concurrency, window in mp_configs:
        with ShardWorkerPool(shards=SHARDS, master_seed=1) as pool:
            label = f"mp_c{concurrency}_w{window * 1000:g}ms"
            record(label, _service_rate(store, n, messages, tenants,
                                        concurrency, window,
                                        worker_pool=pool))

    # Over-the-wire rows: real loopback sockets, framed protocol.
    if net:
        net_configs = [(CONCURRENCY[-1], WINDOWS[-1])]
        if quick:
            net_configs = [(8, WINDOWS[-1])]
        for concurrency, window in net_configs:
            label = f"net_c{concurrency}_w{window * 1000:g}ms"
            record(label, _net_rate(store, n, messages, tenants,
                                    concurrency, window))

    # Verify-plane and ledger rows: pre-signed records through the
    # cross-tenant coalesced verify path (in-process, and over the
    # wire with --net) and through the signed-ledger commit pipeline.
    verify_concurrency, verify_window = (8, WINDOWS[-1]) if quick \
        else (CONCURRENCY[-1], WINDOWS[-1])
    verify_label = (f"c{verify_concurrency}"
                    f"_w{verify_window * 1000:g}ms")
    record(f"verify_{verify_label}",
           _verify_rate(store, n, messages, tenants,
                        verify_concurrency, verify_window))
    if net:
        record(f"net_verify_{verify_label}",
               _net_verify_rate(store, n, messages, tenants,
                                verify_concurrency, verify_window))
    record(f"ledger_b{LEDGER_BLOCK}",
           _ledger_rate(store, n, messages, tenants))

    # Chaos rows: the same workloads under the pinned fault plan.
    # The wire row drops ~5% of response frames (retry + server-side
    # dedup must recover them); the claims row serves from a store
    # whose keystore claims fail ~10% of the time (signers are checked
    # out during serving, not prewarmed, so the faults actually land).
    if chaos:
        concurrency, window = (8, WINDOWS[-1]) if quick \
            else (CONCURRENCY[-1], WINDOWS[-1])
        record(f"chaos_net_c{concurrency}_w{window * 1000:g}ms",
               _net_rate(store, n, messages, tenants, concurrency,
                         window, fault_plan=CHAOS_PLAN,
                         tolerate_failures=True))
        chaos_store = _fresh_store(3, n, tenants, prewarm=False,
                                   fault_plan=CHAOS_PLAN)
        record(f"chaos_claims_c{concurrency}_w{window * 1000:g}ms",
               _service_rate(chaos_store, n, messages, tenants,
                             concurrency, window,
                             tolerate_failures=True))

    def _concurrency_of(label: str) -> int:
        core = next(part for part in label.split("_")
                    if part[:1] == "c" and part[1:].isdigit())
        return int(core[1:])

    # The acceptance gate: the best coalesced configuration among the
    # in-process concurrency >= 8 rows (coalescing needs enough
    # in-flight requests to fill rounds; the per-concurrency rows are
    # all in the JSON for readers who want the full curve).  Chaos
    # rows measure survival, not throughput, and stay out of the
    # gates.
    sign_path_only = ("mp_", "net_", "chaos_", "verify_", "ledger_")
    best_coalesced = max(
        (rate for label, rate in service_rows.items()
         if not label.startswith(sign_path_only)
         and _concurrency_of(label) >= 8), default=0.0)
    best_inproc = max(
        (rate for label, rate in service_rows.items()
         if not label.startswith(sign_path_only)), default=0.0)
    best_mp = max((rate for label, rate in service_rows.items()
                   if label.startswith("mp_")), default=0.0)
    multi_core = (os.cpu_count() or 1) > 1
    return {
        "benchmark": "serving",
        "quick": quick,
        "python": platform.python_version(),
        "have_numpy": HAVE_NUMPY,
        "cpu_count": os.cpu_count(),
        "n": n,
        "signs": signs,
        "tenants": tenants,
        "shards": SHARDS,
        "max_batch": MAX_BATCH,
        "requests_per_sec": {label: round(rate, 2)
                             for label, rate in
                             {**rows, **service_rows}.items()},
        "latency": latency_rows,
        "availability": availability_rows,
        "chaos": chaos,
        "chaos_plan": ({"seed": CHAOS_PLAN.seed,
                        "drop_frame": CHAOS_PLAN.drop_frame,
                        "fail_claim": CHAOS_PLAN.fail_claim}
                       if chaos else None),
        "best_coalesced_c_ge_8": round(best_coalesced, 2),
        "coalesced_speedup_vs_sync_loop":
            round(best_coalesced / rows["sync_loop"], 2)
            if best_coalesced else None,
        "best_coalesced_beats_sync_loop":
            bool(best_coalesced and
                 best_coalesced >= rows["sync_loop"]),
        "mp_speedup_vs_inproc":
            round(best_mp / best_inproc, 2)
            if best_mp and best_inproc else None,
        # The multi-process gate only means something with real
        # parallel hardware; on a 1-core host the IPC tax dominates
        # and the honest answer is "not applicable", recorded as null.
        "mp_beats_inproc":
            (bool(best_mp and best_inproc and best_mp >= best_inproc)
             if multi_core else None),
    }


def render_report(payload: dict) -> str:
    latency = payload.get("latency", {})
    availability = payload.get("availability", {})
    rows = []
    for label, rate in payload["requests_per_sec"].items():
        summary = latency.get(label)
        avail = availability.get(label)
        rows.append([
            label, f"{rate:,.1f}",
            f"{summary['p50_ms']:,.1f}" if summary else "-",
            f"{summary['p99_ms']:,.1f}" if summary else "-",
            f"{avail['availability']:.2%}" if avail else "-",
            f"{avail['error_rate']:.2%}" if avail else "-",
        ])
    table = format_table(
        ["path", "requests/s", "p50 ms", "p99 ms", "avail", "errors"],
        rows,
        title=f"Falcon-{payload['n']} serving throughput "
              f"({payload['signs']} requests, {payload['tenants']} "
              f"tenants, {payload['shards']} shards, c = concurrent "
              "clients, w = batch window, mp = process shard workers, "
              "net = loopback wire protocol, chaos = seeded fault "
              "plan, verify = coalesced cross-tenant verify plane, "
              "ledger = signed-record commit pipeline with per-block "
              "p50/p99)")
    lines = [table, ""]
    if payload.get("chaos"):
        chaos_avail = min(
            (entry["availability"]
             for label, entry in availability.items()
             if label.startswith("chaos_")), default=1.0)
        lines.append(f"chaos rows: pinned fault plan "
                     f"{payload['chaos_plan']}, worst availability "
                     f"{chaos_avail:.2%}")
    if payload["coalesced_speedup_vs_sync_loop"]:
        line = (f"coalesced async (c>=8) = "
                f"{payload['coalesced_speedup_vs_sync_loop']:.2f}x "
                f"the synchronous per-request loop")
        if payload["quick"]:
            # The acceptance gate is judged on the committed full-run
            # JSON (numpy spine, full concurrency sweep), not on this
            # smoke's truncated configuration.
            line += " (smoke run; gate judged on the full sweep)"
        else:
            gate = ("PASS" if payload["best_coalesced_beats_sync_loop"]
                    else "FAIL")
            line += f" (gate: {gate})"
        lines.append(line)
    if payload.get("mp_speedup_vs_inproc"):
        line = (f"process shard workers = "
                f"{payload['mp_speedup_vs_inproc']:.2f}x the best "
                f"in-process row on {payload['cpu_count']} core(s)")
        if payload.get("mp_beats_inproc") is None:
            line += (" (1-core host: IPC tax without parallelism; "
                     "gate n/a)")
        else:
            line += (" (gate: "
                     + ("PASS" if payload["mp_beats_inproc"]
                        else "FAIL") + ")")
        lines.append(line)
    return "\n".join(lines)


def write_json(payload: dict) -> None:
    REPORT_DIR.mkdir(exist_ok=True)
    path = REPORT_DIR / JSON_NAME
    path.write_text(json.dumps(payload, indent=2) + "\n",
                    encoding="utf-8")


# -- pytest entry points --------------------------------------------------

def test_serving_report(benchmark):
    """Assemble the serving throughput report (small sweep).

    Deliberately does NOT write the JSON: the committed
    ``BENCH_serving.json`` comes from a full standalone run and must
    not be clobbered by this test's small, noisy sweep.
    """
    payload = once(benchmark, lambda: run_sweep(quick=True))
    report("serving", render_report(payload))
    assert payload["requests_per_sec"]["direct_sign_many"] > 0


@pytest.mark.skipif(not HAVE_NUMPY,
                    reason="acceptance gate measured on the numpy spine")
def test_coalesced_beats_sync_loop(benchmark):
    """The acceptance gate at benchmark scale: the best coalesced
    configuration among the concurrency >= 8 rows must beat the
    synchronous per-request loop (at c=8 with 2 tenants rounds stay
    small; the c=32 rows are where coalescing fills rounds)."""
    payload = once(benchmark,
                   lambda: run_sweep(n=256, signs=48, quick=False))
    assert payload["best_coalesced_beats_sync_loop"], \
        payload["requests_per_sec"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=256)
    parser.add_argument("--signs", type=int, default=64,
                        help="requests per measured row")
    parser.add_argument("--tenants", type=int, default=TENANTS)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: n=64, few requests, two "
                             "service configurations")
    parser.add_argument("--net", action="store_true",
                        help="add over-the-wire rows (loopback "
                             "sockets through the framed protocol)")
    parser.add_argument("--chaos", action="store_true",
                        help="add rows measured under the pinned "
                             "seeded fault plan (dropped frames, "
                             "failed claims) with availability and "
                             "error-rate columns")
    parser.add_argument("--no-json", action="store_true",
                        help="skip writing " + JSON_NAME)
    args = parser.parse_args(argv)
    payload = run_sweep(n=args.n, signs=args.signs,
                        tenants=args.tenants, quick=args.quick,
                        net=args.net, chaos=args.chaos)
    print(render_report(payload))
    if not args.no_json:
        write_json(payload)
        print(f"\nwrote {REPORT_DIR / JSON_NAME}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
