"""Serving throughput: the asyncio coalescing service vs the sync loop.

The ROADMAP's serving story before this PR ended at a synchronous
per-request loop over one flat key store; this benchmark measures what
the coalescing front buys.  Rows per configuration:

* **sync_loop** — the baseline: one ``sk.sign(message)`` per request,
  sequentially (what a naive per-request server does);
* **direct_sign_many** — the spine ceiling: all messages through one
  ``sign_many`` call (no coalescing overhead, no concurrency);
* **service c=K / w=W** — the coalescing service: ``K`` concurrent
  client coroutines submitting requests over a sharded store, batch
  window ``W`` seconds.  Requests/s includes queueing, coalescing and
  the asyncio machinery, so ``direct_sign_many`` bounds it above and
  ``sync_loop`` is the number to beat.

The acceptance gate (recorded in the JSON): the best coalesced
configuration among the concurrency >= 8 rows beats the synchronous
loop (coalescing needs in-flight requests well past the tenant count
to fill rounds — the committed sweep passes at 32 clients).  Results
go to the text report and ``benchmarks/reports/BENCH_serving.json``.
Runs standalone (``PYTHONPATH=src python benchmarks/bench_serving.py
--quick``) or under pytest like the other benchmarks.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import platform
import sys
import time

import pytest

from repro.analysis import format_table
from repro.falcon import HAVE_NUMPY
from repro.falcon.serving import ShardedKeyStore, SigningService

from _report import REPORT_DIR, once, report

JSON_NAME = "BENCH_serving.json"

#: Concurrency sweep (client coroutines submitting in parallel).
CONCURRENCY = (1, 8, 32)

#: Batch-window sweep, seconds (0 = drain only what is queued).
WINDOWS = (0.0, 0.002)

#: Tenants sharing the service.  Coalescing is per tenant key, so a
#: round's batch is roughly ``in-flight / tenants`` — the sweep keeps
#: tenants low enough that the concurrency axis actually exercises
#: the batch spine (at 32 clients over 2 tenants, rounds reach ~16).
TENANTS = 2
SHARDS = 2
MAX_BATCH = 32


def _messages(count: int) -> list[bytes]:
    return [b"serving-%d" % i for i in range(count)]


def _fresh_store(master_seed: int, n: int, tenants: int,
                 prewarm: bool = True) -> ShardedKeyStore:
    store = ShardedKeyStore(shards=SHARDS, master_seed=master_seed)
    if prewarm:
        # Check the per-tenant signers out up front: every row then
        # measures serving, not first-request keygen.
        for tenant in range(tenants):
            store.signer(f"tenant-{tenant}", n)
    return store


def _sync_loop_rate(store: ShardedKeyStore, n: int,
                    messages: list[bytes], tenants: int) -> float:
    """The pre-serving baseline: per-request ``sign()`` calls in a
    synchronous loop, tenants served round-robin."""
    signers = [store.signer(f"tenant-{t}", n) for t in range(tenants)]
    started = time.perf_counter()
    for i, message in enumerate(messages):
        signers[i % tenants].sign(message)
    return len(messages) / (time.perf_counter() - started)


def _direct_batch_rate(store: ShardedKeyStore, n: int,
                       messages: list[bytes], tenants: int) -> float:
    """The spine ceiling: one ``sign_many`` per tenant, no service."""
    shares = [messages[t::tenants] for t in range(tenants)]
    started = time.perf_counter()
    for tenant, share in enumerate(shares):
        store.sign_many(f"tenant-{tenant}", n, share)
    return len(messages) / (time.perf_counter() - started)


def _service_rate(store: ShardedKeyStore, n: int,
                  messages: list[bytes], tenants: int,
                  concurrency: int, window: float) -> float:
    """Coalesced async throughput: ``concurrency`` client coroutines
    submit the request stream; requests/s over the full drain."""

    async def drive() -> float:
        service = SigningService(store, n=n, max_batch=MAX_BATCH,
                                 max_wait=window,
                                 queue_depth=max(4 * MAX_BATCH, 16))

        async def client(which: int) -> None:
            for i in range(which, len(messages), concurrency):
                await service.sign(f"tenant-{i % tenants}", messages[i])

        async with service:
            started = time.perf_counter()
            await asyncio.gather(*[client(which)
                                   for which in range(concurrency)])
            return len(messages) / (time.perf_counter() - started)

    return asyncio.run(drive())


def run_sweep(n: int = 256, signs: int = 64, tenants: int = TENANTS,
              quick: bool = False) -> dict:
    if quick:
        n = min(n, 64)
        signs = min(signs, 24)
    messages = _messages(signs)
    store = _fresh_store(1, n, tenants)
    rows = {
        "sync_loop": _sync_loop_rate(store, n, messages, tenants),
        "direct_sign_many": _direct_batch_rate(store, n, messages,
                                               tenants),
    }
    service_rows: dict[str, float] = {}
    for window in WINDOWS:
        for concurrency in CONCURRENCY:
            if quick and (window, concurrency) not in (
                    (WINDOWS[0], 1), (WINDOWS[-1], 8)):
                continue
            label = f"c{concurrency}_w{window * 1000:g}ms"
            service_rows[label] = _service_rate(
                store, n, messages, tenants, concurrency, window)
    # The acceptance gate: the best coalesced configuration among the
    # concurrency >= 8 rows (coalescing needs enough in-flight
    # requests to fill rounds; the per-concurrency rows are all in
    # the JSON for readers who want the full curve).
    best_coalesced = max(
        (rate for label, rate in service_rows.items()
         if int(label[1:].split("_")[0]) >= 8), default=0.0)
    return {
        "benchmark": "serving",
        "quick": quick,
        "python": platform.python_version(),
        "have_numpy": HAVE_NUMPY,
        "cpu_count": os.cpu_count(),
        "n": n,
        "signs": signs,
        "tenants": tenants,
        "shards": SHARDS,
        "max_batch": MAX_BATCH,
        "requests_per_sec": {label: round(rate, 2)
                             for label, rate in
                             {**rows, **service_rows}.items()},
        "best_coalesced_c_ge_8": round(best_coalesced, 2),
        "coalesced_speedup_vs_sync_loop":
            round(best_coalesced / rows["sync_loop"], 2)
            if best_coalesced else None,
        "best_coalesced_beats_sync_loop":
            bool(best_coalesced and
                 best_coalesced >= rows["sync_loop"]),
    }


def render_report(payload: dict) -> str:
    rows = [[label, f"{rate:,.1f}"]
            for label, rate in payload["requests_per_sec"].items()]
    table = format_table(
        ["path", "requests/s"], rows,
        title=f"Falcon-{payload['n']} serving throughput "
              f"({payload['signs']} requests, {payload['tenants']} "
              f"tenants, {payload['shards']} shards, c = concurrent "
              "clients, w = batch window)")
    lines = [table, ""]
    if payload["coalesced_speedup_vs_sync_loop"]:
        line = (f"coalesced async (c>=8) = "
                f"{payload['coalesced_speedup_vs_sync_loop']:.2f}x "
                f"the synchronous per-request loop")
        if payload["quick"]:
            # The acceptance gate is judged on the committed full-run
            # JSON (numpy spine, full concurrency sweep), not on this
            # smoke's truncated configuration.
            line += " (smoke run; gate judged on the full sweep)"
        else:
            gate = ("PASS" if payload["best_coalesced_beats_sync_loop"]
                    else "FAIL")
            line += f" (gate: {gate})"
        lines.append(line)
    return "\n".join(lines)


def write_json(payload: dict) -> None:
    REPORT_DIR.mkdir(exist_ok=True)
    path = REPORT_DIR / JSON_NAME
    path.write_text(json.dumps(payload, indent=2) + "\n",
                    encoding="utf-8")


# -- pytest entry points --------------------------------------------------

def test_serving_report(benchmark):
    """Assemble the serving throughput report (small sweep).

    Deliberately does NOT write the JSON: the committed
    ``BENCH_serving.json`` comes from a full standalone run and must
    not be clobbered by this test's small, noisy sweep.
    """
    payload = once(benchmark, lambda: run_sweep(quick=True))
    report("serving", render_report(payload))
    assert payload["requests_per_sec"]["direct_sign_many"] > 0


@pytest.mark.skipif(not HAVE_NUMPY,
                    reason="acceptance gate measured on the numpy spine")
def test_coalesced_beats_sync_loop(benchmark):
    """The acceptance gate at benchmark scale: the best coalesced
    configuration among the concurrency >= 8 rows must beat the
    synchronous per-request loop (at c=8 with 2 tenants rounds stay
    small; the c=32 rows are where coalescing fills rounds)."""
    payload = once(benchmark,
                   lambda: run_sweep(n=256, signs=48, quick=False))
    assert payload["best_coalesced_beats_sync_loop"], \
        payload["requests_per_sec"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=256)
    parser.add_argument("--signs", type=int, default=64,
                        help="requests per measured row")
    parser.add_argument("--tenants", type=int, default=TENANTS)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: n=64, few requests, two "
                             "service configurations")
    parser.add_argument("--no-json", action="store_true",
                        help="skip writing " + JSON_NAME)
    args = parser.parse_args(argv)
    payload = run_sweep(n=args.n, signs=args.signs,
                        tenants=args.tenants, quick=args.quick)
    print(render_report(payload))
    if not args.no_json:
        write_json(payload)
        print(f"\nwrote {REPORT_DIR / JSON_NAME}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
