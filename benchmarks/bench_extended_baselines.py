"""Extension — the full sampler landscape the paper's intro surveys.

Sec. 1 surveys the efficient-sampler landscape ([26, 16, 14, 9, 17,
32]): CDT variants, Bernoulli/BLISS, and Knuth–Yao, almost all
non-constant-time.  This bench lines up every backend in the library —
the four Table 1 samplers plus Algorithm 1 and the BLISS-style
Bernoulli sampler — under one cost/leakage table, sigma = 2, n = 64.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.baselines import (
    BernoulliSampler,
    BisectionCdtSampler,
    ByteScanCdtSampler,
    CdtBinarySearchSampler,
    KnuthYaoIntegerSampler,
    LinearScanCdtSampler,
)
from repro.core import BitslicedSampler, GaussianParams
from repro.ct import PRNG_CYCLES_PER_BYTE, audit_batch_sampler, audit_sampler
from repro.rng import ChaChaSource

from _report import once, report

PARAMS = GaussianParams.from_sigma(2, 64)

BACKENDS = {
    "knuth-yao (Alg. 1)": (KnuthYaoIntegerSampler, None),
    "bernoulli (BLISS)": (BernoulliSampler, lambda v: v == 0),
    "cdt-byte-scan": (ByteScanCdtSampler, None),
    "cdt-binary": (CdtBinarySearchSampler, None),
    "cdt-linear": (LinearScanCdtSampler, None),
    "cdt-bisection (Bi-SamplerZ)": (BisectionCdtSampler, None),
}


@pytest.mark.parametrize("name", sorted(BACKENDS))
def test_sampling_speed(benchmark, name):
    backend, _ = BACKENDS[name]
    sampler = backend(PARAMS, ChaChaSource(1))
    benchmark(sampler.sample)


def test_extended_baselines_report(benchmark, sigma2_circuit):
    def build() -> str:
        rows = []
        draws = 4000
        for name, (backend, classifier) in BACKENDS.items():
            sampler = backend(PARAMS, ChaChaSource(2))
            for _ in range(draws):
                sampler.sample()
            counts = sampler.counter.counts
            cycles = counts.modeled_cycles("chacha20") / draws
            rng_bytes = counts.rng_bytes / draws
            audit = audit_sampler(
                backend(PARAMS, ChaChaSource(3)), calls=6000,
                classifier=classifier)
            rows.append([name, f"{cycles:.1f}", f"{rng_bytes:.1f}",
                         "yes" if backend.constant_time else "no",
                         f"{audit.max_abs_t:.1f}",
                         "LEAK" if audit.leaking else "pass"])
        bitsliced = BitslicedSampler(sigma2_circuit,
                                     source=ChaChaSource(4))
        per_sample = (bitsliced.word_ops_per_batch
                      + bitsliced.random_bytes_per_batch
                      * PRNG_CYCLES_PER_BYTE["chacha20"]) \
            / bitsliced.batch_width
        rng_per = bitsliced.random_bytes_per_batch / bitsliced.batch_width
        audit = audit_batch_sampler(bitsliced, batches=200)
        rows.append(["bitsliced (this work)", f"{per_sample:.1f}",
                     f"{rng_per:.1f}", "yes",
                     f"{audit.max_abs_t:.1f}",
                     "LEAK" if audit.leaking else "pass"])
        return format_table(
            ["backend", "modeled cycles/sample", "rng bytes/sample",
             "CT by design", "dudect max |t|", "verdict"],
            rows,
            title="All sampler backends, sigma = 2, n = 64, ChaCha20 "
                  "(modeled cycles include PRNG)")

    text = once(benchmark, build)
    report("extended_baselines", text)
