"""Figure 1 — the probability matrix and its DDG tree (sigma=2, n=6).

The paper's Fig. 1 shows the 6-bit probability matrix for sigma = 2 and
the corresponding discrete distribution generating tree.  This bench
regenerates both and *asserts* the matrix matches the figure digit for
digit (it does — the paper's example uses exactly the tail-cut
normalized, truncated construction this library implements).
"""

from __future__ import annotations

from repro.core import GaussianParams, build_ddg_tree, probability_matrix

from _report import once, report

FIG1_ROWS = [0b001100, 0b010110, 0b001111, 0b001000, 0b000011, 0b000001]


def test_fig1_report(benchmark):
    def build() -> str:
        params = GaussianParams.from_sigma(2, precision=6)
        matrix = probability_matrix(params)
        tree = build_ddg_tree(matrix)
        lines = ["Probability matrix (rows P0..P5; rows 6..26 are zero "
                 "and omitted, as in the figure):"]
        for v in range(6):
            bits = format(matrix.rows[v], "06b")
            lines.append(f"  P{v}  " + "   ".join(bits))
        match = list(matrix.rows[:6]) == FIG1_ROWS
        lines.append(f"\nmatches the paper's Fig. 1 matrix exactly: "
                     f"{match}")
        lines.append(f"column weights h_i = {matrix.column_weights} "
                     "(= leaves per DDG level)")
        lines.append(f"deficits D_i = {matrix.deficits} "
                     "(= internal nodes per level; always >= 1, "
                     "Theorem 1)")
        lines.append("\nDDG tree (position 0 = bottom of the figure; "
                     "I = internal):")
        lines.append(tree.render_ascii())
        lines.append("\nGraphviz export available via "
                     "DDGTree.to_dot(); first lines:")
        lines.extend("  " + line
                     for line in tree.to_dot().splitlines()[:6])
        return "\n".join(lines)

    text = once(benchmark, build)
    report("fig1_ddg_tree", text)
    matrix = probability_matrix(GaussianParams.from_sigma(2, 6))
    assert list(matrix.rows[:6]) == FIG1_ROWS
