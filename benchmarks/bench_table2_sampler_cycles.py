"""Table 2 — sampler cost: efficient vs simple minimization.

Paper Table 2 (cycles per 64-sample batch, PRNG excluded):

    sigma       [21] simple   this work   improvement
    2               3,787       2,293         37%
    6.15543        11,136       9,880         11%

Our machine-model analogue counts one cycle per bitwise word
instruction of the compiled circuit (exactly the execution model of the
paper's bitsliced C code).  Both minimization pipelines are run from
scratch; wall-clock per-batch timings of the generated Python kernels
are benchmarked alongside.

The sigma = 6.15543 baseline in [21] was additionally hand-optimized
(the paper says so when explaining the smaller 11% gap), which our
automatic espresso baseline cannot reproduce — expect our improvement
for that sigma to look closer to the sigma = 2 one.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.baselines import BisectionCdtSampler
from repro.core import BitslicedSampler, GaussianParams
from repro.rng import ChaChaSource

from _report import once, report

PAPER = {
    2: {"simple": 3787, "efficient": 2293, "improvement": 37},
    6.15543: {"simple": 11136, "efficient": 9880, "improvement": 11},
}


@pytest.mark.parametrize("sigma", [2, 6.15543])
@pytest.mark.parametrize("method", ["efficient", "simple"])
def test_batch_kernel_speed(benchmark, table2_circuits, sigma, method):
    """Wall-clock of one 64-sample kernel batch per circuit."""
    circuit = table2_circuits[sigma][method]
    sampler = BitslicedSampler(circuit, source=ChaChaSource(1),
                               batch_width=64)
    benchmark(sampler.sample_batch)


def test_table2_report(benchmark, table2_circuits):
    def build() -> str:
        rows = []
        claims = []
        for sigma, bundle in table2_circuits.items():
            gates = {m: bundle[m].gate_count()["total"]
                     for m in ("efficient", "simple")}
            improvement = 100 * (gates["simple"] - gates["efficient"]) \
                / gates["simple"]
            paper = PAPER[sigma]
            rows.append([sigma, bundle["n"],
                         gates["simple"], gates["efficient"],
                         f"{improvement:.0f}%",
                         paper["simple"], paper["efficient"],
                         f"{paper['improvement']}%"])
            claims.append(
                f"sigma={sigma}: efficient minimization saves "
                f"{improvement:.0f}% of gates "
                f"(paper: {paper['improvement']}%"
                + ("; the paper's [21] baseline was hand-optimized"
                   if sigma != 2 else "") + ")")
            # Constant-time comparison point outside the bitsliced
            # family: the Bi-SamplerZ-style fixed-iteration bisection
            # CDT, modeled cycles per 64 samples, PRNG excluded to
            # match the paper's accounting.
            bisection = BisectionCdtSampler(
                GaussianParams.from_sigma(sigma, bundle["n"]),
                source=ChaChaSource(2))
            draws = 2000
            for _ in range(draws):
                bisection.sample_magnitude()
            per_batch = bisection.counter.counts.modeled_cycles(
                include_rng=False) / draws * 64
            claims.append(
                f"sigma={sigma}: cdt-bisection (Bi-SamplerZ, CT "
                f"fixed-iteration search) ~{per_batch:.0f} modeled "
                f"cycles per 64-sample batch")
        table = format_table(
            ["sigma", "n", "simple gates", "efficient gates",
             "improvement", "paper simple cyc", "paper eff cyc",
             "paper improv"],
            rows,
            title="Table 2: cycles per 64-sample batch "
                  "(ours = gate count of the compiled circuit; "
                  "paper = measured cycles, PRNG excluded)")
        return table + "\n\n" + "\n".join(claims)

    text = once(benchmark, build)
    report("table2_sampler_cycles", text)
    # The headline direction must hold: efficient < simple, both sigmas.
    for bundle in table2_circuits.values():
        assert bundle["efficient"].gate_count()["total"] < \
            bundle["simple"].gate_count()["total"]
