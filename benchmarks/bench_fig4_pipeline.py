"""Figure 4 — the efficient-minimization pipeline, stage by stage.

Fig. 4's flowchart:  (sigma, n) -> generate list L -> sort/divide into
sublists -> minimize each f^{i,k}_Delta -> combine with constant-time
if-else chains -> f^i_n.  This bench executes each stage separately,
timing it and reporting its output size, for the paper's sigma = 2 at
the default precision.
"""

from __future__ import annotations

import time

from repro.analysis import format_table
from repro.bitslice import BitslicedKernel
from repro.boolfunc import gate_counts
from repro.core import (
    GaussianParams,
    compile_sampler_circuit,
    enumerate_terminating_strings,
    partition_by_trailing_ones,
    probability_matrix,
)

from _report import full_or, once, report


def test_fig4_pipeline_report(benchmark):
    def build() -> str:
        precision = full_or(64, 128)
        params = GaussianParams.from_sigma(2, precision)
        rows = []

        started = time.perf_counter()
        matrix = probability_matrix(params)
        rows.append(["probability matrix",
                     f"{matrix.num_rows} x {matrix.precision} bits",
                     f"{time.perf_counter() - started:.3f}s"])

        started = time.perf_counter()
        entries = enumerate_terminating_strings(matrix)
        rows.append(["enumerate list L", f"{len(entries)} strings",
                     f"{time.perf_counter() - started:.3f}s"])

        started = time.perf_counter()
        partition = partition_by_trailing_ones(matrix)
        rows.append(["sort + divide into sublists",
                     f"{len(partition.sublists)} sublists, "
                     f"Delta = {partition.delta}",
                     f"{time.perf_counter() - started:.3f}s"])

        started = time.perf_counter()
        circuit = compile_sampler_circuit(params)
        compile_time = time.perf_counter() - started
        exact = sum(1 for r in circuit.reports if r.exact)
        rows.append(["minimize f^{i,k}_Delta (QMC exact)",
                     f"{exact}/{len(circuit.reports)} sublists exact, "
                     f"{sum(r.cube_count for r in circuit.reports)} "
                     "cubes",
                     f"{compile_time:.3f}s"])

        counts = gate_counts(circuit.roots)
        rows.append(["combine (one-hot selector chain)",
                     f"{counts['total']} gates, depth "
                     f"{circuit.depth()}", "included above"])

        started = time.perf_counter()
        kernel = BitslicedKernel(circuit.roots)
        rows.append(["emit bitsliced kernel",
                     f"{kernel.stats.word_ops} word ops, "
                     f"{kernel.num_inputs} input words",
                     f"{time.perf_counter() - started:.3f}s"])

        return format_table(
            ["stage", "output", "time"],
            rows,
            title=f"Fig. 4 pipeline for sigma=2, n={precision}")

    text = once(benchmark, build)
    report("fig4_pipeline", text)
