"""Ablation A3 — SIMD batch width.

The paper's target machine fixes w = 64 lanes per batch; Python
integers have no such limit, so the bitsliced kernel runs unchanged at
any width.  This ablation sweeps w and reports per-sample throughput:
the kernel's word-op count is width-independent, so wider batches
amortize interpreter overhead until bignum limb costs take over —
a software preview of the paper's AVX2/AVX-512 remark.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.core import BitslicedSampler
from repro.rng import ChaChaSource

from _report import once, report

WIDTHS = (8, 16, 32, 64, 128, 256, 512, 1024)


@pytest.mark.parametrize("width", [8, 64, 512])
def test_batch_speed(benchmark, sigma2_circuit, width):
    sampler = BitslicedSampler(sigma2_circuit, source=ChaChaSource(1),
                               batch_width=width)
    benchmark(sampler.sample_batch)


def test_batch_width_report(benchmark, sigma2_circuit):
    def build() -> str:
        import time
        rows = []
        for width in WIDTHS:
            sampler = BitslicedSampler(sigma2_circuit,
                                       source=ChaChaSource(2),
                                       batch_width=width)
            sampler.sample_batch()  # warm-up
            reps = max(2, 2048 // width)
            started = time.perf_counter()
            produced = 0
            for _ in range(reps):
                produced += len(sampler.sample_batch())
            elapsed = time.perf_counter() - started
            rows.append([width,
                         sampler.word_ops_per_batch,
                         f"{sampler.word_ops_per_batch / width:.1f}",
                         f"{produced / elapsed:,.0f}"])
        return format_table(
            ["batch width w", "word ops/batch", "modeled cycles/sample",
             "measured samples/s"],
            rows,
            title="Batch-width sweep, sigma = 2 "
                  "(word-op count is width-independent; wider words "
                  "amortize interpreter overhead)")

    text = once(benchmark, build)
    report("ablation_batch_width", text)
