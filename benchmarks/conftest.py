"""Session fixtures shared by the benchmark suite.

Key generation and circuit compilation are expensive one-time costs;
they are cached at session scope so the per-table benchmarks measure
only what the paper measures (signing, sampling).
"""

from __future__ import annotations

import pytest

from repro.core import GaussianParams, compile_sampler_circuit
from repro.falcon import SecretKey

from _report import FULL, full_or

#: Paper security levels benchmarked by default.  Level 3 (n=1024)
#: costs ~15s of keygen + ~1s/signature; included because Table 1
#: includes it, trimmed rounds keep it tolerable.
TABLE1_LEVELS = {
    "Level 1": 256,
    "Level 2": 512,
    "Level 3": 1024,
}


@pytest.fixture(scope="session")
def falcon_keys() -> dict[int, SecretKey]:
    """One key pair per Table 1 level (seeded, reproducible)."""
    keys = {}
    for n in TABLE1_LEVELS.values():
        keys[n] = SecretKey.generate(n=n, seed=1)
    return keys


@pytest.fixture(scope="session")
def sigma2_circuit():
    """The paper's sigma=2 sampler at full precision (efficient)."""
    params = GaussianParams.from_sigma(2, full_or(64, 128))
    return compile_sampler_circuit(params, method="efficient")


@pytest.fixture(scope="session")
def table2_circuits():
    """Efficient and simple circuits for Table 2's two sigmas.

    Precisions are reduced by default (the espresso baseline on the
    full 128-variable functions costs minutes); REPRO_FULL=1 restores
    paper-scale n = 64/64.  The improvement percentages are stable in n.
    """
    configs = {
        2: full_or(48, 64),
        6.15543: full_or(32, 64),
    }
    circuits = {}
    for sigma, precision in configs.items():
        params = GaussianParams.from_sigma(sigma, precision)
        circuits[sigma] = {
            "n": precision,
            "efficient": compile_sampler_circuit(params,
                                                 method="efficient"),
            "simple": compile_sampler_circuit(params, method="simple",
                                              espresso_iterations=1),
        }
    return circuits


def pytest_report_header(config):
    mode = "FULL (paper-scale)" if FULL else "default (reduced sizes)"
    return f"repro benchmark suite - mode: {mode} (set REPRO_FULL=1)"


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Replay every generated table/figure report after the run.

    The report tests write their artifacts under fd capture; this hook
    runs on the real terminal stream, so tee'd logs contain the full
    paper-reproduction tables.
    """
    from _report import REPORT_DIR, SESSION_REPORTS

    if not SESSION_REPORTS:
        return
    write = terminalreporter.write_line
    write("")
    write("=" * 72)
    write("paper-reproduction reports (also under benchmarks/reports/)")
    write("=" * 72)
    for name in SESSION_REPORTS:
        path = REPORT_DIR / f"{name}.txt"
        if not path.exists():
            continue
        write("")
        write(f"--- [{name}] " + "-" * max(0, 56 - len(name)))
        for line in path.read_text(encoding="utf-8").splitlines():
            write(line)
