"""Extension — precision vs. divergence (the conclusion's direction).

The paper's conclusion: "a good research direction is to develop
statistical measures like Rényi divergences or max-log distances to
reduce the precision requirement of discrete Gaussian sampling and
hence reducing the requirement of pseudorandom numbers."

This bench carries that out for the sigma = 2 sampler: for a sweep of
precisions n, it measures how far the n-bit truncated sampler is from
the ideal distribution under three metrics, and translates each into
the security level it supports.  Statistical distance demands roughly
n >= lambda bits; Rényi-based analyses tolerate much larger divergence
(distance ~2^(-lambda/2) for order-2 arguments), so they halve the
PRNG bill — which, per the Sec. 7 measurement that the PRNG is 60-85%
of sampling time, nearly halves total sampling cost.
"""

from __future__ import annotations

import math
from fractions import Fraction

from repro.analysis import (
    format_table,
    max_log_distance,
    renyi_divergence,
    statistical_distance,
)
from repro.core import GaussianParams, probability_matrix, true_pmf

from _report import once, report

PRECISIONS = (8, 16, 24, 32, 48, 64, 96, 128)


def test_precision_reduction_report(benchmark):
    def build() -> str:
        rows = []
        for n in PRECISIONS:
            params = GaussianParams.from_sigma(2, n)
            matrix = probability_matrix(params)
            sampled = [Fraction(row, matrix.mass) for row in matrix.rows]
            ideal = true_pmf(params)
            sd = statistical_distance(sampled, ideal)
            sd_bits = float(-sd.numerator.bit_length()
                            + sd.denominator.bit_length()) if sd else \
                float("inf")
            # Restrict divergence metrics to the sampled support
            # (rows that truncated to zero carry ~2^-n ideal mass).
            support = [v for v, p in enumerate(sampled) if p > 0]
            p_vec = [float(sampled[v]) for v in support]
            q_vec = [float(ideal[v]) for v in support]
            scale = sum(q_vec)
            q_vec = [q / scale for q in q_vec]
            renyi2 = renyi_divergence(p_vec, q_vec, 2)
            mld = max_log_distance(p_vec, q_vec)
            rows.append([
                n,
                f"2^-{sd_bits:.0f}" if sd else "0",
                f"{sd_bits:.0f}" if sd else "exact",
                f"{renyi2:.3e}" if renyi2 > 1e-15 else "<1e-15",
                f"{mld:.3e}",
                f"{2 * sd_bits:.0f}" if sd else "any",
            ])
        table = format_table(
            ["n", "stat. distance", "lambda (SD-based)",
             "Renyi-2 div (nats)", "max-log dist",
             "lambda (Renyi-based ~2x)"],
            rows,
            title="Precision reduction for sigma = 2: security bits "
                  "supported per analysis style")
        note = ("\nReading: an SD-based proof of lambda = 128 needs "
                "n ~ 128 bits of precision (16 PRNG bytes/sample); a "
                "Renyi-based proof reaches the same lambda near n ~ 64 "
                "— halving the dominant PRNG cost of Sec. 7."
                "\nNote the max-log column does NOT shrink with n: "
                "matrix probabilities are *truncated* (required for "
                "sum <= 1), so the worst tail row keeps O(1) relative "
                "error — precisely why Micciancio-Walter's max-log "
                "analysis demands relative-error rounding instead. "
                "Measured here, not assumed.")
        return table + note

    text = once(benchmark, build)
    report("precision_reduction", text)

    # Monotone sanity: statistical distance shrinks ~2x per extra bit.
    params_lo = GaussianParams.from_sigma(2, 16)
    params_hi = GaussianParams.from_sigma(2, 32)
    m_lo = probability_matrix(params_lo)
    m_hi = probability_matrix(params_hi)
    sd_lo = statistical_distance(
        [Fraction(r, m_lo.mass) for r in m_lo.rows], true_pmf(params_lo))
    sd_hi = statistical_distance(
        [Fraction(r, m_hi.mass) for r in m_hi.rows], true_pmf(params_hi))
    assert sd_hi < sd_lo / 1000
    assert math.isfinite(float(sd_hi))
