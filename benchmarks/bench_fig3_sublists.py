"""Figure 3 — dividing the sorted list L into sublists (sigma=2, n=16).

Fig. 3 shows list L for sigma = 2, n = 16, sorted by the number of
trailing ones and divided into sublists l_k.  This bench regenerates
the identical rendering (reversed string notation, binary sample
values) and summarizes the per-sublist structure the minimizer
exploits.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.core import (
    GaussianParams,
    partition_by_trailing_ones,
    probability_matrix,
)

from _report import once, report


def test_fig3_report(benchmark):
    def build() -> str:
        params = GaussianParams.from_sigma(2, precision=16)
        matrix = probability_matrix(params)
        partition = partition_by_trailing_ones(matrix)
        lines = [partition.render(), ""]
        rows = [[f"l_{s.k}", len(s.entries), s.delta,
                 "yes" if s.is_immediate else "no"]
                for s in partition.sublists]
        lines.append(format_table(
            ["sublist", "entries", "Delta_k", "immediate leaf"],
            rows, title="Sublist summary"))
        lines.append(f"\nglobal Delta = {partition.delta} "
                     "(paper quotes Delta = 4 for sigma = 2); "
                     f"n' = {partition.max_k}")
        return "\n".join(lines)

    text = once(benchmark, build)
    report("fig3_sublists", text)
    partition = partition_by_trailing_ones(
        probability_matrix(GaussianParams.from_sigma(2, 16)))
    assert partition.delta <= 5  # 4 in the paper's configuration
