"""Figure 5 — histograms of the constant-time sampler's output.

Fig. 5 plots histograms for sigma = 2 and sigma = 6.15543 over
64 x 10^7 samples.  The default run scales the count down to 64 x 10^4
(Python interpreter; REPRO_FULL=1 raises it to 64 x 10^5) and overlays
the ideal discrete Gaussian; a chi-square goodness-of-fit p-value
quantifies what the paper shows visually.
"""

from __future__ import annotations

from repro.analysis import (
    chi_square_p_value,
    chi_square_statistic,
    histogram_counts,
    ideal_signed_gaussian_pmf,
    render_histogram,
)
from repro.core import compile_sampler
from repro.rng import ChaChaSource

from _report import full_or, once, report

DRAWS = 64 * full_or(10_000, 100_000)


def _histogram_block(sigma: float, seed: int, value_range) -> str:
    sampler = compile_sampler(sigma, precision=32,
                              source=ChaChaSource(seed))
    values = sampler.sample_many(DRAWS)
    counts = histogram_counts(values)
    bound = sampler.circuit.matrix.max_value
    ideal = ideal_signed_gaussian_pmf(float(sigma), bound)
    chi2, dof = chi_square_statistic(
        counts, ideal, DRAWS, min_expected=8)
    p_value = chi_square_p_value(chi2, dof)
    lines = [f"sigma = {sigma}, {DRAWS:,} samples "
             f"(paper: 64 x 10^7)",
             render_histogram(counts, ideal=ideal, width=52,
                              value_range=value_range),
             f"chi-square GoF vs ideal: chi2 = {chi2:.1f} "
             f"(dof = {dof}), p = {p_value:.3f}"]
    return "\n".join(lines), p_value


def test_fig5_sigma2(benchmark):
    text, p_value = once(
        benchmark, lambda: _histogram_block(2, 11, (-8, 8)))
    report("fig5_histogram_sigma2", text)
    assert p_value > 1e-4


def test_fig5_sigma_615543(benchmark):
    text, p_value = once(
        benchmark, lambda: _histogram_block(6.15543, 12, (-20, 20)))
    report("fig5_histogram_sigma6", text)
    assert p_value > 1e-4
