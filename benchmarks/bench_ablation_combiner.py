"""Ablation A1 — recombination strategy (Eqn 2 variants).

The paper combines sublist functions with nested constant-time if-else
chains (Eqn 2).  Because the selectors c_k are one-hot, two cheaper
equivalent circuits exist; this ablation quantifies the choice.  All
three compute identical functions (asserted exhaustively in the test
suite); only gate counts and depths differ.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.boolfunc import COMBINER_MODES
from repro.core import GaussianParams, compile_sampler_circuit

from _report import full_or, once, report

PRECISION = full_or(48, 128)


@pytest.mark.parametrize("mode", COMBINER_MODES)
def test_compile_speed(benchmark, mode):
    params = GaussianParams.from_sigma(2, 32)
    benchmark.pedantic(
        lambda: compile_sampler_circuit(params, combiner=mode),
        rounds=1, iterations=1)


def test_combiner_ablation_report(benchmark):
    def build() -> str:
        rows = []
        for sigma in (2, 6.15543):
            params = GaussianParams.from_sigma(sigma, PRECISION)
            for mode in COMBINER_MODES:
                circuit = compile_sampler_circuit(params, combiner=mode)
                counts = circuit.gate_count()
                rows.append([sigma, mode, counts["total"],
                             counts["and"], counts["or"],
                             counts["not"], circuit.depth()])
        note = ("\nnested = the paper's Eqn 2 with full selectors "
                "c_k = b_0&..&~b_k;\nnested-implicit = Eqn 2 testing "
                "only ~b_k (prior branches imply the prefix);\n"
                "onehot = OR_k (c_k & f^k), sharing the selector "
                "ladder across all output bits (library default).")
        return format_table(
            ["sigma", "combiner", "gates", "and", "or", "not", "depth"],
            rows,
            title=f"Combiner ablation at n = {PRECISION}") + note

    text = once(benchmark, build)
    report("ablation_combiner", text)
    params = GaussianParams.from_sigma(2, 32)
    costs = {mode: compile_sampler_circuit(
        params, combiner=mode).gate_count()["total"]
        for mode in COMBINER_MODES}
    assert costs["onehot"] <= costs["nested"]
