"""Sec. 5's Delta observation — "j is bounded by a small Delta".

The paper reports Delta = 4, 4, 6, 15 for sigma = 1, 2, 6.15543, 215.
Delta depends mildly on the precision n and tail cut (deeper trees
expose slightly longer suffixes); this bench tabulates the measured
Delta over a precision sweep next to the paper's quoted values.

sigma = 215 has a 2796-row matrix; it is included only under
REPRO_FULL=1 (about a minute of exact arithmetic).
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.core import (
    GaussianParams,
    partition_by_trailing_ones,
    probability_matrix,
)

from _report import FULL, once, report

PAPER_DELTA = {1: 4, 2: 4, 6.15543: 6, 215: 15}


def test_delta_report(benchmark):
    def build() -> str:
        sigmas = [1, 2, 6.15543] + ([215] if FULL else [])
        precisions = [32, 64, 128]
        rows = []
        for sigma in sigmas:
            measured = {}
            sweep = precisions if sigma != 215 else [32]
            for n in sweep:
                params = GaussianParams.from_sigma(sigma, n)
                partition = partition_by_trailing_ones(
                    probability_matrix(params))
                measured[n] = partition.delta
            rows.append([sigma] +
                        [measured.get(n, "-") for n in precisions] +
                        [PAPER_DELTA[sigma]])
        note = ("" if FULL else
                "\n(sigma = 215 runs under REPRO_FULL=1; at n = 32 it "
                "measures Delta = 10, consistent with the paper's 15 "
                "at its higher precision)")
        return format_table(
            ["sigma", "Delta@n=32", "Delta@n=64", "Delta@n=128",
             "paper Delta"],
            rows,
            title="Observed maximal free-suffix length Delta "
                  "(tau = 13)") + note

    text = once(benchmark, build)
    report("delta_observation", text)
    # The structural claim: Delta stays small (<= paper value + 2).
    for sigma, paper in PAPER_DELTA.items():
        if sigma == 215 and not FULL:
            continue
        params = GaussianParams.from_sigma(sigma, 64 if sigma != 215
                                           else 32)
        partition = partition_by_trailing_ones(
            probability_matrix(params))
        assert partition.delta <= paper + 2, (sigma, partition.delta)
