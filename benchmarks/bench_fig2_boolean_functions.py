"""Figure 2 — mapping random bits to sample bits as Boolean functions.

Fig. 2 depicts the core idea of [21]: the many-to-one map from input
random strings (b0 b1 ... b_{n-1}) to output sample bits (s0 ... s_m),
realized as Boolean functions f^i_n.  This bench regenerates the map
for a printable instance (sigma = 2, n = 8): the full truth table of
terminating strings, then the compiled functions in C form.
"""

from __future__ import annotations

from repro.boolfunc import gate_counts, to_c_source
from repro.core import (
    GaussianParams,
    compile_sampler_circuit,
    enumerate_terminating_strings,
    probability_matrix,
)

from _report import once, report


def test_fig2_report(benchmark):
    def build() -> str:
        params = GaussianParams.from_sigma(2, precision=8)
        matrix = probability_matrix(params)
        circuit = compile_sampler_circuit(params)
        lines = ["Input random strings -> sample bits "
                 "(x = don't care; string shown in the paper's "
                 "reversed notation, first random bit rightmost):", ""]
        lines.append("  random string    sample (s2 s1 s0)")
        for entry in enumerate_terminating_strings(matrix):
            bits = format(entry.value, "03b")
            lines.append(f"  {entry.padded_string(8)}      "
                         f"{bits[0]}  {bits[1]}  {bits[2]}"
                         f"   (= {entry.value})")
        lines.append(f"\n{len(enumerate_terminating_strings(matrix))} "
                     f"terminating strings; {matrix.failure_count} of "
                     f"256 inputs never terminate (valid = 0)")
        counts = gate_counts(circuit.roots)
        lines.append(f"\nCompiled Boolean functions f^i_8: "
                     f"{counts['total']} gates for "
                     f"{len(circuit.output_bits)} sample bits + valid")
        lines.append("\nC export of f^0_8 (sample bit 0):")
        lines.extend("  " + line for line in to_c_source(
            [circuit.output_bits[0]],
            function_name="f0").splitlines())
        return "\n".join(lines)

    text = once(benchmark, build)
    report("fig2_boolean_functions", text)


def test_fig2_functions_cover_all_inputs(benchmark):
    """Every 8-bit input yields either a valid sample or valid=0."""
    from repro.bitslice import BitslicedKernel, pack_lane_bits
    from repro.core import knuth_yao_walk
    from repro.rng import BitStream, ListBitSource

    params = GaussianParams.from_sigma(2, precision=8)
    matrix = probability_matrix(params)
    circuit = compile_sampler_circuit(params)
    kernel = BitslicedKernel(circuit.roots)

    def check() -> int:
        mismatches = 0
        for word in range(256):
            bits = [(word >> i) & 1 for i in range(8)]
            walk = knuth_yao_walk(matrix,
                                  BitStream(ListBitSource(bits)))
            out = kernel(pack_lane_bits([bits], 8), 1)
            valid = out[-1] & 1
            value = sum((out[t] & 1) << t for t in range(len(out) - 1))
            expected_valid = 0 if walk.failed else 1
            if valid != expected_valid:
                mismatches += 1
            elif valid and value != walk.value:
                mismatches += 1
        return mismatches

    assert once(benchmark, check) == 0
