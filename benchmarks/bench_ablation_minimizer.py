"""Ablation A4 — exact QMC vs heuristic espresso on the sublists.

The paper insists on *exact* per-sublist minimization (Espresso
``-Dso -S1``), arguing heuristics are unpredictable.  This ablation
forces the espresso heuristic onto every sublist (by setting the QMC
width limit to zero) and compares: how much quality does exactness buy
on the small Delta_k-variable functions, and at what compile-time cost?
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.core import GaussianParams, compile_sampler_circuit

from _report import full_or, once, report

PRECISION = full_or(48, 96)


@pytest.mark.parametrize("minimizer", ["qmc-exact", "espresso"])
def test_compile_speed(benchmark, minimizer):
    params = GaussianParams.from_sigma(2, 32)
    limit = 14 if minimizer == "qmc-exact" else 0
    benchmark.pedantic(
        lambda: compile_sampler_circuit(params, qmc_width_limit=limit,
                                        cache=False),
        rounds=1, iterations=1)


def test_minimizer_ablation_report(benchmark):
    def build() -> str:
        rows = []
        for sigma in (2, 6.15543):
            params = GaussianParams.from_sigma(sigma, PRECISION)
            for label, limit in (("QMC exact (paper)", 14),
                                 ("espresso heuristic", 0)):
                circuit = compile_sampler_circuit(
                    params, qmc_width_limit=limit)
                exact = sum(1 for r in circuit.reports if r.exact)
                rows.append([sigma, label,
                             circuit.gate_count()["total"],
                             f"{exact}/{len(circuit.reports)}",
                             f"{circuit.compile_seconds:.2f}s"])
        return format_table(
            ["sigma", "sublist minimizer", "gates", "exact sublists",
             "compile time"],
            rows,
            title=f"Sublist-minimizer ablation at n = {PRECISION}")

    text = once(benchmark, build)
    report("ablation_minimizer", text)
    # Exactness can only help (or tie) on gate count.
    params = GaussianParams.from_sigma(2, 48)
    exact_gates = compile_sampler_circuit(
        params, qmc_width_limit=14).gate_count()["total"]
    heur_gates = compile_sampler_circuit(
        params, qmc_width_limit=0).gate_count()["total"]
    assert exact_gates <= heur_gates * 1.05
