"""Backend scaling — word engines x batch widths x batch API.

The tentpole claim of the word-engine refactor: evaluating the same
straight-line kernel over wider words (bigint) or vectorized ``uint64``
lanes (NumPy), and fusing batches into super-batches via
``sample_many``, multiplies throughput without touching the circuit —
the software analogue of the paper's "as fast as the hardware allows"
SIMD argument (Sec. 3.2, Table 2).

For every engine and batch width this sweep measures

* ``sample_batch``-loop throughput (the per-batch demo the repo used
  to be), and
* ``sample_many`` throughput (one fused kernel pass over up to 64
  batches),

and records the ratio.  Results go to the usual text report *and* to
``benchmarks/reports/BENCH_backend_scaling.json`` so successive PRs can
track the datapoints.

Runs standalone (``PYTHONPATH=src python benchmarks/bench_backend_scaling.py
--samples 8192`` for a CI smoke) or under pytest like the other
benchmarks.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time

from repro.analysis import format_table
from repro.bitslice import AUTO_ENGINE, HAVE_NUMPY, available_engines
from repro.core import GaussianParams, compile_sampler_circuit
from repro.core.sampler import BitslicedSampler
from repro.rng import ChaChaSource, CounterSource

from _report import REPORT_DIR, drain_buffer, full_or, \
    prng_share_percent, report

JSON_NAME = "BENCH_backend_scaling.json"

DEFAULT_SAMPLES = 65_536
DEFAULT_WIDTHS = (64, 256, 1024, "auto")
SIGMA = 2

#: The PRNG axis: ChaCha20 is the paper's production choice but costs
#: far more than the sampler itself in pure Python, so the sweep also
#: measures against the near-free SplitMix64 counter — the "PRNG
#: overhead" framing from the paper's conclusion.  The counter rows are
#: the ones that show the *kernel's* scaling.
PRNGS = {"chacha20": ChaChaSource, "counter": CounterSource}


def _throughput_batch_loop(circuit, engine: str, prng, width,
                           samples: int) -> float:
    sampler = BitslicedSampler(circuit, source=prng(31),
                               batch_width=width, engine=engine)
    sampler.sample_batch()  # warm-up (compiled kernel caches, PRNG)
    drain_buffer(sampler.source.inner)
    produced = 0
    started = time.perf_counter()
    while produced < samples:
        produced += len(sampler.sample_batch())
    elapsed = time.perf_counter() - started
    return produced / elapsed


def _throughput_sample_many(circuit, engine: str, prng, width,
                            samples: int) -> tuple[float, int, float]:
    """Returns (samples/s, resolved width, PRNG share of wall time)."""
    sampler = BitslicedSampler(circuit, source=prng(31),
                               batch_width=width, engine=engine)
    sampler.sample_many(sampler.batch_width)  # warm-up
    drain_buffer(sampler.source.inner)  # measure steady-state PRNG cost
    sampler.source.reset_count()
    started = time.perf_counter()
    sampler.sample_many(samples)
    elapsed = time.perf_counter() - started
    share = prng_share_percent(lambda: prng(31),
                               sampler.source.bytes_read, elapsed)
    return samples / elapsed, sampler.batch_width, share


def run_sweep(samples: int = DEFAULT_SAMPLES,
              widths=DEFAULT_WIDTHS, precision: int | None = None,
              ) -> dict:
    precision = precision if precision is not None else full_or(32, 64)
    params = GaussianParams.from_sigma(SIGMA, precision)
    circuit = compile_sampler_circuit(params)
    engines = [name for name in available_engines()
               if not (name == "numpy" and not HAVE_NUMPY)]
    results = []
    for prng_name, prng in PRNGS.items():
        for engine in engines:
            for width in widths:
                batch_sps = _throughput_batch_loop(
                    circuit, engine, prng, width, samples)
                many_sps, resolved, prng_share = _throughput_sample_many(
                    circuit, engine, prng, width, samples)
                results.append({
                    "prng": prng_name,
                    "engine": engine,
                    "batch_width": resolved,
                    "auto_width": width == "auto",
                    "samples": samples,
                    "sample_batch_sps": round(batch_sps, 1),
                    "sample_many_sps": round(many_sps, 1),
                    "sample_many_speedup": round(many_sps / batch_sps,
                                                 3),
                    "prng_share_percent": round(prng_share, 1),
                })
    return {
        "benchmark": "backend_scaling",
        "sigma": SIGMA,
        "precision": precision,
        "word_ops_per_batch": circuit.gate_count()["total"],
        "auto_engine": AUTO_ENGINE,
        "python": platform.python_version(),
        "have_numpy": HAVE_NUMPY,
        "results": results,
    }


def render_report(payload: dict) -> str:
    rows = []
    for row in payload["results"]:
        width = (f"auto({row['batch_width']})" if row["auto_width"]
                 else row["batch_width"])
        rows.append([row["prng"], row["engine"], width,
                     f"{row['sample_batch_sps']:,.0f}",
                     f"{row['sample_many_sps']:,.0f}",
                     f"{row['sample_many_speedup']:.2f}x",
                     f"{row['prng_share_percent']:.0f}%"])
    return format_table(
        ["prng", "engine", "batch width w", "sample_batch loop (s/s)",
         "sample_many (s/s)", "bulk speedup", "prng share"],
        rows,
        title=f"Backend scaling, sigma = {payload['sigma']}, "
              f"n = {payload['precision']}, "
              f"{payload['results'][0]['samples']:,} samples "
              f"(auto engine: {payload['auto_engine']}; counter rows "
              f"isolate kernel scaling from PRNG cost)")


def write_json(payload: dict) -> None:
    REPORT_DIR.mkdir(exist_ok=True)
    path = REPORT_DIR / JSON_NAME
    path.write_text(json.dumps(payload, indent=2) + "\n",
                    encoding="utf-8")


def test_backend_scaling_report(benchmark):
    from _report import once

    payload = once(benchmark, run_sweep)
    write_json(payload)
    report("backend_scaling", render_report(payload))
    # Acceptance: with PRNG cost out of the way, the bulk path beats
    # the per-batch loop on every engine at the paper's width.
    at_64 = [row for row in payload["results"]
             if row["batch_width"] == 64 and row["prng"] == "counter"]
    assert at_64 and all(row["sample_many_speedup"] > 1.0
                         for row in at_64)


def _width_arg(text: str):
    return text if text == "auto" else int(text)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--samples", type=int, default=DEFAULT_SAMPLES)
    parser.add_argument("--widths", type=_width_arg, nargs="+",
                        default=list(DEFAULT_WIDTHS))
    parser.add_argument("--precision", type=int, default=None)
    parser.add_argument("--no-json", action="store_true",
                        help="skip writing " + JSON_NAME)
    args = parser.parse_args(argv)
    payload = run_sweep(samples=args.samples, widths=tuple(args.widths),
                        precision=args.precision)
    print(render_report(payload))
    if not args.no_json:
        write_json(payload)
        print(f"\nwrote {REPORT_DIR / JSON_NAME}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
