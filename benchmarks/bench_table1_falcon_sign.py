"""Table 1 — Falcon signing throughput across sampler backends.

Paper Table 1 (i7-6600U @ 2.6 GHz, ChaCha PRNG, n = 128, tau = 13):

    Level (N)      byte-scan CDT   CDT    linear CDT   this work
    Level 1 (256)      10327       8041      6080        7025
    Level 2 (512)       5220       4064      3027        3527
    Level 3 (1024)      2640       2014      1519        1754

This bench reproduces the experiment three ways:

* **modeled** — the op-count machine model: per-signature sampling
  cycles measured from instrumented counters, plus a per-level fixed
  cost calibrated once against the paper's byte-scan Level 1 cell and
  scaled as N log2 N.  The model's job is to reproduce the paper's
  *ordering and ratios*, which EXPERIMENTS.md tabulates.
* **measured scalar** — wall-clock of the one-by-one ``sk.sign`` loop,
  the pre-existing pure-Python signing path.
* **measured vectorized** — wall-clock of ``sk.sign_many`` on the
  NumPy numeric spine (batched FFT/ffSampling, pooled base sampler),
  plus the same batch API on the scalar spine for an apples-to-apples
  row.  Scalar and vectorized spines emit identical signature bytes
  for a fixed seed (recorded in the JSON, pinned by the test suite).

Results go to the text report and to
``benchmarks/reports/BENCH_table1_falcon_sign.json``.  Runs standalone
(``PYTHONPATH=src python benchmarks/bench_table1_falcon_sign.py
--quick``) or under pytest like the other benchmarks.
"""

from __future__ import annotations

import argparse
import json
import math
import platform
import sys
import time

import pytest

from repro.analysis import format_table
from repro.falcon import HAVE_NUMPY, SecretKey
from repro.rng import ChaChaSource

from _report import REPORT_DIR, once, report
from conftest import TABLE1_LEVELS

JSON_NAME = "BENCH_table1_falcon_sign.json"

MESSAGE = b"table 1 benchmark message"

PAPER_SIGNS_PER_SEC = {
    (256, "cdt-byte-scan"): 10327, (256, "cdt-binary"): 8041,
    (256, "cdt-linear"): 6080, (256, "bitsliced"): 7025,
    (512, "cdt-byte-scan"): 5220, (512, "cdt-binary"): 4064,
    (512, "cdt-linear"): 3027, (512, "bitsliced"): 3527,
    (1024, "cdt-byte-scan"): 2640, (1024, "cdt-binary"): 2014,
    (1024, "cdt-linear"): 1519, (1024, "bitsliced"): 1754,
}

PAPER_CPU_HZ = 2.6e9
BACKENDS = ("cdt-byte-scan", "cdt-binary", "cdt-linear", "bitsliced")

#: Pooled bitsliced configuration used by the batch-signing rows (the
#: serving setup: NumPy word engine when present, deep sample pool).
POOL_KWARGS = ({"engine": "numpy", "prefetch_batches": 64}
               if HAVE_NUMPY else {"prefetch_batches": 16})


def _sampling_cycles_per_sign(sk, backend: str) -> float:
    """Per-signature sampling cost (cycles incl. PRNG) from counters."""
    sk.use_base_sampler(backend, source=ChaChaSource(99))
    sk.sign(MESSAGE)  # warm-up: compiles kernels, fills batch buffers
    before = sk.base_sampler.counter.snapshot()
    attempts_before = sk.signing_attempts
    signs = 2
    for _ in range(signs):
        sk.sign(MESSAGE)
    attempts = sk.signing_attempts - attempts_before
    delta = sk.base_sampler.counter.delta(before)
    cycles = delta.modeled_cycles(prng="chacha20")
    return cycles / signs * (signs / max(attempts, signs))


def _fixed_cost(n: int, calibration: float) -> float:
    """Per-level non-sampling cost, scaled as N log2 N from Level 1."""
    return calibration * (n * math.log2(n)) / (256 * math.log2(256))


def _measured_rates(sk, signs: int, batch: int) -> dict:
    """Wall-clock signs/s of the scalar path and both batch spines."""
    rates: dict[str, float | None] = {}

    # The pre-existing scalar path: one-by-one sign(), default config.
    sk.use_base_sampler("bitsliced", source=ChaChaSource(5))
    sk.sign(MESSAGE)  # warm-up
    started = time.perf_counter()
    for i in range(signs):
        sk.sign(b"scalar-%d" % i)
    rates["sign_scalar"] = signs / (time.perf_counter() - started)

    # Batch rows: pooled base sampler, both numeric spines.
    messages = [b"batch-%d" % i for i in range(signs)]
    sk.use_base_sampler("bitsliced", source=ChaChaSource(6),
                        **POOL_KWARGS)
    spines = ["scalar"] + (["numpy"] if HAVE_NUMPY else [])
    for spine in spines:
        sk.sign_many(messages[:2], spine=spine)  # warm caches
        started = time.perf_counter()
        signatures = []
        for start in range(0, signs, batch):
            signatures.extend(
                sk.sign_many(messages[start:start + batch], spine=spine))
        rates[f"sign_many_{spine}"] = \
            signs / (time.perf_counter() - started)
    rates.setdefault("sign_many_numpy", None)

    pk = sk.public_key
    started = time.perf_counter()
    verdicts = pk.verify_many(messages, signatures)
    rates["verify_many"] = signs / (time.perf_counter() - started)
    assert all(verdicts)
    return rates


def _spine_identity_check(n: int, seed: int = 77) -> bool:
    """Fresh keys, fixed seed: do both spines emit identical bytes?"""
    messages = [b"identity-%d" % i for i in range(3)]
    scalar = SecretKey.generate(n=n, seed=seed).sign_many(
        messages, spine="scalar")
    vector = SecretKey.generate(n=n, seed=seed).sign_many(
        messages, spine="numpy")
    return [(s.salt, s.compressed) for s in scalar] \
        == [(s.salt, s.compressed) for s in vector]


def run_sweep(levels: dict[str, int] | None = None,
              signs: int = 16, batch: int = 32,
              keys: dict[int, SecretKey] | None = None,
              quick: bool = False) -> dict:
    levels = dict(levels if levels is not None else TABLE1_LEVELS)
    if quick:
        levels = {"smoke (N=64)": 64}
        signs = min(signs, 6)
        batch = min(batch, 6)
    keys = dict(keys) if keys else {}
    for n in levels.values():
        if n not in keys:
            keys[n] = SecretKey.generate(n=n, seed=1)

    # Calibrate the model's fixed cost so it hits the paper's byte-scan
    # Level 1 cell exactly (one degree of freedom); needs the 256 key.
    calibration = None
    if 256 in keys:
        byte_scan_sampling = _sampling_cycles_per_sign(
            keys[256], "cdt-byte-scan")
        paper_cycles_l1 = PAPER_CPU_HZ / PAPER_SIGNS_PER_SEC[
            (256, "cdt-byte-scan")]
        calibration = paper_cycles_l1 - byte_scan_sampling

    results = {}
    for level_name, n in levels.items():
        sk = keys[n]
        modeled = {}
        if calibration is not None and (n, BACKENDS[0]) \
                in PAPER_SIGNS_PER_SEC:
            fixed = _fixed_cost(n, calibration)
            for backend in BACKENDS:
                sampling = _sampling_cycles_per_sign(sk, backend)
                modeled[backend] = {
                    "paper_signs_per_sec":
                        PAPER_SIGNS_PER_SEC[(n, backend)],
                    "modeled_signs_per_sec":
                        round(PAPER_CPU_HZ / (fixed + sampling)),
                }
        measured = _measured_rates(sk, signs, batch)
        speedup = None
        if measured["sign_many_numpy"]:
            speedup = round(measured["sign_many_numpy"]
                            / measured["sign_scalar"], 2)
        results[level_name] = {
            "n": n,
            "modeled": modeled,
            "measured_signs_per_sec": {
                key: (round(value, 1) if value else None)
                for key, value in measured.items()},
            "vectorized_speedup_vs_scalar_path": speedup,
        }

    identity = None
    if HAVE_NUMPY and not quick:
        identity_n = 512 if any(n == 512 for n in levels.values()) \
            else max(levels.values())
        identity = {
            "n": identity_n,
            "identical_signature_bytes":
                _spine_identity_check(identity_n),
        }

    return {
        "benchmark": "table1_falcon_sign",
        "python": platform.python_version(),
        "have_numpy": HAVE_NUMPY,
        "signs_per_row": signs,
        "batch": batch,
        "pool_kwargs": {key: str(value)
                        for key, value in POOL_KWARGS.items()},
        "levels": results,
        "spine_identity": identity,
    }


def render_report(payload: dict) -> str:
    rows = []
    for level_name, level in payload["levels"].items():
        measured = level["measured_signs_per_sec"]
        for backend, cells in level["modeled"].items():
            rows.append([level_name, backend,
                         cells["paper_signs_per_sec"],
                         cells["modeled_signs_per_sec"], "", ""])
        rows.append([level_name, "measured: sign (scalar loop)", "", "",
                     f"{measured['sign_scalar']:,.1f}", ""])
        rows.append([level_name, "measured: sign_many (scalar spine)",
                     "", "", f"{measured['sign_many_scalar']:,.1f}", ""])
        if measured["sign_many_numpy"]:
            rows.append([
                level_name, "measured: sign_many (numpy spine)", "", "",
                f"{measured['sign_many_numpy']:,.1f}",
                f"{level['vectorized_speedup_vs_scalar_path']:.2f}x"])
    table = format_table(
        ["level", "backend / path", "paper signs/s", "modeled signs/s",
         "python signs/s", "speedup"],
        rows,
        title="Table 1: Falcon signing throughput (model calibrated on "
              "byte-scan Level 1; measured rows are this Python "
              "implementation, scalar path vs vectorized batch spine)")

    lines = [table, ""]
    identity = payload.get("spine_identity")
    if identity:
        lines.append(
            f"spine identity at N={identity['n']}: scalar and numpy "
            f"sign_many bytes identical = "
            f"{identity['identical_signature_bytes']}")
    for level_name, level in payload["levels"].items():
        by = {backend: cells["modeled_signs_per_sec"]
              for backend, cells in level["modeled"].items()}
        if len(by) < len(BACKENDS):
            continue
        slow_vs_byte = 100 * (by["cdt-byte-scan"] - by["bitsliced"]) \
            / by["cdt-byte-scan"]
        fast_vs_linear = 100 * (by["bitsliced"] - by["cdt-linear"]) \
            / by["cdt-linear"]
        lines.append(
            f"{level_name}: constant-time sampler modeled "
            f"{slow_vs_byte:.0f}% slower than byte-scan "
            f"(paper: <=32%), {fast_vs_linear:.0f}% faster than "
            f"linear-scan CDT (paper: >=15%)")
    return "\n".join(lines)


def write_json(payload: dict) -> None:
    REPORT_DIR.mkdir(exist_ok=True)
    path = REPORT_DIR / JSON_NAME
    path.write_text(json.dumps(payload, indent=2) + "\n",
                    encoding="utf-8")


# -- pytest entry points --------------------------------------------------

@pytest.mark.parametrize("level_name", list(TABLE1_LEVELS))
@pytest.mark.parametrize("backend", BACKENDS)
def test_sign_speed(benchmark, falcon_keys, level_name, backend):
    """Wall-clock signing time per (level, backend) cell."""
    n = TABLE1_LEVELS[level_name]
    sk = falcon_keys[n]
    sk.use_base_sampler(backend, source=ChaChaSource(5))
    sk.sign(MESSAGE)  # warm-up
    rounds = 3 if n < 1024 else 2
    benchmark.pedantic(sk.sign, args=(MESSAGE,), rounds=rounds,
                       iterations=1)


def test_table1_report(benchmark, falcon_keys):
    """Assemble the full Table 1 reproduction (paper vs model vs
    measured, scalar path vs vectorized spine).

    Deliberately does NOT write the JSON: the committed
    ``BENCH_table1_falcon_sign.json`` comes from a full standalone run
    (``python bench_table1_falcon_sign.py --signs 128 --batch 128``)
    and must not be clobbered by this test's small, noisy sweep.
    """
    payload = once(benchmark, lambda: run_sweep(keys=falcon_keys,
                                                signs=8))
    report("table1_falcon_sign", render_report(payload))
    if HAVE_NUMPY:
        for level in payload["levels"].values():
            measured = level["measured_signs_per_sec"]
            # The batch spine must never be slower than the loop it
            # amortizes (the 5x acceptance ratio is checked on the
            # committed full-run JSON, not under pytest's timing noise).
            assert measured["sign_many_numpy"] > measured["sign_scalar"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--signs", type=int, default=16,
                        help="signatures per measured row")
    parser.add_argument("--batch", type=int, default=32,
                        help="messages per sign_many call")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: N=64 only, few signatures")
    parser.add_argument("--no-json", action="store_true",
                        help="skip writing " + JSON_NAME)
    args = parser.parse_args(argv)
    payload = run_sweep(signs=args.signs, batch=args.batch,
                        quick=args.quick)
    print(render_report(payload))
    if not args.no_json:
        write_json(payload)
        print(f"\nwrote {REPORT_DIR / JSON_NAME}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
