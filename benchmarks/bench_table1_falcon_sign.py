"""Table 1 — Falcon signing throughput across sampler backends.

Paper Table 1 (i7-6600U @ 2.6 GHz, ChaCha PRNG, n = 128, tau = 13):

    Level (N)      byte-scan CDT   CDT    linear CDT   this work
    Level 1 (256)      10327       8041      6080        7025
    Level 2 (512)       5220       4064      3027        3527
    Level 3 (1024)      2640       2014      1519        1754

This bench reproduces the experiment two ways:

* **measured** — wall-clock pytest-benchmark timings of ``sk.sign`` in
  this Python implementation (interpreter-bound: the FFT dwarfs the
  sampler, so backend spread is muted);
* **modeled** — the op-count machine model: per-signature sampling
  cycles measured from instrumented counters, plus a per-level fixed
  cost calibrated once against the paper's byte-scan Level 1 cell and
  scaled as N log2 N.  The model's job is to reproduce the paper's
  *ordering and ratios*, which EXPERIMENTS.md tabulates.
"""

from __future__ import annotations

import time

import pytest

from repro.analysis import format_table
from repro.rng import ChaChaSource

from _report import once, report
from conftest import TABLE1_LEVELS

MESSAGE = b"table 1 benchmark message"

PAPER_SIGNS_PER_SEC = {
    (256, "cdt-byte-scan"): 10327, (256, "cdt-binary"): 8041,
    (256, "cdt-linear"): 6080, (256, "bitsliced"): 7025,
    (512, "cdt-byte-scan"): 5220, (512, "cdt-binary"): 4064,
    (512, "cdt-linear"): 3027, (512, "bitsliced"): 3527,
    (1024, "cdt-byte-scan"): 2640, (1024, "cdt-binary"): 2014,
    (1024, "cdt-linear"): 1519, (1024, "bitsliced"): 1754,
}

PAPER_CPU_HZ = 2.6e9
BACKENDS = ("cdt-byte-scan", "cdt-binary", "cdt-linear", "bitsliced")


def _sampling_cycles_per_sign(sk, backend: str) -> float:
    """Per-signature sampling cost (cycles incl. PRNG) from counters."""
    sk.use_base_sampler(backend, source=ChaChaSource(99))
    sk.sign(MESSAGE)  # warm-up: compiles kernels, fills batch buffers
    before = sk.base_sampler.counter.snapshot()
    attempts_before = sk.signing_attempts
    signs = 2
    for _ in range(signs):
        sk.sign(MESSAGE)
    attempts = sk.signing_attempts - attempts_before
    delta = sk.base_sampler.counter.delta(before)
    cycles = delta.modeled_cycles(prng="chacha20")
    return cycles / signs * (signs / max(attempts, signs))


def _fixed_cost(n: int, calibration: float) -> float:
    """Per-level non-sampling cost, scaled as N log2 N from Level 1."""
    import math
    return calibration * (n * math.log2(n)) / (256 * math.log2(256))


@pytest.mark.parametrize("level_name", list(TABLE1_LEVELS))
@pytest.mark.parametrize("backend", BACKENDS)
def test_sign_speed(benchmark, falcon_keys, level_name, backend):
    """Wall-clock signing time per (level, backend) cell."""
    n = TABLE1_LEVELS[level_name]
    sk = falcon_keys[n]
    sk.use_base_sampler(backend, source=ChaChaSource(5))
    sk.sign(MESSAGE)  # warm-up
    rounds = 3 if n < 1024 else 2
    benchmark.pedantic(sk.sign, args=(MESSAGE,), rounds=rounds,
                       iterations=1)


def test_table1_report(benchmark, falcon_keys):
    """Assemble the full Table 1 reproduction (paper vs model vs
    measured)."""

    def build() -> str:
        # Calibrate the fixed cost so the model hits the paper's
        # byte-scan Level 1 cell exactly (one degree of freedom).
        sk_l1 = falcon_keys[256]
        byte_scan_sampling = _sampling_cycles_per_sign(
            sk_l1, "cdt-byte-scan")
        paper_cycles_l1 = PAPER_CPU_HZ / PAPER_SIGNS_PER_SEC[
            (256, "cdt-byte-scan")]
        calibration = paper_cycles_l1 - byte_scan_sampling

        rows = []
        for level_name, n in TABLE1_LEVELS.items():
            sk = falcon_keys[n]
            fixed = _fixed_cost(n, calibration)
            for backend in BACKENDS:
                sampling = _sampling_cycles_per_sign(sk, backend)
                modeled = PAPER_CPU_HZ / (fixed + sampling)
                started = time.perf_counter()
                sk.sign(MESSAGE)
                measured = 1.0 / (time.perf_counter() - started)
                paper = PAPER_SIGNS_PER_SEC[(n, backend)]
                rows.append([f"{level_name} (N={n})", backend, paper,
                             round(modeled), round(measured, 1)])
        table = format_table(
            ["level", "backend", "paper signs/s", "modeled signs/s",
             "python signs/s"],
            rows,
            title="Table 1: Falcon signing throughput "
                  "(model calibrated on byte-scan Level 1; "
                  "python wall-clock is interpreter-bound)")

        # Headline claims from the paper's Sec. 6.
        lines = [table, ""]
        for level_name, n in TABLE1_LEVELS.items():
            by = {b: PAPER_CPU_HZ / (_fixed_cost(n, calibration)
                                     + _sampling_cycles_per_sign(
                                         falcon_keys[n], b))
                  for b in BACKENDS}
            slow_vs_byte = 100 * (by["cdt-byte-scan"] - by["bitsliced"]) \
                / by["cdt-byte-scan"]
            fast_vs_linear = 100 * (by["bitsliced"] - by["cdt-linear"]) \
                / by["cdt-linear"]
            lines.append(
                f"{level_name}: constant-time sampler modeled "
                f"{slow_vs_byte:.0f}% slower than byte-scan "
                f"(paper: <=32%), {fast_vs_linear:.0f}% faster than "
                f"linear-scan CDT (paper: >=15%)")
        return "\n".join(lines)

    text = once(benchmark, build)
    report("table1_falcon_sign", text)
