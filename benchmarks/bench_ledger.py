"""Signed-ledger workload: cross-key batched verification at scale.

The serving plane's ``verify_many`` batches well — but only under a
*single* public key, so a ledger verifying records from many distinct
signers degenerates to one tiny NTT pass per key.  The cross-key
engine (:func:`repro.falcon.batchverify.verify_batch`) stacks every
lane's cached ``h_ntt`` row into one ``(batch, n)`` matrix and runs
the whole mixed-key batch through a single vectorized
``ntt → pointwise-mul → intt`` pass.  Rows per configuration:

* **per_key_verify_many** — the pre-engine baseline: records grouped
  by signer, one ``PublicKey.verify_many`` call per distinct key
  (what a fleet without the cross-key engine can do);
* **cross_key_verify_batch** — the tentpole: the identical record
  stream through one mixed-key ``verify_batch`` call;
* **cross_key_rlc_precheck** — the aggregate-then-verify fast path:
  lanes expanded with their recovered ``s1`` vectors, audited by the
  random-linear-combination congruence
  ``Σ ρᵢ(s1ᵢ + s2ᵢ·hᵢ − cᵢ) ≡ 0 (mod q)`` (per round: one batched
  forward NTT plus two single NTTs, no inverse transforms);
* **ledger_commit** — the full pipeline: bounded mempool → cross-key
  batch verification → hash-chained committed blocks, with per-commit
  p50/p99 latency;
* **chain_audit_full / chain_audit_aggregate** — re-verifying the
  committed chain record-by-record vs through the RLC aggregate
  (seeded by each block's own header hash).

The acceptance gate (recorded in the JSON): at 64 distinct keys the
cross-key batch must verify records at >= 2x the per-key
``verify_many`` loop.  The gate is judged on the committed full run
(numpy spine, 64 keys); quick/smoke runs and pure-Python runs record
it as ``null`` with a note.  Results go to the text report and
``benchmarks/reports/BENCH_ledger.json``.  Runs standalone
(``PYTHONPATH=src python benchmarks/bench_ledger.py --quick``) or
under pytest like the other benchmarks.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time

import pytest

from repro.analysis import format_table
from repro.falcon import HAVE_NUMPY, Ledger
from repro.falcon.batchverify import verify_batch, verify_batch_report
from repro.falcon.scheme import SecretKey

from _report import REPORT_DIR, once, report

JSON_NAME = "BENCH_ledger.json"

#: The gate's key-diversity point: cross-key batching must beat the
#: per-key loop by 2x when the records span this many distinct keys.
GATE_KEYS = 64
GATE_SPEEDUP = 2.0


def _signers(n: int, keys: int, seed: int = 0) -> list[SecretKey]:
    return [SecretKey.generate(n, seed=seed + index)
            for index in range(keys)]


def _lanes(signers: list[SecretKey], records: int) -> list[tuple]:
    """``records`` signed records round-robin across the signers —
    adjacent lanes always carry *different* keys, the adversarial
    ordering for any per-key grouping scheme."""
    lanes = []
    for i in range(records):
        signer = signers[i % len(signers)]
        message = b"bench-ledger|%d" % i
        lanes.append((signer.public_key, message, signer.sign(message)))
    return lanes


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile (values pre-sorted ascending)."""
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1,
               max(0, int(round(q * (len(sorted_values) - 1)))))
    return sorted_values[rank]


def _latency_summary(latencies: list[float]) -> dict:
    ordered = sorted(latencies)
    return {"p50_ms": round(1000 * _percentile(ordered, 0.50), 3),
            "p99_ms": round(1000 * _percentile(ordered, 0.99), 3)}


def _per_key_rate(lanes: list[tuple], keys: int) -> float:
    """The baseline: group lanes by key, one ``verify_many`` batch per
    distinct key (the best the single-key API can do)."""
    by_key: dict[int, list[tuple]] = {}
    for index, lane in enumerate(lanes):
        by_key.setdefault(index % keys, []).append(lane)
    started = time.perf_counter()
    for group in by_key.values():
        public_key = group[0][0]
        verdicts = public_key.verify_many([m for _, m, _ in group],
                                          [s for _, _, s in group])
        assert all(verdicts)
    return len(lanes) / (time.perf_counter() - started)


def _cross_key_rate(lanes: list[tuple], spine: str) -> float:
    started = time.perf_counter()
    verdicts = verify_batch(lanes, spine=spine)
    elapsed = time.perf_counter() - started
    assert all(verdicts)
    return len(lanes) / elapsed


def _rlc_rate(lanes: list[tuple], spine: str) -> tuple[float, bool]:
    """Aggregate-then-verify: expand the lanes once (recover s1), then
    time the RLC congruence audit over the expanded batch.  Returns
    (records/s, fast-path taken)."""
    expansion = verify_batch_report(lanes, spine=spine, keep_s1=True)
    expanded = [(pk, message, signature, s1)
                for (pk, message, signature), s1
                in zip(lanes, expansion.s1_rows)]
    started = time.perf_counter()
    audit = verify_batch_report(expanded, spine=spine, precheck="rlc",
                                precheck_seed=b"bench-ledger")
    elapsed = time.perf_counter() - started
    assert all(audit.verdicts)
    return len(lanes) / elapsed, audit.precheck_passed


def _ledger_pipeline(lanes: list[tuple], block_size: int,
                     spine: str) -> tuple[Ledger, float, list[float]]:
    """Submit every record through the mempool and commit in blocks;
    returns the in-memory ledger (for the audit rows), the end-to-end
    records/s, and the per-commit latencies."""
    ledger = Ledger(expand=True, spine=spine,
                    max_block_records=block_size,
                    capacity=max(len(lanes), block_size))
    latencies: list[float] = []
    started = time.perf_counter()
    for public_key, message, signature in lanes:
        ledger.submit_signed(public_key, message, signature)
        if len(ledger.mempool) >= block_size:
            commit_start = time.perf_counter()
            result = ledger.commit()
            latencies.append(time.perf_counter() - commit_start)
            assert not result.rejected
    while len(ledger.mempool):
        commit_start = time.perf_counter()
        result = ledger.commit()
        latencies.append(time.perf_counter() - commit_start)
        assert not result.rejected
    rate = len(lanes) / (time.perf_counter() - started)
    return ledger, rate, latencies


def _audit_rate(ledger: Ledger, mode: str) -> tuple[float, int]:
    started = time.perf_counter()
    audit = ledger.verify_chain(mode)
    elapsed = time.perf_counter() - started
    assert audit.ok, audit.failures
    return (audit.records / elapsed if elapsed else 0.0,
            audit.aggregate_fastpath)


def run_sweep(n: int = 256, keys: int = GATE_KEYS, records: int = 128,
              block_size: int = 64, quick: bool = False,
              spine: str = "auto") -> dict:
    if quick:
        n = min(n, 64)
        keys = min(keys, 8)
        records = min(records, 32)
        block_size = min(block_size, 16)
    signers = _signers(n, keys)
    lanes = _lanes(signers, records)

    rates = {"per_key_verify_many": _per_key_rate(lanes, keys),
             "cross_key_verify_batch": _cross_key_rate(lanes, spine)}
    rlc_rate, rlc_fastpath = _rlc_rate(lanes, spine)
    rates["cross_key_rlc_precheck"] = rlc_rate
    ledger, ledger_rate, commit_latencies = _ledger_pipeline(
        lanes, block_size, spine)
    rates["ledger_commit"] = ledger_rate
    full_rate, _ = _audit_rate(ledger, "full")
    aggregate_rate, fastpath_blocks = _audit_rate(ledger, "aggregate")
    rates["chain_audit_full"] = full_rate
    rates["chain_audit_aggregate"] = aggregate_rate

    speedup = (rates["cross_key_verify_batch"]
               / rates["per_key_verify_many"])
    # The gate is judged only where it means something: the full-scale
    # sweep on the numpy spine at the 64-distinct-key point.  A quick
    # smoke or a pure-Python leg records null with the reason — both
    # paths verify the same records with bit-identical verdicts; the
    # 2x claim is about the vectorized mixed-key NTT pass.
    gate_applicable = (not quick and HAVE_NUMPY and keys >= GATE_KEYS)
    return {
        "benchmark": "ledger",
        "quick": quick,
        "python": platform.python_version(),
        "have_numpy": HAVE_NUMPY,
        "spine": spine,
        "n": n,
        "keys": keys,
        "records": records,
        "block_size": block_size,
        "records_per_sec": {label: round(rate, 2)
                            for label, rate in rates.items()},
        "commit_latency": _latency_summary(commit_latencies),
        "commits": len(commit_latencies),
        "chain_height": ledger.height,
        "aggregate_fastpath_blocks": fastpath_blocks,
        "rlc_precheck_fastpath": rlc_fastpath,
        "cross_key_speedup_vs_per_key": round(speedup, 2),
        "cross_key_2x_at_64_keys":
            bool(speedup >= GATE_SPEEDUP) if gate_applicable else None,
        "gate_note": None if gate_applicable else (
            "smoke run; gate judged on the full 64-key numpy sweep"
            if quick or keys < GATE_KEYS else
            "pure-Python leg; gate judged on the numpy spine"),
    }


def render_report(payload: dict) -> str:
    latency = payload["commit_latency"]
    rows = [[label, f"{rate:,.1f}"]
            for label, rate in payload["records_per_sec"].items()]
    table = format_table(
        ["path", "records/s"], rows,
        title=f"Falcon-{payload['n']} signed-ledger verification "
              f"({payload['records']} records, {payload['keys']} "
              f"distinct keys, blocks of {payload['block_size']})")
    lines = [table, "",
             f"commit latency over {payload['commits']} block(s): "
             f"p50 {latency['p50_ms']:,.2f} ms / "
             f"p99 {latency['p99_ms']:,.2f} ms",
             f"aggregate audit fast-path blocks: "
             f"{payload['aggregate_fastpath_blocks']}"
             f"/{payload['chain_height']}"]
    speedup = payload["cross_key_speedup_vs_per_key"]
    line = (f"cross-key batch = {speedup:.2f}x the per-key "
            f"verify_many loop")
    if payload["cross_key_2x_at_64_keys"] is None:
        line += f" ({payload['gate_note']})"
    else:
        line += (" (gate >= 2x at 64 keys: "
                 + ("PASS" if payload["cross_key_2x_at_64_keys"]
                    else "FAIL") + ")")
    lines.append(line)
    return "\n".join(lines)


def write_json(payload: dict) -> None:
    REPORT_DIR.mkdir(exist_ok=True)
    path = REPORT_DIR / JSON_NAME
    path.write_text(json.dumps(payload, indent=2) + "\n",
                    encoding="utf-8")


# -- pytest entry points --------------------------------------------------

def test_ledger_report(benchmark):
    """Assemble the signed-ledger report (small sweep).

    Deliberately does NOT write the JSON: the committed
    ``BENCH_ledger.json`` comes from a full standalone run at the
    64-key gate point and must not be clobbered by this smoke.
    """
    payload = once(benchmark, lambda: run_sweep(quick=True))
    report("ledger", render_report(payload))
    assert payload["records_per_sec"]["cross_key_verify_batch"] > 0
    assert payload["chain_height"] >= 1


@pytest.mark.skipif(not HAVE_NUMPY,
                    reason="acceptance gate measured on the numpy spine")
def test_cross_key_beats_per_key_loop(benchmark):
    """The acceptance gate at benchmark scale: records spanning 64
    distinct keys verify >= 2x faster through the cross-key engine
    than through the per-key ``verify_many`` loop."""
    payload = once(benchmark,
                   lambda: run_sweep(n=256, keys=GATE_KEYS,
                                     records=128, quick=False))
    assert payload["cross_key_2x_at_64_keys"], \
        payload["records_per_sec"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=256)
    parser.add_argument("--keys", type=int, default=GATE_KEYS,
                        help="distinct signing keys across the records")
    parser.add_argument("--records", type=int, default=128)
    parser.add_argument("--block-size", dest="block_size", type=int,
                        default=64)
    parser.add_argument("--spine", default="auto",
                        choices=("auto", "numpy", "scalar"))
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: n=64, 8 keys, 32 records")
    parser.add_argument("--no-json", action="store_true",
                        help="skip writing " + JSON_NAME)
    args = parser.parse_args(argv)
    payload = run_sweep(n=args.n, keys=args.keys, records=args.records,
                        block_size=args.block_size, quick=args.quick,
                        spine=args.spine)
    print(render_report(payload))
    if not args.no_json:
        write_json(payload)
        print(f"\nwrote {REPORT_DIR / JSON_NAME}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
