"""Ledger tests: mempool bounds, batch-verified commits, hash-chained
persistence, crash recovery, and the full/aggregate chain audits."""

import json

import pytest

from repro.falcon import (
    Ledger,
    LedgerError,
    Mempool,
    MempoolFull,
    RecordError,
    SecretKey,
    Signature,
    SignedRecord,
)
from repro.falcon.ledger import GENESIS_HASH

# Session-scope keys: keygen dominates these tests otherwise.
_KEYS: dict[int, SecretKey] = {}


def _secret_key(seed: int, n: int = 8) -> SecretKey:
    if (n, seed) not in _KEYS:
        _KEYS[(n, seed)] = SecretKey.generate(n=n, seed=seed)
    return _KEYS[(n, seed)]


def _record(seed: int, index: int) -> tuple:
    sk = _secret_key(seed)
    message = b"ledger-%d-%d" % (seed, index)
    return sk.public_key, message, sk.sign(message)


def _fill(ledger: Ledger, count: int, keys: int = 3,
          start: int = 0) -> list[SignedRecord]:
    return [ledger.submit_signed(*_record(1 + (start + i) % keys,
                                          start + i))
            for i in range(count)]


# -- mempool ---------------------------------------------------------------

def test_mempool_dedups_and_bounds():
    pool = Mempool(capacity=2)
    pk, message, signature = _record(1, 0)
    record = SignedRecord.make(pk, message, signature)
    assert pool.add(record)
    assert not pool.add(record)          # duplicate
    assert pool.dropped_duplicates == 1
    assert len(pool) == 1
    other = SignedRecord.make(*_record(1, 1))
    assert pool.add(other)
    with pytest.raises(MempoolFull):
        pool.add(SignedRecord.make(*_record(1, 2)))
    drained = pool.drain(1)
    assert drained == [record] and len(pool) == 1


def test_submit_rejects_already_committed():
    ledger = Ledger()
    record = _fill(ledger, 1)[0]
    ledger.commit()
    assert not ledger.submit(record)
    assert ledger.mempool.dropped_duplicates == 1
    assert len(ledger.mempool) == 0


# -- commits ---------------------------------------------------------------

def test_commit_accepts_honest_batch():
    ledger = Ledger()
    records = _fill(ledger, 6)
    result = ledger.commit()
    assert result.block is not None
    assert result.accepted == [r.record_id for r in records]
    assert result.rejected == []
    assert ledger.height == 1
    assert ledger.records_committed == 6
    assert ledger.tip_hash == result.block.header.hash
    assert ledger.blocks[0].header.prev_hash == GENESIS_HASH


def test_rejected_lanes_never_block_the_batch():
    ledger = Ledger()
    good = _fill(ledger, 4)
    pk, message, signature = _record(2, 99)
    forged = SignedRecord.make(pk, message + b"forged", signature)
    ledger.submit(forged)
    truncated = SignedRecord.make(
        pk, message, Signature(salt=signature.salt,
                               compressed=signature.compressed[:3]))
    ledger.submit(truncated)
    result = ledger.commit()
    assert sorted(result.accepted) == sorted(r.record_id for r in good)
    reasons = dict(result.rejected)
    assert reasons[forged.record_id].startswith("norm-bound")
    # Wire decoding re-runs decompress, so a truncated blob is caught
    # at decode time rather than inside the engine.
    assert reasons[truncated.record_id].startswith("decode")
    assert ledger.rejected_total["norm-bound"] == 1
    assert ledger.rejected_total["decode"] == 1
    # The rejected records are not committed and may not re-enter.
    assert forged.record_id not in ledger._committed


def test_commit_without_valid_records_writes_no_block():
    ledger = Ledger()
    pk, message, signature = _record(1, 0)
    ledger.submit(SignedRecord.make(pk, message + b"x", signature))
    result = ledger.commit()
    assert result.block is None and ledger.height == 0
    assert len(result.rejected) == 1


def test_commit_respects_block_size_and_chains_headers():
    ledger = Ledger(max_block_records=4)
    _fill(ledger, 10)
    while len(ledger.mempool):
        ledger.commit(timestamp_us=1234)
    assert ledger.height == 3
    assert [b.header.count for b in ledger.blocks] == [4, 4, 2]
    for index, block in enumerate(ledger.blocks):
        assert block.header.index == index
        prev = (GENESIS_HASH if index == 0
                else ledger.blocks[index - 1].header.hash)
        assert block.header.prev_hash == prev
        assert block.header.timestamp_us == 1234


def test_decode_failure_is_rejected_not_fatal():
    ledger = Ledger()
    pk, message, signature = _record(1, 0)
    record = SignedRecord.make(pk, message, signature)
    broken = SignedRecord(public_key_bytes=b"\x00\x01",
                          message=message,
                          signature_bytes=record.signature_bytes)
    with pytest.raises(RecordError):
        broken.decode()
    ledger.submit(broken)
    _fill(ledger, 2)
    result = ledger.commit()
    assert len(result.accepted) == 2
    assert result.rejected[0][1].startswith("decode")


# -- audits ----------------------------------------------------------------

def test_full_and_aggregate_audits_agree():
    ledger = Ledger(max_block_records=4)
    _fill(ledger, 8)
    while len(ledger.mempool):
        ledger.commit()
    full = ledger.verify_chain("full")
    aggregate = ledger.verify_chain("aggregate", rounds=2)
    assert full.ok and aggregate.ok
    assert full.records == aggregate.records == 8
    assert full.aggregate_fastpath == 0
    assert aggregate.aggregate_fastpath == ledger.height


def test_aggregate_audit_falls_back_without_expansion():
    ledger = Ledger(expand=False)
    _fill(ledger, 4)
    ledger.commit()
    assert ledger.blocks[0].s1_rows is None
    audit = ledger.verify_chain("aggregate")
    assert audit.ok and audit.aggregate_fastpath == 0


def test_audit_mode_validation():
    with pytest.raises(ValueError, match="unknown audit mode"):
        Ledger().verify_chain("quantum")


def test_audit_detects_in_memory_tamper():
    ledger = Ledger()
    _fill(ledger, 3)
    ledger.commit()
    block = ledger.blocks[0]
    tampered = SignedRecord(
        public_key_bytes=block.records[0].public_key_bytes,
        message=block.records[0].message + b"!",
        signature_bytes=block.records[0].signature_bytes)
    object.__setattr__(block, "records",
                       (tampered,) + block.records[1:])
    audit = ledger.verify_chain("full")
    assert not audit.ok
    assert any("records_root" in reason
               for _, _, reason in audit.failures)


# -- persistence and crash recovery ----------------------------------------

def test_persistence_round_trip(tmp_path):
    ledger = Ledger(tmp_path, max_block_records=3)
    _fill(ledger, 7)
    while len(ledger.mempool):
        ledger.commit(timestamp_us=77)
    reopened = Ledger(tmp_path)
    assert reopened.height == ledger.height == 3
    assert reopened.tip_hash == ledger.tip_hash
    assert reopened.records_committed == 7
    assert reopened.recovered_bytes == 0
    assert reopened.verify_chain("full").ok
    assert reopened.verify_chain("aggregate").ok
    # The reopened chain deduplicates against committed history.
    assert not reopened.submit(ledger.blocks[0].records[0])


def test_torn_tail_recovered_on_reload(tmp_path):
    ledger = Ledger(tmp_path, max_block_records=2)
    _fill(ledger, 4)
    while len(ledger.mempool):
        ledger.commit()
    path = ledger.path
    intact = path.read_bytes()
    torn = intact + b'{"header": {"index": 2, "prev"'
    path.write_bytes(torn)
    recovered = Ledger(tmp_path)
    assert recovered.height == 2
    assert recovered.recovered_bytes == len(torn) - len(intact)
    assert path.read_bytes() == intact  # tail truncated away
    assert recovered.verify_chain("full").ok
    # Recovery is durable: a third open sees a clean file.
    assert Ledger(tmp_path).recovered_bytes == 0


def test_mid_file_corruption_refuses_to_load(tmp_path):
    ledger = Ledger(tmp_path, max_block_records=2)
    _fill(ledger, 4)
    while len(ledger.mempool):
        ledger.commit()
    lines = ledger.path.read_bytes().splitlines(keepends=True)
    assert len(lines) == 2
    ledger.path.write_bytes(b"garbage not json\n" + lines[1])
    with pytest.raises(LedgerError, match="corrupt block"):
        Ledger(tmp_path)


def test_on_disk_record_tamper_refuses_to_load(tmp_path):
    ledger = Ledger(tmp_path)
    _fill(ledger, 3)
    ledger.commit()
    payload = json.loads(ledger.path.read_text())
    payload["records"][0]["msg"] = (b"evil").hex()
    ledger.path.write_text(json.dumps(payload) + "\n")
    with pytest.raises(LedgerError):
        Ledger(tmp_path)


def test_crash_recovery_round_trip_continues_the_chain(tmp_path):
    """The satellite scenario end to end: commit, crash mid-append,
    reopen, keep committing — the chain stays linked and auditable."""
    ledger = Ledger(tmp_path, max_block_records=3)
    _fill(ledger, 3)
    ledger.commit()
    with open(ledger.path, "ab") as handle:
        handle.write(b'{"torn')
    recovered = Ledger(tmp_path, max_block_records=3)
    assert recovered.height == 1 and recovered.recovered_bytes > 0
    _fill(recovered, 3, start=100)
    recovered.commit()
    assert recovered.height == 2
    assert recovered.blocks[1].header.prev_hash == \
        recovered.blocks[0].header.hash
    final = Ledger(tmp_path)
    assert final.height == 2
    assert final.verify_chain("aggregate").ok


# -- stats -----------------------------------------------------------------

def test_stats_snapshot():
    ledger = Ledger()
    _fill(ledger, 2)
    pk, message, signature = _record(1, 50)
    ledger.submit(SignedRecord.make(pk, message + b"x", signature))
    ledger.commit()
    stats = ledger.stats()
    assert stats["height"] == 1
    assert stats["records_committed"] == 2
    assert stats["mempool_pending"] == 0
    assert stats["rejected_total"] == {"norm-bound": 1}
    assert stats["path"] is None
    assert stats["tip_hash"] == ledger.tip_hash
