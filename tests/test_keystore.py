"""Tests for the generate-ahead key store (pools, disk, workers)."""

import pytest

from repro.falcon import (
    KeyStore,
    SerializeError,
    derive_key_seed,
    load_secret_key,
    save_secret_key,
)
from repro.falcon.keystore import generate_encoded_key


def test_derive_key_seed_deterministic_and_distinct():
    a = derive_key_seed(7, 64, 0)
    assert a == derive_key_seed(7, 64, 0)
    assert len(a) == 32
    assert a != derive_key_seed(7, 64, 1)
    assert a != derive_key_seed(7, 8, 0)
    assert a != derive_key_seed(8, 64, 0)
    assert derive_key_seed(b"master", 8, 0) == \
        derive_key_seed(b"master", 8, 0)


def test_generate_ahead_fills_pool_and_acquire_drains_it():
    store = KeyStore(master_seed=1)
    assert store.available(8) == 0
    store.generate_ahead(8, 3)
    assert store.available(8) == 3
    sk = store.acquire(8)
    assert sk.n == 8
    assert sk.keys.verify_ntru_equation()
    assert store.available(8) == 2


def test_acquire_on_dry_pool_generates_inline():
    store = KeyStore(master_seed=2)
    sk = store.acquire(8)
    assert sk.n == 8
    stats = store.stats()
    assert stats.generated == 1 and stats.served == 1


def test_store_is_deterministic_per_master_seed():
    first = KeyStore(master_seed=5).acquire(8)
    second = KeyStore(master_seed=5).acquire(8)
    third = KeyStore(master_seed=6).acquire(8)
    assert first.keys.f == second.keys.f
    assert first.keys.F == second.keys.F
    assert first.keys.f != third.keys.f


def test_disk_persistence_and_restart(tmp_path):
    store = KeyStore(tmp_path, master_seed=3)
    store.generate_ahead(8, 2)
    assert len(list(tmp_path.glob("*.skey"))) == 2

    restarted = KeyStore(tmp_path, master_seed=3)
    assert restarted.available(8) == 2
    assert restarted.stats().loaded_from_disk == 2
    sk = restarted.acquire(8)
    assert sk.keys.verify_ntru_equation()
    # Acquisition checks the key out: its file is gone.
    assert len(list(tmp_path.glob("*.skey"))) == 1


def test_restart_continues_index_sequence(tmp_path):
    store = KeyStore(tmp_path, master_seed=4)
    store.generate_ahead(8, 2)
    restarted = KeyStore(tmp_path, master_seed=4)
    restarted.generate_ahead(8, 1)
    names = sorted(p.name for p in tmp_path.glob("*.skey"))
    assert names == ["falcon_n0008_000000.skey",
                     "falcon_n0008_000001.skey",
                     "falcon_n0008_000002.skey"]


def test_corrupted_persisted_key_is_rejected(tmp_path):
    store = KeyStore(tmp_path, master_seed=5)
    store.generate_ahead(8, 1)
    path = next(tmp_path.glob("*.skey"))
    blob = bytearray(path.read_bytes())
    blob[4] ^= 0xFF
    path.write_bytes(bytes(blob))
    restarted = KeyStore(tmp_path, master_seed=5)
    with pytest.raises((SerializeError, ZeroDivisionError)):
        restarted.acquire(8)


def test_worker_pool_matches_inline_generation():
    inline = KeyStore(master_seed=9, workers=1)
    inline.generate_ahead(8, 4)
    pooled = KeyStore(master_seed=9, workers=2)
    pooled.generate_ahead(8, 4)
    for _ in range(4):
        a = inline.acquire(8)
        b = pooled.acquire(8)
        assert a.keys.f == b.keys.f and a.keys.F == b.keys.F


def test_sign_many_uses_cached_signer():
    store = KeyStore(master_seed=11)
    messages = [b"store msg 0", b"store msg 1", b"store msg 2"]
    signatures = store.sign_many(8, messages)
    signer = store.signer(8)
    assert signer is store.signer(8)  # cached, not re-acquired
    verdicts = signer.public_key.verify_many(messages, signatures)
    assert verdicts == [True] * len(messages)


def test_generate_encoded_key_round_trips():
    encoded = generate_encoded_key(8, derive_key_seed(0, 8, 0))
    from repro.falcon import decode_secret_key

    sk = decode_secret_key(encoded)
    assert sk.n == 8


def test_save_and_load_secret_key(tmp_path):
    store = KeyStore(master_seed=13)
    sk = store.acquire(8)
    path = save_secret_key(sk, tmp_path / "solo.skey")
    restored = load_secret_key(path)
    assert restored.keys.f == sk.keys.f
    assert restored.keys.G == sk.keys.G


def test_peek_does_not_consume(tmp_path):
    store = KeyStore(tmp_path, master_seed=15)
    store.generate_ahead(8, 2)
    peeked = store.peek(8)
    assert store.available(8) == 2
    assert len(list(tmp_path.glob("*.skey"))) == 2
    acquired = store.acquire(8)
    assert acquired.keys.f == peeked.keys.f  # same head entry


def test_negative_and_huge_master_seeds():
    assert derive_key_seed(-1, 8, 0) == derive_key_seed(-1, 8, 0)
    assert derive_key_seed(-1, 8, 0) != derive_key_seed(1, 8, 0)
    big = 1 << 300
    assert len(derive_key_seed(big, 8, 0)) == 32
    sk = KeyStore(master_seed=-3).acquire(8)
    assert sk.keys.verify_ntru_equation()


def test_drained_store_restart_never_reissues_slots(tmp_path):
    """Even with every key file checked out (deleted), the persisted
    slot manifest keeps a restarted store from regenerating key
    material that is already in some caller's hands."""
    store = KeyStore(tmp_path, master_seed=21)
    store.generate_ahead(8, 2)
    issued = [store.acquire(8).keys.f, store.acquire(8).keys.f]
    assert not list(tmp_path.glob("*.skey"))  # fully drained
    restarted = KeyStore(tmp_path, master_seed=21)
    fresh = restarted.acquire(8)
    assert fresh.keys.f not in issued


def test_persisted_writes_leave_no_scratch_files(tmp_path):
    store = KeyStore(tmp_path, master_seed=22)
    store.generate_ahead(8, 2)
    assert not list(tmp_path.glob("*.tmp"))
    assert (tmp_path / "keystore-state.json").exists()


def test_workers_validation():
    with pytest.raises(ValueError):
        KeyStore(workers=0)
    with pytest.raises(ValueError):
        KeyStore(low_watermark=-1)
    with pytest.raises(ValueError):
        KeyStore(low_watermark=3, refill_target=2)


def test_concurrent_store_instances_claim_disjoint_slots(tmp_path):
    """Regression (PR 5): two store instances sharing a directory used
    to claim overlapping slot indices — the second instance's stale
    in-memory manifest restarted at the first instance's range and
    re-derived the same per-slot seeds.  Claims now reload the
    manifest under the cross-process lock, so ranges are disjoint."""
    first = KeyStore(tmp_path, master_seed=31)
    second = KeyStore(tmp_path, master_seed=31)  # stale view of 'first'
    first.generate_ahead(8, 2)
    second.generate_ahead(8, 2)  # must advance past first's claims
    names = sorted(path.name for path in tmp_path.glob("*.skey"))
    assert names == [f"falcon_n0008_{index:06d}.skey"
                     for index in range(4)]
    from repro.falcon import load_secret_key

    issued = [tuple(load_secret_key(tmp_path / name).keys.f)
              for name in names]
    assert len(set(issued)) == 4  # four distinct keys, no seed reuse


def test_concurrent_checkout_never_serves_a_slot_twice(tmp_path):
    """Two stores that adopted the same persisted slots race their
    checkouts through atomic file claims: each slot is served exactly
    once, and the loser moves on to the next slot."""
    first = KeyStore(tmp_path, master_seed=32)
    first.generate_ahead(8, 3)
    second = KeyStore(tmp_path, master_seed=32)  # adopts the same 3
    served = [tuple(store.acquire(8).keys.f)
              for store in (first, second, first, second)]
    assert len(set(served)) == 4  # 3 pooled slots + 1 fresh, no dupes


def test_stale_claim_scratch_files_swept_on_restart(tmp_path):
    """A claimant that crashed between its rename and unlink leaves
    key material in a .claim-* scratch file; construction sweeps the
    stale ones (a fresh claim — a live checkout — is left alone)."""
    import os
    import time

    store = KeyStore(tmp_path, master_seed=55)
    store.generate_ahead(8, 1)
    stale = tmp_path / "falcon_n0008_000000.skey.claim-999-deadbeef"
    stale.write_bytes(b"leftover key material")
    old = time.time() - 3600
    os.utime(stale, (old, old))
    fresh = tmp_path / "falcon_n0008_000001.skey.claim-999-cafef00d"
    fresh.write_bytes(b"live checkout in another process")
    KeyStore(tmp_path, master_seed=55)
    assert not stale.exists()
    assert fresh.exists()
    fresh.unlink()


def test_future_mtime_scratch_survives_sweep(tmp_path):
    """Satellite regression: clock skew (NFS, a stepped clock) can
    stamp a live claim's scratch file *in the future*.  The old sweep
    compared a signed age against the threshold, so a huge negative
    age could never look stale — but the clamped age must also never
    go the other way and delete a live claim.  A future-mtime scratch
    is at most zero seconds old: it stays."""
    import os
    import time

    store = KeyStore(tmp_path, master_seed=56)
    store.generate_ahead(8, 1)
    skewed = tmp_path / "falcon_n0008_000000.skey.claim-999-5kew5kew"
    skewed.write_bytes(b"live checkout, skewed clock")
    future = time.time() + 7200
    os.utime(skewed, (future, future))
    KeyStore(tmp_path, master_seed=56)
    assert skewed.exists()  # age clamps to 0, never "older than" any
    skewed.unlink()


def test_stale_claim_threshold_is_configurable(tmp_path):
    import os
    import time

    store = KeyStore(tmp_path, master_seed=57)
    store.generate_ahead(8, 1)
    scratch = tmp_path / "falcon_n0008_000000.skey.claim-999-0ddba11"
    scratch.write_bytes(b"claim from 30 seconds ago")
    old = time.time() - 30
    os.utime(scratch, (old, old))
    # Under the default 60-second threshold it is a live checkout...
    KeyStore(tmp_path, master_seed=57)
    assert scratch.exists()
    # ...under a 10-second threshold it is garbage.
    KeyStore(tmp_path, master_seed=57, stale_claim_seconds=10)
    assert not scratch.exists()
    with pytest.raises(ValueError):
        KeyStore(tmp_path, master_seed=57, stale_claim_seconds=0)


def test_pooled_generation_submits_blocks_to_warm_workers():
    """Satellite regression for the pooled-keygen fix: ``generate_ahead``
    submits contiguous slot *blocks* (one task per worker, preserving
    slot order — the block boundary must not perturb key bytes), and
    the store's process pool persists across refills instead of being
    rebuilt (re-paying fork + warmup) each time."""
    pooled = KeyStore(master_seed=58, workers=2)
    try:
        pooled.generate_ahead(8, 5)  # ceil(5/2)=3: blocks of 3 and 2
        executor = pooled._executor
        assert executor is not None
        pooled.generate_ahead(8, 3)
        assert pooled._executor is executor  # same warm pool reused
    finally:
        pooled.close()
    assert pooled._executor is None
    inline = KeyStore(master_seed=58, workers=1)
    inline.generate_ahead(8, 8)
    for _ in range(8):
        a = inline.acquire(8)
        b = pooled.acquire(8)
        assert a.keys.f == b.keys.f and a.keys.F == b.keys.F


def test_close_is_idempotent_and_store_survives_it():
    store = KeyStore(master_seed=59, workers=2)
    store.generate_ahead(8, 2)
    store.close()
    store.close()
    # A closed store still serves; the pool lazily rebuilds on demand.
    store.generate_ahead(8, 2)
    assert store.stats().available[8] == 4
    store.close()


def test_watermark_refill_inline():
    store = KeyStore(master_seed=41, low_watermark=2, refill_target=3,
                     refill_async=False)
    store.generate_ahead(8, 2)
    store.acquire(8)  # leaves 1 < watermark: refills inline to 3
    assert store.available(8) == 3
    stats = store.stats()
    assert stats.watermark_triggers == 1
    assert stats.refills == 1
    assert stats.last_refill_seconds > 0
    assert stats.total_refill_seconds >= stats.last_refill_seconds


def test_watermark_refill_background():
    store = KeyStore(master_seed=42, low_watermark=1, refill_target=2)
    store.acquire(8)  # dry acquire, then pool is 0 < watermark
    store.join_refills()
    assert store.available(8) >= 1
    assert store.stats().refills >= 1


def test_rotation_retires_cohort_and_regenerates(tmp_path):
    store = KeyStore(tmp_path, master_seed=43)
    store.generate_ahead(8, 2)
    old_keys = {tuple(store.peek(8).keys.f)}
    assert store.generation(8) == 0
    retired = store.rotate(8, regenerate=2)
    assert retired == 2
    assert store.generation(8) == 1
    assert store.available(8) == 2
    assert tuple(store.peek(8).keys.f) not in old_keys
    stats = store.stats()
    assert stats.retired == 2
    assert stats.generation[8] == 1


def test_rotation_drops_cached_signer():
    store = KeyStore(master_seed=44)
    old_signer = store.signer(8)
    store.rotate(8)
    fresh = store.signer(8)
    assert fresh is not old_signer
    assert fresh.keys.f != old_signer.keys.f


def test_restart_after_rotation_discards_retired_files(tmp_path):
    store = KeyStore(tmp_path, master_seed=45)
    store.generate_ahead(8, 2)
    # Rotate through a *second* instance: the first instance's files
    # are now a retired cohort on disk.
    rotated = KeyStore(tmp_path, master_seed=45)
    rotated.rotate(8)
    rotated.generate_ahead(8, 1)
    restarted = KeyStore(tmp_path, master_seed=45)
    assert restarted.available(8) == 1  # only the fresh cohort
    assert restarted.generation(8) == 1
    stale = [path.name for path in tmp_path.glob("*.skey")
             if int(path.name.split("_")[2].split(".")[0]) < 2]
    assert stale == []  # retired cohort files were removed


def test_rotation_during_refill_discards_inflight_cohort(tmp_path,
                                                         monkeypatch):
    """A refill whose slots were claimed before a rotation must not
    re-pool its keys afterwards: the in-flight cohort is retired on
    arrival (pool admission re-checks the cohort start)."""
    import repro.falcon.keystore as keystore_module

    store = keystore_module.KeyStore(tmp_path, master_seed=51)
    real_generate = keystore_module.generate_encoded_key
    fired = []

    def rotate_mid_generation(n, seed, prng="chacha20",
                              keygen_spine="auto"):
        encoded = real_generate(n, seed, prng, keygen_spine)
        if not fired:  # rotation lands while this key is in flight
            fired.append(True)
            store.rotate(8)
        return encoded

    monkeypatch.setattr(keystore_module, "generate_encoded_key",
                        rotate_mid_generation)
    store.generate_ahead(8, 1)
    assert store.available(8) == 0  # retired on arrival, not pooled
    assert store.stats().retired == 1
    assert not list(tmp_path.glob("*.skey"))
    assert store.generation(8) == 1


def test_verify_many_through_store():
    store = KeyStore(master_seed=46)
    messages = [b"vm-0", b"vm-1"]
    signatures = store.sign_many(8, messages)
    assert store.verify_many(8, messages, signatures) == [True, True]


def test_stats_as_dict_round_trips_to_json():
    import json

    store = KeyStore(master_seed=47)
    store.generate_ahead(8, 1)
    payload = store.stats().as_dict()
    assert json.loads(json.dumps(payload)) == payload
    assert payload["generated"] == 1
    assert payload["available"] == {"8": 1}
