"""Tests for the generate-ahead key store (pools, disk, workers)."""

import pytest

from repro.falcon import (
    KeyStore,
    SerializeError,
    derive_key_seed,
    load_secret_key,
    save_secret_key,
)
from repro.falcon.keystore import generate_encoded_key


def test_derive_key_seed_deterministic_and_distinct():
    a = derive_key_seed(7, 64, 0)
    assert a == derive_key_seed(7, 64, 0)
    assert len(a) == 32
    assert a != derive_key_seed(7, 64, 1)
    assert a != derive_key_seed(7, 8, 0)
    assert a != derive_key_seed(8, 64, 0)
    assert derive_key_seed(b"master", 8, 0) == \
        derive_key_seed(b"master", 8, 0)


def test_generate_ahead_fills_pool_and_acquire_drains_it():
    store = KeyStore(master_seed=1)
    assert store.available(8) == 0
    store.generate_ahead(8, 3)
    assert store.available(8) == 3
    sk = store.acquire(8)
    assert sk.n == 8
    assert sk.keys.verify_ntru_equation()
    assert store.available(8) == 2


def test_acquire_on_dry_pool_generates_inline():
    store = KeyStore(master_seed=2)
    sk = store.acquire(8)
    assert sk.n == 8
    stats = store.stats()
    assert stats.generated == 1 and stats.served == 1


def test_store_is_deterministic_per_master_seed():
    first = KeyStore(master_seed=5).acquire(8)
    second = KeyStore(master_seed=5).acquire(8)
    third = KeyStore(master_seed=6).acquire(8)
    assert first.keys.f == second.keys.f
    assert first.keys.F == second.keys.F
    assert first.keys.f != third.keys.f


def test_disk_persistence_and_restart(tmp_path):
    store = KeyStore(tmp_path, master_seed=3)
    store.generate_ahead(8, 2)
    assert len(list(tmp_path.glob("*.skey"))) == 2

    restarted = KeyStore(tmp_path, master_seed=3)
    assert restarted.available(8) == 2
    assert restarted.stats().loaded_from_disk == 2
    sk = restarted.acquire(8)
    assert sk.keys.verify_ntru_equation()
    # Acquisition checks the key out: its file is gone.
    assert len(list(tmp_path.glob("*.skey"))) == 1


def test_restart_continues_index_sequence(tmp_path):
    store = KeyStore(tmp_path, master_seed=4)
    store.generate_ahead(8, 2)
    restarted = KeyStore(tmp_path, master_seed=4)
    restarted.generate_ahead(8, 1)
    names = sorted(p.name for p in tmp_path.glob("*.skey"))
    assert names == ["falcon_n0008_000000.skey",
                     "falcon_n0008_000001.skey",
                     "falcon_n0008_000002.skey"]


def test_corrupted_persisted_key_is_rejected(tmp_path):
    store = KeyStore(tmp_path, master_seed=5)
    store.generate_ahead(8, 1)
    path = next(tmp_path.glob("*.skey"))
    blob = bytearray(path.read_bytes())
    blob[4] ^= 0xFF
    path.write_bytes(bytes(blob))
    restarted = KeyStore(tmp_path, master_seed=5)
    with pytest.raises((SerializeError, ZeroDivisionError)):
        restarted.acquire(8)


def test_worker_pool_matches_inline_generation():
    inline = KeyStore(master_seed=9, workers=1)
    inline.generate_ahead(8, 4)
    pooled = KeyStore(master_seed=9, workers=2)
    pooled.generate_ahead(8, 4)
    for _ in range(4):
        a = inline.acquire(8)
        b = pooled.acquire(8)
        assert a.keys.f == b.keys.f and a.keys.F == b.keys.F


def test_sign_many_uses_cached_signer():
    store = KeyStore(master_seed=11)
    messages = [b"store msg 0", b"store msg 1", b"store msg 2"]
    signatures = store.sign_many(8, messages)
    signer = store.signer(8)
    assert signer is store.signer(8)  # cached, not re-acquired
    verdicts = signer.public_key.verify_many(messages, signatures)
    assert verdicts == [True] * len(messages)


def test_generate_encoded_key_round_trips():
    encoded = generate_encoded_key(8, derive_key_seed(0, 8, 0))
    from repro.falcon import decode_secret_key

    sk = decode_secret_key(encoded)
    assert sk.n == 8


def test_save_and_load_secret_key(tmp_path):
    store = KeyStore(master_seed=13)
    sk = store.acquire(8)
    path = save_secret_key(sk, tmp_path / "solo.skey")
    restored = load_secret_key(path)
    assert restored.keys.f == sk.keys.f
    assert restored.keys.G == sk.keys.G


def test_peek_does_not_consume(tmp_path):
    store = KeyStore(tmp_path, master_seed=15)
    store.generate_ahead(8, 2)
    peeked = store.peek(8)
    assert store.available(8) == 2
    assert len(list(tmp_path.glob("*.skey"))) == 2
    acquired = store.acquire(8)
    assert acquired.keys.f == peeked.keys.f  # same head entry


def test_negative_and_huge_master_seeds():
    assert derive_key_seed(-1, 8, 0) == derive_key_seed(-1, 8, 0)
    assert derive_key_seed(-1, 8, 0) != derive_key_seed(1, 8, 0)
    big = 1 << 300
    assert len(derive_key_seed(big, 8, 0)) == 32
    sk = KeyStore(master_seed=-3).acquire(8)
    assert sk.keys.verify_ntru_equation()


def test_drained_store_restart_never_reissues_slots(tmp_path):
    """Even with every key file checked out (deleted), the persisted
    slot manifest keeps a restarted store from regenerating key
    material that is already in some caller's hands."""
    store = KeyStore(tmp_path, master_seed=21)
    store.generate_ahead(8, 2)
    issued = [store.acquire(8).keys.f, store.acquire(8).keys.f]
    assert not list(tmp_path.glob("*.skey"))  # fully drained
    restarted = KeyStore(tmp_path, master_seed=21)
    fresh = restarted.acquire(8)
    assert fresh.keys.f not in issued


def test_persisted_writes_leave_no_scratch_files(tmp_path):
    store = KeyStore(tmp_path, master_seed=22)
    store.generate_ahead(8, 2)
    assert not list(tmp_path.glob("*.tmp"))
    assert (tmp_path / "keystore-state.json").exists()


def test_workers_validation():
    with pytest.raises(ValueError):
        KeyStore(workers=0)
