"""Statistical tests of the high-throughput ``sample_many`` path.

``sample_many`` fuses batches into super-batches; these tests confirm
that the bulk path still samples the *exact* distribution the circuit
encodes — a chi-square goodness-of-fit of 200k draws against the
``GaussianParams`` probability matrix, plus tail and sign-symmetry
checks — for both the bigint and the vectorized word engine.
"""

from __future__ import annotations

import math
from collections import Counter

import pytest

from repro.bitslice import AUTO_ENGINE
from repro.core import compile_sampler, probability_matrix
from repro.core.gaussian import GaussianParams
from repro.rng import ChaChaSource

DRAWS = 200_000

#: Both ends of the engine spectrum.  When NumPy is absent AUTO_ENGINE
#: is "bigint"; the chunked engine then covers the vector layout.
ENGINES = sorted({"bigint", AUTO_ENGINE} | {"chunked"})

PARAMS = GaussianParams.from_sigma(2, 32)


def _signed_pmf(params: GaussianParams) -> dict[int, float]:
    """Exact distribution of *produced* samples (valid lanes only).

    The matrix row convention folds the negative side in: row 0 is
    ``P(0)`` and row ``v >= 1`` is ``2 P(v)``; invalid lanes are
    discarded, renormalizing by ``mass / 2^n``.  A uniform sign bit
    then splits each folded row across the two signs.
    """
    matrix = probability_matrix(params)
    mass = matrix.mass
    pmf: dict[int, float] = {}
    for v, row in enumerate(matrix.rows):
        if row == 0:
            continue
        if v == 0:
            pmf[0] = row / mass
        else:
            pmf[v] = row / (2 * mass)
            pmf[-v] = row / (2 * mass)
    return pmf


@pytest.fixture(scope="module", params=ENGINES)
def engine_draws(request):
    sampler = compile_sampler(2, 32, source=ChaChaSource(17),
                              batch_width=64, engine=request.param)
    values = sampler.sample_many(DRAWS)
    assert len(values) == DRAWS
    return request.param, values, sampler


def test_chi_square_goodness_of_fit(engine_draws):
    engine, values, _ = engine_draws
    pmf = _signed_pmf(PARAMS)
    observed = Counter(
        v if abs(v) < 7 else ("tail", v > 0) for v in values)
    expected: dict = {}
    for v, p in pmf.items():
        key = v if abs(v) < 7 else ("tail", v > 0)
        expected[key] = expected.get(key, 0.0) + p * DRAWS
    chi2 = sum((observed.get(k, 0) - e) ** 2 / e
               for k, e in expected.items() if e > 5)
    dof = sum(1 for e in expected.values() if e > 5) - 1
    # 5-sigma band for a chi-square statistic: mean dof, sd sqrt(2 dof).
    assert chi2 < dof + 5 * math.sqrt(2 * dof), (engine, chi2, dof)


def test_tails_and_support(engine_draws):
    engine, values, _ = engine_draws
    bound = PARAMS.support_bound
    assert max(abs(v) for v in values) <= bound, engine
    # The 4-sigma tail mass must be small but present at 200k draws:
    # P(|v| >= 8) ~ 2 * sum_{v>=8} pmf ~ 6.8e-5 -> ~13.5 expected.
    tail = sum(1 for v in values if abs(v) >= 8)
    pmf = _signed_pmf(PARAMS)
    expected_tail = DRAWS * sum(p for v, p in pmf.items() if abs(v) >= 8)
    assert expected_tail > 5
    assert tail < expected_tail + 6 * math.sqrt(expected_tail), engine
    # Values beyond 6 sigma are possible but astronomically rare.
    assert sum(1 for v in values if abs(v) >= 13) == 0, engine


def test_sign_symmetry(engine_draws):
    engine, values, _ = engine_draws
    positives = sum(1 for v in values if v > 0)
    negatives = sum(1 for v in values if v < 0)
    total = positives + negatives
    # Binomial(total, 1/2): 5-sigma band on the positive share.
    half_sd = 0.5 / math.sqrt(total)
    assert abs(positives / total - 0.5) < 5 * half_sd, engine
    # Magnitude distribution must match between the signs as well.
    pos = Counter(v for v in values if v > 0)
    neg = Counter(-v for v in values if v < 0)
    for magnitude in range(1, 6):
        p, n = pos[magnitude], neg[magnitude]
        spread = 6 * math.sqrt((p + n) / 2)
        assert abs(p - n) < max(spread, 50), (engine, magnitude, p, n)


def test_super_batching_actually_engaged(engine_draws):
    """The bulk path must have used fused batches, not 1-batch loops."""
    engine, values, sampler = engine_draws
    assert sampler.batches_run >= DRAWS // sampler.batch_width
    # 200k samples at <= 64 fused batches of 64 lanes per kernel pass:
    # far fewer passes than batches.  Randomness accounting still holds.
    per_batch = sampler.random_bytes_per_batch
    assert sampler.source.bytes_read == sampler.batches_run * per_batch
