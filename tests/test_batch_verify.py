"""Differential suite for the cross-key batch verification engine.

The engine's contract: ``verify_batch(items)`` over arbitrary mixed
keys and degrees returns verdicts bit-identical to calling each lane's
``public_key.verify(message, signature)``, on both spines, with
per-lane failure reasons instead of silent drops.
"""

import pytest

from repro.falcon import (
    HAVE_NUMPY,
    SecretKey,
    Signature,
    verify_batch,
    verify_batch_report,
)
from repro.falcon.batchverify import (
    REASON_DECOMPRESS,
    REASON_NORM,
    REASON_OK,
    ROWS_DECODE_MIN,
    rlc_weights,
)

SPINES = ("scalar",) + (("numpy",) if HAVE_NUMPY else ())

# Session-scope keys: keygen dominates these tests otherwise.
_KEYS: dict[tuple[int, int], SecretKey] = {}


def _secret_key(n: int, seed: int) -> SecretKey:
    if (n, seed) not in _KEYS:
        _KEYS[(n, seed)] = SecretKey.generate(n=n, seed=seed)
    return _KEYS[(n, seed)]


def _honest_lane(n: int, seed: int, index: int) -> tuple:
    sk = _secret_key(n, seed)
    message = b"batch-%d-%d" % (n, index)
    return (sk.public_key, message, sk.sign(message))


def _mixed_batch() -> list[tuple]:
    """Mixed degrees, mixed keys, duplicate keys, and three kinds of
    bad lanes: forged message, corrupted blob, hard-truncated blob."""
    lanes = [_honest_lane(8, seed, i)
             for i, seed in enumerate((1, 2, 1, 3))]
    lanes += [_honest_lane(16, seed, i)
              for i, seed in enumerate((1, 2, 2))]
    pk, message, signature = _honest_lane(8, 1, 99)
    lanes.append((pk, message + b"forged", signature))
    flipped = bytearray(signature.compressed)
    flipped[1] ^= 0x41
    lanes.append((pk, message,
                  Signature(salt=signature.salt,
                            compressed=bytes(flipped))))
    lanes.append((pk, message,
                  Signature(salt=signature.salt,
                            compressed=signature.compressed[:3])))
    return lanes


@pytest.mark.parametrize("spine", SPINES)
def test_cross_key_matches_per_key_verify(spine):
    lanes = _mixed_batch()
    verdicts = verify_batch(lanes, spine=spine)
    assert verdicts == [pk.verify(message, signature)
                        for pk, message, signature in lanes]
    assert True in verdicts and False in verdicts


@pytest.mark.skipif(not HAVE_NUMPY, reason="needs both spines")
def test_spines_bit_identical_including_reasons():
    lanes = _mixed_batch()
    numpy_report = verify_batch_report(lanes, spine="numpy")
    scalar_report = verify_batch_report(lanes, spine="scalar")
    assert numpy_report.verdicts == scalar_report.verdicts
    assert [(lane.ok, lane.reason, lane.detail)
            for lane in numpy_report.lanes] == \
        [(lane.ok, lane.reason, lane.detail)
         for lane in scalar_report.lanes]


@pytest.mark.parametrize("spine", SPINES)
def test_empty_batch(spine):
    assert verify_batch([], spine=spine) == []
    report = verify_batch_report([], spine=spine, keep_s1=True)
    assert report.lanes == [] and report.s1_rows == []


@pytest.mark.parametrize("spine", SPINES)
def test_single_lane_batch(spine):
    lane = _honest_lane(8, 1, 0)
    assert verify_batch([lane], spine=spine) == [True]


@pytest.mark.parametrize("spine", SPINES)
def test_duplicate_keys_share_a_batch(spine):
    sk = _secret_key(8, 1)
    lanes = [(sk.public_key, b"dup-%d" % i, sk.sign(b"dup-%d" % i))
             for i in range(4)]
    assert verify_batch(lanes, spine=spine) == [True] * 4


@pytest.mark.parametrize("spine", SPINES)
def test_failure_reasons_reported_not_dropped(spine):
    lanes = _mixed_batch()
    report = verify_batch_report(lanes, spine=spine)
    reasons = [lane.reason for lane in report.lanes]
    assert reasons[:7] == [REASON_OK] * 7
    assert reasons[7] == REASON_NORM          # forged message
    assert reasons[9] == REASON_DECOMPRESS    # truncated blob
    truncated = report.lanes[9]
    assert not truncated.ok and truncated.detail  # decoder's message
    assert report.accepted == sum(report.verdicts)
    assert report.rejected == len(lanes) - report.accepted
    histogram = report.reasons()
    assert histogram[REASON_OK] == report.accepted
    assert histogram[REASON_DECOMPRESS] >= 1


@pytest.mark.skipif(not HAVE_NUMPY,
                    reason="row decoder needs the numpy spine")
def test_large_batch_row_decoder_matches_scalar():
    """A same-degree batch past ROWS_DECODE_MIN rides the vectorized
    row decoder; verdicts and reasons must not change."""
    lanes = []
    for i in range(ROWS_DECODE_MIN + 4):
        sk = _secret_key(8, 1 + i % 3)
        message = b"row-%d" % i
        lanes.append((sk.public_key, message, sk.sign(message)))
    pk, message, signature = lanes[5]
    lanes[5] = (pk, message,
                Signature(salt=signature.salt,
                          compressed=signature.compressed[:2]))
    pk, message, signature = lanes[9]
    lanes[9] = (pk, message + b"!", signature)
    numpy_report = verify_batch_report(lanes, spine="numpy")
    scalar_report = verify_batch_report(lanes, spine="scalar")
    assert numpy_report.verdicts == scalar_report.verdicts
    assert [(lane.reason, lane.detail)
            for lane in numpy_report.lanes] == \
        [(lane.reason, lane.detail) for lane in scalar_report.lanes]
    assert numpy_report.verdicts == [pk.verify(m, s)
                                     for pk, m, s in lanes]


@pytest.mark.parametrize("spine", SPINES)
def test_keep_s1_exposes_expansion_rows(spine):
    lanes = _mixed_batch()
    report = verify_batch_report(lanes, spine=spine, keep_s1=True)
    for verdict, s1, (pk, _m, _s) in zip(report.verdicts,
                                         report.s1_rows, lanes):
        if verdict:
            assert isinstance(s1, list) and len(s1) == pk.n
        else:
            assert s1 is None


@pytest.mark.parametrize("spine", SPINES)
def test_rlc_precheck_accepts_honest_expansion(spine):
    lanes = [_honest_lane(8, seed, i)
             for i, seed in enumerate((1, 2, 3, 1))]
    expansion = verify_batch_report(lanes, spine=spine, keep_s1=True)
    expanded = [(pk, m, s, s1) for (pk, m, s), s1
                in zip(lanes, expansion.s1_rows)]
    report = verify_batch_report(expanded, spine=spine,
                                 precheck="rlc",
                                 precheck_seed=b"test-seed",
                                 precheck_rounds=2)
    assert report.precheck_passed
    assert report.verdicts == expansion.verdicts


@pytest.mark.parametrize("spine", SPINES)
def test_rlc_falls_back_exactly_on_corrupt_expansion(spine):
    """A tampered claimed s1 must not change any verdict: the
    aggregate check fails and the engine re-derives exact verdicts
    through the full pass."""
    lanes = [_honest_lane(8, seed, i)
             for i, seed in enumerate((1, 2, 3))]
    expansion = verify_batch_report(lanes, spine=spine, keep_s1=True)
    rows = [list(s1) for s1 in expansion.s1_rows]
    rows[1][0] = (rows[1][0] + 1)  # in-range tamper
    expanded = [(pk, m, s, s1) for (pk, m, s), s1
                in zip(lanes, rows)]
    report = verify_batch_report(expanded, spine=spine,
                                 precheck="rlc",
                                 precheck_seed=b"test-seed")
    assert not report.precheck_passed
    assert report.verdicts == expansion.verdicts == [True] * 3


@pytest.mark.parametrize("spine", SPINES)
def test_rlc_requires_expanded_lanes(spine):
    lanes = [_honest_lane(8, 1, 0)]
    with pytest.raises(ValueError, match="expanded"):
        verify_batch(lanes, spine=spine, precheck="rlc")


def test_precheck_and_spine_validation():
    with pytest.raises(ValueError, match="unknown precheck"):
        verify_batch([], precheck="magic")
    with pytest.raises(ValueError, match="at least 1"):
        verify_batch([], precheck="rlc", precheck_rounds=0)
    with pytest.raises(ValueError, match="unknown spine"):
        verify_batch([], spine="vliw")


def test_rlc_weights_deterministic_and_in_range():
    from repro.falcon import Q

    first = rlc_weights(b"seed", 32, round_index=0)
    assert first == rlc_weights(b"seed", 32, round_index=0)
    assert first != rlc_weights(b"seed", 32, round_index=1)
    assert first != rlc_weights(b"eeds", 32, round_index=0)
    assert all(1 <= w <= Q - 1 for w in first)


# -- verify_many rides the engine -----------------------------------------

def test_verify_many_report_returns_reasons():
    sk = _secret_key(8, 1)
    messages = [b"vm-%d" % i for i in range(3)]
    signatures = [sk.sign(m) for m in messages]
    broken = Signature(salt=signatures[1].salt,
                       compressed=signatures[1].compressed[:2])
    report = sk.public_key.verify_many_report(
        messages, [signatures[0], broken, signatures[2]])
    assert report.verdicts == [True, False, True]
    assert report.lanes[1].reason == REASON_DECOMPRESS
    assert report.lanes[1].detail


def test_verify_many_verdicts_unchanged():
    sk = _secret_key(8, 2)
    messages = [b"unchanged-%d" % i for i in range(4)]
    signatures = [sk.sign(m) for m in messages]
    verdicts = sk.public_key.verify_many(
        [messages[0], b"wrong", messages[2], messages[3]], signatures)
    assert verdicts == [True, False, True, True]
    assert verdicts == [
        sk.public_key.verify(m, s) for m, s in
        zip([messages[0], b"wrong", messages[2], messages[3]],
            signatures)]


def test_verify_many_length_mismatch():
    sk = _secret_key(8, 1)
    with pytest.raises(ValueError):
        sk.public_key.verify_many([b"m"], [])
