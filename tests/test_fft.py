"""Tests for the negacyclic complex FFT."""

import cmath
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.falcon import (
    add_fft,
    adj_fft,
    div_fft,
    fft,
    fft_points,
    ifft,
    merge_fft,
    mul_fft,
    round_ifft,
    split_fft,
    sub_fft,
)


def _naive_negacyclic(a, b):
    n = len(a)
    out = [0] * n
    for i in range(n):
        for j in range(n):
            k = i + j
            if k < n:
                out[k] += a[i] * b[j]
            else:
                out[k - n] -= a[i] * b[j]
    return out


def test_points_are_roots_of_x_n_plus_1():
    for n in (1, 2, 4, 8, 32):
        for point in fft_points(n):
            assert abs(point ** n + 1) < 1e-9
            assert abs(abs(point) - 1) < 1e-12


def test_points_distinct():
    points = fft_points(64)
    for i, a in enumerate(points):
        for b in points[i + 1:]:
            assert abs(a - b) > 1e-9


def test_points_power_of_two_only():
    with pytest.raises(ValueError):
        fft_points(12)
    with pytest.raises(ValueError):
        fft_points(0)


def test_fft_evaluates_at_points():
    random.seed(1)
    n = 16
    coeffs = [random.uniform(-5, 5) for _ in range(n)]
    values = fft(coeffs)
    for point, value in zip(fft_points(n), values):
        direct = sum(c * point ** i for i, c in enumerate(coeffs))
        assert abs(direct - value) < 1e-8


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(min_value=-100, max_value=100),
                min_size=2, max_size=64).filter(
                    lambda v: len(v) & (len(v) - 1) == 0))
def test_fft_round_trip(coeffs):
    assert round_ifft(fft([float(c) for c in coeffs])) == coeffs


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=2**32))
def test_mul_fft_matches_naive(seed):
    rng = random.Random(seed)
    n = 16
    a = [rng.randint(-30, 30) for _ in range(n)]
    b = [rng.randint(-30, 30) for _ in range(n)]
    via_fft = round_ifft(mul_fft(fft([float(x) for x in a]),
                                 fft([float(x) for x in b])))
    assert via_fft == _naive_negacyclic(a, b)


def test_split_merge_inverse():
    random.seed(3)
    values = fft([random.uniform(-2, 2) for _ in range(32)])
    even, odd = split_fft(values)
    rebuilt = merge_fft(even, odd)
    assert all(abs(x - y) < 1e-10 for x, y in zip(values, rebuilt))


def test_split_matches_coefficient_split():
    random.seed(4)
    coeffs = [random.uniform(-2, 2) for _ in range(32)]
    even_vals, odd_vals = split_fft(fft(coeffs))
    assert all(abs(a - b) < 1e-9 for a, b in
               zip(even_vals, fft(coeffs[0::2])))
    assert all(abs(a - b) < 1e-9 for a, b in
               zip(odd_vals, fft(coeffs[1::2])))


def test_adjoint_is_conjugate_of_real_poly():
    random.seed(5)
    coeffs = [random.uniform(-3, 3) for _ in range(16)]
    values = fft(coeffs)
    adj_vals = adj_fft(values)
    # adj(f) has coefficients [f0, -f_{n-1}, ..., -f_1].
    adj_coeffs = [coeffs[0]] + [-c for c in coeffs[:0:-1]]
    direct = fft(adj_coeffs)
    assert all(abs(a - b) < 1e-8 for a, b in zip(adj_vals, direct))


def test_pointwise_helpers():
    a = fft([1.0, 2.0])
    b = fft([3.0, -1.0])
    total = ifft(add_fft(a, b))
    assert total == pytest.approx([4.0, 1.0])
    diff = ifft(sub_fft(a, b))
    assert diff == pytest.approx([-2.0, 3.0])
    quotient = ifft(mul_fft(div_fft(a, b), b))
    assert quotient == pytest.approx([1.0, 2.0])


def test_fft_rejects_bad_length():
    with pytest.raises(ValueError):
        fft([1.0, 2.0, 3.0])
    with pytest.raises(ValueError):
        ifft([1 + 0j] * 5)


def test_parseval():
    random.seed(6)
    coeffs = [random.uniform(-1, 1) for _ in range(64)]
    values = fft(coeffs)
    energy_time = sum(c * c for c in coeffs)
    energy_freq = sum(abs(v) ** 2 for v in values) / 64
    assert energy_freq == pytest.approx(energy_time, rel=1e-9)
