"""Tests for the BLISS-style Bernoulli sampler."""

import math
from collections import Counter

from repro.baselines.bernoulli import SIGMA_BIN, BernoulliSampler
from repro.core import GaussianParams
from repro.ct import audit_sampler
from repro.rng import ChaChaSource


def _ideal_folded_pmf(sigma, bound):
    rho = {v: math.exp(-v * v / (2 * sigma * sigma))
           for v in range(bound + 1)}
    total = rho[0] + 2 * sum(rho[v] for v in range(1, bound + 1))
    pmf = {0: rho[0] / total}
    for v in range(1, bound + 1):
        pmf[v] = 2 * rho[v] / total
    return pmf


def test_sigma_bin_value():
    # 2^(-x^2) = exp(-x^2 / (2 sigma_bin^2)) requires
    # exp(-1 / (2 sigma_bin^2)) = 1/2.
    assert abs(math.exp(-1 / (2 * SIGMA_BIN ** 2)) - 0.5) < 1e-12


def test_k_selection():
    sampler = BernoulliSampler(GaussianParams.from_sigma(2, 32),
                               source=ChaChaSource(1))
    assert sampler.k == round(2 / SIGMA_BIN)
    assert abs(sampler.achieved_sigma - sampler.k * SIGMA_BIN) < 1e-12


def test_binary_gaussian_distribution():
    sampler = BernoulliSampler(GaussianParams.from_sigma(2, 32),
                               source=ChaChaSource(2))
    draws = 20_000
    counts = Counter(sampler._sample_binary_gaussian()
                     for _ in range(draws))
    total_weight = sum(2.0 ** -(x * x) for x in range(10))
    for x in range(4):
        expected = draws * 2.0 ** -(x * x) / total_weight
        spread = 5 * math.sqrt(expected)
        assert abs(counts.get(x, 0) - expected) < spread, (x, counts)


def test_magnitude_distribution_chi_square():
    params = GaussianParams.from_sigma(2, 64)
    sampler = BernoulliSampler(params, source=ChaChaSource(3))
    draws = 15_000
    counts = Counter(sampler.sample_magnitude() for _ in range(draws))
    sigma = sampler.achieved_sigma  # k * SIGMA_BIN, not exactly 2
    pmf = _ideal_folded_pmf(sigma, 20)
    chi2 = 0.0
    dof = 0
    for v, p in pmf.items():
        expected = p * draws
        if expected < 8:
            continue
        chi2 += (counts.get(v, 0) - expected) ** 2 / expected
        dof += 1
    dof -= 1
    assert chi2 < dof + 5 * math.sqrt(2 * dof), (chi2, dof)


def test_signed_moments():
    params = GaussianParams.from_sigma(6.15543, 64)
    sampler = BernoulliSampler(params, source=ChaChaSource(4))
    draws = 8000
    values = sampler.sample_many(draws)
    sigma = sampler.achieved_sigma
    mean = sum(values) / draws
    std = math.sqrt(sum(v * v for v in values) / draws)
    assert abs(mean) < 4 * sigma / math.sqrt(draws)
    assert abs(std - sigma) / sigma < 0.05


def test_bernoulli_sampler_leaks():
    """The point of including it: dudect must flag this sampler.

    Sensitivity depends on the class split (as with the real tool):
    the zero-vs-rest classifier exposes the cheap z = 0 fast path
    (empty Bernoulli-exp product) that the |v| <= 1 split averages
    away.
    """
    sampler = BernoulliSampler(GaussianParams.from_sigma(2, 64),
                               source=ChaChaSource(7))
    report = audit_sampler(sampler, calls=8000,
                           classifier=lambda v: v == 0)
    assert report.leaking, report.render()


def test_achieved_sigma_close_to_target():
    for target in (1.5, 2, 4, 6.15543, 10):
        sampler = BernoulliSampler(
            GaussianParams.from_sigma(target, 32),
            source=ChaChaSource(6))
        assert abs(sampler.achieved_sigma - target) <= SIGMA_BIN / 2
