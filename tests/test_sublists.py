"""Tests for the sublist partition (Sec. 5.1, Fig. 3)."""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    GaussianParams,
    enumerate_terminating_strings,
    max_free_suffix_length,
    partition_by_trailing_ones,
    probability_matrix,
    sorted_list_l,
)


def test_partition_covers_all_entries():
    matrix = probability_matrix(GaussianParams.from_sigma(2, precision=16))
    partition = partition_by_trailing_ones(matrix)
    assert partition.total_entries == \
        len(enumerate_terminating_strings(matrix))


def test_partition_entries_belong_to_their_sublist():
    matrix = probability_matrix(GaussianParams.from_sigma(2, precision=16))
    partition = partition_by_trailing_ones(matrix)
    for sub in partition.sublists:
        for entry in sub.entries:
            # Reconstruct the full string: 1^k 0 suffix.
            bits = (1,) * sub.k + (0,) + entry.suffix
            assert bits[:sub.k] == (1,) * sub.k
            assert bits[sub.k] == 0
            assert len(bits) <= matrix.precision


def test_global_delta_is_max_of_sublist_deltas():
    matrix = probability_matrix(
        GaussianParams.from_sigma(6.15543, precision=32))
    partition = partition_by_trailing_ones(matrix)
    assert partition.delta == max(s.delta for s in partition.sublists)
    assert partition.delta == max_free_suffix_length(matrix)


def test_sorted_list_is_ascending_in_k():
    matrix = probability_matrix(GaussianParams.from_sigma(2, precision=16))
    ordered = sorted_list_l(matrix)
    ks = [entry.leading_ones for entry in ordered]
    assert ks == sorted(ks)


def test_fig3_sigma2_n16_structure():
    """Fig. 3 renders sigma = 2, n = 16: sublists for every k present."""
    matrix = probability_matrix(GaussianParams.from_sigma(2, precision=16))
    partition = partition_by_trailing_ones(matrix)
    ks = [s.k for s in partition.sublists]
    assert ks[0] == 0
    assert partition.max_k <= 15
    rendered = partition.render()
    assert "sublist l_0" in rendered
    assert "->" in rendered


def test_render_uses_reversed_notation():
    matrix = probability_matrix(GaussianParams.from_sigma(2, precision=6))
    partition = partition_by_trailing_ones(matrix)
    rendered = partition.render()
    # The level-1 leaf (bits 0,0) renders as xxxx00.
    assert "xxxx00" in rendered


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=2, max_value=30),
       st.integers(min_value=6, max_value=14))
def test_sublist_deltas_bounded_by_available_bits(sigma_sq, precision):
    params = GaussianParams(sigma_sq=Fraction(sigma_sq),
                            precision=precision, tail_cut=9)
    partition = partition_by_trailing_ones(probability_matrix(params))
    for sub in partition.sublists:
        assert 0 <= sub.delta <= precision - sub.k - 1
        for entry in sub.entries:
            assert len(entry.suffix) <= sub.delta


def test_immediate_sublist_detection():
    """A sublist whose prefix 1^k 0 is itself a leaf has delta == 0."""
    matrix = probability_matrix(GaussianParams.from_sigma(2, precision=16))
    partition = partition_by_trailing_ones(matrix)
    for sub in partition.sublists:
        if sub.is_immediate:
            assert sub.delta == 0
            assert len(sub.entries) == 1
