"""Tests for Verilog/BLIF netlist export.

The exported netlists are re-simulated with small parsers written here,
and must agree with the reference DAG evaluator on every input — a
semantic check, not a string comparison.
"""

import re

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boolfunc import ExprBuilder, evaluate
from repro.boolfunc.netlist import blif_statistics, to_blif, to_verilog
from repro.core import GaussianParams, compile_sampler_circuit

# ---------------------------------------------------------------------------
# Miniature netlist simulators (test-local, independent implementations)
# ---------------------------------------------------------------------------


def simulate_verilog(source: str, inputs: dict[str, int]) -> dict[str, int]:
    """Evaluate a flat assign-netlist produced by to_verilog."""
    values = dict(inputs)
    values["1'b0"] = 0
    values["1'b1"] = 1
    assigns = re.findall(r"assign (\w+) = (.*?);", source)
    for target, expression in assigns:
        expression = expression.strip()
        if expression.startswith("~"):
            values[target] = 1 - values[expression[1:]]
        elif "&" in expression:
            a, b = [s.strip() for s in expression.split("&")]
            values[target] = values[a] & values[b]
        elif "|" in expression:
            a, b = [s.strip() for s in expression.split("|")]
            values[target] = values[a] | values[b]
        elif "^" in expression:
            a, b = [s.strip() for s in expression.split("^")]
            values[target] = values[a] ^ values[b]
        else:
            values[target] = values[expression]
    return values


def simulate_blif(source: str, inputs: dict[str, int]) -> dict[str, int]:
    """Evaluate a BLIF model (single-output .names tables)."""
    values = dict(inputs)
    lines = source.splitlines()
    index = 0
    while index < len(lines):
        line = lines[index]
        if line.startswith(".names"):
            signals = line.split()[1:]
            *table_inputs, output = signals
            cubes = []
            index += 1
            while index < len(lines) and lines[index] and \
                    lines[index][0] in "01-":
                cubes.append(lines[index])
                index += 1
            result = 0
            if not table_inputs:
                # Constant table: a lone "1" line means constant 1.
                result = 1 if any(c.strip() == "1" for c in cubes) else 0
            else:
                for cube in cubes:
                    pattern = cube.split()[0]
                    if all(p == "-" or values[s] == int(p)
                           for s, p in zip(table_inputs, pattern)):
                        result = 1
                        break
            values[output] = result
            continue
        index += 1
    return values


def _random_dag(structure: int):
    builder = ExprBuilder()
    pool = [builder.var(0), builder.var(1), builder.var(2),
            builder.true, builder.false]
    bits = structure
    for _ in range(10):
        op = bits & 3
        bits >>= 2
        a = pool[bits % len(pool)]
        bits >>= 3
        b = pool[bits % len(pool)]
        bits >>= 3
        pool.append([builder.and_, builder.or_, builder.xor,
                     lambda x, _: builder.not_(x)][op](a, b))
    return builder, pool[-2:]


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=2**40))
def test_verilog_simulation_matches_evaluator(structure):
    _, roots = _random_dag(structure)
    source = to_verilog(roots)
    for word in range(8):
        inputs = {f"b{i}": (word >> i) & 1 for i in range(3)}
        sim = simulate_verilog(source, inputs)
        want = evaluate(roots, {i: (word >> i) & 1 for i in range(3)})
        got = [sim[f"out{t}"] for t in range(len(roots))]
        assert got == want


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=2**40))
def test_blif_simulation_matches_evaluator(structure):
    _, roots = _random_dag(structure)
    source = to_blif(roots)
    for word in range(8):
        inputs = {f"b{i}": (word >> i) & 1 for i in range(3)}
        sim = simulate_blif(source, inputs)
        want = evaluate(roots, {i: (word >> i) & 1 for i in range(3)})
        got = [sim[f"out{t}"] for t in range(len(roots))]
        assert got == want


def test_sampler_circuit_exports():
    """The real sigma=2 circuit exports and re-simulates correctly."""
    params = GaussianParams.from_sigma(2, precision=8)
    circuit = compile_sampler_circuit(params)
    verilog = to_verilog(circuit.roots, module_name="gauss")
    blif = to_blif(circuit.roots, model_name="gauss")
    assert verilog.startswith("module gauss(")
    assert verilog.rstrip().endswith("endmodule")
    assert blif.startswith(".model gauss")
    assert blif.rstrip().endswith(".end")

    # Spot-check semantic agreement on a handful of inputs.
    from repro.bitslice import BitslicedKernel, pack_lane_bits
    kernel = BitslicedKernel(circuit.roots)
    for word in (0, 1, 0b10110010, 0b11111110, 255):
        bits = [(word >> i) & 1 for i in range(8)]
        want = [w & 1 for w in kernel(pack_lane_bits([bits], 8), 1)]
        sim_v = simulate_verilog(verilog,
                                 {f"b{i}": bits[i] for i in range(8)})
        sim_b = simulate_blif(blif,
                              {f"b{i}": bits[i] for i in range(8)})
        got_v = [sim_v[f"out{t}"] for t in range(len(circuit.roots))]
        got_b = [sim_b[f"out{t}"] for t in range(len(circuit.roots))]
        assert got_v == want
        assert got_b == want


def test_blif_statistics():
    builder = ExprBuilder()
    f = builder.or_(builder.and_(builder.var(0), builder.var(1)),
                    builder.not_(builder.var(2)))
    stats = blif_statistics(to_blif([f]))
    assert stats["tables"] == 4  # and, not, or, output alias
    assert stats["cubes"] >= 5


def test_verilog_constants():
    builder = ExprBuilder()
    roots = [builder.true, builder.false]
    sim = simulate_verilog(to_verilog(roots), {})
    assert sim["out0"] == 1
    assert sim["out1"] == 0
