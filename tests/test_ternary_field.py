"""Tests for the sigma = sqrt(5) ("ternary field") base instance.

Sec. 6: "Depending on the number field used this sigma can be either 2
or sqrt(5). In our work, we only used ... sigma = 2, the other
instance can be realized using the same methods."  This module
realizes it: sqrt(5) is irrational but sigma^2 = 5 is exact, so the
whole pipeline — matrix, Theorem 1, compilation, Falcon plug-in —
runs unchanged.
"""

import math
from fractions import Fraction

import pytest

from repro.core import (
    BitslicedSampler,
    GaussianParams,
    check_theorem1,
    compile_sampler_circuit,
    probability_matrix,
)
from repro.falcon import BASE_SIGMA_VARIANTS, SecretKey, make_base_sampler
from repro.rng import ChaChaSource

SQRT5 = GaussianParams(sigma_sq=Fraction(5), precision=32)


def test_variant_table():
    assert BASE_SIGMA_VARIANTS["binary"] == 4
    assert BASE_SIGMA_VARIANTS["ternary"] == 5


def test_sqrt5_support_bound():
    # floor(13 * sqrt(5)) = floor(29.068) = 29.
    assert SQRT5.support_bound == 29


def test_sqrt5_matrix_and_theorem1():
    matrix = probability_matrix(SQRT5)
    assert check_theorem1(matrix)
    assert matrix.rows[0] > matrix.rows[3] > matrix.rows[9]


def test_sqrt5_circuit_compiles_and_samples():
    circuit = compile_sampler_circuit(SQRT5)
    sampler = BitslicedSampler(circuit, source=ChaChaSource(1))
    values = sampler.sample_many(8000)
    mean = sum(values) / len(values)
    std = math.sqrt(sum(v * v for v in values) / len(values))
    assert abs(mean) < 4 * math.sqrt(5) / math.sqrt(8000)
    assert abs(std - math.sqrt(5)) < 0.1


def test_make_base_sampler_ternary():
    sampler = make_base_sampler("cdt-binary", source=ChaChaSource(2),
                                precision=32, field="ternary")
    values = [sampler.sample() for _ in range(4000)]
    std = math.sqrt(sum(v * v for v in values) / len(values))
    assert abs(std - math.sqrt(5)) < 0.12
    with pytest.raises(ValueError):
        make_base_sampler("cdt-binary", field="quaternary")


def test_falcon_signs_with_ternary_base():
    sk = SecretKey.generate(n=32, seed=9)
    sk.use_base_sampler("cdt-binary", source=ChaChaSource(3),
                        field="ternary")
    message = b"ternary instance"
    signature = sk.sign(message)
    assert sk.public_key.verify(message, signature)
    # Wider base => lower acceptance than the sigma = 2 instance.
    assert 0.1 < sk.sampler_z.acceptance_rate < 0.9


def test_sqrt5_delta_small():
    from repro.core import max_free_suffix_length
    params = GaussianParams(sigma_sq=Fraction(5), precision=48)
    delta = max_free_suffix_length(probability_matrix(params))
    assert delta <= 6  # between the sigma=2 and sigma=6.15 regimes
