"""Chaos suite: the serving plane under deterministic fault injection.

Every fault here comes from a seeded :class:`FaultPlan` — the same
plan injects the same faults in every run — and every test asserts
the *recovery* invariants the ISSUE pins:

* a SIGKILL'd shard worker fails only the in-flight round; the pool
  respawns it (bounded budget, warm replay) and post-respawn
  signatures are byte-identical to a direct ``sign_many``;
* no client call outlives its deadline — queued, in-round, or on the
  wire;
* a response lost or truncated on the wire is recovered by retry with
  the same req_id and the server's dedup cache — the message is
  signed exactly once;
* a crash between the keystore's claim-rename and serve is rolled
  back by the claim journal (no slot leaked), a crash after serve is
  rolled forward (no slot double-served);
* a dying refill thread is never silent and never disarms the
  watermark trigger;
* failure-path frame shapes are as secret-independent as the success
  path (the two-class CT audit covers them).

Pure stdlib asyncio + pytest, like the rest of the serving suites.
"""

import asyncio
import json
import os
import pickle
import time

import pytest

from repro.ct import audit_coalescing, failure_frame_shape_trace
from repro.falcon import KeyStore
from repro.falcon.serving import (
    CircuitBreaker,
    DeadlineExceeded,
    FaultPlan,
    InjectedFault,
    NetClient,
    NetServer,
    RetryPolicy,
    ServingUnavailable,
    ShardedKeyStore,
    ShardWorkerError,
    ShardWorkerPool,
    SigningService,
)


# -- the deterministic coin --------------------------------------------------

def test_fault_decisions_are_deterministic_per_plan():
    plan = FaultPlan(seed=11, drop_frame=0.5)
    first = [plan.injector().frame_action() for _ in range(1)]
    # Two injectors over the same plan replay the identical sequence.
    a, b = plan.injector(), plan.injector()
    sequence_a = [a.frame_action() for _ in range(64)]
    sequence_b = [b.frame_action() for _ in range(64)]
    assert sequence_a == sequence_b
    assert "drop" in sequence_a  # rate 0.5 over 64 draws must fire
    assert None in sequence_a    # ... and must not always fire
    # A different seed is a different schedule.
    other = FaultPlan(seed=12, drop_frame=0.5).injector()
    assert [other.frame_action() for _ in range(64)] != sequence_a
    del first


def test_fault_plan_survives_pickling_with_the_same_schedule():
    plan = FaultPlan(seed=13, kill_worker=0.5)
    clone = pickle.loads(pickle.dumps(plan))
    assert clone == plan
    mine = plan.injector()
    theirs = clone.injector()  # what a spawned worker builds
    assert [mine.kill_worker(0) for _ in range(32)] == \
        [theirs.kill_worker(0) for _ in range(32)]


def test_max_per_site_caps_fires_exactly():
    plan = FaultPlan(seed=14, kill_worker=1.0, max_per_site=2)
    injector = plan.injector()
    fired = [injector.kill_worker(0) for _ in range(10)]
    assert fired.count(True) == 2
    assert fired[:2] == [True, True]  # rate 1.0 fires immediately
    assert injector.stats.fired["kill-worker:0"] == 2
    assert injector.stats.evaluated["kill-worker:0"] == 10


def test_retry_policy_delay_is_deterministic_and_bounded():
    policy = RetryPolicy(attempts=3, backoff=0.05, multiplier=2.0,
                         jitter=0.5, seed=9)
    again = RetryPolicy(attempts=3, backoff=0.05, multiplier=2.0,
                        jitter=0.5, seed=9)
    for attempt in range(4):
        delay = policy.delay(attempt, token="tenant-a|3")
        assert delay == again.delay(attempt, token="tenant-a|3")
        base = 0.05 * 2.0 ** attempt
        assert 0.5 * base <= delay <= 1.5 * base
    # Different tokens de-synchronize (no thundering herd).
    assert policy.delay(0, token="x") != policy.delay(0, token="y")


# -- worker supervision ------------------------------------------------------

def test_worker_sigkill_fails_only_that_round_then_respawns():
    """The satellite: SIGKILL a shard worker mid-round.  Exactly that
    round's awaiters fail (with a ``ServingUnavailable``-compatible
    error), the pool respawns the worker within its budget, and the
    signatures signed after the respawn are byte-identical to a
    direct ``sign_many`` over the same deployment seed."""
    plan = FaultPlan(seed=1, kill_worker=1.0, max_per_site=1)
    messages = [b"chaos-%d" % i for i in range(3)]

    async def drive():
        store = ShardedKeyStore(shards=1, master_seed=51)
        with ShardWorkerPool(shards=1, master_seed=51,
                             fault_plan=plan,
                             restart_backoff=0.01) as pool:
            async with SigningService(store, n=8, max_batch=8,
                                      max_wait=0.3,
                                      worker_pool=pool) as service:
                with pytest.raises(ShardWorkerError):
                    await service.sign("tenant-a", b"doomed")
                # Only the doomed round failed; the next rounds ride
                # the respawned worker.
                signatures = await service.sign_all("tenant-a",
                                                    messages)
                metrics = service.metrics.as_dict()
            stats = pool.stats()
        return signatures, stats, metrics

    signatures, stats, metrics = asyncio.run(drive())
    assert stats["restarts"] == [1]
    assert stats["rounds_failed"] == [1]
    assert stats["alive"] == [True]
    assert metrics["failed_rounds"] == 1
    assert metrics["signed"] == len(messages)
    direct = ShardedKeyStore(shards=1, master_seed=51) \
        .signer("tenant-a", 8).sign_many(messages)
    assert [(s.salt, s.compressed) for s in signatures] == \
        [(s.salt, s.compressed) for s in direct]


def test_worker_kill_error_is_serving_unavailable():
    assert issubclass(ShardWorkerError, ServingUnavailable)
    assert issubclass(ServingUnavailable, ConnectionError)
    assert issubclass(DeadlineExceeded, TimeoutError)


def test_restart_budget_exhaustion_fails_fast():
    """A shard that keeps dying exhausts its restart budget; after
    that, rounds fail immediately instead of respawn-looping."""
    plan = FaultPlan(seed=2, kill_worker=1.0)  # every round dies
    with ShardWorkerPool(shards=1, master_seed=52, fault_plan=plan,
                         max_restarts=1,
                         restart_backoff=0.01) as pool:
        with pytest.raises(ShardWorkerError):
            pool.run_round(0, "tenant-a", "sign", 8, [b"one"])
        with pytest.raises(ShardWorkerError):  # the one respawn, dies
            pool.run_round(0, "tenant-a", "sign", 8, [b"two"])
        with pytest.raises(ShardWorkerError,
                           match="restart budget exhausted"):
            pool.run_round(0, "tenant-a", "sign", 8, [b"three"])
        stats = pool.stats()
    assert stats["restarts"] == [1]
    assert stats["rounds_failed"] == [2]


# -- client timeouts, retries, dedup -----------------------------------------

def test_client_connect_refused_raises_serving_unavailable():
    async def drive():
        probe = await asyncio.start_server(
            lambda r, w: None, "127.0.0.1", 0)
        port = probe.sockets[0].getsockname()[1]
        probe.close()
        await probe.wait_closed()
        with pytest.raises(ServingUnavailable):
            await NetClient.connect("127.0.0.1", port,
                                    connect_timeout=1.0)

    asyncio.run(drive())


def test_client_request_timeout_and_deadline_against_silent_server():
    """A server that accepts and never answers: the request timeout
    turns the hang into ``ServingUnavailable`` after bounded retries,
    and a deadline is never outlived — ``DeadlineExceeded`` arrives
    before the deadline plus scheduler jitter, not after."""

    async def drive():
        async def black_hole(reader, writer):
            await reader.read(-1)  # swallow everything, answer nothing

        server = await asyncio.start_server(black_hole,
                                            "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        loop = asyncio.get_running_loop()
        try:
            client = await NetClient.connect(
                "127.0.0.1", port, request_timeout=0.05,
                retry=RetryPolicy(attempts=2, backoff=0.01))
            try:
                with pytest.raises(ServingUnavailable):
                    await client.sign("tenant-a", b"void")
                started = loop.time()
                with pytest.raises(DeadlineExceeded):
                    await client.sign("tenant-a", b"late",
                                      deadline=loop.time() + 0.08)
                overshoot = loop.time() - started - 0.08
            finally:
                await client.close()
        finally:
            server.close()
            await server.wait_closed()
        return overshoot

    overshoot = asyncio.run(drive())
    assert overshoot < 0.25  # deadline + jitter, never a retry cycle


def test_pending_requests_fail_when_server_dies_mid_request():
    """The satellite bugfix: a server that takes the request and then
    drops the connection must fail the pending future with a clear
    ``ServingUnavailable`` — not hang the client forever."""

    async def drive():
        async def slam_door(reader, writer):
            await reader.read(64)  # take (part of) the request ...
            writer.close()         # ... and die

        server = await asyncio.start_server(slam_door, "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        try:
            client = await NetClient.connect(
                "127.0.0.1", port,
                retry=RetryPolicy(attempts=1))  # no retry: raw failure
            try:
                with pytest.raises(ServingUnavailable):
                    await asyncio.wait_for(
                        client.sign("tenant-a", b"orphaned"), 5.0)
            finally:
                await client.close()
        finally:
            server.close()
            await server.wait_closed()

    asyncio.run(drive())


def _wire(body, *, master_seed, fault_plan=None, **client_kwargs):
    """Run ``body(client, service, server)`` against a full loopback
    stack (sharded store → coalescer → framed socket server)."""

    async def drive():
        store = ShardedKeyStore(shards=1, master_seed=master_seed)
        # Warm the tenant's signer so first-checkout keygen latency
        # cannot outlast the short request timeouts these tests use.
        store.signer("tenant-a", 8)
        async with SigningService(store, n=8, max_wait=0.0) as service:
            server = NetServer(service, fault_plan=fault_plan)
            await server.start("127.0.0.1", 0)
            try:
                client = await NetClient.connect(
                    "127.0.0.1", server.port, **client_kwargs)
                try:
                    result = await body(client, service, server)
                finally:
                    await client.close()
            finally:
                await server.stop(stop_service=False)
        return result

    return asyncio.run(drive())


def test_dropped_response_recovered_by_retry_and_dedup():
    """The wire eats exactly one response frame.  The client retries
    with the SAME req_id; the server answers from its dedup cache —
    the message was signed once, and the recovered signature is
    byte-identical to a direct ``sign_many``."""
    plan = FaultPlan(seed=3, drop_frame=1.0, max_per_site=1)

    async def body(client, service, server):
        signature = await client.sign("tenant-a", b"dropped-once")
        return signature, service.metrics.signed, \
            server.metrics.deduped

    signature, signed, deduped = _wire(
        body, master_seed=53, fault_plan=plan, request_timeout=0.2,
        retry=RetryPolicy(attempts=3, backoff=0.02))
    assert signed == 1   # exactly-once effect over a lossy wire
    assert deduped == 1  # the retry was answered from the cache
    direct = ShardedKeyStore(shards=1, master_seed=53) \
        .signer("tenant-a", 8).sign_many([b"dropped-once"])[0]
    assert (signature.salt, signature.compressed) == \
        (direct.salt, direct.compressed)


def test_truncated_response_reconnects_and_dedups():
    """The wire truncates one response mid-frame and cuts the
    connection.  The client detects the unframed stream, reconnects,
    retries the same req_id, and the dedup cache replays the exact
    response bytes."""
    plan = FaultPlan(seed=4, truncate_frame=1.0, max_per_site=1)

    async def body(client, service, server):
        signature = await client.sign("tenant-a", b"cut-short")
        verdict = await client.verify("tenant-a", b"cut-short",
                                      signature)
        return signature, verdict, service.metrics.signed, \
            server.metrics.deduped

    signature, verdict, signed, deduped = _wire(
        body, master_seed=54, fault_plan=plan, request_timeout=0.5,
        retry=RetryPolicy(attempts=3, backoff=0.02))
    assert verdict is True
    assert signed == 1
    assert deduped == 1


# -- circuit breaker and shard failover --------------------------------------

def test_circuit_breaker_state_machine_on_injected_clock():
    clock = [0.0]
    breaker = CircuitBreaker(failures=2, reset_after=1.0,
                             clock=lambda: clock[0])
    assert breaker.allow() and breaker.state == "closed"
    breaker.record_failure()
    assert breaker.state == "closed"  # below threshold
    breaker.record_failure()
    assert breaker.state == "open" and breaker.opens == 1
    assert not breaker.allow()
    clock[0] = 0.5
    assert not breaker.allow()  # cooldown not over
    clock[0] = 1.0
    assert breaker.allow()      # the half-open probe
    assert breaker.state == "half-open"
    assert not breaker.allow()  # one probe at a time
    breaker.record_failure()    # probe failed: re-open, full cooldown
    assert breaker.state == "open" and breaker.opens == 2
    clock[0] = 2.0
    assert breaker.allow()
    breaker.record_success()
    assert breaker.state == "closed" and breaker.allow()


def test_breaker_sheds_tenant_to_ring_neighbour():
    """A home shard that keeps failing trips its breaker; the next
    request routes to the tenant's next ring shard and succeeds there
    (recorded as a shed)."""

    async def drive():
        store = ShardedKeyStore(shards=2, master_seed=55)
        home = store.shard_for("tenant-a")

        def broken_home_signer(tenant, n):
            raise RuntimeError("injected home-shard checkout failure")

        store.signer = broken_home_signer  # home path only; the
        #                                    failover path uses
        #                                    signer_on and stays live
        async with SigningService(store, n=8, max_wait=0.0,
                                  breaker_failures=1,
                                  breaker_reset=30.0) as service:
            with pytest.raises(RuntimeError):
                await service.sign("tenant-a", b"fails-home")
            signature = await service.sign("tenant-a", b"sheds")
            fallback = next(s for s in
                            store.shard_preference("tenant-a")
                            if s != home)
            verdict = store.signer_on(fallback, "tenant-a", 8) \
                .public_key.verify(b"sheds", signature)
            state = service.breakers[home].state
            shed = service.metrics.shed_requests
        return verdict, state, shed

    verdict, state, shed = asyncio.run(drive())
    assert verdict is True  # signed under the fallback shard's key
    assert state == "open"
    assert shed >= 1


def test_every_breaker_open_fails_fast():
    async def drive():
        store = ShardedKeyStore(shards=1, master_seed=56)

        def broken_signer(tenant, n):
            raise RuntimeError("injected checkout failure")

        store.signer = broken_signer
        async with SigningService(store, n=8, max_wait=0.0,
                                  breaker_failures=1,
                                  breaker_reset=30.0) as service:
            with pytest.raises(RuntimeError):
                await service.sign("tenant-a", b"trips")
            with pytest.raises(ServingUnavailable,
                               match="circuit breaker"):
                await service.sign("tenant-a", b"refused")

    asyncio.run(drive())


# -- deadlines through the service -------------------------------------------

def test_service_deadline_is_never_outlived():
    """A round that takes 0.4 s cannot hold a 0.1 s-deadline caller
    hostage: the caller gets ``DeadlineExceeded`` at its deadline."""

    async def drive():
        store = ShardedKeyStore(shards=1, master_seed=57)
        real_signer = store.signer

        def slow_signer(tenant, n):
            time.sleep(0.4)
            return real_signer(tenant, n)

        store.signer = slow_signer
        async with SigningService(store, n=8, max_wait=0.0) as service:
            loop = asyncio.get_running_loop()
            started = loop.time()
            with pytest.raises(DeadlineExceeded):
                await service.sign("tenant-a", b"late",
                                   deadline=loop.time() + 0.1)
            elapsed = loop.time() - started
            expired = service.metrics.deadline_expired
        return elapsed, expired

    elapsed, expired = asyncio.run(drive())
    assert expired >= 1
    assert elapsed < 0.35  # did not wait out the 0.4 s round


def test_service_deadline_already_passed_is_refused_up_front():
    async def drive():
        store = ShardedKeyStore(shards=1, master_seed=58)
        async with SigningService(store, n=8) as service:
            loop = asyncio.get_running_loop()
            with pytest.raises(DeadlineExceeded):
                await service.sign("tenant-a", b"stale",
                                   deadline=loop.time() - 1.0)
            assert service.metrics.deadline_expired == 1
            assert service.metrics.requests == 0  # never enqueued

    asyncio.run(drive())


# -- keystore: refill errors and the claim journal ---------------------------

def test_refill_failure_recorded_and_trigger_rearmed():
    """The satellite bugfix: a refill thread that dies records the
    error in stats (``refill_errors`` / ``last_refill_error``) and
    re-arms the watermark trigger — the next below-watermark checkout
    refills for real and clears the error."""
    plan = FaultPlan(seed=5, fail_refill=1.0, max_per_site=1)
    store = KeyStore(master_seed=59, low_watermark=2, refill_target=3,
                     fault_plan=plan)
    store.generate_ahead(8, 1)
    store.acquire(8)  # empties the pool → refill fires and dies
    store.join_refills()
    stats = store.stats()
    assert stats.refill_errors == 1
    assert stats.last_refill_error.startswith("InjectedFault")
    assert stats.as_dict()["last_refill_error"] == \
        stats.last_refill_error
    assert stats.refills == 0
    # Trigger re-armed: the next checkout refills successfully (the
    # one-shot fault is spent) and clears the recorded error.
    store.acquire(8)
    store.join_refills()
    stats = store.stats()
    assert stats.refills == 1
    assert stats.last_refill_error == ""
    assert store.available(8) >= 2
    store.close()


def test_claim_crash_rolls_back_through_the_journal(tmp_path):
    """A claimant that dies between the claim-rename and serving the
    key leaves a scratch file plus a ``claimed`` journal entry.  The
    next store over the directory rolls the stale claim back into its
    slot: no key material leaked, and both pooled slots still serve
    exactly once each."""
    plan = FaultPlan(seed=6, crash_claim=1.0, max_per_site=1)
    store = KeyStore(tmp_path, master_seed=60, fault_plan=plan,
                     stale_claim_seconds=60.0)
    store.generate_ahead(8, 2)
    with pytest.raises(InjectedFault):
        store.acquire(8)
    store.close()
    scratches = list(tmp_path.glob("*.claim-*"))
    assert len(scratches) == 1  # the crash left its scratch behind
    journal = (tmp_path / "keystore-claims.jsonl").read_text()
    assert '"claimed"' in journal and '"served"' not in journal
    # Age the scratch the way a genuinely crashed claimant's file
    # would be by restart time (fresh claims are left alone — they
    # may be another process's live checkout).
    stale = time.time() - 300
    os.utime(scratches[0], (stale, stale))
    recovered = KeyStore(tmp_path, master_seed=60,
                         stale_claim_seconds=60.0)
    assert recovered.stats().claims_recovered == 1
    assert not list(tmp_path.glob("*.claim-*"))
    assert recovered.available(8) == 2  # the slot is back in the pool
    first = recovered.acquire(8)
    second = recovered.acquire(8)
    # No double-serve: the two checkouts are distinct key material.
    sig_a, sig_b = first.sign(b"probe"), second.sign(b"probe")
    assert (sig_a.salt, sig_a.compressed) != \
        (sig_b.salt, sig_b.compressed)
    recovered.close()


def test_fresh_journaled_claim_is_left_alone(tmp_path):
    """A *fresh* scratch with a journal entry is a live claim in
    another process — recovery must not steal it back."""
    plan = FaultPlan(seed=6, crash_claim=1.0, max_per_site=1)
    store = KeyStore(tmp_path, master_seed=61, fault_plan=plan,
                     stale_claim_seconds=3600.0)
    store.generate_ahead(8, 2)
    with pytest.raises(InjectedFault):
        store.acquire(8)
    store.close()
    recovered = KeyStore(tmp_path, master_seed=61,
                         stale_claim_seconds=3600.0)
    assert recovered.stats().claims_recovered == 0
    assert len(list(tmp_path.glob("*.claim-*"))) == 1
    assert recovered.available(8) == 1  # only the unclaimed slot
    recovered.close()


def test_served_journal_entry_rolls_forward_on_restart(tmp_path):
    """A crash after the key was served but before the scratch unlink:
    recovery unlinks the scratch (rolling the claim forward) instead
    of re-pooling a key someone already holds."""
    store = KeyStore(tmp_path, master_seed=62)
    store.generate_ahead(8, 2)
    store.close()
    slot = sorted(tmp_path.glob("falcon_n*.skey"))[0]
    scratch = slot.with_name(slot.name + ".claim-9999-deadbeef")
    slot.rename(scratch)
    with open(tmp_path / "keystore-claims.jsonl", "a",
              encoding="utf-8") as handle:
        handle.write(json.dumps({"state": "claimed",
                                 "scratch": scratch.name,
                                 "slot": slot.name}) + "\n")
        handle.write(json.dumps({"state": "served",
                                 "scratch": scratch.name}) + "\n")
    recovered = KeyStore(tmp_path, master_seed=62)
    assert recovered.stats().claims_rolled_forward == 1
    assert not scratch.exists()
    assert recovered.available(8) == 1  # served slot NOT re-pooled
    recovered.close()


# -- failure paths under the CT audit ----------------------------------------

def test_failure_frame_shapes_are_secret_independent():
    arrivals = [("tenant-%d" % (i % 3),
                 "verify" if i % 4 == 0 else "sign")
                for i in range(24)]
    zeros = [b"\x00" * 32] * 24
    secrets = [os.urandom(32) for _ in range(24)]
    assert failure_frame_shape_trace(arrivals, zeros) == \
        failure_frame_shape_trace(arrivals, secrets)


def test_coalescing_audit_covers_failure_shapes():
    result = audit_coalescing(tenants=2, requests=32, max_batch=8)
    assert result.failure_shapes_identical
    assert not result.leaking
