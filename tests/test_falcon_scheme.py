"""End-to-end tests of the Falcon signature scheme."""

import math

import pytest

from repro.falcon import (
    BASE_SAMPLER_BACKENDS,
    PAPER_LEVELS,
    Q,
    SecretKey,
    Signature,
    falcon_params,
    hash_to_point,
)
from repro.rng import ChaChaSource

# Session-scope small key: keygen is the slow part of these tests.
_KEYS: dict[int, SecretKey] = {}


def _secret_key(n=64, seed=1) -> SecretKey:
    if (n, seed) not in _KEYS:
        _KEYS[(n, seed)] = SecretKey.generate(n=n, seed=seed)
    return _KEYS[(n, seed)]


def test_sign_verify_round_trip():
    sk = _secret_key()
    message = b"attack at dawn"
    signature = sk.sign(message)
    assert sk.public_key.verify(message, signature)


def test_tampered_message_rejected():
    sk = _secret_key()
    signature = sk.sign(b"attack at dawn")
    assert not sk.public_key.verify(b"attack at dusk", signature)


def test_tampered_signature_rejected():
    sk = _secret_key()
    signature = sk.sign(b"message")
    flipped = bytearray(signature.compressed)
    flipped[0] ^= 0x40
    tampered = Signature(salt=signature.salt,
                         compressed=bytes(flipped))
    assert not sk.public_key.verify(b"message", tampered)


def test_wrong_key_rejected():
    sk = _secret_key()
    other = _secret_key(seed=2)
    signature = sk.sign(b"message")
    assert not other.public_key.verify(b"message", signature)


def test_prng_choice_round_trips():
    """Signing works under any registered PRNG backend (the paper's
    ChaCha-vs-Keccak axis, now selectable end to end)."""
    sk = SecretKey.generate(n=32, seed=7, prng="shake256",
                            base_backend="cdt-binary")
    message = b"prng choice"
    assert sk.public_key.verify(message, sk.sign(message))


def test_signatures_are_randomized():
    sk = _secret_key()
    a = sk.sign(b"same message")
    b = sk.sign(b"same message")
    assert a.salt != b.salt
    assert a.compressed != b.compressed
    assert sk.public_key.verify(b"same message", a)
    assert sk.public_key.verify(b"same message", b)


@pytest.mark.parametrize("backend", sorted(BASE_SAMPLER_BACKENDS))
def test_all_base_samplers_produce_valid_signatures(backend):
    """The Table 1 experiment's core invariant: every backend works."""
    sk = _secret_key()
    sk.use_base_sampler(backend, source=ChaChaSource(33))
    message = f"backend {backend}".encode()
    signature = sk.sign(message)
    assert sk.public_key.verify(message, signature)


def test_signature_norm_within_bound():
    sk = _secret_key()
    params = falcon_params(sk.n)
    from repro.falcon import center_mod_q, decompress, mul_ntt
    message = b"norm check"
    signature = sk.sign(message)
    s2 = decompress(signature.compressed, sk.n)
    hashed = hash_to_point(message, signature.salt, sk.n)
    s1 = [center_mod_q(c - x)
          for c, x in zip(hashed, mul_ntt(s2, sk.keys.h))]
    norm_sq = sum(c * c for c in s1) + sum(c * c for c in s2)
    assert 0 < norm_sq <= params.sig_bound
    # And the norm is in the expected Gaussian regime, not trivially 0.
    assert norm_sq > 0.2 * params.sigma ** 2 * 2 * sk.n


def test_hash_to_point_deterministic_and_uniform():
    digest_a = hash_to_point(b"m", b"\x01" * 40, 256)
    digest_b = hash_to_point(b"m", b"\x01" * 40, 256)
    assert digest_a == digest_b
    assert all(0 <= c < Q for c in digest_a)
    different_salt = hash_to_point(b"m", b"\x02" * 40, 256)
    assert digest_a != different_salt
    # Coarse uniformity: mean of Z_q uniform is ~q/2.
    big = hash_to_point(b"uniformity", b"\x00" * 40, 1024)
    mean = sum(big) / len(big)
    assert abs(mean - Q / 2) < 4 * Q / math.sqrt(12 * 1024)


def test_salt_length_matches_spec():
    sk = _secret_key()
    signature = sk.sign(b"x")
    assert len(signature.salt) == 40


def test_samples_per_signature():
    sk = _secret_key()
    assert sk.samples_per_signature() == 2 * sk.n


def test_base_sampler_call_volume():
    """ffSampling calls SamplerZ 2n times per attempt."""
    sk = _secret_key()
    sk.use_base_sampler("cdt-binary", source=ChaChaSource(44))
    before = sk.sampler_z.accepted
    attempts_before = sk.signing_attempts
    sk.sign(b"count calls")
    accepted = sk.sampler_z.accepted - before
    attempts = sk.signing_attempts - attempts_before
    assert accepted == attempts * 2 * sk.n


def test_paper_levels_table():
    assert PAPER_LEVELS == {"Level 1": 256, "Level 2": 512,
                            "Level 3": 1024}


def test_params_official_constants():
    p512 = falcon_params(512)
    assert p512.sig_bound == 34034726
    assert p512.sigma == pytest.approx(165.736617183, abs=1e-6)
    p1024 = falcon_params(1024)
    assert p1024.sig_bound == 70265242
    assert p1024.sigma == pytest.approx(168.388571447, abs=1e-6)
    with pytest.raises(ValueError):
        falcon_params(100)


def test_params_formula_close_to_official():
    """The derived formula reproduces the official 512 constants."""
    import repro.falcon.params as params_module
    eps = 1.0 / math.sqrt(128 * 2.0 ** 64)
    smoothing = (1.0 / math.pi) * math.sqrt(
        math.log(4 * 512 * (1 + 1 / eps)) / 2)
    sigma = 1.17 * math.sqrt(params_module.Q) * smoothing
    assert sigma == pytest.approx(falcon_params(512).sigma, rel=2e-4)


def test_verify_rejects_garbage_compressed():
    sk = _secret_key()
    signature = sk.sign(b"m")
    garbage = Signature(salt=signature.salt,
                        compressed=b"\xff" * len(signature.compressed))
    assert not sk.public_key.verify(b"m", garbage)
