"""The leakage-regression gate: the ML distinguisher, run like a KAT.

This file is executed by BOTH CI legs (with and without NumPy).  The
features are bit-identical across legs; probe accuracies could drift in
the last float digits between summation orders, so every assertion here
is about *verdicts* (booleans with margins), never exact accuracies.

The committed baseline ``benchmarks/reports/LEAKAGE_report.json`` pins
the audit's shape: same targets, same verdicts, control caught.
Regenerate with::

    PYTHONPATH=src python -m repro.cli ct-leakage --profile quick \
        --seed 2026 --json benchmarks/reports/LEAKAGE_report.json
"""

import json
import random
from pathlib import Path

import pytest

from repro.ct.leakage import (
    audit,
    kfold_accuracy,
    permutation_null,
    probe_trace_set,
    train_logistic,
)
from repro.ct.traces import TraceSet

AUDIT_SEED = 2026
BASELINE = (Path(__file__).resolve().parent.parent
            / "benchmarks" / "reports" / "LEAKAGE_report.json")


@pytest.fixture(scope="module")
def quick_audit():
    """One quick-profile audit shared by the gating assertions."""
    return audit(profile="quick", seed=AUDIT_SEED)


# -- the gate -------------------------------------------------------------

def test_audit_passes(quick_audit):
    """THE regression gate: no honest target may be distinguishable."""
    assert quick_audit.leaking_targets == [], quick_audit.render()


def test_positive_control_caught(quick_audit):
    """The planted leak MUST be flagged — an unflagged control means
    the harness went blind, which is a failure of the harness, not a
    success of the code."""
    control = quick_audit.positive_control
    assert control.flagged, quick_audit.render()
    # The separation is decisive, not marginal: the leaky sampler's
    # value-correlated loads push the probe far above its null.
    assert control.accuracy > control.null_max + 0.15


def test_audit_verdict(quick_audit):
    assert quick_audit.passed
    assert quick_audit.control_caught


def test_audit_covers_every_layer(quick_audit):
    assert set(quick_audit.targets) == {
        "batched-sampler", "samplerz", "ffsampling",
        "serving-rounds", "serving-frames"}


def test_matches_committed_baseline(quick_audit):
    """Verdict-for-verdict agreement with the committed report."""
    baseline = json.loads(BASELINE.read_text())
    assert baseline["passed"] is True
    assert baseline["seed"] == AUDIT_SEED
    assert set(baseline["targets"]) == set(quick_audit.targets)
    for name, report in quick_audit.targets.items():
        assert report.flagged == baseline["targets"][name]["flagged"], \
            name
    assert quick_audit.positive_control.flagged \
        == baseline["positive_control"]["flagged"]


def test_report_json_round_trip(quick_audit):
    decoded = json.loads(quick_audit.to_json())
    assert decoded["passed"] is True
    assert decoded["profile"] == "quick"
    for name in quick_audit.targets:
        assert decoded["targets"][name]["n_traces"] > 0


# -- the probe on synthetic data ------------------------------------------

def _synthetic(separation: float, n: int = 120,
               seed: int = 5) -> TraceSet:
    """Two-class Gaussian blobs ``separation`` apart in one feature."""
    rng = random.Random(seed)
    traces = TraceSet("synthetic", ("f0", "f1", "f2"))
    for index in range(n):
        label = index & 1
        traces.append([rng.gauss(label * separation, 1.0),
                       rng.gauss(0.0, 1.0),
                       rng.gauss(0.0, 1.0)], label)
    return traces


def test_probe_flags_separable_classes():
    report = probe_trace_set(_synthetic(6.0), folds=3,
                             permutations=8, seed=1)
    assert report.flagged
    assert report.accuracy > 0.95


def test_probe_passes_unlearnable_classes():
    report = probe_trace_set(_synthetic(0.0), folds=3,
                             permutations=8, seed=1)
    assert not report.flagged


def test_probe_passes_constant_features():
    """Zero-variance features carry no signal; standardization zeroes
    them instead of dividing by zero, and the verdict is clean."""
    traces = TraceSet("constant", ("a", "b"))
    for index in range(40):
        traces.append([7.0, 3.0], index & 1)
    report = probe_trace_set(traces, folds=3, permutations=8, seed=2)
    assert not report.flagged
    assert report.accuracy <= report.null_bound


def test_probe_deterministic():
    first = probe_trace_set(_synthetic(1.0), folds=3,
                            permutations=6, seed=9)
    second = probe_trace_set(_synthetic(1.0), folds=3,
                             permutations=6, seed=9)
    assert first.accuracy == second.accuracy
    assert first.null_accuracies == second.null_accuracies


# -- edge cases and clear errors ------------------------------------------

def test_empty_trace_set_rejected():
    with pytest.raises(ValueError, match="empty"):
        probe_trace_set(TraceSet("empty", ("a",)))


def test_single_class_rejected():
    traces = TraceSet("mono", ("a",))
    for _ in range(20):
        traces.append([1.0], 1)
    with pytest.raises(ValueError, match="single-class"):
        probe_trace_set(traces)


def test_ragged_features_rejected():
    traces = TraceSet("ragged", ("a", "b"))
    traces.append([1.0, 2.0], 0)
    traces.features.append([1.0])
    traces.labels.append(1)
    with pytest.raises(ValueError, match="ragged"):
        probe_trace_set(traces)


def test_kfold_needs_members_per_class():
    features = [[0.0], [1.0], [0.5], [0.25]]
    with pytest.raises(ValueError, match="folds"):
        kfold_accuracy(features, [0, 1, 1, 1], folds=3, seed=0)


def test_kfold_rejects_single_fold():
    with pytest.raises(ValueError, match="2 folds"):
        kfold_accuracy([[0.0]] * 8, [0, 1] * 4, folds=1, seed=0)


def test_permutation_null_needs_permutations():
    with pytest.raises(ValueError, match="permutation"):
        permutation_null([[0.0]] * 12, [0, 1] * 6, folds=2,
                         permutations=0, seed=0)


def test_train_logistic_rejects_empty():
    with pytest.raises(ValueError):
        train_logistic([], [])


def test_unknown_profile_rejected():
    with pytest.raises(ValueError, match="profile"):
        audit(profile="overnight")


def test_unknown_target_rejected():
    with pytest.raises(ValueError, match="unknown audit targets"):
        audit(profile="quick", targets=["samplerz", "tls-handshake"])


def test_targets_subset_runs():
    report = audit(profile="quick", seed=AUDIT_SEED,
                   targets=["serving-rounds"])
    assert set(report.targets) == {"serving-rounds"}
    assert report.control_caught  # the control always runs
