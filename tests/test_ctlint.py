"""Tests for the constant-time taint linter (``repro.ctlint``).

Four layers:

* **positive controls**: every rule in the catalogue fires on its
  planted fixture line (``tests/ctlint_fixtures/``) and stays silent
  on the clean twin — a linter that silently stops detecting a rule
  fails here, not just in the CI gate;
* **taint-engine units**: decorator seeding, registry seeding,
  declassifiers, aliasing, via :func:`repro.ctlint.lint_source`;
* **suppression / baseline machinery**: allow vs vartime statuses,
  missing-reason and unused-suppression meta rules, module
  exemptions, baseline round-trip and staleness;
* **the repo gate itself**: ``src/repro`` lints clean against the
  committed baseline, and the static verdict per sampler backend
  agrees with the dynamic (dudect) verdict table — the
  ``constant_time`` flag every leakage report keys on.
"""

import json
import re
from pathlib import Path

import pytest

from repro.baselines import SAMPLER_BACKENDS
from repro.cli import main
from repro.ctlint import (
    ASYNC_RULES,
    CT_RULES,
    DEFAULT_REGISTRY,
    RULES,
    LintReport,
    lint_paths,
    lint_source,
    scope_verdict,
)
from repro.ctlint.annotations import secret_params

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_REPRO = REPO_ROOT / "src" / "repro"
FIXTURES = Path(__file__).resolve().parent / "ctlint_fixtures"
BASELINE = REPO_ROOT / "benchmarks" / "reports" / "CTLINT_baseline.json"

_PLANT_RE = re.compile(r"#\s*PLANT:\s*([\w-]+)")


def planted_lines(fixture: Path) -> list[tuple[str, int]]:
    """(rule, line) pairs for every ``# PLANT: <rule>`` tag."""
    out = []
    for number, line in enumerate(fixture.read_text().splitlines(), 1):
        match = _PLANT_RE.search(line)
        if match:
            out.append((match.group(1), number))
    return out


def lint_fixture(name: str):
    path = FIXTURES / name
    return lint_source(path.read_text(), str(path))


# -- positive controls -------------------------------------------------------

def test_every_planted_ct_rule_fires():
    findings = lint_fixture("ct_planted.py")
    located = {(f.rule, f.line) for f in findings}
    plants = planted_lines(FIXTURES / "ct_planted.py")
    assert plants, "fixture lost its PLANT tags"
    for rule, line in plants:
        assert (rule, line) in located, \
            f"{rule} did not fire on ct_planted.py:{line}"
    # the planted corpus exercises every CT rule at least once
    assert {rule for rule, _ in plants} == set(CT_RULES)


def test_every_planted_async_rule_fires():
    findings = lint_fixture("async_planted.py")
    located = {(f.rule, f.line) for f in findings}
    plants = planted_lines(FIXTURES / "async_planted.py")
    for rule, line in plants:
        assert (rule, line) in located, \
            f"{rule} did not fire on async_planted.py:{line}"
    assert {rule for rule, _ in plants} == set(ASYNC_RULES)


def test_clean_twins_are_silent():
    for name in ("ct_clean.py", "async_clean.py"):
        findings = lint_fixture(name)
        assert findings == [], \
            f"{name} should lint clean, got {[f.as_dict() for f in findings]}"


def test_planted_findings_all_gate():
    findings = lint_fixture("ct_planted.py")
    assert findings and all(f.status == "open" for f in findings)


# -- taint engine units ------------------------------------------------------

def test_decorator_seeds_taint():
    findings = lint_source(
        "from repro.ctlint.annotations import secret_params\n"
        "@secret_params('key')\n"
        "def f(key, n):\n"
        "    return key / n\n")
    assert [f.rule for f in findings] == ["vartime-div"]


def test_registry_call_seeds_taint():
    findings = lint_source(
        "def f(sampler):\n"
        "    draw = sampler.sample()\n"
        "    return draw ** 2\n")
    assert [f.rule for f in findings] == ["vartime-pow"]


def test_declassifier_launders_taint():
    findings = lint_source(
        "from repro.ctlint.annotations import secret_params\n"
        "@secret_params('key')\n"
        "def f(key):\n"
        "    size = len(key)\n"
        "    return size / 2\n")
    assert findings == []


def test_alias_of_vartime_callable_is_tracked():
    findings = lint_source(
        "import math\n"
        "from repro.ctlint.annotations import secret_params\n"
        "@secret_params('key')\n"
        "def f(key):\n"
        "    e = math.exp\n"
        "    return e(key)\n")
    assert [f.rule for f in findings] == ["vartime-call"]


def test_taint_flows_through_assignment_chain():
    findings = lint_source(
        "from repro.ctlint.annotations import secret_params\n"
        "@secret_params('key')\n"
        "def f(key, table):\n"
        "    masked = key & 0xFF\n"
        "    widened = [masked + i for i in range(4)]\n"
        "    return table[widened[0]]\n")
    assert "secret-index" in {f.rule for f in findings}


def test_secret_attribute_suffix_seeds_taint():
    findings = lint_source(
        "def f(sk):\n"
        "    return sk.keys.f[0] / 3\n")
    assert [f.rule for f in findings] == ["vartime-div"]


def test_runtime_decorator_records_and_merges_names():
    @secret_params("a")
    @secret_params("b")
    def f(a, b):  # pragma: no cover - never called
        return a + b

    assert set(f.__ct_secret_params__) == {"a", "b"}
    with pytest.raises(ValueError):
        secret_params()
    with pytest.raises(ValueError):
        secret_params("")


# -- suppression machinery ---------------------------------------------------

def test_suppression_statuses_and_meta_rules():
    findings = lint_fixture("suppressed.py")
    by_rule = {f.rule: f for f in findings}
    assert by_rule["secret-branch"].status == "allowed"
    assert by_rule["vartime-div"].status == "vartime"
    assert by_rule["secret-ternary"].status == "allowed"
    assert by_rule["suppression-missing-reason"].status == "open"
    assert by_rule["unused-suppression"].status == "open"
    report = LintReport(findings=findings)
    assert not report.gate_ok  # the meta findings gate


def test_module_exemption():
    source = (
        "# ct: exempt(ct): fixture module fully reviewed\n"
        "from repro.ctlint.annotations import secret_params\n"
        "@secret_params('key')\n"
        "def f(key):\n"
        "    return key / 3\n")
    assert lint_source(source) == []
    # A reasonless exemption does not exempt: the pack still runs AND
    # the pragma itself is flagged.
    reasonless = source.replace(": fixture module fully reviewed", ":")
    rules = {f.rule for f in lint_source(reasonless)}
    assert rules == {"vartime-div", "suppression-missing-reason"}


def test_exempt_ct_keeps_async_pack():
    findings = lint_source(
        "# ct: exempt(ct): reviewed\n"
        "import time\n"
        "async def f():\n"
        "    time.sleep(1)\n")
    assert [f.rule for f in findings] == ["async-blocking-call"]


# -- baseline ----------------------------------------------------------------

def test_baseline_roundtrip(tmp_path):
    fixture = FIXTURES / "ct_planted.py"
    report = lint_paths([fixture])
    assert not report.gate_ok
    baseline_path = tmp_path / "baseline.json"
    report.write_baseline(baseline_path)
    entries = LintReport.load_baseline(baseline_path)
    rebaselined = lint_paths([fixture], baseline=entries,
                             baseline_path=str(baseline_path))
    assert rebaselined.gate_ok
    assert all(f.status == "baselined" for f in rebaselined.findings)
    assert rebaselined.stale_baseline == []


def test_baseline_staleness_is_surfaced_not_gating(tmp_path):
    fixture = FIXTURES / "ct_planted.py"
    report = lint_paths([fixture])
    entries = report.baseline_entries()
    entries.append({"path": "gone.py", "rule": "vartime-div",
                    "scope": "f", "snippet": "x / y",
                    "reason": "stale"})
    rebaselined = lint_paths([fixture], baseline=entries)
    assert rebaselined.gate_ok
    assert len(rebaselined.stale_baseline) == 1


# -- the repo gate -----------------------------------------------------------

@pytest.fixture(scope="module")
def repo_report():
    entries = LintReport.load_baseline(BASELINE)
    return lint_paths([SRC_REPRO], baseline=entries,
                      baseline_path=str(BASELINE))


def test_src_repro_gates_clean(repo_report):
    open_findings = [f.as_dict() for f in repo_report.open_findings]
    assert repo_report.gate_ok, open_findings
    assert repo_report.stale_baseline == []


#: Where each registered backend's draw path lives: (module path
#: suffix, class-scope prefix or None for whole-module).  adapters.py
#: hosts both a leaky and a constant-time backend, hence class scopes.
BACKEND_SCOPES = {
    "cdt-byte-scan": [("baselines/byte_scan.py", None)],
    "cdt-binary": [("baselines/cdt.py", None)],
    "cdt-linear": [("baselines/linear_scan.py", None)],
    "cdt-bisection": [("baselines/bisection.py", None)],
    "knuth-yao": [("baselines/adapters.py", "KnuthYaoIntegerSampler"),
                  ("core/knuth_yao.py", None)],
    "bitsliced": [("baselines/adapters.py", "BitslicedIntegerSampler"),
                  ("core/sampler.py", "BitslicedSampler")],
}


def test_backend_scope_map_covers_registry():
    assert set(BACKEND_SCOPES) == set(SAMPLER_BACKENDS)


def test_bernoulli_sampler_lints_variable_time(repo_report):
    """BernoulliSampler (standalone, not in the adapter registry)
    advertises ``constant_time = False``; the linter agrees."""
    from repro.baselines.bernoulli import BernoulliSampler

    assert not BernoulliSampler.constant_time
    assert scope_verdict(repo_report.findings,
                         "baselines/bernoulli.py") == "variable-time"


@pytest.mark.parametrize("backend", sorted(BACKEND_SCOPES))
def test_lint_verdict_agrees_with_dudect_table(backend, repo_report):
    """Static verdict == dynamic verdict, per backend.

    The dudect/leakage harness classifies each backend through its
    ``constant_time`` flag (the measured verdict table pins that flag).
    The linter must reach the same conclusion statically: every leaky
    backend carries at least one acknowledged-variable-time finding in
    its draw path, every constant-time backend carries none (allow
    waivers assert reviewed constant-timeness and do not count).
    """
    verdicts = [scope_verdict(repo_report.findings, suffix, prefix)
                for suffix, prefix in BACKEND_SCOPES[backend]]
    static = ("variable-time" if "variable-time" in verdicts
              else "constant-time")
    dynamic = ("constant-time" if SAMPLER_BACKENDS[backend].constant_time
               else "variable-time")
    assert static == dynamic, (backend, verdicts)


# -- CLI ---------------------------------------------------------------------

def test_cli_exits_nonzero_on_planted_fixture(tmp_path):
    code = main(["ct-lint", str(FIXTURES / "ct_planted.py"),
                 "--baseline", str(tmp_path / "absent.json")])
    assert code == 1


def test_cli_exits_zero_on_clean_fixture(tmp_path, capsys):
    code = main(["ct-lint", str(FIXTURES / "ct_clean.py"),
                 "--baseline", str(tmp_path / "absent.json")])
    assert code == 0
    assert "gate: PASS" in capsys.readouterr().out


def test_cli_repo_gate_with_committed_baseline(capsys):
    code = main(["ct-lint", str(SRC_REPRO), "--baseline", str(BASELINE)])
    assert code == 0
    assert "gate: PASS" in capsys.readouterr().out


def test_cli_json_report(tmp_path):
    out = tmp_path / "report.json"
    code = main(["ct-lint", str(FIXTURES / "suppressed.py"),
                 "--baseline", str(tmp_path / "absent.json"),
                 "--json", str(out)])
    assert code == 1
    payload = json.loads(out.read_text())
    assert payload["gate_ok"] is False
    rules = {f["rule"] for f in payload["findings"]}
    assert "suppression-missing-reason" in rules
    assert {"rule", "path", "line", "scope", "status",
            "message"} <= set(payload["findings"][0])


def test_cli_list_rules(capsys):
    assert main(["ct-lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in RULES:
        assert rule in out


def test_cli_write_baseline_roundtrip(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    fixture = str(FIXTURES / "ct_planted.py")
    assert main(["ct-lint", fixture, "--baseline", str(baseline),
                 "--write-baseline"]) == 0
    capsys.readouterr()
    assert main(["ct-lint", fixture, "--baseline", str(baseline)]) == 0
    assert "baselined" in capsys.readouterr().out


def test_default_registry_is_extensible():
    extended = DEFAULT_REGISTRY.replace(
        secret_returning=DEFAULT_REGISTRY.secret_returning | {"mystery"})
    findings = lint_source(
        "def f(source, table):\n"
        "    value = mystery(source)\n"
        "    return table[value]\n",
        registry=extended)
    assert [f.rule for f in findings] == ["secret-index"]
