"""Tests for ffLDL trees and fast Fourier sampling."""

import math
import random

from repro.falcon import (
    SIGMA_MAX,
    build_ldl_tree,
    falcon_params,
    ff_sampling,
    ifft,
    normalize_tree,
    tree_leaf_sigmas,
)
from repro.falcon.ffsampling import LdlLeaf, LdlNode
from repro.falcon.fft import add_fft, adj_fft, fft, mul_fft, neg_fft
from repro.falcon.ntrugen import generate_keys
from repro.rng import ChaChaSource


def _gram_from_keys(keys):
    b00 = fft([float(c) for c in keys.g])
    b01 = neg_fft(fft([float(c) for c in keys.f]))
    b10 = fft([float(c) for c in keys.G])
    b11 = neg_fft(fft([float(c) for c in keys.F]))
    g00 = add_fft(mul_fft(b00, adj_fft(b00)), mul_fft(b01, adj_fft(b01)))
    g01 = add_fft(mul_fft(b00, adj_fft(b10)), mul_fft(b01, adj_fft(b11)))
    g11 = add_fft(mul_fft(b10, adj_fft(b10)), mul_fft(b11, adj_fft(b11)))
    return g00, g01, g11


def test_tree_shape_and_leaf_count():
    keys = generate_keys(32, source=ChaChaSource(1))
    tree = build_ldl_tree(*_gram_from_keys(keys))

    def depth_and_leaves(node):
        if isinstance(node, LdlLeaf):
            return 1, 2
        d0, l0 = depth_and_leaves(node.child0)
        d1, l1 = depth_and_leaves(node.child1)
        assert d0 == d1
        return d0 + 1, l0 + l1

    depth, leaves = depth_and_leaves(tree)
    assert depth == 6  # log2(32) + 1
    assert leaves == 2 * 32  # one SamplerZ call per leaf sigma


def test_leaf_variances_positive():
    keys = generate_keys(32, source=ChaChaSource(2))
    tree = build_ldl_tree(*_gram_from_keys(keys))
    for variance in tree_leaf_sigmas(tree):
        assert variance > 0


def test_normalized_leaf_sigmas_in_falcon_range():
    n = 64
    keys = generate_keys(n, source=ChaChaSource(3))
    params = falcon_params(n)
    tree = build_ldl_tree(*_gram_from_keys(keys))
    normalize_tree(tree, params.sigma)
    sigmas = tree_leaf_sigmas(tree)
    assert all(0.8 * params.sigma_min < s <= SIGMA_MAX * 1.01
               for s in sigmas), (min(sigmas), max(sigmas))


def test_ffsampling_outputs_integer_vectors():
    n = 32
    keys = generate_keys(n, source=ChaChaSource(4))
    params = falcon_params(n)
    tree = build_ldl_tree(*_gram_from_keys(keys))
    normalize_tree(tree, params.sigma)

    rng = random.Random(5)
    t0 = fft([rng.uniform(-50, 50) for _ in range(n)])
    t1 = fft([rng.uniform(-50, 50) for _ in range(n)])

    calls = []

    def sampler_z(center, sigma):
        calls.append((center, sigma))
        return round(center)  # deterministic Babai rounding

    z0, z1 = ff_sampling(t0, t1, tree, sampler_z)
    assert len(calls) == 2 * n
    for vector in (z0, z1):
        coeffs = ifft(vector)
        for c in coeffs:
            assert abs(c - round(c)) < 1e-6


def test_ffsampling_result_is_close_to_target():
    """With a Gaussian leaf sampler, (t - z) B must be short: its norm
    concentrates around sigma * sqrt(2n)."""
    n = 64
    keys = generate_keys(n, source=ChaChaSource(6))
    params = falcon_params(n)
    g00, g01, g11 = _gram_from_keys(keys)
    tree = build_ldl_tree(g00, g01, g11)
    normalize_tree(tree, params.sigma)

    from repro.falcon import RejectionSamplerZ
    from repro.falcon.scheme import make_base_sampler
    base = make_base_sampler("cdt-binary", source=ChaChaSource(7),
                             precision=64)
    samp = RejectionSamplerZ(base, uniform_source=ChaChaSource(8))

    rng = random.Random(9)
    t0 = fft([rng.uniform(-100, 100) for _ in range(n)])
    t1 = fft([rng.uniform(-100, 100) for _ in range(n)])
    z0, z1 = ff_sampling(t0, t1, tree, samp.sample)

    b00 = fft([float(c) for c in keys.g])
    b01 = neg_fft(fft([float(c) for c in keys.f]))
    b10 = fft([float(c) for c in keys.G])
    b11 = neg_fft(fft([float(c) for c in keys.F]))
    d0 = [a - b for a, b in zip(t0, z0)]
    d1 = [a - b for a, b in zip(t1, z1)]
    s0 = ifft(add_fft(mul_fft(d0, b00), mul_fft(d1, b10)))
    s1 = ifft(add_fft(mul_fft(d0, b01), mul_fft(d1, b11)))
    norm = math.sqrt(sum(c * c for c in s0) + sum(c * c for c in s1))
    expected = params.sigma * math.sqrt(2 * n)
    assert norm < 1.5 * expected, (norm, expected)


def test_tree_nodes_have_expected_types():
    keys = generate_keys(16, source=ChaChaSource(10))
    tree = build_ldl_tree(*_gram_from_keys(keys))
    assert isinstance(tree, LdlNode)
    assert len(tree.l10) == 16
