"""Tests for the batch BitslicedSampler."""

import math

import pytest

from repro.core import (
    BitslicedSampler,
    GaussianParams,
    compile_sampler,
    compile_sampler_circuit,
)
from repro.rng import ChaChaSource, CounterSource


def _folded_gaussian_pmf(sigma, bound):
    weights = {v: math.exp(-v * v / (2 * sigma * sigma))
               for v in range(-bound, bound + 1)}
    total = sum(weights.values())
    return {v: w / total for v, w in weights.items()}


def test_compile_sampler_convenience():
    sampler = compile_sampler(sigma=2, precision=24,
                              source=ChaChaSource(1))
    values = sampler.sample_many(100)
    assert len(values) == 100
    assert all(abs(v) <= 26 for v in values)


def test_deterministic_given_seed():
    a = compile_sampler(2, 24, source=ChaChaSource(9))
    b = compile_sampler(2, 24, source=ChaChaSource(9))
    assert a.sample_many(300) == b.sample_many(300)


def test_batch_width_variants_same_distribution_support():
    for width in (8, 64, 256):
        sampler = compile_sampler(2, 20, source=ChaChaSource(3),
                                  batch_width=width)
        batch = sampler.sample_batch()
        assert len(batch) <= width
        assert all(abs(v) <= 26 for v in batch)


def test_invalid_batch_width_rejected():
    circuit = compile_sampler_circuit(GaussianParams.from_sigma(2, 12))
    with pytest.raises(ValueError):
        BitslicedSampler(circuit, batch_width=0)


def test_sample_many_exact_count():
    sampler = compile_sampler(2, 16, source=ChaChaSource(4))
    assert len(sampler.sample_many(1)) == 1
    assert len(sampler.sample_many(129)) == 129


def test_random_byte_accounting():
    sampler = compile_sampler(2, 16, source=ChaChaSource(5),
                              batch_width=64)
    sampler.source.reset_count()
    sampler.sample_batch()
    # 16 input words + 1 sign word, 8 bytes each.
    assert sampler.source.bytes_read == 17 * 8
    assert sampler.random_bytes_per_batch == 17 * 8


def test_discards_tracked_at_low_precision():
    # sigma = 2, n = 6 has failure probability 3/64 per lane.
    sampler = compile_sampler(2, 6, source=ChaChaSource(6))
    for _ in range(50):
        sampler.sample_batch()
    assert sampler.samples_discarded > 0
    assert sampler.batches_run == 50


def test_distribution_chi_square():
    """Chi-square GoF against the exact folded Gaussian, sigma = 2."""
    sampler = compile_sampler(2, 32, source=ChaChaSource(7))
    draws = 30_000
    values = sampler.sample_many(draws)
    pmf = _folded_gaussian_pmf(2.0, 26)
    # Bin |v| >= 6 together to keep expected counts healthy.
    observed: dict = {}
    for v in values:
        key = v if abs(v) < 6 else ("tail", v > 0)
        observed[key] = observed.get(key, 0) + 1
    expected: dict = {}
    for v, p in pmf.items():
        key = v if abs(v) < 6 else ("tail", v > 0)
        expected[key] = expected.get(key, 0) + p * draws
    chi2 = sum((observed.get(k, 0) - e) ** 2 / e
               for k, e in expected.items() if e > 5)
    dof = sum(1 for e in expected.values() if e > 5) - 1
    # 3-sigma band for chi-square: mean dof, sd sqrt(2 dof).
    assert chi2 < dof + 5 * math.sqrt(2 * dof), (chi2, dof)


def test_signs_are_balanced():
    sampler = compile_sampler(2, 32, source=ChaChaSource(8))
    values = [v for v in sampler.sample_many(20_000) if v != 0]
    positives = sum(1 for v in values if v > 0)
    ratio = positives / len(values)
    assert 0.47 < ratio < 0.53


def test_cycles_per_sample_reasonable():
    sampler = compile_sampler(2, 64, source=ChaChaSource(9))
    # One kernel run is a fixed instruction sequence.
    assert sampler.word_ops_per_batch == sampler.kernel.stats.word_ops
    assert 1 < sampler.cycles_per_sample < 500


def test_counter_source_works_too():
    sampler = compile_sampler(2, 24, source=CounterSource(11))
    values = sampler.sample_many(200)
    assert all(abs(v) <= 26 for v in values)


def test_invalid_prefetch_and_fusion_rejected():
    circuit = compile_sampler_circuit(GaussianParams.from_sigma(2, 12))
    with pytest.raises(ValueError):
        BitslicedSampler(circuit, prefetch_batches=0)
    with pytest.raises(ValueError):
        BitslicedSampler(circuit, max_fused_batches=0)
    with pytest.raises(ValueError):
        next(BitslicedSampler(circuit).stream(block_samples=0))


# -- constant-time regression: engines must share one operation trace ----

ENGINES = ("bigint", "chunked", "numpy")


def test_word_ops_identical_across_engines():
    """The instruction count is a property of the circuit, never of the
    word representation: every engine reports the same word_ops."""
    circuit = compile_sampler_circuit(GaussianParams.from_sigma(2, 16))
    counts = {engine: BitslicedSampler(circuit, source=ChaChaSource(1),
                                       engine=engine)
              for engine in ENGINES}
    reference = counts["bigint"]
    for sampler in counts.values():
        assert sampler.word_ops_per_batch == reference.word_ops_per_batch
        assert sampler.kernel.stats.word_ops == \
            reference.kernel.stats.word_ops


@pytest.mark.parametrize("engine", ENGINES)
def test_prng_trace_is_value_independent(engine):
    """Each batch consumes exactly random_bytes_per_batch bytes, no
    matter which values (or how many discards) it produces."""
    sampler = compile_sampler(2, 16, source=ChaChaSource(5),
                              batch_width=64, engine=engine)
    per_batch = sampler.random_bytes_per_batch
    for _ in range(20):
        before = sampler.source.bytes_read
        sampler.sample_batch()
        assert sampler.source.bytes_read - before == per_batch


def test_prng_trace_identical_across_engines():
    """Total randomness drawn for the same workload is equal across
    engines, for batch, bulk and streaming paths alike."""
    workloads = {}
    for engine in ENGINES:
        sampler = compile_sampler(2, 16, source=ChaChaSource(2),
                                  batch_width=64, engine=engine)
        for _ in range(5):
            sampler.sample_batch()
        sampler.sample_many(1000)
        for _ in range(10):
            sampler.sample()
        workloads[engine] = (sampler.source.bytes_read,
                             sampler.batches_run)
    assert len(set(workloads.values())) == 1, workloads


@pytest.mark.parametrize("prefetch", [1, 4])
def test_prefill_leaves_sample_stream_unchanged(prefetch):
    """prefill() warms the pool without changing what sample() emits.

    The prefilled buffer must be consumed in exactly the order lazy
    refills would have produced — that's the contract that makes
    warming a serving pool safe for reproducible (seeded) signing.
    """
    lazy = compile_sampler(2, 16, source=ChaChaSource(9),
                           batch_width=64, engine="bigint",
                           prefetch_batches=prefetch)
    warmed = compile_sampler(2, 16, source=ChaChaSource(9),
                             batch_width=64, engine="bigint",
                             prefetch_batches=prefetch)
    warmed.prefill(500)
    assert len(warmed._buffer) >= 500
    assert [warmed.sample() for _ in range(700)] \
        == [lazy.sample() for _ in range(700)]


def test_super_batch_randomness_scales_linearly():
    """A fused f-batch pass draws exactly f times the per-batch bytes
    (width 64 is byte-aligned), preserving the constant-time account."""
    sampler = compile_sampler(2, 16, source=ChaChaSource(3),
                              batch_width=64, engine="bigint")
    per_batch = sampler.random_bytes_per_batch
    for fused in (1, 2, 7, 16):
        before = sampler.source.bytes_read
        sampler._sample_block(fused)
        assert sampler.source.bytes_read - before == fused * per_batch
