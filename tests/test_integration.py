"""Cross-module integration tests: the paper's full story end to end."""

import math
from collections import Counter
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    ByteScanCdtSampler,
    CdtBinarySearchSampler,
    KnuthYaoIntegerSampler,
    LinearScanCdtSampler,
)
from repro.bitslice import BitslicedKernel, pack_lane_bits
from repro.core import (
    BitslicedSampler,
    GaussianParams,
    KnuthYaoSampler,
    compile_sampler,
    compile_sampler_circuit,
    knuth_yao_walk,
    probability_matrix,
)
from repro.rng import BitStream, ChaChaSource, ListBitSource


def test_same_bits_same_samples_bitsliced_vs_algorithm1():
    """Feeding identical bit strings to Algorithm 1 and the compiled
    kernel yields identical samples lane by lane — the strongest
    equivalence the paper's construction promises."""
    params = GaussianParams.from_sigma(2, precision=12)
    matrix = probability_matrix(params)
    circuit = compile_sampler_circuit(params)
    kernel = BitslicedKernel(circuit.roots)

    rng = ChaChaSource(42)
    lanes = 32
    strings = []
    for _ in range(lanes):
        stream = BitStream(rng)
        strings.append([stream.take_bit() for _ in range(12)])

    words = pack_lane_bits(strings, 12)
    outputs = kernel(words, (1 << lanes) - 1)
    valid_mask = outputs[-1]
    for lane, bits in enumerate(strings):
        walk = knuth_yao_walk(matrix, BitStream(ListBitSource(bits)))
        lane_valid = (valid_mask >> lane) & 1
        assert lane_valid == (0 if walk.failed else 1)
        if lane_valid:
            magnitude = sum(((outputs[t] >> lane) & 1) << t
                            for t in range(len(outputs) - 1))
            assert magnitude == walk.value


@pytest.mark.parametrize("sigma", [1, 2, 3.5])
def test_five_backends_agree_statistically(sigma):
    params = GaussianParams.from_sigma(sigma, precision=24)
    draws = 5000
    frequencies = {}
    samplers = {
        "byte": ByteScanCdtSampler(params, ChaChaSource(1)),
        "binary": CdtBinarySearchSampler(params, ChaChaSource(2)),
        "linear": LinearScanCdtSampler(params, ChaChaSource(3)),
        "ky": KnuthYaoIntegerSampler(params, ChaChaSource(4)),
    }
    for name, sampler in samplers.items():
        values = [sampler.sample_magnitude() for _ in range(draws)]
        frequencies[name] = Counter(values)
    bit = compile_sampler(sigma, 24, source=ChaChaSource(5))
    frequencies["bitsliced"] = Counter(
        abs(v) for v in bit.sample_many(draws))

    reference = frequencies["ky"]
    bound = int(2 * sigma) + 1
    for name, counter in frequencies.items():
        for v in range(bound):
            diff = abs(counter[v] - reference[v]) / draws
            assert diff < 0.035, (name, v, diff)


def test_knuth_yao_and_bitsliced_share_variance():
    params = GaussianParams.from_sigma(2, precision=32)
    ky = KnuthYaoSampler(params, source=ChaChaSource(6))
    bit = compile_sampler(2, 32, source=ChaChaSource(7))
    n = 10_000
    var_ky = sum(v * v for v in ky.sample_many(n)) / n
    var_bit = sum(v * v for v in bit.sample_many(n)) / n
    assert abs(var_ky - var_bit) < 0.3
    assert abs(var_ky - 4.0) < 0.3


def test_simple_and_efficient_methods_identical_function():
    """Both compilation methods express the same Boolean function."""
    params = GaussianParams.from_sigma(2, precision=10)
    efficient = compile_sampler_circuit(params, method="efficient")
    simple = compile_sampler_circuit(params, method="simple")
    k_eff = BitslicedKernel(efficient.roots)
    k_sim = BitslicedKernel(simple.roots)
    for word in range(1 << 10):
        bits = [(word >> i) & 1 for i in range(10)]
        packed = pack_lane_bits([bits], 10)
        out_e = [w & 1 for w in k_eff(packed, 1)]
        out_s = [w & 1 for w in k_sim(packed, 1)]
        assert out_e[-1] == out_s[-1]  # valid agrees
        if out_e[-1]:
            assert out_e[:-1] == out_s[:-1]


@settings(max_examples=6, deadline=None)
@given(st.sampled_from([Fraction(2), Fraction(9, 2), Fraction(5)]),
       st.integers(min_value=7, max_value=10))
def test_compiled_distribution_is_exact_over_all_inputs(sigma_sq, n):
    """Summing the kernel over all 2^n inputs reproduces the matrix
    rows exactly — the Knuth–Yao exactness property survives
    compilation."""
    params = GaussianParams(sigma_sq=sigma_sq, precision=n)
    matrix = probability_matrix(params)
    circuit = compile_sampler_circuit(params)
    kernel = BitslicedKernel(circuit.roots)
    counts: Counter = Counter()
    failures = 0
    for word in range(1 << n):
        bits = [(word >> i) & 1 for i in range(n)]
        out = kernel(pack_lane_bits([bits], n), 1)
        if out[-1] & 1:
            counts[sum(((out[t] & 1) << t)
                       for t in range(len(out) - 1))] += 1
        else:
            failures += 1
    for v, row in enumerate(matrix.rows):
        assert counts.get(v, 0) == row
    assert failures == matrix.failure_count


def test_batch_sampler_and_kernel_agree():
    """BitslicedSampler's unpacking must match direct kernel reads."""
    params = GaussianParams.from_sigma(2, precision=16)
    circuit = compile_sampler_circuit(params)
    sampler = BitslicedSampler(circuit, source=ChaChaSource(8),
                               batch_width=16)
    magnitudes, valid_mask, signs = sampler.raw_batch()
    assert len(magnitudes) == 16
    for lane in range(16):
        if (valid_mask >> lane) & 1:
            assert 0 <= magnitudes[lane] <= circuit.matrix.max_value


def test_tail_cut_consistency_between_sampler_and_stats():
    params = GaussianParams.from_sigma(2, precision=32, tail_cut=6)
    assert params.support_bound == 12
    sampler = BitslicedSampler(compile_sampler_circuit(params),
                               source=ChaChaSource(9))
    values = sampler.sample_many(4000)
    assert max(abs(v) for v in values) <= 12


def test_low_sigma_pipeline():
    """sigma = 0.8 (below 1) still compiles and samples correctly."""
    params = GaussianParams.from_sigma(0.8, precision=24)
    sampler = BitslicedSampler(compile_sampler_circuit(params),
                               source=ChaChaSource(10))
    values = sampler.sample_many(6000)
    std = math.sqrt(sum(v * v for v in values) / len(values))
    assert abs(std - 0.8) < 0.08
    assert max(abs(v) for v in values) <= params.support_bound
