"""Regenerate the committed Falcon known-answer fixtures.

Run from the repository root after an *intentional* change to the
keygen or signing stream contract::

    PYTHONPATH=src python tests/kats/generate_kats.py

Two fixture families land next to this script:

* ``falcon_n{n}_seed{seed}.json`` — signature KATs: public key plus
  byte-pinned sequential and batched signatures (as in PR 3);
* ``keygen_n{n}_seed{seed}.json`` — keygen KATs: the full ``NtruKeys``
  tuple (f, g, F, G, h) for a seeded ``generate_keys`` run.

Both families must reproduce bit-for-bit in the with-NumPy and
without-NumPy CI legs: the keygen and signing spines consume identical
PRNG streams and perform bit-identical arithmetic by construction, and
these fixtures are the lock on that promise.  Regenerating them is a
reviewed event, not a fix for a failing test.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

KAT_DIR = Path(__file__).parent

#: Signature KATs: (n, seed) as committed since PR 3.
SIGN_CASES = [(8, 1001), (64, 1002), (256, 1003)]

#: Keygen KATs: the PR-4 acceptance grid plus the Level-3 ring
#: (n=1024, added with the PR-5 Babai re-tune; REPRO_FULL-gated in the
#: test suite like the other large rings).
KEYGEN_CASES = [(8, 2001), (64, 2002), (256, 2003), (512, 2004),
                (1024, 2005)]

MESSAGES = [b"kat message 0", b"kat message 1",
            b"kat-msg-2 with a longer body"]


def generate_sign_kat(n: int, seed: int) -> dict:
    from repro.falcon import SecretKey

    def fresh():
        return SecretKey.generate(n=n, seed=seed, prng="chacha20",
                                  base_backend="bitsliced")

    sk = fresh()
    sequential = [sk.sign(message) for message in MESSAGES]
    batch = fresh().sign_many(MESSAGES)
    return {
        "scheme": "falcon-repro",
        "n": n,
        "seed": seed,
        "prng": "chacha20",
        "base_backend": "bitsliced",
        "public_key_h": sk.keys.h,
        "messages": [message.hex() for message in MESSAGES],
        "sign_sequential": [
            {"salt": s.salt.hex(), "compressed": s.compressed.hex()}
            for s in sequential],
        "sign_many_batch": [
            {"salt": s.salt.hex(), "compressed": s.compressed.hex()}
            for s in batch],
    }


def generate_keygen_kat(n: int, seed: int) -> dict:
    from repro.falcon import generate_keys
    from repro.rng import ChaChaSource

    keys = generate_keys(n, source=ChaChaSource(seed))
    assert keys.verify_ntru_equation()
    return {
        "scheme": "falcon-repro-keygen",
        "n": n,
        "seed": seed,
        "prng": "chacha20",
        "f": keys.f,
        "g": keys.g,
        "F": keys.F,
        "G": keys.G,
        "h": keys.h,
    }


def main() -> int:
    for n, seed in SIGN_CASES:
        payload = generate_sign_kat(n, seed)
        path = KAT_DIR / f"falcon_n{n}_seed{seed}.json"
        path.write_text(json.dumps(payload, indent=1) + "\n",
                        encoding="utf-8")
        print(f"wrote {path}")
    for n, seed in KEYGEN_CASES:
        payload = generate_keygen_kat(n, seed)
        path = KAT_DIR / f"keygen_n{n}_seed{seed}.json"
        path.write_text(json.dumps(payload, indent=1) + "\n",
                        encoding="utf-8")
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
