"""Tests for the op-count cost model."""

import pytest

from repro.ct import (
    DEFAULT_CYCLE_WEIGHTS,
    PRNG_CYCLES_PER_BYTE,
    OpCounter,
    OpCounts,
)


def test_counter_accumulates():
    counter = OpCounter()
    counter.word_op(5)
    counter.compare()
    counter.load(3)
    counter.branch(2)
    counter.rng(16)
    counts = counter.counts
    assert counts.word_ops == 5
    assert counts.compares == 1
    assert counts.loads == 3
    assert counts.branches == 2
    assert counts.rng_bytes == 16


def test_snapshot_delta():
    counter = OpCounter()
    counter.word_op(10)
    before = counter.snapshot()
    counter.word_op(7)
    counter.rng(4)
    delta = counter.delta(before)
    assert delta.word_ops == 7
    assert delta.rng_bytes == 4
    assert delta.compares == 0
    # Snapshot is a copy, not a view.
    counter.word_op(100)
    assert before.word_ops == 10


def test_reset():
    counter = OpCounter()
    counter.load(9)
    counter.reset()
    assert counter.counts.loads == 0


def test_modeled_cycles_weighting():
    counts = OpCounts(word_ops=10, compares=5, loads=3, branches=2,
                      rng_bytes=8)
    expected_core = (10 * DEFAULT_CYCLE_WEIGHTS["word_ops"]
                     + 5 * DEFAULT_CYCLE_WEIGHTS["compares"]
                     + 3 * DEFAULT_CYCLE_WEIGHTS["loads"]
                     + 2 * DEFAULT_CYCLE_WEIGHTS["branches"])
    no_rng = counts.modeled_cycles(include_rng=False)
    assert no_rng == expected_core
    with_rng = counts.modeled_cycles(prng="chacha20")
    assert with_rng == expected_core + 8 * PRNG_CYCLES_PER_BYTE["chacha20"]


def test_modeled_cycles_custom_weights():
    counts = OpCounts(word_ops=4)
    assert counts.modeled_cycles(
        weights={"word_ops": 2.0, "compares": 0, "loads": 0,
                 "branches": 0},
        include_rng=False) == 8.0


def test_prng_backend_ordering():
    """The model must respect the paper's cost narrative:
    Keccak > ChaCha20 > ChaCha8 > AES-NI-class > counter."""
    order = ["shake256", "chacha20", "chacha8", "aesni", "counter"]
    values = [PRNG_CYCLES_PER_BYTE[name] for name in order]
    assert values == sorted(values, reverse=True)
    assert PRNG_CYCLES_PER_BYTE["shake128"] < \
        PRNG_CYCLES_PER_BYTE["shake256"]


def test_unknown_prng_raises():
    with pytest.raises(ValueError, match="unknown PRNG backend"):
        OpCounts(rng_bytes=1).modeled_cycles(prng="rdrand")


def test_unknown_prng_ignored_without_rng():
    """The PRNG table is only consulted when RNG cost is included."""
    assert OpCounts(word_ops=2).modeled_cycles(
        prng="rdrand", include_rng=False) == 2.0


def test_incomplete_weights_raise():
    with pytest.raises(ValueError, match="missing"):
        OpCounts(word_ops=1).modeled_cycles(
            weights={"word_ops": 1.0}, include_rng=False)


def test_add_and_copy():
    a = OpCounts(word_ops=1, rng_bytes=2)
    b = OpCounts(word_ops=3, compares=4)
    a.add(b)
    assert a.word_ops == 4 and a.compares == 4 and a.rng_bytes == 2
    clone = a.copy()
    clone.word_ops = 99
    assert a.word_ops == 4


def test_as_dict():
    counts = OpCounts(word_ops=1, compares=2, loads=3, branches=4,
                      rng_bytes=5)
    assert counts.as_dict() == {
        "word_ops": 1, "compares": 2, "loads": 3, "branches": 4,
        "rng_bytes": 5}


# -- cross-engine trace parity through the IntegerSampler interface ------

def _bitsliced_trace(engine, draws):
    from repro.baselines import BitslicedIntegerSampler
    from repro.core.gaussian import GaussianParams
    from repro.rng import ChaChaSource

    sampler = BitslicedIntegerSampler(
        GaussianParams.from_sigma(2, 16), source=ChaChaSource(12),
        engine=engine)
    values = sampler.sample_many(draws)
    return values, sampler.counter.counts.as_dict()


def test_bitsliced_adapter_trace_identical_across_engines():
    """The booked operation trace (word ops + PRNG bytes) of the
    bitsliced backend is a function of the workload only — identical
    for every word engine, as the constant-time argument requires."""
    reference_values, reference_trace = _bitsliced_trace("bigint", 300)
    for engine in ("chunked", "numpy"):
        values, trace = _bitsliced_trace(engine, 300)
        assert values == reference_values
        assert trace == reference_trace
    assert reference_trace["word_ops"] > 0
    assert reference_trace["rng_bytes"] > 0
    assert reference_trace["compares"] == 0
    assert reference_trace["branches"] == 0


def test_bitsliced_adapter_trace_is_per_batch_constant():
    """Booked costs advance in whole-batch quanta: after any number of
    draws the trace equals batches_run times the per-batch constants."""
    from repro.baselines import BitslicedIntegerSampler
    from repro.core.gaussian import GaussianParams
    from repro.rng import ChaChaSource

    sampler = BitslicedIntegerSampler(
        GaussianParams.from_sigma(2, 16), source=ChaChaSource(4),
        engine="bigint")
    for _ in range(130):
        sampler.sample()
    counts = sampler.counter.counts
    batches = sampler.inner.batches_run
    assert counts.word_ops == batches * sampler.inner.word_ops_per_batch
    assert counts.rng_bytes == \
        batches * sampler.inner.random_bytes_per_batch
