"""Suppression-semantics fixture: waivers, acks, and their meta rules.

``planted_waived``/``planted_acknowledged`` carry valid suppressions
(statuses allowed/vartime, gate-clean); ``planted_missing_reason``
carries a reasonless waiver (gating meta finding); ``unused_waiver``
suppresses nothing (gating meta finding).
"""

from repro.ctlint.annotations import secret_params


@secret_params("secret")
def planted_waived(secret, table):
    # ct: allow(secret-branch): fixture waiver carrying a reviewed reason
    if secret > 0:
        chosen = table[0]
    else:
        chosen = table[1]
    return chosen


@secret_params("secret")
def planted_acknowledged(secret):
    # ct: vartime(vartime-div): fixture acknowledgement of variable-time work
    return secret / 3


@secret_params("secret")
def planted_missing_reason(secret):
    # ct: allow(secret-ternary):
    return 1 if secret > 0 else 0


def unused_waiver(public):
    # ct: allow(vartime-pow): nothing on the next line triggers this rule
    return public + 1
