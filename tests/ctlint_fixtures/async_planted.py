"""Planted async/concurrency violations — positive controls.

Each coroutine violates one async-pack rule on its ``PLANT:`` line.
"""

import threading
import time

_STATE_LOCK = threading.Lock()


async def planted_blocking_sleep():
    time.sleep(0.01)  # PLANT: async-blocking-call (dotted)
    return True


async def planted_blocking_open(path):
    with open(path, "rb") as handle:  # PLANT: async-blocking-call (builtin)
        return handle.read()


async def planted_blocking_recv(connection):
    return connection.recv(4096)  # PLANT: async-blocking-call (method)


async def planted_lock_across_await(queue):
    with _STATE_LOCK:  # PLANT: async-lock-across-await
        return await queue.get()


async def planted_constructed_lock(queue):
    with threading.Lock():  # PLANT: async-lock-across-await
        return await queue.get()
