"""Clean twin of :mod:`ct_planted`: same shapes, no secrets.

No parameter carries a ``@secret_params`` decorator and nothing calls
a registry-seeded draw, so the exact constructs that fire in the
planted module must produce zero findings here — the tests pin the
linter's false-positive rate on these shapes to nothing.
"""

import math


def clean_branch(public, table):
    if public > 0:
        chosen = table[0]
    else:
        chosen = table[1]
    return chosen


def clean_early_exit(public):
    if public == 0:
        return 0
    return 1


def clean_loop(public):
    total = 0
    while public:
        total += public & 1
        public >>= 1
    return total


def clean_ternary(public):
    return 1 if public > 0 else 0


def clean_division(public):
    return public / 3


def clean_power(public):
    return public ** 3


def clean_bitlength(public):
    return public.bit_length()


def clean_exp_call(public):
    return math.exp(public)


def clean_range(public):
    total = 0
    for _ in range(public):
        total += 1
    return total


def clean_stringify(public):
    return str(public)


def clean_index(public, table):
    return table[public]


def clean_membership(public, table):
    return public in table


def clean_declassified(secret_buffer):
    size = len(secret_buffer)
    if size > 16:
        return size / 2
    return size
