"""Clean twin of :mod:`async_planted`: the legal async shapes.

Offloaded blocking work, awaited calls, async locks and sync helper
functions must all produce zero async-pack findings.
"""

import asyncio
import threading
import time

_STATE_LOCK = threading.Lock()


def sync_helper():
    time.sleep(0.01)  # sync function: the async pack does not apply
    return True


async def clean_offloaded():
    return await asyncio.to_thread(sync_helper)


async def clean_awaited(queue):
    return await queue.get()


async def clean_async_lock(queue):
    lock = asyncio.Lock()
    async with lock:
        return await queue.get()


async def clean_lock_no_await():
    with _STATE_LOCK:
        counter = 1 + 1
    return counter


async def clean_nested_sync_def():
    def worker():
        time.sleep(0.01)
        return 1

    return await asyncio.to_thread(worker)
