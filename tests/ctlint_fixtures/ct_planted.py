"""Planted constant-time violations — positive controls for ct-lint.

Every function violates exactly one CT rule on the line tagged with a
``PLANT:`` comment.  The tests assert each rule fires here and stays
silent on the clean twin (:mod:`ct_clean`), so a linter regression
that stops detecting a rule breaks the suite, not just the gate.
"""

import math

from repro.ctlint.annotations import secret_params


@secret_params("secret")
def planted_branch(secret, table):
    if secret > 0:  # PLANT: secret-branch
        chosen = table[0]
    else:
        chosen = table[1]
    return chosen


@secret_params("secret")
def planted_early_exit(secret):
    if secret == 0:  # PLANT: secret-early-exit
        return 0
    return 1


@secret_params("secret")
def planted_loop(secret):
    total = 0
    while secret:  # PLANT: secret-loop
        total += secret & 1
        secret >>= 1
    return total


@secret_params("secret")
def planted_ternary(secret):
    return 1 if secret > 0 else 0  # PLANT: secret-ternary


@secret_params("secret")
def planted_shortcircuit(secret, flag):
    return bool(secret > 0 and flag)  # PLANT: secret-shortcircuit


@secret_params("secret")
def planted_division(secret):
    return secret / 3  # PLANT: vartime-div


@secret_params("secret")
def planted_power(secret):
    return secret ** 3  # PLANT: vartime-pow


@secret_params("secret")
def planted_bitlength(secret):
    return secret.bit_length()  # PLANT: vartime-bitlength


@secret_params("secret")
def planted_exp_call(secret):
    return math.exp(secret)  # PLANT: vartime-call


@secret_params("secret")
def planted_range(secret):
    total = 0
    for _ in range(secret):  # PLANT: vartime-range
        total += 1
    return total


@secret_params("secret")
def planted_stringify(secret):
    return str(secret)  # PLANT: vartime-str


@secret_params("secret")
def planted_index(secret, table):
    return table[secret]  # PLANT: secret-index


@secret_params("secret")
def planted_membership(secret, table):
    return secret in table  # PLANT: secret-membership


def planted_via_registry(sampler, table):
    draw = sampler.sample()
    if draw > 0:  # PLANT: secret-branch (registry-seeded, no decorator)
        chosen = table[0]
    else:
        chosen = table[1]
    return chosen
