"""Tests for the dudect reimplementation and the leakage verdicts.

The reproduction's constant-time claims live here: the op-count traces
of the non-constant-time backends must be *flagged*, and the bitsliced
and linear-scan backends must pass.
"""

import math

import pytest

from repro.baselines import (
    ByteScanCdtSampler,
    CdtBinarySearchSampler,
    KnuthYaoIntegerSampler,
    LinearScanCdtSampler,
)
from repro.core import GaussianParams, compile_sampler
from repro.ct import (
    T_THRESHOLD,
    audit_batch_sampler,
    audit_sampler,
    crop_below_percentile,
    two_class_report,
    welch_t,
)
from repro.rng import ChaChaSource

PARAMS = GaussianParams.from_sigma(2, precision=16)


def test_welch_t_zero_for_identical_distributions():
    result = welch_t([1.0, 2.0, 3.0, 4.0] * 20, [1.0, 2.0, 3.0, 4.0] * 20)
    assert abs(result.t_statistic) < 1e-9


def test_welch_t_large_for_separated_classes():
    result = welch_t([10.0 + 0.1 * i for i in range(50)],
                     [20.0 + 0.1 * i for i in range(50)])
    assert result.t_statistic < -T_THRESHOLD
    assert result.leaking


def test_welch_t_degenerate_cases():
    equal = welch_t([5.0] * 10, [5.0] * 10)
    assert equal.t_statistic == 0.0
    assert not equal.leaking
    different = welch_t([5.0] * 10, [6.0] * 10)
    assert math.isinf(different.t_statistic)
    assert different.leaking
    with pytest.raises(ValueError):
        welch_t([1.0], [2.0, 3.0])


def test_crop_below_percentile():
    values = list(range(100))
    cropped = crop_below_percentile(values, 0.5)
    assert cropped == list(range(50))
    with pytest.raises(ValueError):
        crop_below_percentile(values, 0)


def test_crop_empty_rejected():
    with pytest.raises(ValueError, match="empty"):
        crop_below_percentile([], 0.5)


def test_two_class_report_degenerate_split_rejected():
    """Empty or single-class splits fail loudly, not inside welch_t."""
    with pytest.raises(ValueError, match="degenerate"):
        two_class_report("demo", "opcount", [], [1.0, 2.0, 3.0])
    with pytest.raises(ValueError, match="degenerate"):
        two_class_report("demo", "opcount", [1.0], [1.0, 2.0, 3.0])


def test_constant_trace_verdicts():
    """Documented degenerate behavior: equal constant classes are
    perfectly constant-time (t = 0), different constant classes are a
    deterministic leak (t = +/-inf)."""
    clean = two_class_report("demo", "opcount", [7.0] * 8, [7.0] * 8)
    assert clean.max_abs_t == 0.0 and not clean.leaking
    leaky = two_class_report("demo", "opcount", [7.0] * 8, [9.0] * 8)
    assert math.isinf(leaky.max_abs_t) and leaky.leaking


def test_audit_call_floors():
    sampler = LinearScanCdtSampler(PARAMS, source=ChaChaSource(6))
    with pytest.raises(ValueError, match="at least 4"):
        audit_sampler(sampler, calls=2)
    with pytest.raises(ValueError, match="at least 4"):
        audit_sampler(sampler, calls=2, measure="walltime")
    batch = compile_sampler(2, 16, source=ChaChaSource(7))
    with pytest.raises(ValueError, match="at least 4"):
        audit_batch_sampler(batch, batches=1)


def test_report_rendering():
    report = two_class_report("demo", "opcount",
                              [1.0, 2.0, 3.0] * 10, [1.0, 2.0, 3.0] * 10)
    text = report.render()
    assert "demo" in text and "ok" in text
    assert report.max_abs_t < T_THRESHOLD


@pytest.mark.parametrize("backend", [
    ByteScanCdtSampler,
    CdtBinarySearchSampler,
    KnuthYaoIntegerSampler,
])
def test_non_constant_time_backends_flagged(backend):
    sampler = backend(PARAMS, source=ChaChaSource(1))
    report = audit_sampler(sampler, calls=3000)
    assert report.leaking, report.render()
    assert report.max_abs_t > T_THRESHOLD


def test_linear_scan_passes():
    sampler = LinearScanCdtSampler(PARAMS, source=ChaChaSource(2))
    report = audit_sampler(sampler, calls=3000)
    # Not leaking: the only trace variation is the sign-byte refill
    # every 8th call, which is public and uncorrelated with the class.
    assert not report.leaking, report.render()
    assert report.max_abs_t < T_THRESHOLD


def test_bisection_passes():
    from repro.baselines import BisectionCdtSampler

    sampler = BisectionCdtSampler(PARAMS, source=ChaChaSource(9))
    report = audit_sampler(sampler, calls=3000)
    # Fixed-iteration bisection: log2(size)+1 probes per attempt,
    # independent of the sampled value.
    assert not report.leaking, report.render()
    assert report.max_abs_t < T_THRESHOLD


def test_linear_scan_trace_constant_per_attempt():
    """Every linear-scan *attempt* executes the identical op sequence.

    Truncation-gap restarts (a public event, probability 2^-n-ish,
    shared by every truncated sampler including Algorithm 1) simply run
    another identical attempt; conditioning on the attempt count, the
    trace variance is exactly zero.
    """
    sampler = LinearScanCdtSampler(PARAMS, source=ChaChaSource(12))
    traces_by_attempts: dict[int, set] = {}
    for _ in range(1500):
        before = sampler.counter.snapshot()
        sampler.sample_magnitude()
        delta = sampler.counter.delta(before)
        attempts = delta.branches + 1  # one branch booked per restart
        key = (delta.word_ops, delta.compares, delta.loads,
               delta.rng_bytes)
        traces_by_attempts.setdefault(attempts, set()).add(key)
    for attempts, traces in traces_by_attempts.items():
        assert len(traces) == 1, (attempts, traces)


def test_bitsliced_batch_audit_passes():
    sampler = compile_sampler(2, 16, source=ChaChaSource(3))
    report = audit_batch_sampler(sampler, batches=200)
    assert not report.leaking, report.render()
    assert report.max_abs_t == 0.0


def test_ffsampling_vectorized_opcount_ct():
    """Op-count CT pass over the batched/vectorized ffSampling path.

    Sec. 5.2 methodology: per leaf-sampler call, record the op-count
    trace (modeled cycles, including booked PRNG bytes) and class-split
    on the *magnitude of the sampled offset* ``|z - round(center)|`` —
    a secret-dependent quantity.  A constant-time sampling path must
    show |t| <= 4.5 between the small- and large-offset classes; the
    attempt count of the rejection wrapper is public and independent of
    the accepted value, so it contributes variance but no separation.
    """
    from repro.falcon import SecretKey, ff_sampling_batch, hash_to_point
    from repro.falcon.ntt import Q

    try:
        import numpy as np
    except ImportError:
        np = None

    sk = SecretKey.generate(n=64, seed=41)
    counter = sk.base_sampler.counter
    inner = sk.sampler_z
    records: list[tuple[float, int]] = []

    class Recorder:
        """Wraps the real RejectionSamplerZ, tracing every leaf call."""

        def sample(self, center, sigma):
            before = counter.snapshot()
            z = inner.sample(center, sigma)
            cycles = counter.delta(before).modeled_cycles()
            records.append((cycles, abs(z - round(center))))
            return z

        def sample_lanes(self, centers, sigma):
            return [self.sample(center, sigma) for center in centers]

    f_fft, big_f_fft = sk._key_target_ffts()
    lanes = 4
    for round_index in range(12):
        hashed = [hash_to_point(b"ct-probe-%d-%d" % (round_index, lane),
                                b"\x5a" * 40, sk.n)
                  for lane in range(lanes)]
        t0s = [[-(x * y) / Q for x, y in zip_fft(point, big_f_fft)]
               for point in hashed]
        t1s = [[(x * y) / Q for x, y in zip_fft(point, f_fft)]
               for point in hashed]
        if np is not None:
            t0s, t1s = np.array(t0s), np.array(t1s)
        ff_sampling_batch(t0s, t1s, sk.flat_tree, Recorder())

    small = [cycles for cycles, offset in records if offset <= 1]
    large = [cycles for cycles, offset in records if offset > 1]
    assert min(len(small), len(large)) > 200, (len(small), len(large))
    result = welch_t(small, large)
    assert abs(result.t_statistic) <= T_THRESHOLD, result.t_statistic
    assert not result.leaking


def zip_fft(point, key_fft):
    """(fft of hashed point) zipped with a key transform — helper for
    building signing targets outside SecretKey."""
    from repro.falcon import fft

    return zip(fft([float(c) for c in point]), key_fft)


def test_walltime_measure_runs():
    """Wall-clock mode is informational; assert only that it works."""
    sampler = LinearScanCdtSampler(PARAMS, source=ChaChaSource(4))
    report = audit_sampler(sampler, calls=400, measure="walltime")
    assert report.measure == "walltime"
    assert report.results


def test_unknown_measure_rejected():
    sampler = LinearScanCdtSampler(PARAMS, source=ChaChaSource(5))
    with pytest.raises(ValueError):
        audit_sampler(sampler, calls=10, measure="bogus")
