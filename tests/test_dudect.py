"""Tests for the dudect reimplementation and the leakage verdicts.

The reproduction's constant-time claims live here: the op-count traces
of the non-constant-time backends must be *flagged*, and the bitsliced
and linear-scan backends must pass.
"""

import math

import pytest

from repro.baselines import (
    ByteScanCdtSampler,
    CdtBinarySearchSampler,
    KnuthYaoIntegerSampler,
    LinearScanCdtSampler,
)
from repro.core import GaussianParams, compile_sampler
from repro.ct import (
    T_THRESHOLD,
    audit_batch_sampler,
    audit_sampler,
    crop_below_percentile,
    two_class_report,
    welch_t,
)
from repro.rng import ChaChaSource

PARAMS = GaussianParams.from_sigma(2, precision=16)


def test_welch_t_zero_for_identical_distributions():
    result = welch_t([1.0, 2.0, 3.0, 4.0] * 20, [1.0, 2.0, 3.0, 4.0] * 20)
    assert abs(result.t_statistic) < 1e-9


def test_welch_t_large_for_separated_classes():
    result = welch_t([10.0 + 0.1 * i for i in range(50)],
                     [20.0 + 0.1 * i for i in range(50)])
    assert result.t_statistic < -T_THRESHOLD
    assert result.leaking


def test_welch_t_degenerate_cases():
    equal = welch_t([5.0] * 10, [5.0] * 10)
    assert equal.t_statistic == 0.0
    assert not equal.leaking
    different = welch_t([5.0] * 10, [6.0] * 10)
    assert math.isinf(different.t_statistic)
    assert different.leaking
    with pytest.raises(ValueError):
        welch_t([1.0], [2.0, 3.0])


def test_crop_below_percentile():
    values = list(range(100))
    cropped = crop_below_percentile(values, 0.5)
    assert cropped == list(range(50))
    with pytest.raises(ValueError):
        crop_below_percentile(values, 0)


def test_report_rendering():
    report = two_class_report("demo", "opcount",
                              [1.0, 2.0, 3.0] * 10, [1.0, 2.0, 3.0] * 10)
    text = report.render()
    assert "demo" in text and "ok" in text
    assert report.max_abs_t < T_THRESHOLD


@pytest.mark.parametrize("backend", [
    ByteScanCdtSampler,
    CdtBinarySearchSampler,
    KnuthYaoIntegerSampler,
])
def test_non_constant_time_backends_flagged(backend):
    sampler = backend(PARAMS, source=ChaChaSource(1))
    report = audit_sampler(sampler, calls=3000)
    assert report.leaking, report.render()
    assert report.max_abs_t > T_THRESHOLD


def test_linear_scan_passes():
    sampler = LinearScanCdtSampler(PARAMS, source=ChaChaSource(2))
    report = audit_sampler(sampler, calls=3000)
    # Not leaking: the only trace variation is the sign-byte refill
    # every 8th call, which is public and uncorrelated with the class.
    assert not report.leaking, report.render()
    assert report.max_abs_t < T_THRESHOLD


def test_linear_scan_trace_constant_per_attempt():
    """Every linear-scan *attempt* executes the identical op sequence.

    Truncation-gap restarts (a public event, probability 2^-n-ish,
    shared by every truncated sampler including Algorithm 1) simply run
    another identical attempt; conditioning on the attempt count, the
    trace variance is exactly zero.
    """
    sampler = LinearScanCdtSampler(PARAMS, source=ChaChaSource(12))
    traces_by_attempts: dict[int, set] = {}
    for _ in range(1500):
        before = sampler.counter.snapshot()
        sampler.sample_magnitude()
        delta = sampler.counter.delta(before)
        attempts = delta.branches + 1  # one branch booked per restart
        key = (delta.word_ops, delta.compares, delta.loads,
               delta.rng_bytes)
        traces_by_attempts.setdefault(attempts, set()).add(key)
    for attempts, traces in traces_by_attempts.items():
        assert len(traces) == 1, (attempts, traces)


def test_bitsliced_batch_audit_passes():
    sampler = compile_sampler(2, 16, source=ChaChaSource(3))
    report = audit_batch_sampler(sampler, batches=200)
    assert not report.leaking, report.render()
    assert report.max_abs_t == 0.0


def test_walltime_measure_runs():
    """Wall-clock mode is informational; assert only that it works."""
    sampler = LinearScanCdtSampler(PARAMS, source=ChaChaSource(4))
    report = audit_sampler(sampler, calls=400, measure="walltime")
    assert report.measure == "walltime"
    assert report.results


def test_unknown_measure_rejected():
    sampler = LinearScanCdtSampler(PARAMS, source=ChaChaSource(5))
    with pytest.raises(ValueError):
        audit_sampler(sampler, calls=10, measure="bogus")
