"""Tests for Falcon key/signature serialization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.falcon import (
    PublicKey,
    SecretKey,
    SerializeError,
    decode_public_key,
    decode_secret_key,
    decode_signature,
    encode_public_key,
    encode_secret_key,
    encode_signature,
)

_CACHE: dict[int, SecretKey] = {}


def _secret_key(n=64) -> SecretKey:
    if n not in _CACHE:
        _CACHE[n] = SecretKey.generate(n=n, seed=3)
    return _CACHE[n]


def test_public_key_round_trip():
    sk = _secret_key()
    encoded = encode_public_key(sk.public_key)
    decoded = decode_public_key(encoded)
    assert decoded.n == sk.n
    assert decoded.h == sk.public_key.h
    # 1 header byte + 14 bits per coefficient.
    assert len(encoded) == 1 + (14 * sk.n + 7) // 8


def test_public_key_rejects_out_of_range():
    bad = PublicKey(4, [0, 1, 2, 20000])
    with pytest.raises(SerializeError):
        encode_public_key(bad)


def test_public_key_decode_rejects_bad_header():
    sk = _secret_key()
    data = bytearray(encode_public_key(sk.public_key))
    data[0] |= 0xF0
    with pytest.raises(SerializeError):
        decode_public_key(bytes(data))


def test_public_key_decode_rejects_nonzero_padding():
    sk = _secret_key()
    data = bytearray(encode_public_key(sk.public_key))
    if sk.n * 14 % 8:
        data[-1] |= 1
        with pytest.raises(SerializeError):
            decode_public_key(bytes(data))


def test_secret_key_round_trip_preserves_trapdoor():
    sk = _secret_key()
    encoded = encode_secret_key(sk)
    restored = decode_secret_key(encoded)
    assert restored.keys.f == sk.keys.f
    assert restored.keys.g == sk.keys.g
    assert restored.keys.F == sk.keys.F
    assert restored.keys.G == sk.keys.G  # recomputed, must agree
    assert restored.keys.h == sk.keys.h


@pytest.mark.parametrize("n", [8, 16, 32, 64, 128])
def test_secret_key_round_trip_across_degrees(n):
    """The G-recomputation decode path must hold at every supported
    ring degree — the (f, g) field widths shrink as n grows, so each
    degree exercises a different packing geometry."""
    sk = SecretKey.generate(n=n, seed=100 + n)
    restored = decode_secret_key(encode_secret_key(sk))
    assert restored.n == n
    assert restored.keys.f == sk.keys.f
    assert restored.keys.g == sk.keys.g
    assert restored.keys.F == sk.keys.F
    assert restored.keys.G == sk.keys.G
    assert restored.keys.h == sk.keys.h
    assert restored.keys.verify_ntru_equation()


@pytest.mark.parametrize("n", [8, 32])
def test_g_recomputation_is_not_a_copy(n):
    """Sanity for the recomputation path: G is genuinely derived from
    (f, g, F) via the NTT quotient, not deserialized — corrupting F in
    the stream must surface as an equation failure, never a silently
    different G."""
    sk = SecretKey.generate(n=n, seed=200 + n)
    data = bytearray(encode_secret_key(sk))
    data[-2] ^= 0x10  # inside F's fields for every supported layout
    with pytest.raises((SerializeError, ZeroDivisionError)):
        decode_secret_key(bytes(data))


def test_encode_rejects_oversized_F_width():
    """F coefficients beyond the 24-bit field ceiling must be refused
    at encode time (an unreduced basis, exactly what the Babai-stall
    bug used to produce)."""
    sk = _secret_key(8)
    bloated = SecretKey(
        type(sk.keys)(f=sk.keys.f, g=sk.keys.g,
                      F=[c + (1 << 30) for c in sk.keys.F],
                      G=sk.keys.G, h=sk.keys.h))
    with pytest.raises(SerializeError, match="unexpectedly large"):
        encode_secret_key(bloated)


def test_decode_rejects_out_of_range_widths():
    sk = _secret_key(8)
    data = bytearray(encode_secret_key(sk))
    for bad_width in (0, 8, 25, 255):  # outside [_MIN, _MAX]
        data[1] = bad_width
        with pytest.raises(SerializeError, match="width"):
            decode_secret_key(bytes(data))


def test_restored_secret_key_signs_and_verifies():
    sk = _secret_key()
    restored = decode_secret_key(encode_secret_key(sk))
    message = b"restored key signing"
    signature = restored.sign(message)
    assert sk.public_key.verify(message, signature)


def test_secret_key_decode_rejects_corruption():
    sk = _secret_key()
    data = bytearray(encode_secret_key(sk))
    data[10] ^= 0xFF
    with pytest.raises(SerializeError):
        decode_secret_key(bytes(data))


def test_signature_round_trip():
    sk = _secret_key()
    message = b"serialize me"
    signature = sk.sign(message)
    encoded = encode_signature(signature, sk.n)
    decoded, n = decode_signature(encoded)
    assert n == sk.n
    assert decoded.salt == signature.salt
    assert decoded.compressed == signature.compressed
    assert sk.public_key.verify(message, decoded)


def test_signature_decode_rejects_bad_header_and_length():
    sk = _secret_key()
    signature = sk.sign(b"x")
    encoded = bytearray(encode_signature(signature, sk.n))
    encoded[0] = 0x77
    with pytest.raises(SerializeError):
        decode_signature(bytes(encoded))
    with pytest.raises(SerializeError):
        decode_signature(encode_signature(signature, sk.n)[:-3])
    with pytest.raises(SerializeError):
        decode_signature(b"\x36")


@settings(max_examples=40, deadline=None)
@given(st.binary(min_size=0, max_size=200))
def test_decoders_never_crash_on_garbage(blob):
    """Fuzz: decoders must raise SerializeError, not arbitrary errors."""
    for decoder in (decode_public_key, decode_signature):
        try:
            decoder(blob)
        except SerializeError:
            pass
    try:
        decode_secret_key(blob)
    except (SerializeError, ZeroDivisionError):
        # f may decode to a non-invertible polynomial: also a clean
        # rejection path (divider raises before any state is built).
        pass


def test_encoded_sizes_reported():
    sk = _secret_key()
    pk_len = len(encode_public_key(sk.public_key))
    sk_len = len(encode_secret_key(sk))
    sig_len = len(encode_signature(sk.sign(b"m"), sk.n))
    assert pk_len < sk_len  # h packs tighter than three polynomials
    assert sig_len > 40     # salt alone is 40 bytes
