"""RFC 8439 known-answer tests and stream-behaviour tests for ChaCha."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rng import ChaChaSource, ChaChaStream, chacha_block, quarter_round


def test_quarter_round_rfc8439_vector():
    # RFC 8439 section 2.1.1.
    state = [0] * 16
    state[0] = 0x11111111
    state[1] = 0x01020304
    state[2] = 0x9B8D6F43
    state[3] = 0x01234567
    quarter_round(state, 0, 1, 2, 3)
    assert state[0] == 0xEA2A92F4
    assert state[1] == 0xCB1CF8CE
    assert state[2] == 0x4581472E
    assert state[3] == 0x5881C4BB


def test_block_function_rfc8439_vector():
    # RFC 8439 section 2.3.2.
    key = bytes(range(32))
    nonce = bytes.fromhex("000000090000004a00000000")
    block = chacha_block(key, counter=1, nonce=nonce)
    expected = bytes.fromhex(
        "10f1e7e4d13b5915500fdd1fa32071c4"
        "c7d1f4c733c068030422aa9ac3d46c4e"
        "d2826446079faa0914c2d705d98b02a2"
        "b5129cd1de164eb9cbd083e8a2503c4e")
    assert block == expected


def test_keystream_rfc8439_encryption_vector():
    # RFC 8439 section 2.4.2: "Ladies and Gentlemen..." ciphertext.
    key = bytes(range(32))
    nonce = bytes.fromhex("000000000000004a00000000")
    plaintext = (b"Ladies and Gentlemen of the class of '99: If I could "
                 b"offer you only one tip for the future, sunscreen would "
                 b"be it.")
    keystream = b"".join(
        chacha_block(key, counter, nonce) for counter in (1, 2))
    ciphertext = bytes(p ^ k for p, k in zip(plaintext, keystream))
    expected_start = bytes.fromhex(
        "6e2e359a2568f98041ba0728dd0d6981"
        "e97e7aec1d4360c20a27afccfd9fae0b")
    assert ciphertext[:32] == expected_start
    expected_end = bytes.fromhex("87 4d".replace(" ", ""))
    assert ciphertext[-2:] == expected_end


def test_stream_read_is_contiguous():
    stream_a = ChaChaStream(bytes(32))
    stream_b = ChaChaStream(bytes(32))
    whole = stream_a.read(200)
    parts = b"".join(stream_b.read(n) for n in (1, 2, 3, 60, 64, 70))
    assert whole == parts


def test_stream_counter_wrap_changes_nonce():
    stream = ChaChaStream(bytes(32))
    stream._block_index = (1 << 32) - 1
    before_wrap = stream.read(64)
    after_wrap = stream.read(64)
    assert before_wrap != after_wrap
    assert stream.blocks_generated == (1 << 32) + 1


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        chacha_block(b"short", 0, bytes(12))
    with pytest.raises(ValueError):
        chacha_block(bytes(32), 0, bytes(8))
    with pytest.raises(ValueError):
        chacha_block(bytes(32), 0, bytes(12), rounds=7)
    with pytest.raises(ValueError):
        ChaChaStream(bytes(16))


def test_round_variants_differ():
    key = bytes(range(32))
    nonce = bytes(12)
    outputs = {chacha_block(key, 0, nonce, rounds=r) for r in (8, 12, 20)}
    assert len(outputs) == 3


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=2**64 - 1),
       st.lists(st.integers(min_value=1, max_value=97),
                min_size=1, max_size=10))
def test_source_reads_are_deterministic(seed, sizes):
    source_a = ChaChaSource(seed)
    source_b = ChaChaSource(seed)
    for size in sizes:
        assert source_a.read_bytes(size) == source_b.read_bytes(size)
