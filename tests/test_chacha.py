"""RFC 8439 known-answer tests and stream-behaviour tests for ChaCha.

The known-answer vectors are asserted against *both* evaluation
strategies — the scalar RFC rendition and the NumPy-vectorized
multi-block path — which must be byte-identical everywhere, including
across the 32-bit counter rollover.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rng import (
    HAVE_VECTOR_CHACHA,
    ChaChaSource,
    ChaChaStream,
    chacha_block,
    chacha_blocks,
    quarter_round,
)

#: Evaluation strategies exercised by the known-answer tests.  The
#: vectorized one is skipped (not silently passed) without NumPy.
STRATEGIES = [
    False,
    pytest.param(True, marks=pytest.mark.skipif(
        not HAVE_VECTOR_CHACHA, reason="NumPy not installed")),
]


def test_quarter_round_rfc8439_vector():
    # RFC 8439 section 2.1.1.
    state = [0] * 16
    state[0] = 0x11111111
    state[1] = 0x01020304
    state[2] = 0x9B8D6F43
    state[3] = 0x01234567
    quarter_round(state, 0, 1, 2, 3)
    assert state[0] == 0xEA2A92F4
    assert state[1] == 0xCB1CF8CE
    assert state[2] == 0x4581472E
    assert state[3] == 0x5881C4BB


def test_block_function_rfc8439_vector():
    # RFC 8439 section 2.3.2.
    key = bytes(range(32))
    nonce = bytes.fromhex("000000090000004a00000000")
    block = chacha_block(key, counter=1, nonce=nonce)
    expected = bytes.fromhex(
        "10f1e7e4d13b5915500fdd1fa32071c4"
        "c7d1f4c733c068030422aa9ac3d46c4e"
        "d2826446079faa0914c2d705d98b02a2"
        "b5129cd1de164eb9cbd083e8a2503c4e")
    assert block == expected


def test_keystream_rfc8439_encryption_vector():
    # RFC 8439 section 2.4.2: "Ladies and Gentlemen..." ciphertext.
    key = bytes(range(32))
    nonce = bytes.fromhex("000000000000004a00000000")
    plaintext = (b"Ladies and Gentlemen of the class of '99: If I could "
                 b"offer you only one tip for the future, sunscreen would "
                 b"be it.")
    keystream = b"".join(
        chacha_block(key, counter, nonce) for counter in (1, 2))
    ciphertext = bytes(p ^ k for p, k in zip(plaintext, keystream))
    expected_start = bytes.fromhex(
        "6e2e359a2568f98041ba0728dd0d6981"
        "e97e7aec1d4360c20a27afccfd9fae0b")
    assert ciphertext[:32] == expected_start
    expected_end = bytes.fromhex("87 4d".replace(" ", ""))
    assert ciphertext[-2:] == expected_end


def test_stream_read_is_contiguous():
    stream_a = ChaChaStream(bytes(32))
    stream_b = ChaChaStream(bytes(32))
    whole = stream_a.read(200)
    parts = b"".join(stream_b.read(n) for n in (1, 2, 3, 60, 64, 70))
    assert whole == parts


def test_stream_counter_wrap_changes_nonce():
    stream = ChaChaStream(bytes(32))
    stream._block_index = (1 << 32) - 1
    before_wrap = stream.read(64)
    after_wrap = stream.read(64)
    assert before_wrap != after_wrap
    assert stream.blocks_generated == (1 << 32) + 1


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        chacha_block(b"short", 0, bytes(12))
    with pytest.raises(ValueError):
        chacha_block(bytes(32), 0, bytes(8))
    with pytest.raises(ValueError):
        chacha_block(bytes(32), 0, bytes(12), rounds=7)
    with pytest.raises(ValueError):
        ChaChaStream(bytes(16))


def test_round_variants_differ():
    key = bytes(range(32))
    nonce = bytes(12)
    outputs = {chacha_block(key, 0, nonce, rounds=r) for r in (8, 12, 20)}
    assert len(outputs) == 3


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=2**64 - 1),
       st.lists(st.integers(min_value=1, max_value=97),
                min_size=1, max_size=10))
def test_source_reads_are_deterministic(seed, sizes):
    source_a = ChaChaSource(seed)
    source_b = ChaChaSource(seed)
    for size in sizes:
        assert source_a.read_bytes(size) == source_b.read_bytes(size)


# -- vectorized multi-block path ------------------------------------------

@pytest.mark.parametrize("vectorized", STRATEGIES)
def test_blocks_rfc8439_block_vector(vectorized):
    # RFC 8439 section 2.3.2, through the multi-block interface.
    key = bytes(range(32))
    nonce = bytes.fromhex("000000090000004a00000000")
    expected = bytes.fromhex(
        "10f1e7e4d13b5915500fdd1fa32071c4"
        "c7d1f4c733c068030422aa9ac3d46c4e"
        "d2826446079faa0914c2d705d98b02a2"
        "b5129cd1de164eb9cbd083e8a2503c4e")
    got = chacha_blocks(key, 1, nonce, 1, vectorized=vectorized)
    assert got == expected
    # The same block embedded in a slab spanning counters 0..2.
    slab = chacha_blocks(key, 0, nonce, 3, vectorized=vectorized)
    assert slab[64:128] == expected


@pytest.mark.parametrize("vectorized", STRATEGIES)
def test_blocks_rfc8439_keystream_vector(vectorized):
    # RFC 8439 section 2.4.2: "Ladies and Gentlemen..." ciphertext,
    # keystream blocks at counters 1 and 2 drawn as one slab.
    key = bytes(range(32))
    nonce = bytes.fromhex("000000000000004a00000000")
    plaintext = (b"Ladies and Gentlemen of the class of '99: If I could "
                 b"offer you only one tip for the future, sunscreen would "
                 b"be it.")
    keystream = chacha_blocks(key, 1, nonce, 2, vectorized=vectorized)
    ciphertext = bytes(p ^ k for p, k in zip(plaintext, keystream))
    assert ciphertext[:32] == bytes.fromhex(
        "6e2e359a2568f98041ba0728dd0d6981"
        "e97e7aec1d4360c20a27afccfd9fae0b")
    assert ciphertext[-2:] == bytes.fromhex("874d")


@pytest.mark.parametrize("vectorized", STRATEGIES)
def test_blocks_counter_rollover(vectorized):
    """A slab spanning the 32-bit counter wrap rolls into nonce word 0."""
    key = bytes(range(32))
    nonce = bytes.fromhex("0100000002000000030000aa")
    start = (1 << 32) - 2
    slab = chacha_blocks(key, start, nonce, 4, vectorized=vectorized)
    # Per-block scalar reference with the explicit nonce adjustment.
    bumped = bytearray(nonce)
    bumped[0:4] = (2).to_bytes(4, "little")  # nonce word 0 + overflow 1
    expected = (
        chacha_block(key, (1 << 32) - 2, nonce)
        + chacha_block(key, (1 << 32) - 1, nonce)
        + chacha_block(key, 0, bytes(bumped))
        + chacha_block(key, 1, bytes(bumped)))
    assert slab == expected


@pytest.mark.skipif(not HAVE_VECTOR_CHACHA, reason="NumPy not installed")
@settings(max_examples=15, deadline=None)
@given(start=st.one_of(
           st.integers(min_value=0, max_value=2**20),
           st.integers(min_value=2**32 - 4, max_value=2**32 + 4)),
       count=st.integers(min_value=1, max_value=9),
       rounds=st.sampled_from([8, 12, 20]),
       seed=st.integers(min_value=0, max_value=2**32))
def test_vectorized_matches_scalar(start, count, rounds, seed):
    key = seed.to_bytes(32, "little")
    nonce = (seed * 3).to_bytes(12, "little")
    assert chacha_blocks(key, start, nonce, count, rounds,
                         vectorized=True) == \
        chacha_blocks(key, start, nonce, count, rounds,
                      vectorized=False)


@pytest.mark.skipif(not HAVE_VECTOR_CHACHA, reason="NumPy not installed")
def test_stream_strategies_agree_across_rollover():
    scalar = ChaChaStream(bytes(32), vectorized=False)
    vector = ChaChaStream(bytes(32), vectorized=True)
    scalar._block_index = vector._block_index = (1 << 32) - 3
    assert scalar.read(500) == vector.read(500)
    assert scalar.blocks_generated == vector.blocks_generated


def test_blocks_input_validation():
    with pytest.raises(ValueError):
        chacha_blocks(bytes(16), 0, bytes(12), 1)
    with pytest.raises(ValueError):
        chacha_blocks(bytes(32), 0, bytes(12), -1)
    assert chacha_blocks(bytes(32), 0, bytes(12), 0) == b""
