"""Tests for the bitsliced kernel engine and lane packing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitslice import (
    BitslicedKernel,
    lanes_where,
    pack_lane_bits,
    unpack_lanes,
)
from repro.boolfunc import ExprBuilder, evaluate


def _example_roots():
    builder = ExprBuilder()
    f = builder.or_(builder.and_(builder.var(0), builder.var(2)),
                    builder.not_(builder.var(1)))
    g = builder.xor(f, builder.var(3))
    return builder, [f, g]


def test_kernel_matches_reference_evaluator():
    _, roots = _example_roots()
    kernel = BitslicedKernel(roots)
    mask = (1 << 32) - 1
    inputs = [0xDEADBEEF, 0x0F0F0F0F, 0x12345678, 0xFFFF0000]
    got = kernel(inputs, mask)
    want = evaluate(roots, dict(enumerate(inputs)), mask=mask)
    assert list(got) == want


def test_kernel_stats():
    _, roots = _example_roots()
    kernel = BitslicedKernel(roots)
    assert kernel.stats.num_outputs == 2
    assert kernel.stats.num_inputs == 4
    assert kernel.stats.word_ops == kernel.stats.gates["total"] > 0
    assert kernel.stats.depth >= 2


def test_kernel_input_length_checked():
    _, roots = _example_roots()
    kernel = BitslicedKernel(roots)
    with pytest.raises(ValueError):
        kernel([1, 2], 1)


def test_kernel_source_is_straight_line():
    """No branches or loops in generated code — the constant-time
    property is structural."""
    _, roots = _example_roots()
    kernel = BitslicedKernel(roots)
    body = kernel.source.splitlines()[1:]
    for line in body:
        stripped = line.strip()
        assert not stripped.startswith(("if", "for", "while"))


@settings(max_examples=50, deadline=None)
@given(st.lists(st.lists(st.integers(min_value=0, max_value=1),
                         min_size=5, max_size=5),
                min_size=1, max_size=12))
def test_pack_unpack_round_trip(samples_bits):
    words = pack_lane_bits(samples_bits, num_words=5)
    lanes = unpack_lanes(words, width=len(samples_bits))
    for lane, bits in enumerate(samples_bits):
        value = sum(bit << i for i, bit in enumerate(bits))
        assert lanes[lane] == value


def test_unpack_ignores_bits_beyond_width():
    words = [0b1111]
    assert unpack_lanes(words, width=2) == [1, 1]


def test_lanes_where():
    assert lanes_where(0b101001, 6) == [0, 3, 5]
    assert lanes_where(0, 6) == []
    assert lanes_where(0b1000000, 6) == []  # beyond width


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1, max_value=200))
def test_kernel_arbitrary_word_width(width):
    builder = ExprBuilder()
    root = builder.not_(builder.and_(builder.var(0), builder.var(1)))
    kernel = BitslicedKernel([root])
    mask = (1 << width) - 1
    a = (0x5A5A5A5A5A5A5A5A * ((width // 64) + 1)) & mask
    b = (0x3C3C3C3C3C3C3C3C * ((width // 64) + 1)) & mask
    got = kernel([a, b], mask)[0]
    assert got == (~(a & b)) & mask
