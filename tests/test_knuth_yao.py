"""Tests for Algorithm 1 and the explicit DDG tree (Sec. 3.2/3.3)."""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    GaussianParams,
    KnuthYaoSampler,
    build_ddg_tree,
    knuth_yao_walk,
    probability_matrix,
)
from repro.rng import BitStream, ChaChaSource, ListBitSource

SIGMA2_N6 = GaussianParams.from_sigma(2, precision=6)


def _walk_string(matrix, bits):
    stream = BitStream(ListBitSource(list(bits)))
    return knuth_yao_walk(matrix, stream)


def test_exhaustive_distribution_matches_matrix():
    """Over all 2^6 equiprobable strings, sample counts equal the matrix
    rows exactly — Knuth–Yao's defining property."""
    matrix = probability_matrix(SIGMA2_N6)
    counts = {}
    failures = 0
    for word in range(64):
        bits = [(word >> (5 - i)) & 1 for i in range(6)]
        result = _walk_string(matrix, bits)
        if result.failed:
            failures += 1
        else:
            counts[result.value] = counts.get(result.value, 0) + 1
    for value, row in enumerate(matrix.rows):
        assert counts.get(value, 0) == row
    assert failures == matrix.failure_count == 3


def test_ddg_tree_agrees_with_algorithm1_exhaustively():
    matrix = probability_matrix(SIGMA2_N6)
    tree = build_ddg_tree(matrix)
    for word in range(64):
        bits = [(word >> (5 - i)) & 1 for i in range(6)]
        walk = _walk_string(matrix, bits)
        tree_value, _ = tree.walk(BitStream(ListBitSource(bits)))
        assert walk.value == tree_value


def test_ddg_tree_leaf_counts_match_column_weights():
    matrix = probability_matrix(SIGMA2_N6)
    tree = build_ddg_tree(matrix)
    for level, h in enumerate(matrix.column_weights):
        assert len(tree.leaves_at_level(level)) == h


def test_ddg_tree_fig1_level_one_leaf_is_one():
    """In Fig. 1 the first leaf (level 1, bottom) carries sample 1."""
    matrix = probability_matrix(SIGMA2_N6)
    tree = build_ddg_tree(matrix)
    level1 = tree.leaves_at_level(1)
    assert [leaf.value for leaf in level1] == [1]
    level2 = tree.leaves_at_level(2)
    assert [leaf.value for leaf in level2] == [3, 2, 0]


def test_walk_bits_used_counts_levels():
    matrix = probability_matrix(SIGMA2_N6)
    result = _walk_string(matrix, [0, 0, 0, 0, 0, 0])
    assert result.value == 1
    assert result.bits_used == 2  # leaf at level 1


def test_all_ones_string_fails():
    matrix = probability_matrix(SIGMA2_N6)
    result = _walk_string(matrix, [1] * 6)
    assert result.failed


def test_sampler_restarts_on_failure_and_stays_in_support():
    sampler = KnuthYaoSampler(SIGMA2_N6, source=ChaChaSource(1))
    values = [sampler.sample() for _ in range(2000)]
    assert all(0 <= v <= 5 for v in values)
    # With failure probability 3/64, restarts must have happened.
    assert sampler.restarts > 0


def test_signed_sampler_produces_both_signs():
    params = GaussianParams.from_sigma(2, precision=32)
    sampler = KnuthYaoSampler(params, source=ChaChaSource(2))
    values = sampler.sample_many(500)
    assert any(v > 0 for v in values)
    assert any(v < 0 for v in values)
    assert all(abs(v) <= params.support_bound for v in values)


def test_sampler_distribution_close_to_pmf():
    """Coarse chi-square-free check: frequency of 0 and 1 within 3 sigma."""
    params = GaussianParams.from_sigma(2, precision=24)
    sampler = KnuthYaoSampler(params, source=ChaChaSource(3))
    draws = 4000
    values = [sampler.sample() for _ in range(draws)]
    pmf = probability_matrix(params).pmf()
    for target in (0, 1, 2):
        expected = float(pmf[target]) * draws
        spread = 3 * (expected * (1 - float(pmf[target]))) ** 0.5
        assert abs(values.count(target) - expected) <= spread + 1


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=2, max_value=10),
       st.integers(min_value=4, max_value=10))
def test_tree_and_walk_agree_random_params(sigma, precision):
    params = GaussianParams(sigma_sq=Fraction(sigma), precision=precision,
                            tail_cut=8)
    matrix = probability_matrix(params)
    tree = build_ddg_tree(matrix)
    for word in range(1 << precision):
        bits = [(word >> (precision - 1 - i)) & 1
                for i in range(precision)]
        walk = _walk_string(matrix, bits)
        tree_value, _ = tree.walk(BitStream(ListBitSource(bits)))
        assert walk.value == tree_value


def test_render_ascii_and_dot_do_not_crash():
    matrix = probability_matrix(SIGMA2_N6)
    tree = build_ddg_tree(matrix)
    text = tree.render_ascii()
    assert "level  0" in text or "level 0" in text.replace("  ", " ")
    dot = tree.to_dot()
    assert dot.startswith("digraph") and dot.endswith("}")
