"""Tests for exact integer polynomial arithmetic (NTRUSolve substrate)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.falcon import poly


def _naive_negacyclic(a, b):
    n = len(a)
    out = [0] * n
    for i in range(n):
        for j in range(n):
            k = i + j
            if k < n:
                out[k] += a[i] * b[j]
            else:
                out[k - n] -= a[i] * b[j]
    return out


def _poly_lists(n, bound=50):
    return st.lists(st.integers(min_value=-bound, max_value=bound),
                    min_size=n, max_size=n)


@settings(max_examples=30, deadline=None)
@given(_poly_lists(8), _poly_lists(8))
def test_negacyclic_mul_matches_naive(a, b):
    assert poly.mul_negacyclic(a, b) == _naive_negacyclic(a, b)


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=2**32))
def test_karatsuba_matches_schoolbook_large(seed):
    rng = random.Random(seed)
    n = 128  # above the Karatsuba threshold
    a = [rng.randint(-10**6, 10**6) for _ in range(n)]
    b = [rng.randint(-10**6, 10**6) for _ in range(n)]
    assert poly.mul_raw(a, b) == poly._schoolbook(a, b)


@settings(max_examples=20, deadline=None)
@given(_poly_lists(16))
def test_field_norm_identity(f):
    """N(f)(x^2) == f(x) * f(-x): the tower-descent identity."""
    norm = poly.field_norm(f)
    lifted = poly.lift(norm)
    product = poly.mul_negacyclic(f, poly.galois_conjugate(f))
    assert lifted == product


@settings(max_examples=20, deadline=None)
@given(_poly_lists(8), _poly_lists(8))
def test_galois_conjugate_is_involution(f, g):
    assert poly.galois_conjugate(poly.galois_conjugate(f)) == f
    # Multiplicativity: conj(f g) = conj(f) conj(g).
    left = poly.galois_conjugate(poly.mul_negacyclic(f, g))
    right = poly.mul_negacyclic(poly.galois_conjugate(f),
                                poly.galois_conjugate(g))
    assert left == right


@settings(max_examples=20, deadline=None)
@given(_poly_lists(8), _poly_lists(8))
def test_field_norm_multiplicative(f, g):
    product_norm = poly.field_norm(poly.mul_negacyclic(f, g))
    norm_product = poly.mul_negacyclic(poly.field_norm(f),
                                       poly.field_norm(g))
    assert product_norm == norm_product


def test_lift_structure():
    assert poly.lift([1, 2, 3]) == [1, 0, 2, 0, 3, 0]


def test_norms_and_helpers():
    assert poly.infinity_norm([3, -7, 2]) == 7
    assert poly.infinity_norm([]) == 0
    assert poly.square_norm([1, -2, 3]) == 14
    assert poly.max_bitsize([[7, -9], [128]]) == 8
    assert poly.add([1, 2], [3, 4]) == [4, 6]
    assert poly.sub([1, 2], [3, 4]) == [-2, -2]
    assert poly.neg([1, -2]) == [-1, 2]
    assert poly.scalar_mul([1, -2], 3) == [3, -6]


def test_mul_raw_empty():
    assert poly.mul_raw([], [1, 2]) == []


def test_big_coefficients_exact():
    """Bigint coefficients (the NTRUSolve regime) stay exact."""
    big = 1 << 500
    a = [big, -big]
    b = [big, big]
    out = poly.mul_negacyclic(a, b)
    assert out == [big * big + big * big, big * big - big * big]
