"""Structural property tests for DDG trees."""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    GaussianParams,
    build_ddg_tree,
    probability_matrix,
)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=1, max_value=40),
       st.integers(min_value=4, max_value=14))
def test_level_widths_follow_deficit_recurrence(sigma_sq, precision):
    params = GaussianParams(sigma_sq=Fraction(sigma_sq) + Fraction(1, 3),
                            precision=precision, tail_cut=9)
    matrix = probability_matrix(params)
    tree = build_ddg_tree(matrix)
    internal_before = 1
    for level, nodes in zip(range(matrix.precision), tree.levels):
        assert len(nodes) == 2 * internal_before
        leaves = sum(1 for node in nodes if node.is_leaf)
        assert leaves == matrix.column_weights[level]
        internal_before = len(nodes) - leaves
        assert internal_before >= 1  # Theorem 1's live internal path


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=1, max_value=30),
       st.integers(min_value=4, max_value=12))
def test_leaf_values_match_column_scan_order(sigma_sq, precision):
    params = GaussianParams(sigma_sq=Fraction(sigma_sq) + 1,
                            precision=precision, tail_cut=9)
    matrix = probability_matrix(params)
    tree = build_ddg_tree(matrix)
    for level in range(matrix.precision):
        values = [node.value for node in tree.levels[level]
                  if node.is_leaf]
        expected = list(matrix.column_rows_descending(level))[:len(values)]
        assert values == expected


def test_internal_child_bases_are_consistent():
    matrix = probability_matrix(GaussianParams.from_sigma(2, 10))
    tree = build_ddg_tree(matrix)
    for level_index in range(len(tree.levels) - 1):
        next_width = len(tree.levels[level_index + 1])
        internals = [node for node in tree.levels[level_index]
                     if not node.is_leaf]
        # Children tile the next level exactly: bases 0, 2, 4, ...
        bases = [node.child_base for node in internals]
        assert bases == list(range(0, 2 * len(internals), 2))
        assert 2 * len(internals) == next_width


def test_dot_output_mentions_every_leaf_value():
    matrix = probability_matrix(GaussianParams.from_sigma(2, 6))
    tree = build_ddg_tree(matrix)
    dot = tree.to_dot()
    for value in range(6):
        assert f'label="{value}"' in dot


def test_walk_total_probability_via_tree():
    """Summing 2^-(level+1) over leaves equals the matrix mass / 2^n."""
    matrix = probability_matrix(GaussianParams.from_sigma(2, 12))
    tree = build_ddg_tree(matrix)
    n = matrix.precision
    total = 0
    for level, nodes in enumerate(tree.levels):
        leaves = sum(1 for node in nodes if node.is_leaf)
        total += leaves << (n - level - 1)
    assert total == matrix.mass
