"""The networked signing plane: wire protocol, auth, rate limits,
drain, adversarial framing, and the multi-process shard workers.

The adversarial cases pin the server's failure discipline: a hostile
or broken peer earns one clean error frame (or a silent close), never
a traceback, never a wedged server, and never a partially signed
round — the next well-formed connection is served as if nothing
happened.
"""

import asyncio
import struct

import pytest

from repro.falcon.serving import (
    FrameError,
    NetClient,
    NetServer,
    ShardedKeyStore,
    ShardWorkerError,
    ShardWorkerPool,
    SigningService,
    TokenBucket,
    encode_request_frame,
    frame_shape,
)
from repro.falcon.serving.net import (
    ERR_AUTH,
    ERR_BAD_FRAME,
    ERR_DRAINING,
    ERR_RATE_LIMITED,
    ERR_TOO_LARGE,
    ERR_UNSUPPORTED,
    FRAME_ERROR,
    FRAME_SIGN,
    HEADER_BYTES,
    MAGIC,
    VERSION,
    _HEADER,
    decode_body,
)


# -- frame codec -------------------------------------------------------------

def test_frame_round_trip_and_shape():
    frame = encode_request_frame(FRAME_SIGN, 7, "tenant-a", b"tok",
                                 b"payload")
    kind, req_id, tenant_len, token_len, payload_len = \
        frame_shape(frame)
    assert (kind, req_id) == (FRAME_SIGN, 7)
    assert (tenant_len, token_len, payload_len) == (8, 3, 7)
    tenant, token, payload = decode_body(frame[HEADER_BYTES:])
    assert (tenant, token, payload) == (b"tenant-a", b"tok", b"payload")


def test_decode_body_rejects_truncations():
    frame = encode_request_frame(FRAME_SIGN, 0, "tenant-a", b"tok",
                                 b"payload")
    body = frame[HEADER_BYTES:]
    for cut in (0, 1, 3, len(body) - len(b"payload") - 1):
        with pytest.raises(FrameError):
            decode_body(body[:cut])


def test_token_bucket_refills_on_injected_clock():
    now = [0.0]
    bucket = TokenBucket(rate=2.0, burst=2.0, clock=lambda: now[0])
    assert bucket.try_take() and bucket.try_take()
    assert not bucket.try_take()  # burst exhausted
    now[0] += 0.5                 # one token refilled
    assert bucket.try_take()
    assert not bucket.try_take()
    with pytest.raises(ValueError):
        TokenBucket(rate=0.0, burst=1.0)


# -- loopback helpers --------------------------------------------------------

def _serve(test_body, *, master_seed=21, n=8, tokens=None,
           rate_limit=None, clock=None, worker_pool=None,
           max_batch=8, max_wait=0.01):
    """Run ``await test_body(service, server)`` against a live
    loopback server, then drain everything."""

    async def drive():
        store = ShardedKeyStore(shards=2, master_seed=master_seed)
        service = SigningService(store, n=n, max_batch=max_batch,
                                 max_wait=max_wait,
                                 worker_pool=worker_pool)
        async with service:
            kwargs = {"tokens": tokens, "rate_limit": rate_limit}
            if clock is not None:
                kwargs["clock"] = clock
            server = NetServer(service, **kwargs)
            await server.start("127.0.0.1", 0)
            try:
                return await test_body(service, server)
            finally:
                await server.stop(stop_service=False)

    return asyncio.run(drive())


async def _raw_exchange(port: int, blob: bytes,
                        expect_reply: bool = True) -> bytes | None:
    """Write raw bytes, read one reply frame (or None on close)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(blob)
        await writer.drain()
        if not expect_reply:
            writer.write_eof()
            return None
        header = await reader.readexactly(HEADER_BYTES)
        _magic, _version, _kind, _req_id, body_len = \
            _HEADER.unpack(header)
        return header + await reader.readexactly(body_len)
    finally:
        writer.close()


def _error_code(frame: bytes) -> int:
    kind, _req_id, _t, _tok, _p = frame_shape(frame)
    assert kind == FRAME_ERROR
    _tenant, _token, payload = decode_body(frame[HEADER_BYTES:])
    return int.from_bytes(payload[:2], "big")


# -- happy path over real sockets --------------------------------------------

def test_loopback_round_trip_and_byte_identity():
    """The tentpole acceptance criterion: signatures that travelled
    the wire are byte-identical to a direct ``sign_many`` over the
    same deployment seed.  Signatures are chunking-faithful (a round
    of six is not six rounds of one), so the frames are pipelined and
    the batch window held open until all six coalesce into one round
    — the direct call's exact shape."""
    messages = [b"wire-%d" % i for i in range(6)]

    async def body(service, server):
        async with await NetClient.connect(
                "127.0.0.1", server.port) as client:
            signatures = await asyncio.gather(
                *[client.sign("tenant-a", m) for m in messages])
            verdicts = await asyncio.gather(
                *[client.verify("tenant-a", m, s)
                  for m, s in zip(messages, signatures)])
        return signatures, verdicts

    signatures, verdicts = _serve(body, master_seed=22,
                                  max_wait=0.3)
    assert verdicts == [True] * len(messages)
    direct = ShardedKeyStore(shards=2, master_seed=22) \
        .signer("tenant-a", 8).sign_many(messages)
    assert [(s.salt, s.compressed) for s in signatures] == \
        [(s.salt, s.compressed) for s in direct]


def test_pipelined_requests_correlate_by_req_id():
    async def body(service, server):
        async with await NetClient.connect(
                "127.0.0.1", server.port) as client:
            messages = [b"pipeline-%d" % i for i in range(10)]
            signatures = await asyncio.gather(
                *[client.sign(f"tenant-{i % 3}", m)
                  for i, m in enumerate(messages)])
            verdicts = await asyncio.gather(
                *[client.verify(f"tenant-{i % 3}", m, s)
                  for i, (m, s) in enumerate(zip(messages,
                                                 signatures))])
        assert verdicts == [True] * 10
        assert server.metrics.served == 20

    _serve(body)


# -- authentication and rate limiting ----------------------------------------

def test_auth_rejects_wrong_token_and_unknown_tenant_identically():
    tokens = {"tenant-a": b"s3cret"}

    async def body(service, server):
        port = server.port
        async with await NetClient.connect(
                "127.0.0.1", port, tokens=tokens) as good:
            assert await good.sign("tenant-a", b"hello")
        async with await NetClient.connect(
                "127.0.0.1", port,
                tokens={"tenant-a": b"wrong"}) as bad:
            with pytest.raises(FrameError) as wrong_token:
                await bad.sign("tenant-a", b"hello")
            with pytest.raises(FrameError) as unknown_tenant:
                await bad.sign("tenant-zz", b"hello")
        # Same error either way: no tenant-existence oracle.
        assert wrong_token.value.code == ERR_AUTH
        assert unknown_tenant.value.code == ERR_AUTH
        assert str(wrong_token.value) == str(unknown_tenant.value)
        assert server.metrics.rejected["auth-failed"] == 2

    _serve(body, tokens=tokens)


def test_rate_limit_refuses_then_recovers():
    now = [0.0]

    async def body(service, server):
        async with await NetClient.connect(
                "127.0.0.1", server.port) as client:
            for _ in range(4):  # burst = 2 * rate
                await client.sign("tenant-a", b"burst")
            with pytest.raises(FrameError) as refused:
                await client.sign("tenant-a", b"over")
            assert refused.value.code == ERR_RATE_LIMITED
            now[0] += 1.0  # refill: 2 tokens/s
            await client.sign("tenant-a", b"recovered")
        assert server.metrics.rejected["rate-limited"] == 1

    _serve(body, rate_limit=2.0, clock=lambda: now[0])


# -- adversarial framing -----------------------------------------------------

def test_bad_magic_earns_error_and_close_then_server_survives():
    async def body(service, server):
        blob = b"HTTP/1.1 GET /\r\n" + b"\x00" * HEADER_BYTES
        reply = await _raw_exchange(server.port, blob)
        assert _error_code(reply) == ERR_BAD_FRAME
        # The connection is cut off; a well-formed client still works.
        async with await NetClient.connect(
                "127.0.0.1", server.port) as client:
            assert await client.sign("tenant-a", b"after-garbage")

    _serve(body)


def test_unsupported_version_is_refused():
    async def body(service, server):
        frame = encode_request_frame(FRAME_SIGN, 1, "tenant-a", b"",
                                     b"msg")
        blob = (MAGIC + bytes([VERSION + 1]) + frame[5:])
        reply = await _raw_exchange(server.port, blob)
        assert _error_code(reply) == ERR_UNSUPPORTED

    _serve(body)


def test_oversized_length_prefix_refused_before_buffering():
    async def body(service, server):
        hostile = _HEADER.pack(MAGIC, VERSION, FRAME_SIGN, 1,
                               0xFFFFFFFF)
        reply = await _raw_exchange(server.port, hostile)
        assert _error_code(reply) == ERR_TOO_LARGE

    _serve(body)


def test_truncated_body_and_mid_frame_disconnect_leave_server_clean():
    async def body(service, server):
        frame = encode_request_frame(FRAME_SIGN, 1, "tenant-a", b"",
                                     b"message")
        # Send only half the promised body, then disconnect.
        await _raw_exchange(server.port, frame[:HEADER_BYTES + 4],
                            expect_reply=False)
        # Header only, then disconnect.
        await _raw_exchange(server.port, frame[:HEADER_BYTES],
                            expect_reply=False)
        await asyncio.sleep(0.05)
        # Nothing partial leaked into the service...
        assert service.metrics.requests == 0
        # ...and the server still serves.
        async with await NetClient.connect(
                "127.0.0.1", server.port) as client:
            assert await client.sign("tenant-a", b"still-alive")

    _serve(body)


def test_garbled_body_lengths_earn_bad_frame_not_crash():
    async def body(service, server):
        # tenant_len that runs past the body.
        body_bytes = (1000).to_bytes(2, "big") + b"short"
        blob = _HEADER.pack(MAGIC, VERSION, FRAME_SIGN, 9,
                            len(body_bytes)) + body_bytes
        reply = await _raw_exchange(server.port, blob)
        assert _error_code(reply) == ERR_BAD_FRAME

    _serve(body)


def test_unknown_kind_is_an_error_but_keeps_the_connection():
    async def body(service, server):
        bad = encode_request_frame(0x55, 3, "tenant-a", b"", b"x")
        good = encode_request_frame(FRAME_SIGN, 4, "tenant-a", b"",
                                    b"msg")
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", server.port)
        try:
            writer.write(bad + good)
            await writer.drain()
            replies = []
            for _ in range(2):
                header = await reader.readexactly(HEADER_BYTES)
                *_rest, body_len = _HEADER.unpack(header)
                replies.append(header
                               + await reader.readexactly(body_len))
        finally:
            writer.close()
        codes = [frame_shape(reply)[0] for reply in replies]
        assert FRAME_ERROR in codes  # the unknown kind
        assert any(code != FRAME_ERROR for code in codes)  # the sign

    _serve(body)


# -- graceful drain ----------------------------------------------------------

def test_drain_refuses_new_frames_and_completes_in_flight():
    async def body(service, server):
        client = await NetClient.connect("127.0.0.1", server.port)
        try:
            in_flight = asyncio.ensure_future(
                client.sign("tenant-a", b"in-flight"))
            while not server.metrics.frames:  # frame is dispatched
                await asyncio.sleep(0.001)
            stop = asyncio.ensure_future(
                server.stop(stop_service=False))
            await asyncio.sleep(0)
            # The in-flight request completes with a real signature.
            assert (await in_flight).salt
            await stop
            # New frames on a live connection are refused as draining
            # (the listener itself is closed, so reuse the socket).
            with pytest.raises((FrameError, ConnectionError)) as err:
                await client.sign("tenant-a", b"late")
            if isinstance(err.value, FrameError):
                assert err.value.code == ERR_DRAINING
        finally:
            await client.close()

    _serve(body)


def test_client_close_fails_pending_cleanly():
    async def drive():
        store = ShardedKeyStore(shards=1, master_seed=23)
        async with SigningService(store, n=8, max_wait=0.2) as service:
            server = NetServer(service)
            await server.start("127.0.0.1", 0)
            client = await NetClient.connect("127.0.0.1", server.port)
            pending = asyncio.ensure_future(
                client.sign("tenant-a", b"doomed"))
            await asyncio.sleep(0)
            await client.close()
            with pytest.raises(ConnectionError):
                await pending
            await server.stop(stop_service=False)

    asyncio.run(drive())


# -- multi-process shard workers ---------------------------------------------

def test_worker_pool_signatures_byte_identical_to_direct():
    """Two real worker processes; the bytes coming back across the
    process boundary match a direct in-process ``sign_many`` over the
    same deployment seed."""
    messages = [b"mp-%d" % i for i in range(4)]
    with ShardWorkerPool(shards=2, master_seed=31) as pool:
        store = ShardedKeyStore(shards=2, master_seed=31)
        shard = store.shard_for("tenant-a")
        outcome = pool.run_round(shard, "tenant-a", "sign", 8,
                                 messages)
        verdicts = pool.run_round(shard, "tenant-a", "verify", 8,
                                  messages, signatures=outcome)
    assert verdicts == [True] * len(messages)
    direct = ShardedKeyStore(shards=2, master_seed=31) \
        .signer("tenant-a", 8).sign_many(messages)
    assert [(s.salt, s.compressed) for s in outcome] == \
        [(s.salt, s.compressed) for s in direct]


def test_worker_pool_runs_merged_cross_tenant_verify_round():
    """A merged verify round crosses the process boundary with its
    per-lane tenant list; each lane checks against its own tenant's
    key inside the worker."""
    with ShardWorkerPool(shards=1, master_seed=34) as pool:
        sig_a = pool.run_round(0, "tenant-a", "sign", 8, [b"a"])[0]
        sig_b = pool.run_round(0, "tenant-b", "sign", 8, [b"b"])[0]
        verdicts = pool.run_round(
            0, ["tenant-a", "tenant-b", "tenant-b"], "verify", 8,
            [b"a", b"b", b"a"],
            signatures=[sig_a, sig_b, sig_a])
    assert verdicts == [True, True, False]
    with ShardWorkerPool(shards=1, master_seed=32) as pool:
        with pytest.raises(Exception):
            pool.run_round(0, "tenant-a", "sign", 7, [b"bad-n"])
        # The worker survives the failed round.
        outcome = pool.run_round(0, "tenant-a", "sign", 8, [b"ok"])
        assert len(outcome) == 1
        assert pool.running


def test_worker_pool_lifecycle_guards():
    pool = ShardWorkerPool(shards=1, master_seed=33)
    with pytest.raises(ShardWorkerError):
        pool.run_round(0, "tenant-a", "sign", 8, [b"not-started"])
    pool.start()
    try:
        with pytest.raises(ValueError):
            pool.run_round(5, "tenant-a", "sign", 8, [b"no-shard"])
    finally:
        pool.stop()
    assert not pool.running
    pool.stop()  # idempotent


def test_service_over_worker_pool_end_to_end():
    """SigningService → ShardWorkerPool → worker processes: coalesced
    rounds run out-of-process and still verify in-process.  One round
    of five (window held open, max_batch above the count) replays the
    direct call's chunking, so the bytes must match exactly."""
    messages = [b"svc-mp-%d" % i for i in range(5)]

    async def drive():
        store = ShardedKeyStore(shards=2, master_seed=34)
        with ShardWorkerPool(shards=2, master_seed=34) as pool:
            async with SigningService(store, n=8, max_batch=8,
                                      max_wait=0.3,
                                      worker_pool=pool) as service:
                signatures = await service.sign_all("tenant-a",
                                                    messages)
                verdicts = await asyncio.gather(
                    *[service.verify("tenant-a", m, s)
                      for m, s in zip(messages, signatures)])
        return signatures, verdicts

    signatures, verdicts = asyncio.run(drive())
    assert verdicts == [True] * len(messages)
    direct = ShardedKeyStore(shards=2, master_seed=34) \
        .signer("tenant-a", 8).sign_many(messages)
    assert [(s.salt, s.compressed) for s in signatures] == \
        [(s.salt, s.compressed) for s in direct]


def test_wire_over_worker_pool_full_stack():
    """The whole plane at once: client frames → NetServer →
    coalescer → worker processes → frames back."""

    async def body(service, server):
        async with await NetClient.connect(
                "127.0.0.1", server.port) as client:
            signature = await client.sign("tenant-a", b"full-stack")
            assert await client.verify("tenant-a", b"full-stack",
                                       signature)

    with ShardWorkerPool(shards=2, master_seed=35) as pool:
        _serve(body, master_seed=35, worker_pool=pool)
