"""Tests for the CDT baseline samplers and adapters.

The central property: *every backend samples the same distribution* —
the truncated n-bit matrix rows — so exhaustive/statistical agreement
with the Knuth–Yao reference is required, not just plausibility.
"""

import math
from collections import Counter

import pytest

from repro.baselines import (
    BisectionCdtSampler,
    BitslicedIntegerSampler,
    ByteScanCdtSampler,
    CdtBinarySearchSampler,
    CdtTable,
    KnuthYaoIntegerSampler,
    LazyUniform,
    LinearScanCdtSampler,
)
from repro.core import GaussianParams, probability_matrix
from repro.ct import OpCounter
from repro.rng import ChaChaSource, FixedSource

PARAMS = GaussianParams.from_sigma(2, precision=16)
PARAMS_LOW = GaussianParams.from_sigma(2, precision=8)

ALL_BACKENDS = [
    CdtBinarySearchSampler,
    ByteScanCdtSampler,
    LinearScanCdtSampler,
    KnuthYaoIntegerSampler,
    BisectionCdtSampler,
]


def test_cdt_table_is_running_sum_of_matrix_rows():
    table = CdtTable(PARAMS)
    matrix = probability_matrix(PARAMS)
    acc = 0
    for v, entry in enumerate(table.entries):
        acc += matrix.rows[v]
        assert entry == acc
    assert table.entries[-1] == matrix.mass
    assert len(table) == matrix.max_value + 1


def test_cdt_table_bytes_are_shifted_big_endian():
    params = GaussianParams.from_sigma(2, precision=12)  # not a multiple
    table = CdtTable(params)
    assert table.num_bytes == 2
    for value, raw in zip(table.entries, table.entry_bytes):
        assert int.from_bytes(raw, "big") == value << 4


@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_magnitudes_within_support(backend):
    sampler = backend(PARAMS, source=ChaChaSource(1))
    for _ in range(300):
        value = sampler.sample_magnitude()
        assert 0 <= value <= probability_matrix(PARAMS).max_value


@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_signed_sampling_symmetric(backend):
    sampler = backend(PARAMS, source=ChaChaSource(2))
    values = sampler.sample_many(4000)
    nonzero = [v for v in values if v != 0]
    positives = sum(1 for v in nonzero if v > 0)
    assert 0.44 < positives / len(nonzero) < 0.56


def _exact_probabilities(params):
    matrix = probability_matrix(params)
    mass = matrix.mass
    return {v: matrix.rows[v] / mass for v in range(matrix.max_value + 1)}


@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_distribution_matches_matrix_exactly(backend):
    """Chi-square of magnitudes against the conditioned matrix rows."""
    sampler = backend(PARAMS, source=ChaChaSource(3))
    draws = 12_000
    counts = Counter(sampler.sample_magnitude() for _ in range(draws))
    probabilities = _exact_probabilities(PARAMS)
    chi2 = 0.0
    dof = 0
    for v, p in probabilities.items():
        expected = p * draws
        if expected < 5:
            continue
        chi2 += (counts.get(v, 0) - expected) ** 2 / expected
        dof += 1
    dof -= 1
    assert chi2 < dof + 5 * math.sqrt(2 * dof), (chi2, dof)


def test_all_backends_agree_pairwise_on_frequencies():
    draws = 8000
    tallies = {}
    for backend in ALL_BACKENDS:
        sampler = backend(PARAMS_LOW, source=ChaChaSource(4))
        tallies[backend.__name__] = Counter(
            sampler.sample_magnitude() for _ in range(draws))
    names = list(tallies)
    for a in names:
        for b in names:
            for v in range(6):
                fa = tallies[a][v] / draws
                fb = tallies[b][v] / draws
                assert abs(fa - fb) < 0.03, (a, b, v)


def test_byte_scan_cheaper_than_binary_cheaper_than_linear():
    """The Table 1 cost ordering under the op model (per magnitude)."""
    costs = {}
    for backend in (ByteScanCdtSampler, CdtBinarySearchSampler,
                    LinearScanCdtSampler):
        sampler = backend(PARAMS, source=ChaChaSource(5))
        for _ in range(2000):
            sampler.sample_magnitude()
        costs[backend.name] = sampler.counter.counts.modeled_cycles(
            prng="chacha20") / 2000
    assert costs["cdt-byte-scan"] < costs["cdt-binary"]
    assert costs["cdt-binary"] < costs["cdt-linear"]


def test_linear_scan_op_trace_is_constant():
    sampler = LinearScanCdtSampler(PARAMS, source=ChaChaSource(6))
    deltas = set()
    for _ in range(200):
        before = sampler.counter.snapshot()
        sampler.sample_magnitude()
        delta = sampler.counter.delta(before)
        deltas.add((delta.word_ops, delta.compares, delta.loads,
                    delta.rng_bytes))
    assert len(deltas) == 1  # constant-time: identical trace every call


def test_byte_scan_op_trace_varies():
    sampler = ByteScanCdtSampler(PARAMS, source=ChaChaSource(7))
    deltas = set()
    for _ in range(200):
        before = sampler.counter.snapshot()
        sampler.sample_magnitude()
        delta = sampler.counter.delta(before)
        deltas.add((delta.compares, delta.loads, delta.rng_bytes))
    assert len(deltas) > 3  # leaks: trace depends on the sample


def test_lazy_uniform_draws_on_demand():
    counter = OpCounter()
    lazy = LazyUniform(FixedSource(bytes([0xAB, 0xCD, 0xEF])), 3, counter)
    assert lazy.bytes_drawn == 0
    assert lazy.byte(0) == 0xAB
    assert lazy.bytes_drawn == 1
    assert lazy.byte(2) == 0xEF
    assert lazy.bytes_drawn == 3
    assert lazy.materialize_all() == 0xABCDEF
    with pytest.raises(IndexError):
        lazy.byte(3)


def test_lazy_uniform_comparison_semantics():
    counter = OpCounter()
    lazy = LazyUniform(FixedSource(bytes([0x80, 0x00])), 2, counter)
    assert lazy.less_than_bytes(bytes([0x80, 0x01]))   # equal then less
    assert not lazy.less_than_bytes(bytes([0x80, 0x00]))  # equality
    assert not lazy.less_than_bytes(bytes([0x7F, 0xFF]))  # greater


def test_bitsliced_adapter_matches_distribution():
    sampler = BitslicedIntegerSampler(PARAMS_LOW, source=ChaChaSource(8))
    draws = 8000
    counts = Counter(abs(sampler.sample()) for _ in range(draws))
    probabilities = _exact_probabilities(PARAMS_LOW)
    for v in range(4):
        assert abs(counts[v] / draws - probabilities[v]) < 0.02


def test_bitsliced_adapter_books_batch_costs():
    sampler = BitslicedIntegerSampler(PARAMS_LOW, source=ChaChaSource(9))
    sampler.sample()
    counts = sampler.counter.counts
    assert counts.word_ops == sampler.inner.word_ops_per_batch
    assert counts.rng_bytes == sampler.inner.random_bytes_per_batch


def test_bisection_rank_matches_bisect_right_exhaustively():
    """The branchless fixed-iteration bisection must rank every
    possible uniform draw exactly like ``bisect_right`` over the
    shifted CDT entries — the property that makes it a drop-in,
    distribution-identical replacement for the early-exit search."""
    import bisect

    sampler = BisectionCdtSampler(PARAMS_LOW, source=ChaChaSource(11))
    entries = sampler.table.shifted_entries
    bits = 8 * sampler.table.num_bytes
    for r in range(1 << bits):
        assert sampler._rank(r) == bisect.bisect_right(entries, r), r


def test_bisection_trace_constant_per_attempt():
    """Fixed-iteration search: every attempt books the identical op
    vector (log2(size)+1 probes), independent of the sampled value."""
    sampler = BisectionCdtSampler(PARAMS, source=ChaChaSource(12))
    deltas = set()
    for _ in range(500):
        before = sampler.counter.snapshot()
        sampler.sample_magnitude()
        delta = sampler.counter.delta(before)
        attempts = delta.branches + 1
        deltas.add((delta.word_ops // attempts,
                    delta.compares // attempts,
                    delta.loads // attempts,
                    delta.rng_bytes // attempts))
    assert len(deltas) == 1, deltas
    word_ops, compares, loads, _rng = next(iter(deltas))
    probes = sampler.probes_per_attempt
    assert compares == probes * sampler.words_per_entry
    assert loads == probes * sampler.words_per_entry


def test_bisection_registered_in_zoo():
    from repro.baselines import available_backends, make_sampler

    assert "cdt-bisection" in available_backends()
    sampler = make_sampler("cdt-bisection", PARAMS,
                           source=ChaChaSource(13))
    assert isinstance(sampler, BisectionCdtSampler)
    assert sampler.constant_time


def test_restart_on_truncation_gap():
    """At n=6 the gap is 3/64; restarts must occur and stay correct."""
    for backend in (CdtBinarySearchSampler, ByteScanCdtSampler,
                    LinearScanCdtSampler, BisectionCdtSampler):
        sampler = backend(GaussianParams.from_sigma(2, precision=6),
                          source=ChaChaSource(10))
        values = [sampler.sample_magnitude() for _ in range(3000)]
        assert all(0 <= v <= 5 for v in values)
