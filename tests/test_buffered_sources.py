"""Byte-identity of the buffered randomness layer.

The :class:`~repro.rng.source.BufferedRandomSource` refactor promises
that serving reads from a prefetched keystream slab never changes the
delivered byte sequence: for any interleaving of ``read_bytes`` /
``read_word`` / ``read_word_block`` / ``read_words`` calls, a buffered
source must reproduce the unbuffered stream exactly, for ChaCha
(scalar and vectorized) and SHAKE alike.  These tests pin that
contract, plus the NumPy array read path and the named-source
registry.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rng import (
    HAVE_VECTOR_CHACHA,
    ChaChaSource,
    CounterSource,
    ChaChaStream,
    ShakeSource,
    available_sources,
    make_source,
)

try:
    import numpy
except ImportError:  # pragma: no cover - exercised in the no-numpy CI job
    numpy = None


#: An interleaved consumption schedule: (method, args) operations.
_OPERATIONS = st.lists(
    st.one_of(
        st.tuples(st.just("read_bytes"),
                  st.integers(min_value=0, max_value=200)),
        st.tuples(st.just("read_word"),
                  st.integers(min_value=1, max_value=80)),
        st.tuples(st.just("read_word_block"),
                  st.tuples(st.integers(min_value=1, max_value=64),
                            st.integers(min_value=1, max_value=20))),
        st.tuples(st.just("read_words"),
                  st.tuples(st.integers(min_value=1, max_value=64),
                            st.integers(min_value=1, max_value=20))),
    ),
    min_size=1, max_size=12)


def _replay(source, operations):
    out = []
    for method, args in operations:
        if method in ("read_bytes", "read_word"):
            out.append(getattr(source, method)(args))
        else:
            out.append(getattr(source, method)(*args))
    return out


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32),
       operations=_OPERATIONS)
def test_buffered_chacha_matches_unbuffered(seed, operations):
    buffered = ChaChaSource(seed, buffer_bytes=512)
    unbuffered = ChaChaSource(seed, buffer_bytes=0)
    assert _replay(buffered, operations) == _replay(unbuffered,
                                                    operations)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32),
       operations=_OPERATIONS)
def test_buffered_shake_matches_unbuffered(seed, operations):
    for variant in (128, 256):
        buffered = ShakeSource(seed, variant=variant, buffer_bytes=300)
        unbuffered = ShakeSource(seed, variant=variant, buffer_bytes=0)
        assert _replay(buffered, operations) == _replay(unbuffered,
                                                        operations)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32),
       operations=_OPERATIONS)
def test_default_buffer_matches_unbuffered(seed, operations):
    """The library default (large slab + vectorized ChaCha when NumPy
    is present) emits the same stream as the scalar unbuffered path."""
    default = ChaChaSource(seed)
    reference = ChaChaSource(seed, buffer_bytes=0, vectorized=False)
    assert _replay(default, operations) == _replay(reference, operations)


def test_large_reads_bypass_the_buffer():
    source = ChaChaSource(3, buffer_bytes=128)
    reference = ChaChaSource(3, buffer_bytes=0)
    # Larger than the slab: generated exactly, no residue kept.
    assert source.read_bytes(1000) == reference.read_bytes(1000)
    assert source.buffered_bytes == 0
    # Small read refills one slab and leaves the rest buffered.
    assert source.read_bytes(5) == reference.read_bytes(5)
    assert source.buffered_bytes == 123


def test_zero_length_read():
    source = ChaChaSource(1)
    assert source.read_bytes(0) == b""
    assert source.read_bytes(-3) == b""


def test_negative_buffer_rejected():
    with pytest.raises(ValueError):
        ChaChaSource(0, buffer_bytes=-1)


def test_buffered_stream_spans_slab_boundaries():
    """Reads that straddle refills stay contiguous with the keystream."""
    whole = ChaChaStream(bytes(32)).read(4096)
    source = ChaChaSource(0, buffer_bytes=96)
    pieces = []
    taken = 0
    size = 1
    while taken < 4096:
        take = min(size, 4096 - taken)
        pieces.append(source.read_bytes(take))
        taken += take
        size = (size * 7 + 3) % 200 + 1
    assert b"".join(pieces) == whole


# -- read_words_array -----------------------------------------------------

@pytest.mark.skipif(numpy is None, reason="NumPy not installed")
@pytest.mark.parametrize("bits", [1, 7, 8, 12, 24, 32, 53, 56, 63, 64])
def test_read_words_array_matches_read_words(bits):
    as_list = ChaChaSource(11).read_words(bits, 50)
    as_array = ChaChaSource(11).read_words_array(bits, 50)
    assert as_array.dtype == numpy.uint64
    assert as_array.tolist() == as_list


@pytest.mark.skipif(numpy is None, reason="NumPy not installed")
def test_read_words_array_validation():
    source = CounterSource(0)
    with pytest.raises(ValueError):
        source.read_words_array(0, 4)
    with pytest.raises(ValueError):
        source.read_words_array(65, 4)


@pytest.mark.skipif(numpy is not None, reason="NumPy installed")
def test_read_words_array_requires_numpy():
    with pytest.raises(RuntimeError):
        CounterSource(0).read_words_array(64, 4)


# -- the named-source registry --------------------------------------------

def test_registry_names():
    assert set(available_sources()) == {
        "chacha20", "chacha12", "chacha8",
        "shake128", "shake256", "counter"}
    with pytest.raises(ValueError):
        make_source("aesni")


def test_registry_streams_match_direct_construction():
    assert make_source("chacha20", 5).read_bytes(32) == \
        ChaChaSource(5).read_bytes(32)
    assert make_source("chacha8", 5).read_bytes(32) == \
        ChaChaSource(5, rounds=8).read_bytes(32)
    assert make_source("shake128", 5).read_bytes(32) == \
        ShakeSource(5, variant=128).read_bytes(32)
    assert make_source("counter", 5).read_bytes(32) == \
        CounterSource(5).read_bytes(32)


def test_registry_counter_accepts_byte_seeds():
    assert make_source("counter", b"\x05").read_bytes(16) == \
        CounterSource(5).read_bytes(16)


@pytest.mark.skipif(not HAVE_VECTOR_CHACHA, reason="NumPy not installed")
def test_vectorized_flag_is_transparent():
    fast = ChaChaSource(9, vectorized=True)
    slow = ChaChaSource(9, vectorized=False)
    assert fast.read_bytes(3000) == slow.read_bytes(3000)
