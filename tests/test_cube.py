"""Tests for cube algebra."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boolfunc import Cube, cover_cost


def cube_strategy(width=6):
    return st.builds(
        lambda care, value: Cube(width=width, care=care,
                                 value=value & care),
        st.integers(min_value=0, max_value=(1 << width) - 1),
        st.integers(min_value=0, max_value=(1 << width) - 1))


def test_construction_validation():
    with pytest.raises(ValueError):
        Cube(width=2, care=0b100, value=0)
    with pytest.raises(ValueError):
        Cube(width=3, care=0b001, value=0b010)


def test_from_string_round_trip():
    cube = Cube.from_string("01--1")
    assert cube.width == 5
    assert cube.to_string() == "01--1"
    assert cube.literal_count == 3
    assert cube.minterm_count() == 4


def test_from_prefix_matches_semantics():
    cube = Cube.from_prefix(5, [1, 0, 1])
    assert cube.to_string() == "101--"
    assert cube.contains_minterm(0b00101)
    assert cube.contains_minterm(0b11101)
    assert not cube.contains_minterm(0b00111)


def test_minterm_enumeration():
    cube = Cube.from_string("1-0")
    assert sorted(cube.minterms()) == [0b001, 0b011]


def test_literals_enumeration():
    cube = Cube.from_string("0-1")
    assert sorted(cube.literals()) == [(0, 0), (2, 1)]


def test_full_cube_covers_everything():
    full = Cube.full(4)
    for minterm in range(16):
        assert full.contains_minterm(minterm)
    assert full.minterm_count() == 16


def test_merge_distance_one():
    a = Cube.from_string("101")
    b = Cube.from_string("100")
    merged = a.merge_distance_one(b)
    assert merged.to_string() == "10-"
    assert a.merge_distance_one(Cube.from_string("010")) is None
    assert a.merge_distance_one(Cube.from_string("1-1")) is None


def test_cofactor():
    cube = Cube.from_string("1-0")
    assert cube.cofactor(0, 1).to_string() == "--0"
    assert cube.cofactor(0, 0) is None
    assert cube.cofactor(1, 0).to_string() == "1-0"


def test_without_variable():
    cube = Cube.from_string("10")
    assert cube.without_variable(0).to_string() == "-0"
    assert cube.without_variable(5).to_string() == "10"


@settings(max_examples=100, deadline=None)
@given(cube_strategy(), cube_strategy())
def test_covers_iff_minterm_subset(a, b):
    assert a.covers(b) == set(b.minterms()).issubset(set(a.minterms()))


@settings(max_examples=100, deadline=None)
@given(cube_strategy(), cube_strategy())
def test_intersects_iff_shared_minterm(a, b):
    shared = set(a.minterms()) & set(b.minterms())
    assert a.intersects(b) == bool(shared)
    inter = a.intersection(b)
    if shared:
        assert set(inter.minterms()) == shared
    else:
        assert inter is None


@settings(max_examples=100, deadline=None)
@given(cube_strategy(), cube_strategy())
def test_supercube_contains_both(a, b):
    sup = a.supercube(b)
    assert sup.covers(a)
    assert sup.covers(b)


@settings(max_examples=100, deadline=None)
@given(cube_strategy(), cube_strategy())
def test_conflict_mask_certifies_disjointness(a, b):
    assert (a.conflict_mask(b) != 0) == (not a.intersects(b))


def test_width_mismatch_rejected():
    with pytest.raises(ValueError):
        Cube.full(3).covers(Cube.full(4))


def test_cover_cost():
    cubes = [Cube.from_string("1-0"), Cube.from_string("---")]
    assert cover_cost(cubes) == (2, 2)
