"""Tests for distribution statistics and the chi-square machinery."""

import math
from fractions import Fraction

import pytest

#: SciPy is only present in the with-NumPy CI leg; the cross-checks
#: against scipy.stats skip cleanly elsewhere (including environments
#: where scipy exists but NumPy does not, hence exc_type=ImportError).
scipy = pytest.importorskip("scipy", exc_type=ImportError)
import scipy.stats  # noqa: E402

from repro.analysis import (
    chi_square_p_value,
    chi_square_statistic,
    empirical_pmf,
    ideal_signed_gaussian_pmf,
    kl_divergence,
    max_log_distance,
    renyi_divergence,
    statistical_distance,
)
from repro.core import GaussianParams, probability_matrix, true_pmf


def test_statistical_distance_exact():
    p = [Fraction(1, 2), Fraction(1, 2)]
    q = [Fraction(1, 4), Fraction(3, 4)]
    assert statistical_distance(p, q) == Fraction(1, 4)
    assert statistical_distance(p, p) == 0


def test_statistical_distance_pads_support():
    p = [Fraction(1)]
    q = [Fraction(1, 2), Fraction(1, 2)]
    assert statistical_distance(p, q) == Fraction(1, 2)


def test_truncation_distance_shrinks_with_precision():
    """The paper's criterion: higher n => smaller statistical distance."""
    distances = []
    for n in (8, 16, 32, 64):
        params = GaussianParams.from_sigma(2, precision=n)
        matrix = probability_matrix(params)
        # Conditioned (restart) distribution of the sampler.
        pmf = [Fraction(row, matrix.mass) for row in matrix.rows]
        distances.append(statistical_distance(pmf, true_pmf(params)))
    assert distances[0] > distances[1] > distances[2] > distances[3]
    assert distances[3] < Fraction(1, 2 ** 55)


def test_kl_divergence_basics():
    p = [0.5, 0.5]
    q = [0.25, 0.75]
    expected = 0.5 * math.log(2) + 0.5 * math.log(0.5 / 0.75)
    assert kl_divergence(p, q) == pytest.approx(expected)
    assert kl_divergence(p, p) == 0
    with pytest.raises(ValueError):
        kl_divergence([1.0], [0.0, 1.0])


def test_renyi_divergence_limits():
    p = [0.5, 0.5]
    q = [0.4, 0.6]
    r2 = renyi_divergence(p, q, 2)
    r10 = renyi_divergence(p, q, 10)
    assert 0 < r2 < r10  # Rényi is nondecreasing in alpha
    assert renyi_divergence(p, p, 2) == pytest.approx(0, abs=1e-12)
    with pytest.raises(ValueError):
        renyi_divergence(p, q, 1)


def test_max_log_distance():
    p = [0.5, 0.5]
    q = [0.25, 0.75]
    assert max_log_distance(p, q) == pytest.approx(math.log(2))
    assert max_log_distance(p, p) == 0
    assert max_log_distance([1.0, 0.0], [0.5, 0.5]) == math.inf


def test_chi_square_statistic_pools_small_cells():
    observed = {0: 50, 1: 30, 2: 15, 3: 3, 4: 2}
    expected = {0: 0.5, 1: 0.3, 2: 0.15, 3: 0.03, 4: 0.02}
    chi2, dof = chi_square_statistic(observed, expected, draws=100)
    assert dof == 3  # cells 0,1,2 plus pooled tail
    assert chi2 >= 0


def test_chi_square_p_value_matches_scipy():
    for chi2, dof in [(1.0, 1), (5.0, 3), (10.0, 10), (30.0, 12),
                      (0.5, 7), (100.0, 80)]:
        ours = chi_square_p_value(chi2, dof)
        scipys = scipy.stats.chi2.sf(chi2, dof)
        assert ours == pytest.approx(scipys, abs=1e-10)


def test_empirical_pmf():
    pmf = empirical_pmf([1, 1, 2, 3])
    assert pmf == {1: 0.5, 2: 0.25, 3: 0.25}


def test_ideal_signed_pmf_properties():
    pmf = ideal_signed_gaussian_pmf(2.0, 26)
    assert sum(pmf.values()) == pytest.approx(1.0)
    assert pmf[3] == pmf[-3]
    assert pmf[0] > pmf[1] > pmf[2]
