"""Numerical-precision guarantees for the Falcon float substrate.

Falcon-1024 is the largest instance; double-precision FFT error must
stay far below the 0.5 rounding threshold used when converting sampled
lattice points back to integers, or signatures would silently corrupt.
"""

import random

from repro.falcon import fft, ifft, mul_fft, ntt
from repro.falcon.fft import fft_points
from repro.falcon.ntt import Q, _generator, _tables


def test_fft_round_trip_error_at_n_1024():
    rng = random.Random(1)
    coeffs = [float(rng.randint(-6000, 6000)) for _ in range(1024)]
    back = ifft(fft(coeffs))
    worst = max(abs(a - b) for a, b in zip(coeffs, back))
    assert worst < 1e-6  # 0.5 is the corruption threshold


def test_fft_multiply_error_at_n_1024():
    """Coefficients the size of signing intermediates (~q * sigma)."""
    rng = random.Random(2)
    a = [float(rng.randint(-200, 200)) for _ in range(1024)]
    b = [float(rng.randint(-200, 200)) for _ in range(1024)]
    product = ifft(mul_fft(fft(a), fft(b)))
    # Spot-check a few coefficients against exact integer convolution.
    from repro.falcon import poly
    exact = poly.mul_negacyclic([int(x) for x in a],
                                [int(x) for x in b])
    for index in (0, 1, 511, 512, 1023):
        assert abs(product[index] - exact[index]) < 0.4


def test_fft_points_conjugate_pairing():
    """Slots 2k/2k+1 hold a +/- pair; the full set is conjugate-closed,
    which is what makes pointwise conjugation the adjoint."""
    points = fft_points(64)
    as_set = {complex(round(p.real, 9), round(p.imag, 9))
              for p in points}
    for p in points:
        conj = complex(round(p.real, 9), round(-p.imag, 9))
        assert conj in as_set
    for k in range(32):
        assert abs(points[2 * k] + points[2 * k + 1]) < 1e-12


def test_ntt_generator_is_primitive():
    g = _generator()
    assert pow(g, Q - 1, Q) == 1
    assert pow(g, (Q - 1) // 2, Q) != 1
    assert pow(g, (Q - 1) // 3, Q) != 1


def test_ntt_psi_tables_consistent():
    forward, inverse, n_inv = _tables(64)
    # Table entry 1 holds psi^brv(1): at index 1 the bit-reverse of 1
    # over 6 bits is 32, so forward[1] = psi^32 = omega^16...; instead
    # of replaying bit-reversal, check the defining pairwise property:
    # forward[i] * inverse[i] == 1 mod q for all i (same brv exponent).
    for f, i in zip(forward, inverse):
        assert f * i % Q == 1
    assert 64 * n_inv % Q == 1


def test_ntt_negacyclic_root_property():
    """The psi underlying the tables satisfies psi^(2n) = 1 and
    psi^n = -1 (a true negacyclic root)."""
    n = 128
    psi = pow(_generator(), (Q - 1) // (2 * n), Q)
    assert pow(psi, 2 * n, Q) == 1
    assert pow(psi, n, Q) == Q - 1


def test_large_coefficient_fft_scaling():
    """reduce_basis scales 4000-bit coefficients into float windows;
    verify the block-scaled floats keep 53-bit leading accuracy."""
    from repro.falcon.ntrugen import _block_scaled_floats

    big = (1 << 4000) + (1 << 3980) + 12345
    scaled = _block_scaled_floats([big, -big], 4000 - 52)
    assert scaled[0] > 0 > scaled[1]
    expected = float(big >> (4000 - 52))
    assert abs(scaled[0] - expected) <= 1.0
