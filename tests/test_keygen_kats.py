"""Keygen known-answer tests: seeded NtruKeys pinned value for value.

The fixtures under ``tests/kats/keygen_*.json`` were generated once
(by ``tests/kats/generate_kats.py``) and committed; every future
refactor of the keygen pipeline — the CDT block sampler, the candidate
filters, NTRUSolve, Babai reduction, on either spine — must keep
reproducing the exact same (f, g, F, G, h), in both the with-NumPy and
without-NumPy CI legs.  A divergence here means the two spines no
longer generate the same keys from the same seed.

The n=256, n=512 and n=1024 vectors run under ``REPRO_FULL=1`` (the
slow gate; Level 3 keygen costs ~100 ms vectorized, ~1 s scalar).
"""

import json
from pathlib import Path

import pytest
from _env_gate import REPRO_FULL

from repro.falcon import HAVE_NUMPY, generate_keys
from repro.rng import ChaChaSource

KAT_DIR = Path(__file__).parent / "kats"
FULL = REPRO_FULL

KAT_FILES = sorted(KAT_DIR.glob("keygen_*.json"))


def _kats():
    for path in KAT_FILES:
        with open(path, encoding="utf-8") as handle:
            kat = json.load(handle)
        if kat["n"] > 64 and not FULL:
            continue
        yield pytest.param(kat, id=f"n{kat['n']}")


def test_keygen_kat_fixtures_exist():
    names = {path.name for path in KAT_FILES}
    for n in (8, 64, 256, 512, 1024):
        assert any(f"keygen_n{n}_" in name for name in names), names


@pytest.mark.parametrize("kat", _kats())
def test_keygen_kat_default_spine(kat):
    keys = generate_keys(kat["n"], source=ChaChaSource(kat["seed"]))
    assert keys.f == kat["f"]
    assert keys.g == kat["g"]
    assert keys.F == kat["F"]
    assert keys.G == kat["G"]
    assert keys.h == kat["h"]


@pytest.mark.parametrize("spine", ["scalar"]
                         + (["numpy"] if HAVE_NUMPY else []))
@pytest.mark.parametrize("kat", _kats())
def test_keygen_kat_each_spine(kat, spine):
    keys = generate_keys(kat["n"], source=ChaChaSource(kat["seed"]),
                         spine=spine)
    assert keys.F == kat["F"]
    assert keys.G == kat["G"]
    assert keys.h == kat["h"]


@pytest.mark.parametrize("kat", _kats())
def test_keygen_kat_keys_are_valid(kat):
    keys = generate_keys(kat["n"], source=ChaChaSource(kat["seed"]))
    assert keys.verify_ntru_equation()
