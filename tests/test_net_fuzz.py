"""Hypothesis-free fuzzing of the wire-protocol codec.

Contract under test: for ANY byte string, the frame parsers either
decode successfully or raise :class:`FrameError` — no ``struct.error``,
``IndexError``, ``UnicodeDecodeError`` or other exception ever escapes.
A server feeding attacker-controlled bytes into these functions must
get a typed protocol error it can answer on the wire, not a crash.

All randomness is ``random.Random(seed)``-driven: every failure
reproduces from the printed seed and case index.
"""

import random

import pytest

from repro.falcon.serving.net import (
    FRAME_SIGN,
    FRAME_VERIFY,
    HEADER_BYTES,
    FrameError,
    decode_body,
    decode_verify_payload,
    encode_frame,
    encode_request_frame,
    frame_shape,
)

SEED = 20260807
ROUND_TRIPS = 200
MUTATIONS_PER_FRAME = 12


def _random_frame(rng: random.Random) -> tuple[bytes, tuple]:
    """One well-formed frame with randomized metadata and payload."""
    kind = rng.choice((FRAME_SIGN, FRAME_VERIFY))
    req_id = rng.randrange(1 << 32)
    tenant = bytes(rng.randrange(256)
                   for _ in range(rng.randrange(0, 33)))
    token = bytes(rng.randrange(256)
                  for _ in range(rng.randrange(0, 65)))
    payload = bytes(rng.randrange(256)
                    for _ in range(rng.randrange(0, 257)))
    frame = encode_frame(kind, req_id, tenant, token, payload)
    return frame, (kind, req_id, tenant, token, payload)


def test_random_round_trips():
    """encode -> (frame_shape, decode_body) recovers every field."""
    rng = random.Random(SEED)
    for case in range(ROUND_TRIPS):
        frame, (kind, req_id, tenant, token, payload) = \
            _random_frame(rng)
        shape = frame_shape(frame)
        assert shape == (kind, req_id, len(tenant), len(token),
                         len(payload)), f"case {case}"
        decoded = decode_body(frame[HEADER_BYTES:])
        assert decoded == (tenant, token, payload), f"case {case}"


def test_request_frame_encodes_tenant_text():
    rng = random.Random(SEED + 1)
    for case in range(50):
        tenant = "tenant-%d" % rng.randrange(1000)
        token = bytes(rng.randrange(256) for _ in range(16))
        payload = bytes(rng.randrange(256)
                        for _ in range(rng.randrange(64)))
        frame = encode_request_frame(FRAME_SIGN, case, tenant, token,
                                     payload)
        decoded_tenant, decoded_token, decoded_payload = \
            decode_body(frame[HEADER_BYTES:])
        assert decoded_tenant.decode() == tenant
        assert (decoded_token, decoded_payload) == (token, payload)


def _assert_decodes_or_frame_error(mutant: bytes, context: str) -> None:
    try:
        frame_shape(mutant)
    except FrameError:
        pass
    except Exception as error:  # pragma: no cover - the failure mode
        pytest.fail(f"{context}: frame_shape leaked "
                    f"{type(error).__name__}: {error}")
    try:
        decode_body(mutant[HEADER_BYTES:])
    except FrameError:
        pass
    except Exception as error:  # pragma: no cover - the failure mode
        pytest.fail(f"{context}: decode_body leaked "
                    f"{type(error).__name__}: {error}")


def test_single_byte_mutations_never_escape():
    """Flip one byte anywhere in a valid frame: the parsers must
    decode or raise FrameError, nothing else."""
    rng = random.Random(SEED + 2)
    for case in range(60):
        frame, _fields = _random_frame(rng)
        for mutation in range(MUTATIONS_PER_FRAME):
            position = rng.randrange(len(frame))
            flip = 1 + rng.randrange(255)
            mutant = bytearray(frame)
            mutant[position] ^= flip
            _assert_decodes_or_frame_error(
                bytes(mutant),
                f"case {case} mutation {mutation} "
                f"(byte {position} ^ 0x{flip:02x})")


def test_truncations_never_escape():
    """Every prefix of a valid frame decodes or raises FrameError."""
    rng = random.Random(SEED + 3)
    frame, _fields = _random_frame(rng)
    for cut in range(len(frame)):
        _assert_decodes_or_frame_error(frame[:cut], f"cut at {cut}")


def test_random_garbage_never_escapes():
    rng = random.Random(SEED + 4)
    for case in range(120):
        garbage = bytes(rng.randrange(256)
                        for _ in range(rng.randrange(0, 96)))
        _assert_decodes_or_frame_error(garbage, f"garbage case {case}")


def test_body_length_mismatch_rejected():
    """A frame whose BODY_LEN lies about the bytes present is a
    protocol error, not a silently mis-measured shape."""
    frame, _fields = _random_frame(random.Random(SEED + 5))
    with pytest.raises(FrameError, match="body length"):
        frame_shape(frame + b"\x00")
    with pytest.raises(FrameError, match="body length|truncated"):
        frame_shape(frame[:-1])


def test_short_header_rejected():
    with pytest.raises(FrameError, match="truncated header"):
        frame_shape(b"FLCN")
    with pytest.raises(FrameError):
        frame_shape(b"")


def test_verify_payload_fuzz():
    """decode_verify_payload: truncations, garbage and mutated
    signature blobs all raise FrameError (SerializeError is wrapped)."""
    rng = random.Random(SEED + 6)
    for case in range(120):
        payload = bytes(rng.randrange(256)
                        for _ in range(rng.randrange(0, 80)))
        try:
            decode_verify_payload(payload)
        except FrameError:
            pass
        except Exception as error:  # pragma: no cover
            pytest.fail(f"verify case {case}: leaked "
                        f"{type(error).__name__}: {error}")


def test_verify_payload_round_trip():
    from repro.falcon import SecretKey
    from repro.falcon.serving.net import encode_verify_payload

    sk = SecretKey.generate(n=8, seed=3)
    message = b"fuzz-verify"
    signature = sk.sign(message)
    payload = encode_verify_payload(signature, sk.n, message)
    decoded_sig, n, decoded_message = decode_verify_payload(payload)
    assert n == sk.n and decoded_message == message
    assert decoded_sig.compressed == signature.compressed
    # Mutating any single byte must still yield decode-or-FrameError.
    rng = random.Random(SEED + 7)
    for _ in range(40):
        position = rng.randrange(len(payload))
        mutant = bytearray(payload)
        mutant[position] ^= 1 + rng.randrange(255)
        try:
            decode_verify_payload(bytes(mutant))
        except FrameError:
            pass
        except Exception as error:  # pragma: no cover
            pytest.fail(f"byte {position}: leaked "
                        f"{type(error).__name__}: {error}")
