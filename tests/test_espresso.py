"""Tests for the espresso-style heuristic minimizer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boolfunc import (
    Cube,
    complement_cover,
    cover_covers_cube,
    cover_is_tautology,
    espresso,
    expand_cube,
    irredundant,
    minimize_exact,
    smallest_cube_containing_complement,
    verify_cover,
)


def _minterms(cubes, width):
    out = set()
    for cube in cubes:
        out.update(cube.minterms())
    return out


def _random_function(width, seed_minterms):
    """Split minterms into ON/OFF/DC deterministically."""
    on, off, dc = [], [], []
    for m in range(1 << width):
        bucket = seed_minterms.get(m, 0)
        if bucket == 1:
            on.append(Cube.from_minterm(width, m))
        elif bucket == 0:
            off.append(Cube.from_minterm(width, m))
        else:
            dc.append(Cube.from_minterm(width, m))
    return on, off, dc


def test_tautology_basic():
    assert cover_is_tautology([Cube.full(3)], 3)
    assert cover_is_tautology(
        [Cube.from_string("1--"), Cube.from_string("0--")], 3)
    assert not cover_is_tautology([Cube.from_string("1--")], 3)
    assert not cover_is_tautology([], 3)


@settings(max_examples=80, deadline=None)
@given(st.integers(min_value=1, max_value=4).flatmap(
    lambda w: st.tuples(
        st.just(w),
        st.sets(st.integers(min_value=0, max_value=(1 << w) - 1)))))
def test_tautology_matches_brute_force(args):
    width, minterms = args
    cubes = [Cube.from_minterm(width, m) for m in minterms]
    expected = len(minterms) == 1 << width
    assert cover_is_tautology(cubes, width) == expected


@settings(max_examples=60, deadline=None)
@given(st.sets(st.integers(min_value=0, max_value=31)),
       st.integers(min_value=0, max_value=31),
       st.integers(min_value=0, max_value=31))
def test_cover_covers_cube_matches_minterms(minterms, care, value):
    width = 5
    cover = [Cube.from_minterm(width, m) for m in minterms]
    target = Cube(width=width, care=care, value=value & care)
    expected = set(target.minterms()) <= minterms
    assert cover_covers_cube(cover, target) == expected


def test_expand_cube_raises_maximally():
    width = 4
    # OFF set = everything with bit0 == 1; ON cube 0000 expands to -0--?
    off = [Cube.from_string("1---")]
    cube = Cube.from_string("0000")
    expanded = expand_cube(cube, off)
    assert expanded.to_string() == "0---"
    assert not expanded.intersects(off[0])


def test_expand_respects_multiple_off_cubes():
    off = [Cube.from_string("11--"), Cube.from_string("--11")]
    cube = Cube.from_string("0000")
    expanded = expand_cube(cube, off)
    for blocker in off:
        assert not expanded.intersects(blocker)
    # At least two literals must survive (one per OFF cube), and the
    # expansion must be maximal: raising any literal hits the OFF set.
    for variable, _ in expanded.literals():
        raised = expanded.without_variable(variable)
        assert any(raised.intersects(blocker) for blocker in off)


def test_irredundant_removes_contained_cube():
    cover = [Cube.from_string("1---"), Cube.from_string("0---"),
             Cube.from_string("10--")]
    slim = irredundant(cover)
    assert len(slim) == 2
    assert cover_is_tautology(slim, 4)


def test_sccc_simple():
    # Cover = {x0=1}: complement is x0=0, smallest cube containing it
    # is exactly that cube.
    cover = [Cube.from_string("1--")]
    sccc = smallest_cube_containing_complement(cover, 3)
    assert sccc.to_string() == "0--"
    # Tautology has empty complement.
    assert smallest_cube_containing_complement([Cube.full(3)], 3) is None


@settings(max_examples=40, deadline=None)
@given(st.sets(st.integers(min_value=0, max_value=15)))
def test_sccc_contains_complement(minterms):
    width = 4
    cover = [Cube.from_minterm(width, m) for m in minterms]
    sccc = smallest_cube_containing_complement(cover, width)
    complement = set(range(16)) - minterms
    if not complement:
        assert sccc is None
    else:
        for m in complement:
            assert sccc.contains_minterm(m)


@settings(max_examples=40, deadline=None)
@given(st.dictionaries(st.integers(min_value=0, max_value=31),
                       st.integers(min_value=0, max_value=2)))
def test_espresso_invariants_random_functions(assignment):
    width = 5
    on, off, dc = _random_function(width, assignment)
    if not on:
        return
    result = espresso(on, off, dc)
    assert verify_cover(result.cubes, on, off, dc)
    # Result is never worse than the unit-minterm cover.
    assert result.cost <= (len(on), width * len(on))


@settings(max_examples=25, deadline=None)
@given(st.dictionaries(st.integers(min_value=0, max_value=15),
                       st.integers(min_value=0, max_value=2)))
def test_espresso_close_to_exact_small(assignment):
    width = 4
    on, off, dc = _random_function(width, assignment)
    if not on:
        return
    heuristic = espresso(on, off, dc)
    exact = minimize_exact(width,
                           [c.value for c in on],
                           [c.value for c in dc])
    # Heuristic may be worse, but never by more than 2x in cube count
    # on these tiny functions — a regression canary for EXPAND quality.
    assert len(heuristic.cubes) <= max(2 * len(exact.cubes), 1)


@settings(max_examples=40, deadline=None)
@given(st.lists(
    st.tuples(st.integers(min_value=0, max_value=63),
              st.integers(min_value=0, max_value=63)),
    max_size=8))
def test_complement_cover_partitions_space(cube_specs):
    width = 6
    cubes = []
    for care, value in cube_specs:
        cubes.append(Cube(width=width, care=care, value=value & care))
    complement = complement_cover(cubes, width)
    covered = _minterms(cubes, width)
    complement_minterms = _minterms(complement, width)
    assert covered | complement_minterms == set(range(1 << width))
    assert covered & complement_minterms == set()


def test_espresso_merges_adjacent_minterms():
    width = 3
    on = [Cube.from_minterm(width, m) for m in (0, 1, 2, 3)]
    off = [Cube.from_minterm(width, m) for m in (4, 5, 6, 7)]
    result = espresso(on, off)
    assert len(result.cubes) == 1
    assert result.cubes[0].to_string() == "--0"
