"""Property-based tests for the statistics module."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    chi_square_p_value,
    kl_divergence,
    max_log_distance,
    renyi_divergence,
    statistical_distance,
)


def _pmf_pairs(size=4):
    positive = st.floats(min_value=0.01, max_value=1.0)
    return st.tuples(
        st.lists(positive, min_size=size, max_size=size),
        st.lists(positive, min_size=size, max_size=size),
    ).map(lambda pair: (
        [x / sum(pair[0]) for x in pair[0]],
        [x / sum(pair[1]) for x in pair[1]],
    ))


@settings(max_examples=60, deadline=None)
@given(_pmf_pairs())
def test_statistical_distance_bounds_and_symmetry(pair):
    p, q = pair
    sd = float(statistical_distance(p, q))
    assert 0 <= sd <= 1
    assert sd == pytest.approx(float(statistical_distance(q, p)))


@settings(max_examples=60, deadline=None)
@given(_pmf_pairs())
def test_kl_nonnegative_and_zero_iff_equal(pair):
    p, q = pair
    assert kl_divergence(p, q) >= 0
    assert kl_divergence(p, p) == pytest.approx(0, abs=1e-12)


@settings(max_examples=40, deadline=None)
@given(_pmf_pairs())
def test_renyi_monotone_in_alpha(pair):
    p, q = pair
    values = [renyi_divergence(p, q, alpha)
              for alpha in (1.5, 2.0, 4.0, 16.0)]
    for earlier, later in zip(values, values[1:]):
        assert later >= earlier - 1e-12


@settings(max_examples=40, deadline=None)
@given(_pmf_pairs())
def test_pinsker_like_relation(pair):
    """Pinsker: SD <= sqrt(KL / 2)."""
    p, q = pair
    sd = float(statistical_distance(p, q))
    kl = kl_divergence(p, q)
    assert sd <= math.sqrt(kl / 2) + 1e-9


@settings(max_examples=40, deadline=None)
@given(_pmf_pairs())
def test_max_log_dominates_kl(pair):
    """KL(p||q) <= max-log distance (since KL is an expectation of
    log-ratios bounded by the max)."""
    p, q = pair
    assert kl_divergence(p, q) <= max_log_distance(p, q) + 1e-9


@settings(max_examples=60, deadline=None)
@given(st.floats(min_value=0.0, max_value=500.0),
       st.integers(min_value=1, max_value=100))
def test_p_value_in_unit_interval(chi2, dof):
    p = chi_square_p_value(chi2, dof)
    assert 0.0 <= p <= 1.0


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=1, max_value=60))
def test_p_value_decreasing_in_statistic(dof):
    values = [chi_square_p_value(x, dof)
              for x in (0.0, 1.0, 5.0, 20.0, 100.0)]
    for earlier, later in zip(values, values[1:]):
        assert later <= earlier + 1e-12
    assert values[0] == 1.0


def test_p_value_invalid_arguments():
    with pytest.raises(ValueError):
        chi_square_p_value(-1.0, 3)
    with pytest.raises(ValueError):
        chi_square_p_value(1.0, 0)
