"""Tests for NTRU key generation and NTRUSolve."""

import random

import pytest

from repro.falcon import (
    Q,
    NtruSolveError,
    generate_keys,
    gram_schmidt_norm_sq,
    ntru_solve,
    reduce_basis,
)
from repro.falcon import poly
from repro.falcon.ntrugen import (
    _reduce_basis_exact,
    _round_div,
    _scaled_ring_inverse,
    _xgcd,
)
from repro.rng import ChaChaSource


def _check_ntru_equation(f, g, F, G):
    lhs = poly.sub(poly.mul_negacyclic(f, G), poly.mul_negacyclic(g, F))
    return lhs == [Q] + [0] * (len(f) - 1)


def test_xgcd():
    for a, b in [(12, 8), (17, 5), (1, 1), (0, 7), (240, 46)]:
        d, u, v = _xgcd(a, b)
        assert u * a + v * b == d
        import math
        assert d == math.gcd(a, b)


def test_ntru_solve_degree_one():
    F, G = ntru_solve([3], [2])
    assert 3 * G[0] - 2 * F[0] == Q


def test_ntru_solve_degree_one_gcd_failure():
    with pytest.raises(NtruSolveError):
        ntru_solve([2], [4])


@pytest.mark.parametrize("n", [2, 4, 8, 16])
def test_ntru_solve_small_degrees(n):
    rng = random.Random(n)
    solved = 0
    for _ in range(30):
        f = [rng.randint(-4, 4) for _ in range(n)]
        g = [rng.randint(-4, 4) for _ in range(n)]
        if sum(f) % 2 == 0 and sum(g) % 2 == 0:
            continue  # resultants share the factor 2
        try:
            F, G = ntru_solve(list(f), list(g))
        except NtruSolveError:
            continue
        assert _check_ntru_equation(f, g, F, G)
        solved += 1
        if solved >= 5:
            return
    pytest.fail("no solvable instances found")


def test_solution_is_size_reduced():
    """NTRUSolve output coefficients should be modest, not astronomical.

    Without Babai reduction, F and G coefficients blow up to thousands
    of bits; the reduced basis must land within a small multiple of
    q * ||(f,g)||.
    """
    rng = random.Random(42)
    n = 32
    while True:
        f = [rng.randint(-6, 6) for _ in range(n)]
        g = [rng.randint(-6, 6) for _ in range(n)]
        if sum(f) % 2 == 0 and sum(g) % 2 == 0:
            continue
        try:
            F, G = ntru_solve(list(f), list(g))
            break
        except NtruSolveError:
            continue
    assert _check_ntru_equation(f, g, F, G)
    assert poly.max_bitsize([F, G]) < 40


def test_reduce_basis_preserves_equation():
    rng = random.Random(9)
    n = 16
    while True:
        f = [rng.randint(-5, 5) for _ in range(n)]
        g = [rng.randint(-5, 5) for _ in range(n)]
        if sum(f) % 2 == 0 and sum(g) % 2 == 0:
            continue
        try:
            F, G = ntru_solve(list(f), list(g))
            break
        except NtruSolveError:
            continue
    # Artificially inflate (F, G) by a lattice vector, then re-reduce.
    k = [rng.randint(-3, 3) for _ in range(n)]
    F_big = poly.add(F, poly.scalar_mul(poly.mul_negacyclic(k, f), 1 << 60))
    G_big = poly.add(G, poly.scalar_mul(poly.mul_negacyclic(k, g), 1 << 60))
    assert _check_ntru_equation(f, g, F_big, G_big)
    F_red, G_red = reduce_basis(f, g, list(F_big), list(G_big))
    assert _check_ntru_equation(f, g, F_red, G_red)
    assert poly.max_bitsize([F_red, G_red]) <= \
        poly.max_bitsize([F, G]) + 8


def test_reduce_basis_zooms_past_coarse_scale_stall():
    """Regression: the pre-fix code returned as soon as the 53-bit
    quotient rounded to zero at a coarse block scale, leaving (F, G) =
    t * (f, g) completely un-reduced whenever the convolution's carry
    bits pushed the block scale above t's magnitude.  The multi-scale
    loop must remove t entirely (here the fully-reduced reference is
    exactly zero)."""
    rng = random.Random(2024)
    n = 32  # above the exact-Babai cutoff: exercises the float loop
    f = [rng.getrandbits(60) - (1 << 59) for _ in range(n)]
    g = [rng.getrandbits(60) - (1 << 59) for _ in range(n)]
    t = [rng.randrange(-100, 101) for _ in range(n)]
    F = poly.mul_negacyclic(t, f)
    G = poly.mul_negacyclic(t, g)
    size = max(53, poly.max_bitsize([f, g]))
    assert poly.max_bitsize([F, G]) > size + 8  # quotient < 2^-1 at
    # the coarse window, so the pre-fix code bailed out right here.
    F_red, G_red = reduce_basis(f, g, list(F), list(G))
    assert poly.max_bitsize([F_red, G_red]) < size


def test_reduce_basis_zoom_terminates_on_intrinsic_excess():
    """An (F, G) that is reduced-but-bigger-than-(f, g) must terminate
    through the zoom schedule without disturbing the lattice point."""
    rng = random.Random(7)
    n = 32
    f = [rng.getrandbits(60) - (1 << 59) for _ in range(n)]
    g = [rng.getrandbits(60) - (1 << 59) for _ in range(n)]
    t = [rng.randrange(-100, 101) for _ in range(n)]
    r = [rng.getrandbits(64) - (1 << 63) for _ in range(n)]
    s = [rng.getrandbits(64) - (1 << 63) for _ in range(n)]
    F = poly.add(poly.mul_negacyclic(t, f), r)
    G = poly.add(poly.mul_negacyclic(t, g), s)
    F_red, G_red = reduce_basis(f, g, list(F), list(G))
    # The removable t * (f, g) component is gone; what remains is (r, s)
    # plus at most a +-1 Babai ambiguity per coefficient.
    assert poly.max_bitsize([F_red, G_red]) <= \
        poly.max_bitsize([r, s]) + poly.max_bitsize([f, g]) - 53 + 8


@pytest.mark.parametrize("spine", ["scalar", "numpy", "auto"])
def test_reduce_basis_spines_identical(spine):
    from repro.falcon import HAVE_NUMPY

    if spine == "numpy" and not HAVE_NUMPY:
        pytest.skip("NumPy not installed")
    rng = random.Random(11)
    n = 64
    f = [rng.getrandbits(40) - (1 << 39) for _ in range(n)]
    g = [rng.getrandbits(40) - (1 << 39) for _ in range(n)]
    t = [rng.randrange(-5000, 5001) for _ in range(n)]
    F = poly.mul_negacyclic(t, f)
    G = poly.mul_negacyclic(t, g)
    reference = reduce_basis(f, g, list(F), list(G), spine="scalar")
    assert reduce_basis(f, g, list(F), list(G), spine=spine) == reference


def test_round_div_is_nearest_integer():
    import math
    from fractions import Fraction

    for numerator in range(-25, 26):
        for denominator in (1, 2, 3, 7, 10):
            got = _round_div(numerator, denominator)
            # Nearest integer, ties rounded up (= floor(x + 1/2)).
            want = math.floor(Fraction(numerator, denominator)
                              + Fraction(1, 2))
            assert got == want


def test_scaled_ring_inverse_clears_denominator():
    rng = random.Random(3)
    for d in (1, 2, 4, 8, 16):
        den = [rng.randrange(-50, 51) for _ in range(d)]
        den[0] |= 1  # avoid the zero polynomial
        cofactor, resultant = _scaled_ring_inverse(den)
        product = poly.mul_negacyclic(den, cofactor)
        assert product == [resultant] + [0] * (d - 1)


def test_exact_babai_matches_equation_and_size():
    """The one-shot exact reduction removes a planted multiple whole."""
    rng = random.Random(5)
    for d in (2, 4, 8, 16):
        f = [rng.getrandbits(200) - (1 << 199) for _ in range(d)]
        g = [rng.getrandbits(200) - (1 << 199) for _ in range(d)]
        t = [rng.getrandbits(150) - (1 << 149) for _ in range(d)]
        F = poly.mul_negacyclic(t, f)
        G = poly.mul_negacyclic(t, g)
        F_red, G_red = _reduce_basis_exact(f, g, list(F), list(G))
        assert poly.max_bitsize([F_red, G_red]) <= \
            poly.max_bitsize([f, g]) + d.bit_length() + 2


def test_generate_keys_small_ring():
    keys = generate_keys(64, source=ChaChaSource(5))
    assert keys.verify_ntru_equation()
    n = len(keys.f)
    assert n == 64
    # h = g / f mod q.
    from repro.falcon import mul_ntt
    gh = mul_ntt(keys.h, keys.f)
    assert gh == [c % Q for c in keys.g]


def test_generate_keys_gs_bound_respected():
    keys = generate_keys(64, source=ChaChaSource(6))
    assert gram_schmidt_norm_sq(keys.f, keys.g) <= (1.17 ** 2) * Q


def test_generate_keys_deterministic_with_seed():
    a = generate_keys(32, source=ChaChaSource(7))
    b = generate_keys(32, source=ChaChaSource(7))
    assert a.f == b.f and a.g == b.g and a.F == b.F and a.G == b.G
