"""Tests for Falcon signature compression."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.falcon import CompressError, DecompressError, compress, decompress


def test_round_trip_simple():
    coeffs = [0, 1, -1, 127, -128, 300, -300, 12345]
    data = compress(coeffs, payload_bits=len(coeffs) * 40)
    assert decompress(data, len(coeffs)) == coeffs


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(min_value=-2000, max_value=2000),
                min_size=1, max_size=64))
def test_round_trip_random(coeffs):
    budget = 16 * len(coeffs) + 256
    data = compress(coeffs, payload_bits=budget)
    assert decompress(data, len(coeffs)) == coeffs


def test_output_length_is_fixed():
    small = compress([0, 0], payload_bits=100)
    large = compress([500, -500], payload_bits=100)
    assert len(small) == len(large) == 13  # ceil(100 / 8)


def test_budget_overflow_raises():
    with pytest.raises(CompressError):
        compress([10**5] * 8, payload_bits=64)


def test_gaussian_coefficients_fit_spec_budget():
    """sigma ~ 165 coefficients fit the ~11 bits/coeff budget."""
    import random
    rng = random.Random(1)
    n = 512
    coeffs = [round(rng.gauss(0, 165.7)) for _ in range(n)]
    data = compress(coeffs, payload_bits=11 * n + 64)
    assert decompress(data, n) == coeffs


def test_negative_zero_rejected():
    # sign=1, low bits 0000000, unary terminator 1 -> -0.
    data = bytes([0b10000000, 0b10000000])  # second coeff: +0
    with pytest.raises(DecompressError):
        decompress(data, 2)


def test_nonzero_padding_rejected():
    coeffs = [1, 2, 3]
    data = bytearray(compress(coeffs, payload_bits=200))
    data[-1] |= 1
    with pytest.raises(DecompressError):
        decompress(bytes(data), 3)


def test_truncated_stream_rejected():
    coeffs = [1000] * 4
    data = compress(coeffs, payload_bits=100)
    with pytest.raises(DecompressError):
        decompress(data[:2], 4)


def test_overlong_unary_rejected():
    # 1 sign + 7 low bits, then > 1024 zeros with no terminator in
    # range: triggers the unary-run guard.
    data = bytes(200)
    with pytest.raises(DecompressError):
        decompress(data, 1)
