"""Tests for Falcon signature compression.

``decompress(data, n)`` takes the *ring degree* ``n`` and enforces the
parameter set's coefficient range: every decoded magnitude must fit
inside ``max_coefficient(n) = floor(sqrt(beta^2))``, the largest value
any norm-passing signature could carry.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.falcon import CompressError, DecompressError, compress, decompress
from repro.falcon.encoding import max_coefficient


def _bits_to_bytes(bits: str) -> bytes:
    padded = bits + "0" * (-len(bits) % 8)
    return bytes(int(padded[i:i + 8], 2)
                 for i in range(0, len(padded), 8))


def _encode_one(value: int) -> str:
    """Bit string for one coefficient (sign, 7 low bits, unary high)."""
    sign = "1" if value < 0 else "0"
    magnitude = abs(value)
    return (sign + format(magnitude & 0x7F, "07b")
            + "0" * (magnitude >> 7) + "1")


def test_round_trip_simple():
    coeffs = [0, 1, -1, 127, -128, 300, -300, 680]
    data = compress(coeffs, payload_bits=len(coeffs) * 40)
    assert decompress(data, len(coeffs)) == coeffs


@settings(max_examples=60, deadline=None)
@given(st.sampled_from([4, 8, 16, 32, 64]), st.data())
def test_round_trip_random(n, data):
    bound = max_coefficient(n)
    coeffs = data.draw(st.lists(
        st.integers(min_value=-bound, max_value=bound),
        min_size=n, max_size=n))
    budget = 16 * n + 256
    blob = compress(coeffs, payload_bits=budget)
    assert decompress(blob, n) == coeffs


def test_output_length_is_fixed():
    small = compress([0, 0], payload_bits=100)
    large = compress([500, -500], payload_bits=100)
    assert len(small) == len(large) == 13  # ceil(100 / 8)


def test_budget_overflow_raises():
    with pytest.raises(CompressError):
        compress([10**5] * 8, payload_bits=64)


def test_gaussian_coefficients_fit_spec_budget():
    """sigma ~ 165 coefficients fit the ~11 bits/coeff budget."""
    import random
    rng = random.Random(1)
    n = 512
    coeffs = [round(rng.gauss(0, 165.7)) for _ in range(n)]
    data = compress(coeffs, payload_bits=11 * n + 64)
    assert decompress(data, n) == coeffs


def test_max_coefficient_is_norm_bound_root():
    from repro.falcon import falcon_params

    for n in (8, 64, 512):
        bound = max_coefficient(n)
        assert bound * bound <= falcon_params(n).sig_bound
        assert (bound + 1) * (bound + 1) > falcon_params(n).sig_bound


def test_boundary_magnitude_round_trips():
    for n in (4, 8, 64):
        bound = max_coefficient(n)
        coeffs = [bound, -bound] + [0] * (n - 2)
        data = compress(coeffs, payload_bits=16 * n + 256)
        assert decompress(data, n) == coeffs


def test_magnitude_just_beyond_bound_rejected():
    """A unary run one step past the parameter bound is non-canonical
    even though the old ``1 << 10`` guard would have waved it through."""
    for n in (4, 8, 64):
        beyond = ((max_coefficient(n) >> 7) + 1) << 7
        assert beyond <= 1 << 17  # far below the old guard's reach
        bits = _encode_one(beyond) + _encode_one(0) * (n - 1)
        with pytest.raises(DecompressError,
                           match="exceeds the coefficient bound"):
            decompress(_bits_to_bytes(bits), n)


def test_in_range_run_with_overflowing_low_bits_rejected():
    """high <= max_high does not imply in-range: the low bits can still
    push the magnitude past the bound."""
    n = 4
    bound = max_coefficient(n)  # 475: max_high = 3, 475 & 0x7F = 91
    value = ((bound >> 7) << 7) | 0x7F  # 511 > 475, same run length
    assert value > bound
    bits = _encode_one(value) + _encode_one(0) * (n - 1)
    with pytest.raises(DecompressError, match="exceeds the parameter"):
        decompress(_bits_to_bytes(bits), n)


def test_negative_zero_rejected():
    # sign=1, low bits 0000000, unary terminator 1 -> -0.
    bits = "1" + "0" * 7 + "1" + _encode_one(0) * 3
    with pytest.raises(DecompressError, match="negative zero"):
        decompress(_bits_to_bytes(bits), 4)


def test_nonzero_padding_rejected():
    coeffs = [1, 2, 3, -4]
    data = bytearray(compress(coeffs, payload_bits=200))
    data[-1] |= 1
    with pytest.raises(DecompressError, match="padding"):
        decompress(bytes(data), 4)


def test_truncated_stream_rejected():
    coeffs = [400] * 4
    data = compress(coeffs, payload_bits=100)
    with pytest.raises(DecompressError, match="truncated"):
        decompress(data[:2], 4)


def test_truncated_final_run_rejected():
    """A stream that ends mid-run (no terminator) is truncated."""
    bits = _encode_one(1) * 3 + "0" * 8  # 4th coefficient never ends
    with pytest.raises(DecompressError, match="truncated"):
        decompress(_bits_to_bytes(bits), 4)


def test_overlong_unary_rejected():
    # A run longer than any in-range coefficient's, with a terminator
    # present: specifically the run-length guard, not truncation.
    n = 4
    run = (max_coefficient(n) >> 7) + 3
    bits = "0" * 8 + "0" * run + "1" + _encode_one(0) * (n - 1)
    with pytest.raises(DecompressError,
                       match="exceeds the coefficient bound"):
        decompress(_bits_to_bytes(bits), n)


# -- the batched row decoder ----------------------------------------------

numpy = pytest.importorskip("numpy")

from repro.falcon.encoding import decompress_rows  # noqa: E402


def _rows_verdict(blob: bytes, n: int):
    """(accepted, coefficients-or-None) through the batched decoder."""
    coefficients, failed = decompress_rows([blob], n)
    return (not bool(failed[0]),
            None if failed[0] else coefficients[0].tolist())


@settings(max_examples=40, deadline=None)
@given(st.sampled_from([4, 8, 16, 64]), st.data())
def test_rows_match_scalar_on_round_trips(n, data):
    bound = max_coefficient(n)
    rows = data.draw(st.lists(
        st.lists(st.integers(min_value=-bound, max_value=bound),
                 min_size=n, max_size=n),
        min_size=1, max_size=6))
    budget = 16 * n + 256
    blobs = [compress(coeffs, payload_bits=budget) for coeffs in rows]
    coefficients, failed = decompress_rows(blobs, n)
    assert not failed.any()
    for row, coeffs in zip(coefficients, rows):
        assert row.tolist() == coeffs


@settings(max_examples=60, deadline=None)
@given(st.binary(min_size=8, max_size=64))
def test_rows_accept_reject_matches_scalar_on_garbage(blob):
    """Arbitrary byte blobs: the batched decoder accepts exactly the
    blobs the scalar decoder accepts, with identical coefficients."""
    n = 8
    accepted, row = _rows_verdict(blob, n)
    try:
        reference = decompress(blob, n)
    except DecompressError:
        assert not accepted
    else:
        assert accepted and row == reference


def test_rows_reject_each_noncanonical_form():
    n = 4
    beyond = ((max_coefficient(n) >> 7) + 1) << 7
    cases = [
        _bits_to_bytes(_encode_one(beyond) + _encode_one(0) * (n - 1)),
        _bits_to_bytes("1" + "0" * 7 + "1" + _encode_one(0) * (n - 1)),
        _bits_to_bytes(_encode_one(1) * (n - 1) + "0" * 8),
        compress([400] * n, payload_bits=100)[:2],
    ]
    padded = bytearray(compress([1, 2, 3, -4], payload_bits=200))
    padded[-1] |= 1
    cases.append(bytes(padded))
    for blob in cases:
        accepted, _ = _rows_verdict(blob, n)
        assert not accepted
        with pytest.raises(DecompressError):
            decompress(blob, n)


def test_rows_isolate_failures_per_lane():
    """One bad lane never disturbs its neighbours' coefficients."""
    n = 8
    budget = 16 * n + 256
    good = [compress([i - 4] * n, payload_bits=budget)
            for i in range(6)]
    bad = bytearray(good[0])
    bad[-1] |= 1  # non-zero padding
    blobs = good[:3] + [bytes(bad)] + good[3:]
    coefficients, failed = decompress_rows(blobs, n)
    assert failed.tolist() == [False] * 3 + [True] + [False] * 3
    for row, blob in zip(coefficients[:3], good[:3]):
        assert row.tolist() == decompress(blob, n)
    for row, blob in zip(coefficients[4:], good[3:]):
        assert row.tolist() == decompress(blob, n)


def test_rows_require_equal_widths():
    blobs = [compress([0] * 4, payload_bits=64),
             compress([0] * 4, payload_bits=72)]
    with pytest.raises(ValueError, match="equal-width"):
        decompress_rows(blobs, 4)
