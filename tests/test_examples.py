"""Smoke tests keeping the example scripts runnable.

Each example is executed as a subprocess (the way a user runs it);
slower examples are exercised only under REPRO_FULL=1.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES = REPO_ROOT / "examples"

#: Example subprocesses must import ``repro`` from the source tree no
#: matter where pytest was launched from, so the repo-rooted ``src``
#: directory is prepended to any PYTHONPATH the caller already set.
_ENV = {**os.environ,
        "PYTHONPATH": os.pathsep.join(
            [str(REPO_ROOT / "src")]
            + ([os.environ["PYTHONPATH"]]
               if os.environ.get("PYTHONPATH") else []))}

FAST = ["compile_and_export.py", "hardware_export.py"]
SLOW = ["quickstart.py", "constant_time_audit.py",
        "sampler_comparison.py", "large_sigma_convolution.py"]

slow = pytest.mark.repro_full


def _run(name: str, tmp_path, timeout=420) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=timeout,
        cwd=tmp_path, env=_ENV)
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


@pytest.mark.parametrize("name", FAST)
def test_fast_examples_run(name, tmp_path):
    output = _run(name, tmp_path)
    assert output.strip()


def test_compile_and_export_claims_improvement(tmp_path):
    output = _run("compile_and_export.py", tmp_path)
    assert "efficient minimization saves" in output
    assert (tmp_path / "sampler_sigma2.c").exists()


def test_hardware_export_writes_netlists(tmp_path):
    _run("hardware_export.py", tmp_path)
    assert (tmp_path / "gauss_sampler.v").exists()
    assert (tmp_path / "gauss_sampler.blif").exists()


@slow
@pytest.mark.parametrize("name", SLOW)
def test_slow_examples_run(name, tmp_path):
    output = _run(name, tmp_path)
    assert output.strip()


@slow
def test_falcon_example_runs(tmp_path):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "falcon_signatures.py"), "64"],
        capture_output=True, text=True, timeout=420, cwd=tmp_path,
        env=_ENV)
    assert result.returncode == 0, result.stderr[-2000:]
    assert "yes" in result.stdout
