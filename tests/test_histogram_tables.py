"""Tests for ASCII histograms and table formatting."""

from repro.analysis import (
    format_table,
    histogram_counts,
    ideal_signed_gaussian_pmf,
    ratio,
    render_comparison,
    render_histogram,
)


def test_histogram_counts():
    assert histogram_counts([1, 1, -2, 0]) == {1: 2, -2: 1, 0: 1}


def test_render_histogram_basic():
    counts = {0: 50, 1: 30, -1: 30, 2: 10, -2: 10}
    text = render_histogram(counts, width=20)
    lines = text.splitlines()
    assert len(lines) == 5  # -2..2
    zero_line = next(line for line in lines if line.startswith("    0"))
    assert zero_line.count("#") == 20  # peak bar is full width


def test_render_histogram_with_ideal_markers():
    counts = {0: 500, 1: 300, -1: 300}
    ideal = ideal_signed_gaussian_pmf(1.0, 3)
    text = render_histogram(counts, ideal=ideal, width=30,
                            value_range=(-3, 3))
    assert "|" in text
    assert len(text.splitlines()) == 7


def test_render_histogram_empty():
    assert render_histogram({}) == "(no samples)"


def test_render_comparison_columns():
    a = {0: 10, 1: 5}
    b = {0: 12, 1: 3}
    text = render_comparison({"alpha": a, "beta": b}, value_range=(0, 1))
    lines = text.splitlines()
    assert "alpha" in lines[0] and "beta" in lines[0]
    assert len(lines) == 3


def test_format_table_alignment():
    table = format_table(
        ["name", "count", "share"],
        [["first", 12345, 0.517], ["second", 7, 12.0]],
        title="demo")
    lines = table.splitlines()
    assert lines[0] == "demo"
    assert "12,345" in table
    assert "0.517" in table
    assert set(lines[2]) <= {"-", " "}


def test_format_table_large_floats_group_thousands():
    table = format_table(["x"], [[12345.6]])
    assert "12,346" in table


def test_ratio_formatting():
    assert ratio(50, 100) == "50% faster"
    assert ratio(150, 100) == "50% slower"
    assert ratio(100, 0) == "n/a"
