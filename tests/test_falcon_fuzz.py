"""Adversarial/fuzz tests for Falcon verification and hashing.

Verification is the public attack surface: it must reject garbage
gracefully (return False or raise the documented errors, never crash)
and accept only genuine signatures.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.falcon import Q, SecretKey, Signature, hash_to_point
from repro.falcon.params import SALT_BYTES

_KEYS: dict[int, SecretKey] = {}


def _secret_key(n=64) -> SecretKey:
    if n not in _KEYS:
        _KEYS[n] = SecretKey.generate(n=n, seed=11)
    return _KEYS[n]


@settings(max_examples=40, deadline=None)
@given(st.binary(min_size=0, max_size=120), st.binary(min_size=0,
                                                      max_size=40))
def test_verify_never_crashes_on_garbage(compressed, message):
    sk = _secret_key()
    garbage = Signature(salt=b"\x00" * SALT_BYTES,
                        compressed=compressed)
    assert sk.public_key.verify(message, garbage) in (False,)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10**9))
def test_single_bit_flips_rejected(seed):
    sk = _secret_key()
    message = b"bit flip fuzz"
    signature = _cached_signature(sk, message)
    data = bytearray(signature.compressed)
    position = seed % (len(data) * 8)
    data[position // 8] ^= 1 << (position % 8)
    mutated = Signature(salt=signature.salt, compressed=bytes(data))
    # A flipped bit either breaks decompression canonicity or changes
    # s2 and thus the recomputed s1 norm / hash relation; either way
    # verification must fail.  (Flips inside zero padding are caught by
    # the canonical-padding rule.)
    assert not sk.public_key.verify(message, mutated)


def _cached_signature(sk, message):
    key = (id(sk), message)
    if key not in _SIGS:
        _SIGS[key] = sk.sign(message)
    return _SIGS[key]


_SIGS: dict = {}


def test_salt_reuse_across_messages_detected():
    """A signature is bound to its salt: replaying it on another
    message fails because the hashed point changes."""
    sk = _secret_key()
    signature = _cached_signature(sk, b"message A")
    assert sk.public_key.verify(b"message A", signature)
    assert not sk.public_key.verify(b"message B", signature)


def test_cross_level_signature_rejected():
    small = _secret_key(32)
    large = _secret_key(64)
    signature = small.sign(b"level confusion")
    # Different n: decompression of a 32-coefficient payload as 64
    # coefficients must fail cleanly.
    assert not large.public_key.verify(b"level confusion", signature)


def test_signing_zero_attempts_raises():
    sk = _secret_key()
    with pytest.raises(RuntimeError):
        sk.sign(b"no attempts", max_attempts=0)


def test_empty_and_long_messages_sign():
    sk = _secret_key()
    for message in (b"", b"x" * 10_000):
        signature = sk.sign(message)
        assert sk.public_key.verify(message, signature)


@settings(max_examples=20, deadline=None)
@given(st.binary(min_size=0, max_size=64))
def test_hash_to_point_range_and_determinism(message):
    salt = b"\x07" * SALT_BYTES
    point_a = hash_to_point(message, salt, 32)
    point_b = hash_to_point(message, salt, 32)
    assert point_a == point_b
    assert len(point_a) == 32
    assert all(0 <= c < Q for c in point_a)


def test_hash_to_point_rejection_bound():
    """The 16-bit rejection keeps values uniform: chunks >= 61445 are
    discarded, so residues mod q show no modular bias."""
    counts = [0] * 5
    point = hash_to_point(b"bias probe", b"\x01" * SALT_BYTES, 4096)
    for value in point:
        counts[value * 5 // Q] += 1
    expected = len(point) / 5
    for bucket in counts:
        assert abs(bucket - expected) < 5 * (expected ** 0.5)


def test_public_keys_differ_across_seeds():
    a = SecretKey.generate(n=32, seed=100)
    b = SecretKey.generate(n=32, seed=101)
    assert a.public_key.h != b.public_key.h
