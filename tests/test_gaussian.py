"""Tests for the probability-matrix construction (Sec. 3.1, Fig. 1)."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    GaussianParams,
    probability_matrix,
    sigma_squared_from_float,
    true_pmf,
)

SIGMA2_N6 = GaussianParams.from_sigma(2, precision=6)


def test_fig1_matrix_reproduced_exactly():
    """The paper's Fig. 1 example: sigma = 2, n = 6."""
    matrix = probability_matrix(SIGMA2_N6)
    assert matrix.rows[0] == 0b001100
    assert matrix.rows[1] == 0b010110
    assert matrix.rows[2] == 0b001111
    assert matrix.rows[3] == 0b001000
    assert matrix.rows[4] == 0b000011
    assert matrix.rows[5] == 0b000001
    # Remaining rows (6..26 with tau = 13) are below 2^-6 and vanish.
    assert all(row == 0 for row in matrix.rows[6:])


def test_fig1_column_weights_and_deficits():
    matrix = probability_matrix(SIGMA2_N6)
    assert matrix.column_weights == (0, 1, 3, 3, 3, 3)
    assert matrix.cumulative_weights == (0, 1, 5, 13, 29, 61)
    assert matrix.deficits == (2, 3, 3, 3, 3, 3)
    assert matrix.mass == 61
    assert matrix.failure_count == 3


def test_support_bound_examples():
    assert GaussianParams.from_sigma(2, 32).support_bound == 26
    assert GaussianParams.from_sigma(1, 32).support_bound == 13
    assert GaussianParams.from_sigma(6.15543, 32).support_bound == 80
    assert GaussianParams.from_sigma(215, 16).support_bound == 2795
    sqrt5 = GaussianParams(sigma_sq=Fraction(5), precision=32)
    assert sqrt5.support_bound == 29


def test_sigma_squared_from_float_is_exact_decimal():
    assert sigma_squared_from_float(6.15543) == \
        Fraction(615543, 100000) ** 2
    assert sigma_squared_from_float(2.0) == 4


def test_matrix_rows_truncate_folded_pmf():
    """Rows are the n-bit truncation of the folded pmf: P(0) for row 0,
    2*P(v) for the rest (Sec. 3.2)."""
    params = GaussianParams.from_sigma(2, precision=40)
    matrix = probability_matrix(params)
    reference = true_pmf(params)  # already folded to magnitudes
    scale = 1 << params.precision
    for v, probability in enumerate(reference):
        truncated = Fraction(matrix.rows[v], scale)
        assert truncated <= probability
        assert probability - truncated < Fraction(2, scale)
    assert sum(reference) == 1


def test_bit_accessor_matches_render():
    matrix = probability_matrix(SIGMA2_N6)
    rendered = matrix.render().splitlines()
    for v in range(matrix.num_rows):
        bits = rendered[v].split(" ", 1)[1].replace(" ", "")
        for i in range(matrix.precision):
            assert matrix.bit(v, i) == int(bits[i])


def test_bit_accessor_bounds():
    matrix = probability_matrix(SIGMA2_N6)
    with pytest.raises(IndexError):
        matrix.bit(0, 6)
    with pytest.raises(IndexError):
        matrix.bit(0, -1)


def test_invalid_params_rejected():
    with pytest.raises(ValueError):
        GaussianParams(sigma_sq=Fraction(0), precision=8)
    with pytest.raises(ValueError):
        GaussianParams(sigma_sq=Fraction(4), precision=1)
    with pytest.raises(ValueError):
        GaussianParams(sigma_sq=Fraction(4), precision=8, tail_cut=0)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=1, max_value=12),
       st.integers(min_value=1, max_value=8),
       st.integers(min_value=4, max_value=24))
def test_matrix_invariants_random_params(num, den, precision):
    params = GaussianParams(sigma_sq=Fraction(num, den) + 1,
                            precision=precision, tail_cut=10)
    matrix = probability_matrix(params)
    # Mass is at most 1 (truncation) and positive.
    assert 0 < matrix.mass <= 1 << precision
    # Deficit recurrence D_i = 2 D_{i-1} - h_i with D_{-1} = 1.
    deficit = 1
    for h, expected in zip(matrix.column_weights, matrix.deficits):
        deficit = 2 * deficit - h
        assert deficit == expected
        assert deficit >= 1  # Theorem 1's engine
    # Rows are decreasing from row 1 on (Gaussian tail).
    doubled = matrix.rows[1:]
    assert all(a >= b for a, b in zip(doubled, doubled[1:]))


def test_max_value_tracks_precision():
    low = probability_matrix(GaussianParams.from_sigma(2, precision=6))
    high = probability_matrix(GaussianParams.from_sigma(2, precision=40))
    assert low.max_value == 5
    assert high.max_value > low.max_value


def test_pmf_sums_to_mass():
    matrix = probability_matrix(SIGMA2_N6)
    assert sum(matrix.pmf()) == Fraction(matrix.mass, 64)
