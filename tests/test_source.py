"""Tests for the randomness-source abstractions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rng import (
    BitStream,
    ChaChaSource,
    CounterSource,
    CountingSource,
    FixedSource,
    ListBitSource,
    ShakeSource,
    default_source,
)


def test_bitstream_lsb_first_order():
    stream = BitStream(FixedSource(bytes([0b10110010])))
    bits = [stream.take_bit() for _ in range(8)]
    assert bits == [0, 1, 0, 0, 1, 1, 0, 1]
    assert stream.bits_consumed == 8


def test_bitstream_take_bits_packs_lsb_first():
    stream = BitStream(FixedSource(bytes([0b10110010, 0xFF])))
    assert stream.take_bits(4) == 0b0010
    assert stream.take_bits(4) == 0b1011
    assert stream.take_bits(3) == 0b111


def test_read_word_bit_count():
    source = CountingSource(ChaChaSource(7))
    value = source.read_word(13)
    assert 0 <= value < (1 << 13)
    assert source.bytes_read == 2


def test_counting_source_tracks_and_resets():
    source = CountingSource(CounterSource(3))
    source.read_bytes(10)
    source.read_bytes(5)
    assert source.bytes_read == 15
    source.reset_count()
    assert source.bytes_read == 0


def test_fixed_source_exhaustion():
    source = FixedSource(b"ab")
    assert source.read_bytes(2) == b"ab"
    with pytest.raises(RuntimeError):
        source.read_bytes(1)


def test_list_bit_source_round_trip():
    bits = [1, 0, 1, 1, 0, 0, 1, 0, 1, 1]
    stream = BitStream(ListBitSource(bits))
    assert [stream.take_bit() for _ in range(10)] == bits


def test_list_bit_source_rejects_non_bits():
    with pytest.raises(ValueError):
        ListBitSource([0, 1, 2])


def test_shake_source_variants():
    s128 = ShakeSource(5, variant=128)
    s256 = ShakeSource(5, variant=256)
    assert s128.read_bytes(16) != s256.read_bytes(16)
    with pytest.raises(ValueError):
        ShakeSource(5, variant=512)


def test_seed_normalization():
    assert ChaChaSource(b"abc").read_bytes(8) == \
        ChaChaSource(b"abc\x00").read_bytes(8)
    with pytest.raises(ValueError):
        ChaChaSource(b"x" * 33)
    with pytest.raises(ValueError):
        ChaChaSource(-1)


def test_default_source_is_chacha():
    assert default_source(9).read_bytes(16) == \
        ChaChaSource(9).read_bytes(16)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=2**32),
       st.integers(min_value=1, max_value=64))
def test_counter_source_deterministic(seed, length):
    assert CounterSource(seed).read_bytes(length) == \
        CounterSource(seed).read_bytes(length)


@settings(max_examples=10, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1),
                min_size=0, max_size=40))
def test_bitstream_matches_manual_unpack(bits):
    padded = bits + [0] * ((8 - len(bits) % 8) % 8)
    stream = BitStream(ListBitSource(bits))
    for expected in padded:
        assert stream.take_bit() == expected
