"""Differential tests: every word engine yields the same bit stream.

The word engines (:mod:`repro.bitslice.wordengine`) promise that
switching backends changes throughput, never output: for the same PRNG
seed, the bigint, chunked and NumPy engines must produce **identical**
samples, byte counts and lane masks.  These tests pin that contract
across a sweep of sigma / precision / batch widths, including widths
that are not multiples of 64 (partial chunks) nor of 8 (partial bytes).

When NumPy is missing, ``engine="numpy"`` degrades to the chunked
layout; the suite still runs and still demands bit-identity.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitslice import HAVE_NUMPY, available_engines, get_engine
from repro.core import compile_sampler, compile_sampler_circuit
from repro.core.gaussian import GaussianParams
from repro.core.sampler import BitslicedSampler
from repro.rng import ChaChaSource, CounterSource

#: Engines differentially compared against the bigint reference.
OTHER_ENGINES = ["chunked", "numpy"]

#: Widths covering whole chunks, partial chunks and partial bytes.
WIDTHS = [8, 13, 33, 64, 100, 128, 256]


def _pair(sigma, precision, width, seed, engine, **kwargs):
    reference = compile_sampler(sigma, precision,
                                source=ChaChaSource(seed),
                                batch_width=width, engine="bigint",
                                **kwargs)
    candidate = compile_sampler(sigma, precision,
                                source=ChaChaSource(seed),
                                batch_width=width, engine=engine,
                                **kwargs)
    return reference, candidate


def test_engine_registry_roundtrip():
    assert set(available_engines()) == {"bigint", "chunked", "numpy"}
    for name in ("bigint", "chunked"):
        assert get_engine(name).name == name
    auto = get_engine("auto")
    assert auto.name == ("numpy" if HAVE_NUMPY else "bigint")
    with pytest.raises(ValueError):
        get_engine("avx512")


@pytest.mark.parametrize("engine", OTHER_ENGINES)
@pytest.mark.parametrize("width", WIDTHS)
def test_sample_batch_bit_identical(engine, width):
    reference, candidate = _pair(2, 16, width, seed=21, engine=engine)
    for _ in range(8):
        assert candidate.sample_batch() == reference.sample_batch()
    assert candidate.source.bytes_read == reference.source.bytes_read
    assert candidate.samples_discarded == reference.samples_discarded


@pytest.mark.parametrize("engine", OTHER_ENGINES)
@pytest.mark.parametrize("sigma,precision", [
    (1, 12), (2, 16), (2, 24), (3.5, 20), (0.8, 14),
])
def test_sample_many_bit_identical(engine, sigma, precision):
    reference, candidate = _pair(sigma, precision, 64, seed=5,
                                 engine=engine)
    assert candidate.sample_many(999) == reference.sample_many(999)
    assert candidate.source.bytes_read == reference.source.bytes_read
    assert candidate.batches_run == reference.batches_run


@pytest.mark.parametrize("engine", OTHER_ENGINES)
@pytest.mark.parametrize("width", [33, 64, 100])
def test_raw_batch_masks_bit_identical(engine, width):
    """Magnitudes on valid lanes, valid mask and sign mask all agree."""
    reference, candidate = _pair(2, 12, width, seed=77, engine=engine)
    for _ in range(4):
        mags_r, valid_r, signs_r = reference.raw_batch()
        mags_c, valid_c, signs_c = candidate.raw_batch()
        assert valid_c == valid_r
        assert signs_c == signs_r
        for lane in range(width):
            if (valid_r >> lane) & 1:
                assert mags_c[lane] == mags_r[lane]


@pytest.mark.parametrize("engine", OTHER_ENGINES)
def test_stream_and_prefetch_bit_identical(engine):
    """The super-batched paths agree too, not just single batches."""
    reference, candidate = _pair(2, 16, 64, seed=3, engine=engine,
                                 prefetch_batches=4)
    ref_iter = reference.stream(block_samples=500)
    cand_iter = candidate.stream(block_samples=500)
    assert [next(cand_iter) for _ in range(1200)] == \
        [next(ref_iter) for _ in range(1200)]
    assert candidate.sample() == reference.sample()


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1),
       width=st.integers(min_value=1, max_value=200),
       engine=st.sampled_from(OTHER_ENGINES))
def test_property_any_seed_any_width(seed, width, engine):
    """Property form: arbitrary seeds and widths, cheap Counter PRNG."""
    params = GaussianParams.from_sigma(2, 12)
    circuit = compile_sampler_circuit(params)
    reference = BitslicedSampler(circuit, source=CounterSource(seed),
                                 batch_width=width, engine="bigint")
    candidate = BitslicedSampler(circuit, source=CounterSource(seed),
                                 batch_width=width, engine=engine)
    assert candidate.sample_many(150) == reference.sample_many(150)
    assert candidate.source.bytes_read == reference.source.bytes_read


@pytest.mark.skipif(not HAVE_NUMPY, reason="NumPy not installed")
def test_numpy_engine_is_really_numpy():
    """When NumPy is present, the numpy name must map to the vector
    engine (not silently fall back), and auto must pick it."""
    from repro.bitslice import NumpyEngine

    assert isinstance(get_engine("numpy"), NumpyEngine)
    assert isinstance(get_engine("auto"), NumpyEngine)
    assert get_engine(None).name == "numpy"


def test_read_words_matches_sequential_reads():
    """The bulk RNG primitive the engines share is byte-identical to
    drawing words one at a time."""
    for bits in (7, 8, 12, 64, 100):
        sequential = ChaChaSource(9)
        bulk = ChaChaSource(9)
        expected = [sequential.read_word(bits) for _ in range(10)]
        assert bulk.read_words(bits, 10) == expected


@pytest.mark.parametrize("engine", ["bigint", "chunked", "numpy"])
def test_buffered_source_is_sample_transparent(engine):
    """Keystream buffering and PRNG vectorization never change the
    sample stream: every engine fed a buffered source reproduces the
    unbuffered scalar-ChaCha stream exactly."""
    circuit = compile_sampler_circuit(GaussianParams.from_sigma(2, 16))
    reference = BitslicedSampler(
        circuit, source=ChaChaSource(13, buffer_bytes=0,
                                     vectorized=False),
        batch_width=100, engine=engine)
    buffered = BitslicedSampler(
        circuit, source=ChaChaSource(13, buffer_bytes=4096),
        batch_width=100, engine=engine)
    assert buffered.sample_many(777) == reference.sample_many(777)
    assert buffered.source.bytes_read == reference.source.bytes_read


def test_auto_batch_width_resolves_per_engine():
    from repro.core.sampler import BATCH_WIDTH_CALIBRATION

    circuit = compile_sampler_circuit(GaussianParams.from_sigma(2, 12))
    for engine, expected in BATCH_WIDTH_CALIBRATION.items():
        sampler = BitslicedSampler(circuit, batch_width="auto",
                                   engine=engine)
        if engine == "numpy" and not HAVE_NUMPY:
            # numpy degrades to the chunked layout; auto follows it.
            expected = BATCH_WIDTH_CALIBRATION["chunked"]
        assert sampler.batch_width == expected
        assert len(sampler.sample_many(2 * expected + 5)) == \
            2 * expected + 5
    with pytest.raises(ValueError):
        BitslicedSampler(circuit, batch_width="wide")
