"""Tests for exact Quine-McCluskey + Petrick minimization."""

from itertools import combinations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boolfunc import (
    Cube,
    generate_primes,
    minimize_cubes_exact,
    minimize_exact,
)


def _function_bits(cubes, width):
    return {m for cube in cubes for m in cube.minterms()}


def _is_implicant(cube, on, dc):
    return all(m in on or m in dc for m in cube.minterms())


def _brute_force_min_cubes(width, on, dc):
    """Smallest number of implicants covering ON (reference, tiny widths)."""
    primes = generate_primes(width, on, dc)
    for size in range(0, len(primes) + 1):
        for subset in combinations(range(len(primes)), size):
            covered = set()
            for i in subset:
                covered.update(primes[i].minterms())
            if set(on) <= covered:
                return size
    raise AssertionError("no cover found")


def test_textbook_example():
    # f(a,b,c,d) on minterms {4,8,10,11,12,15}, dc {9,14} — classic QMC.
    result = minimize_exact(4, [4, 8, 10, 11, 12, 15], [9, 14])
    covered = _function_bits(result.cubes, 4)
    assert {4, 8, 10, 11, 12, 15} <= covered
    assert covered <= {4, 8, 10, 11, 12, 15, 9, 14}
    assert result.exact
    assert len(result.cubes) <= 3


def test_empty_on_set():
    result = minimize_exact(4, [])
    assert result.cubes == ()


def test_single_minterm():
    result = minimize_exact(3, [5])
    assert len(result.cubes) == 1
    assert result.cubes[0].contains_minterm(5)


def test_tautology_collapses_to_full_cube():
    result = minimize_exact(3, list(range(8)))
    assert len(result.cubes) == 1
    assert result.cubes[0].care == 0


def test_dc_enables_larger_cubes():
    without_dc = minimize_exact(3, [0, 1, 2])
    with_dc = minimize_exact(3, [0, 1, 2], [3])
    assert with_dc.cost <= without_dc.cost
    assert len(with_dc.cubes) == 1


def test_on_dc_overlap_rejected():
    with pytest.raises(ValueError):
        minimize_exact(3, [1, 2], [2, 3])


def test_primes_are_maximal_implicants():
    on = [0, 1, 2, 5, 6, 7]
    primes = generate_primes(3, on)
    on_set = set(on)
    for prime in primes:
        assert _is_implicant(prime, on_set, set())
        # Raising any literal breaks implicant-ness (maximality).
        for variable, _ in prime.literals():
            raised = prime.without_variable(variable)
            assert not _is_implicant(raised, on_set, set())


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=2, max_value=4).flatmap(
    lambda w: st.tuples(
        st.just(w),
        st.sets(st.integers(min_value=0, max_value=(1 << w) - 1)),
        st.sets(st.integers(min_value=0, max_value=(1 << w) - 1)))))
def test_exact_minimality_against_brute_force(args):
    width, on, dc = args
    dc = dc - on
    result = minimize_exact(width, on, dc)
    covered = _function_bits(result.cubes, width)
    # Correctness: covers ON, avoids OFF.
    assert on <= covered
    assert covered <= on | dc
    # Optimality in cube count.
    if on:
        assert result.exact
        assert len(result.cubes) == _brute_force_min_cubes(width, on, dc)


@settings(max_examples=40, deadline=None)
@given(st.sets(st.integers(min_value=0, max_value=63), max_size=40))
def test_six_variable_correctness(on):
    result = minimize_exact(6, on)
    covered = _function_bits(result.cubes, 6)
    assert covered == set(on)


def test_minimize_cubes_exact_wrapper():
    on_cubes = [Cube.from_string("10--"), Cube.from_string("111-")]
    dc_cubes = [Cube.from_string("1101")]
    result = minimize_cubes_exact(4, on_cubes, dc_cubes)
    covered = _function_bits(result.cubes, 4)
    want_on = _function_bits(on_cubes, 4)
    assert want_on <= covered
    assert covered <= want_on | _function_bits(dc_cubes, 4)
