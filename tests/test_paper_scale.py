"""Paper-scale tests (slow; run with REPRO_FULL=1).

The regular suite keeps parameters small for speed; these tests pin
behaviour at the sizes the paper actually used — n = 128 precision for
the sampler, Falcon at the Table 1 ring degrees.
"""

import pytest

slow = pytest.mark.repro_full


@slow
def test_sigma2_n128_compiles_and_matches_paper_shape():
    from repro.core import GaussianParams, compile_sampler_circuit

    params = GaussianParams.from_sigma(2, precision=128)
    circuit = compile_sampler_circuit(params)
    assert all(report.exact for report in circuit.reports)
    assert circuit.partition.delta <= 6
    gates = circuit.gate_count()["total"]
    # Same order of magnitude as the paper's 2,293 cycles / batch.
    assert 1000 < gates < 12000


@slow
def test_sigma2_n128_sampler_distribution():
    import math

    from repro.core import compile_sampler
    from repro.rng import ChaChaSource

    sampler = compile_sampler(2, 128, source=ChaChaSource(1))
    values = sampler.sample_many(20_000)
    std = math.sqrt(sum(v * v for v in values) / len(values))
    assert abs(std - 2.0) < 0.06
    assert sampler.samples_discarded == 0  # fail rate ~2^-121


@slow
def test_falcon_512_roundtrip_all_backends():
    from repro.falcon import BASE_SAMPLER_BACKENDS, SecretKey
    from repro.rng import ChaChaSource

    sk = SecretKey.generate(n=512, seed=7)
    for backend in sorted(BASE_SAMPLER_BACKENDS):
        sk.use_base_sampler(backend, source=ChaChaSource(8))
        message = f"paper scale {backend}".encode()
        assert sk.public_key.verify(message, sk.sign(message))


@slow
def test_falcon_1024_roundtrip():
    from repro.falcon import SecretKey

    sk = SecretKey.generate(n=1024, seed=7)
    message = b"level 3"
    assert sk.public_key.verify(message, sk.sign(message))


@slow
def test_sigma_215_direct_matrix_delta():
    from repro.core import (
        GaussianParams,
        partition_by_trailing_ones,
        probability_matrix,
    )

    params = GaussianParams.from_sigma(215, precision=48)
    partition = partition_by_trailing_ones(probability_matrix(params))
    # Paper: Delta = 15 (at its precision); small relative to n.
    assert 8 <= partition.delta <= 17
