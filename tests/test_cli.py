"""Tests for the command-line tool."""

import pytest

from repro.cli import build_parser, main


def test_compile_command(capsys):
    assert main(["compile", "--sigma", "2", "--precision", "12"]) == 0
    out = capsys.readouterr().out
    assert "gates" in out
    assert "efficient" in out


def test_compile_emit_c(capsys):
    assert main(["compile", "--sigma", "2", "--precision", "10",
                 "--emit", "c"]) == 0
    out = capsys.readouterr().out
    assert "uint64_t" in out
    assert "static inline void sampler" in out


def test_compile_emit_python(capsys):
    assert main(["compile", "--sigma", "2", "--precision", "10",
                 "--emit", "python"]) == 0
    assert "def sampler(inputs, mask):" in capsys.readouterr().out


def test_compile_simple_method(capsys):
    assert main(["compile", "--sigma", "2", "--precision", "10",
                 "--method", "simple"]) == 0
    assert "simple" in capsys.readouterr().out


def test_sample_command(capsys):
    assert main(["sample", "--count", "25", "--seed", "3",
                 "--precision", "16"]) == 0
    values = capsys.readouterr().out.split()
    assert len(values) == 25
    assert all(abs(int(v)) <= 26 for v in values)


def test_sample_deterministic(capsys):
    main(["sample", "--count", "10", "--seed", "5", "--precision", "16"])
    first = capsys.readouterr().out
    main(["sample", "--count", "10", "--seed", "5", "--precision", "16"])
    second = capsys.readouterr().out
    assert first == second


def test_audit_leaky_backend_exits_nonzero(capsys):
    code = main(["audit", "--backend", "cdt-byte-scan",
                 "--calls", "1500", "--precision", "16"])
    assert code == 1
    assert "LEAK" in capsys.readouterr().out


def test_audit_bitsliced_passes(capsys):
    code = main(["audit", "--backend", "bitsliced",
                 "--calls", "6400", "--precision", "16"])
    assert code == 0
    assert "ok" in capsys.readouterr().out


def test_falcon_command(capsys):
    code = main(["falcon", "--n", "32", "--seed", "4",
                 "--message", "cli test", "--backend", "cdt-binary"])
    assert code == 0
    out = capsys.readouterr().out
    assert "verified   : True" in out


def test_audit_bisection_passes(capsys):
    code = main(["audit", "--backend", "cdt-bisection",
                 "--calls", "1500", "--precision", "16"])
    assert code == 0
    assert "ok" in capsys.readouterr().out


def test_falcon_command_bisection_backend(capsys):
    code = main(["falcon", "--n", "32", "--seed", "4",
                 "--message", "cli test", "--backend", "cdt-bisection"])
    assert code == 0
    assert "verified   : True" in capsys.readouterr().out


def test_ct_leakage_command(capsys, tmp_path):
    import json

    out_path = tmp_path / "leakage.json"
    code = main(["ct-leakage", "--profile", "quick", "--seed", "2026",
                 "--target", "serving-rounds",
                 "--json", str(out_path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "PASS" in out and "positive control" in out
    decoded = json.loads(out_path.read_text())
    assert decoded["passed"] is True
    assert decoded["control_caught"] is True
    assert set(decoded["targets"]) == {"serving-rounds"}


def test_sample_prng_and_auto_width(capsys):
    assert main(["sample", "--count", "12", "--seed", "2",
                 "--precision", "16", "--prng", "chacha8",
                 "--batch-width", "auto"]) == 0
    chacha8 = capsys.readouterr().out.split()
    assert len(chacha8) == 12
    assert main(["sample", "--count", "12", "--seed", "2",
                 "--precision", "16", "--prng", "shake256",
                 "--batch-width", "auto"]) == 0
    shake = capsys.readouterr().out.split()
    assert len(shake) == 12
    assert chacha8 != shake  # different PRNGs, different streams


def test_falcon_command_prng_choice(capsys):
    code = main(["falcon", "--n", "32", "--seed", "4",
                 "--message", "cli test", "--backend", "cdt-binary",
                 "--prng", "shake128"])
    assert code == 0
    assert "verified   : True" in capsys.readouterr().out


def test_keygen_command(capsys):
    assert main(["keygen", "--n", "8", "--count", "2",
                 "--seed", "4"]) == 0
    out = capsys.readouterr().out
    assert "keys/s" in out
    assert "memory only" in out


def test_keygen_command_persists(capsys, tmp_path):
    store_dir = str(tmp_path / "keys")
    assert main(["keygen", "--n", "8", "--count", "2", "--seed", "4",
                 "--keystore", store_dir]) == 0
    out = capsys.readouterr().out
    assert store_dir in out
    assert len(list((tmp_path / "keys").glob("*.skey"))) >= 1


def test_keygen_command_spine_choice(capsys):
    assert main(["keygen", "--n", "8", "--count", "1",
                 "--spine", "scalar"]) == 0
    assert "scalar" in capsys.readouterr().out


def test_bench_keygen_command(capsys):
    assert main(["bench-keygen", "--n", "8", "--keys", "2"]) == 0
    out = capsys.readouterr().out
    assert "generate_keys[scalar]" in out
    assert "keys/s" in out


def test_bench_serve_from_keystore(capsys, tmp_path):
    store_dir = str(tmp_path / "serve-keys")
    assert main(["keygen", "--n", "16", "--count", "2", "--seed", "2",
                 "--keystore", store_dir]) == 0
    capsys.readouterr()
    assert main(["bench-serve", "--n", "16", "--seed", "2",
                 "--signs", "4", "--batch", "4",
                 "--keystore", store_dir]) == 0
    out = capsys.readouterr().out
    assert "serving Falcon-16 key from store" in out
    assert "all verified: True" in out


def test_bench_serve_async_rows(capsys):
    assert main(["bench-serve", "--n", "16", "--signs", "8",
                 "--batch", "4", "--async", "--tenants", "2",
                 "--clients", "4", "--spine", "scalar"]) == 0
    out = capsys.readouterr().out
    assert "async coalesced (clients=1, tenants=2)" in out
    assert "async coalesced (clients=4, tenants=2)" in out
    assert "all verified: True" in out


def test_serve_command(capsys):
    assert main(["serve", "--n", "8", "--requests", "12",
                 "--clients", "4", "--tenants", "2", "--shards", "2",
                 "--watermark", "1", "--verify-share", "4"]) == 0
    out = capsys.readouterr().out
    assert "requests/s" in out
    assert "coalesced rounds" in out
    assert "signed / verified" in out
    assert "memory only" in out


def test_serve_command_persists(capsys, tmp_path):
    store_dir = str(tmp_path / "serving")
    assert main(["serve", "--n", "8", "--requests", "6",
                 "--clients", "2", "--tenants", "2",
                 "--provision", "1", "--verify-share", "0",
                 "--keystore", store_dir]) == 0
    out = capsys.readouterr().out
    assert store_dir in out
    assert (tmp_path / "serving" / "shard-00").is_dir()
    assert (tmp_path / "serving" / "shard-01").is_dir()


def test_parser_rejects_unknown_prng():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["sample", "--prng", "aesni"])


def test_parser_requires_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_rejects_unknown_choice():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["compile", "--method", "magic"])
