"""Tests for arbitrary-precision fixed-point exp."""

import math
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fixedpoint import (
    exp_neg_fixed,
    fixed_to_fraction,
    floor_scaled_sqrt,
    fraction_to_fixed,
    isqrt_floor,
)


def test_exp_zero_is_one():
    assert exp_neg_fixed(Fraction(0), 64) == 1 << 64


def test_exp_matches_math_exp_double_precision():
    for numerator, denominator in [(1, 1), (1, 2), (3, 4), (7, 2), (25, 3),
                                   (84, 1), (169, 2)]:
        x = Fraction(numerator, denominator)
        got = fixed_to_fraction(exp_neg_fixed(x, 80), 80)
        want = math.exp(-float(x))
        assert abs(float(got) - want) < max(1e-15, want * 1e-12)


def test_exp_high_precision_self_consistency():
    # e^-a * e^-b == e^-(a+b) to within a few ulps at 160 bits.
    a, b = Fraction(5, 3), Fraction(7, 11)
    precision = 160
    fa = exp_neg_fixed(a, precision)
    fb = exp_neg_fixed(b, precision)
    fab = exp_neg_fixed(a + b, precision)
    product = (fa * fb) >> precision
    assert abs(product - fab) <= 4


def test_exp_monotonic_in_x():
    precision = 96
    values = [exp_neg_fixed(Fraction(k, 7), precision) for k in range(40)]
    assert values == sorted(values, reverse=True)
    assert all(earlier > later for earlier, later
               in zip(values, values[1:]))


def test_exp_underflow_returns_zero():
    assert exp_neg_fixed(Fraction(10_000), 64) == 0


def test_exp_rejects_negative():
    with pytest.raises(ValueError):
        exp_neg_fixed(Fraction(-1), 64)


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=0, max_value=2000),
       st.integers(min_value=1, max_value=50))
def test_exp_error_bound_against_float(num, den):
    x = Fraction(num, den)
    if x > 80:
        return  # float reference underflows around e^-745 anyway
    got = float(fixed_to_fraction(exp_neg_fixed(x, 72), 72))
    want = math.exp(-float(x))
    assert got == pytest.approx(want, rel=1e-10, abs=2.0 ** -70)


@settings(max_examples=100, deadline=None)
@given(st.integers(min_value=0, max_value=10**24))
def test_isqrt_floor_definition(value):
    root = isqrt_floor(value)
    assert root * root <= value < (root + 1) * (root + 1)


def test_floor_scaled_sqrt_examples():
    assert floor_scaled_sqrt(Fraction(4), 13) == 26       # sigma = 2
    assert floor_scaled_sqrt(Fraction(5), 13) == 29       # sigma = sqrt 5
    assert floor_scaled_sqrt(Fraction(2), 1) == 1
    assert floor_scaled_sqrt(Fraction(615543, 100000) ** 2, 13) == 80


@settings(max_examples=60, deadline=None)
@given(st.fractions(min_value=0, max_value=10**6),
       st.integers(min_value=1, max_value=100))
def test_floor_scaled_sqrt_definition(radicand, multiplier):
    got = floor_scaled_sqrt(radicand, multiplier)
    assert Fraction(got, multiplier) ** 2 <= radicand
    assert Fraction(got + 1, multiplier) ** 2 > radicand


def test_fraction_fixed_round_trip():
    x = Fraction(355, 113)
    fixed = fraction_to_fixed(x, 64)
    back = fixed_to_fraction(fixed, 64)
    assert abs(back - x) <= Fraction(1, 1 << 64)


def test_fraction_to_fixed_rejects_negative():
    with pytest.raises(ValueError):
        fraction_to_fixed(Fraction(-1, 2), 16)
