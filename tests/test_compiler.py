"""Tests for the Fig. 4 sampler compiler: both methods, all combiners."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitslice import BitslicedKernel, pack_lane_bits
from repro.boolfunc import COMBINER_MODES
from repro.core import (
    GaussianParams,
    compile_sampler_circuit,
    knuth_yao_walk,
    probability_matrix,
)
from repro.rng import BitStream, ListBitSource


def _exhaustive_equivalence(circuit, matrix):
    """Every n-bit string: circuit output == Algorithm 1 outcome."""
    n = matrix.precision
    kernel = BitslicedKernel(circuit.roots)
    for word in range(1 << n):
        bits = [(word >> i) & 1 for i in range(n)]
        walk = knuth_yao_walk(matrix, BitStream(ListBitSource(bits)))
        outputs = kernel(pack_lane_bits([bits], n), 1)
        valid = outputs[-1] & 1
        magnitude = sum((outputs[t] & 1) << t
                        for t in range(len(outputs) - 1))
        if walk.failed:
            assert valid == 0, bits
        else:
            assert valid == 1, bits
            assert magnitude == walk.value, bits


@pytest.mark.parametrize("combiner", COMBINER_MODES)
def test_efficient_equivalence_all_combiners(combiner):
    params = GaussianParams.from_sigma(2, precision=9)
    circuit = compile_sampler_circuit(params, combiner=combiner)
    _exhaustive_equivalence(circuit, probability_matrix(params))


def test_simple_method_equivalence():
    params = GaussianParams.from_sigma(2, precision=9)
    circuit = compile_sampler_circuit(params, method="simple")
    _exhaustive_equivalence(circuit, probability_matrix(params))


def test_global_delta_equivalence():
    params = GaussianParams.from_sigma(2, precision=9)
    circuit = compile_sampler_circuit(params, use_global_delta=True)
    _exhaustive_equivalence(circuit, probability_matrix(params))


def test_espresso_sublist_path_equivalence():
    """Force the wide-sublist espresso fallback with a tiny QMC limit."""
    params = GaussianParams.from_sigma(2, precision=9)
    circuit = compile_sampler_circuit(params, qmc_width_limit=1)
    _exhaustive_equivalence(circuit, probability_matrix(params))


@settings(max_examples=8, deadline=None)
@given(st.sampled_from([1, 1.5, 2, 3, 6.15543]),
       st.integers(min_value=6, max_value=11))
def test_equivalence_random_parameters(sigma, precision):
    params = GaussianParams.from_sigma(sigma, precision=precision)
    circuit = compile_sampler_circuit(params)
    _exhaustive_equivalence(circuit, probability_matrix(params))


def test_efficient_beats_simple_on_gate_count():
    """The headline Table 2 direction: efficient < simple, sigma = 2."""
    params = GaussianParams.from_sigma(2, precision=16)
    efficient = compile_sampler_circuit(params, method="efficient")
    simple = compile_sampler_circuit(params, method="simple")
    assert efficient.gate_count()["total"] < simple.gate_count()["total"]


def test_reports_populated():
    params = GaussianParams.from_sigma(2, precision=12)
    circuit = compile_sampler_circuit(params)
    assert circuit.reports
    assert all(report.exact for report in circuit.reports)
    ks = [report.k for report in circuit.reports]
    assert ks == sorted(ks)


def test_validity_rate_matches_matrix():
    params = GaussianParams.from_sigma(2, precision=6)
    circuit = compile_sampler_circuit(params)
    assert circuit.validity_rate == 61 / 64


def test_invalid_arguments_rejected():
    params = GaussianParams.from_sigma(2, precision=8)
    with pytest.raises(ValueError):
        compile_sampler_circuit(params, method="bogus")
    with pytest.raises(ValueError):
        compile_sampler_circuit(params, combiner="bogus")


def test_compile_metadata():
    params = GaussianParams.from_sigma(2, precision=12)
    circuit = compile_sampler_circuit(params)
    assert circuit.compile_seconds > 0
    assert circuit.num_input_bits == 12
    assert circuit.num_magnitude_bits >= 3
    assert circuit.depth() > 0


def test_onehot_vs_nested_gate_costs_recorded():
    params = GaussianParams.from_sigma(2, precision=14)
    costs = {}
    for mode in COMBINER_MODES:
        circuit = compile_sampler_circuit(params, combiner=mode)
        costs[mode] = circuit.gate_count()["total"]
    assert costs["onehot"] <= costs["nested"]
