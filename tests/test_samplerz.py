"""Tests for the variable-center SamplerZ construction."""

import math
from collections import Counter

import pytest

from repro.core import GaussianParams
from repro.falcon import BASE_SIGMA, ReferenceSamplerZ, RejectionSamplerZ
from repro.falcon.scheme import make_base_sampler
from repro.rng import ChaChaSource


def _target_pmf(center, sigma, span=30):
    lo = round(center) - span
    weights = {z: math.exp(-(z - center) ** 2 / (2 * sigma * sigma))
               for z in range(lo, lo + 2 * span + 1)}
    total = sum(weights.values())
    return {z: w / total for z, w in weights.items()}


def _make_sampler(seed, backend="cdt-binary"):
    base = make_base_sampler(backend, source=ChaChaSource(seed),
                             precision=64)
    return RejectionSamplerZ(base, uniform_source=ChaChaSource(seed + 99))


@pytest.mark.parametrize("center,sigma", [
    (0.0, 1.5), (0.3, 1.3), (-0.47, 1.8), (1234.56, 1.29),
])
def test_distribution_matches_target(center, sigma):
    sampler = _make_sampler(1)
    draws = 6000
    counts = Counter(sampler.sample(center, sigma) for _ in range(draws))
    pmf = _target_pmf(center, sigma)
    chi2 = 0.0
    dof = 0
    for z, p in pmf.items():
        expected = p * draws
        if expected < 8:
            continue
        chi2 += (counts.get(z, 0) - expected) ** 2 / expected
        dof += 1
    dof -= 1
    assert chi2 < dof + 5 * math.sqrt(2 * dof), (chi2, dof)


def test_moments():
    sampler = _make_sampler(2)
    center, sigma = 0.25, 1.7
    draws = 8000
    values = [sampler.sample(center, sigma) for _ in range(draws)]
    mean = sum(values) / draws
    std = (sum((v - mean) ** 2 for v in values) / draws) ** 0.5
    assert abs(mean - center) < 4 * sigma / math.sqrt(draws)
    assert abs(std - sigma) < 0.1


def test_rejection_matches_reference_sampler():
    rejection = _make_sampler(3)
    reference = ReferenceSamplerZ(source=ChaChaSource(4))
    center, sigma = -0.4, 1.4
    draws = 5000
    got = Counter(rejection.sample(center, sigma) for _ in range(draws))
    want = Counter(reference.sample(center, sigma) for _ in range(draws))
    for z in range(-6, 6):
        assert abs(got.get(z, 0) - want.get(z, 0)) < 5 * math.sqrt(
            max(got.get(z, 0), want.get(z, 0), 25))


def test_acceptance_rate_reasonable():
    sampler = _make_sampler(5)
    for _ in range(1500):
        sampler.sample(0.37, 1.5)
    assert sampler.acceptance_rate > 0.25, sampler.acceptance_rate


def test_sigma_bounds_enforced():
    sampler = _make_sampler(6)
    with pytest.raises(ValueError):
        sampler.sample(0.0, BASE_SIGMA)   # must be strictly below base
    with pytest.raises(ValueError):
        sampler.sample(0.0, 0.0)


def test_every_backend_plugs_in():
    for backend in ("cdt-byte-scan", "cdt-binary", "cdt-linear",
                    "bitsliced"):
        base = make_base_sampler(backend, source=ChaChaSource(7),
                                 precision=32)
        sampler = RejectionSamplerZ(base,
                                    uniform_source=ChaChaSource(8))
        values = [sampler.sample(0.1, 1.5) for _ in range(200)]
        assert all(isinstance(v, int) for v in values)
        assert min(values) < 0 < max(values)


def test_unknown_backend_rejected():
    with pytest.raises(ValueError):
        make_base_sampler("nope")


def test_integer_center_shortcut_distribution():
    """Exactly integral centers are the easiest case; sanity-check it."""
    sampler = _make_sampler(9)
    values = [sampler.sample(5.0, 1.3) for _ in range(4000)]
    mean = sum(values) / len(values)
    assert abs(mean - 5.0) < 0.1


def test_base_sigma_documented_value():
    assert BASE_SIGMA == 2.0
    gaussian = GaussianParams.from_sigma(BASE_SIGMA, 16)
    assert gaussian.support_bound == 26


@pytest.mark.parametrize("block", [1, 7, 64])
def test_uniform_block_size_is_output_transparent(block):
    """With a dedicated uniform source, pre-drawing acceptance uniforms
    in blocks consumes the same stream in the same order, so every
    block size yields the identical sample sequence."""
    def build(uniform_block):
        base = make_base_sampler("cdt-binary", source=ChaChaSource(42),
                                 precision=64)
        return RejectionSamplerZ(base, uniform_source=ChaChaSource(77),
                                 uniform_block=uniform_block)

    reference, candidate = build(1), build(block)
    ref = [reference.sample(0.3, 1.4) for _ in range(300)]
    got = [candidate.sample(0.3, 1.4) for _ in range(300)]
    assert got == ref
    assert candidate.base_draws == reference.base_draws


def test_uniform_block_validation():
    base = make_base_sampler("cdt-binary", source=ChaChaSource(1))
    with pytest.raises(ValueError):
        RejectionSamplerZ(base, uniform_block=0)
