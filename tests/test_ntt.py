"""Tests for the NTT modulo 12289."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.falcon import (
    Q,
    center_mod_q,
    div_ntt,
    intt,
    is_invertible,
    mul_ntt,
    ntt,
)


def _naive_negacyclic_mod(a, b):
    n = len(a)
    out = [0] * n
    for i in range(n):
        for j in range(n):
            k = i + j
            if k < n:
                out[k] = (out[k] + a[i] * b[j]) % Q
            else:
                out[k - n] = (out[k - n] - a[i] * b[j]) % Q
    return out


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=2**32),
       st.sampled_from([2, 4, 16, 64, 256]))
def test_round_trip(seed, n):
    rng = random.Random(seed)
    a = [rng.randrange(Q) for _ in range(n)]
    assert intt(ntt(a)) == a


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=2**32))
def test_mul_matches_naive(seed):
    rng = random.Random(seed)
    n = 32
    a = [rng.randrange(Q) for _ in range(n)]
    b = [rng.randrange(Q) for _ in range(n)]
    assert mul_ntt(a, b) == _naive_negacyclic_mod(a, b)


def test_mul_accepts_negative_inputs():
    a = [-1] + [0] * 15
    b = [5] + [0] * 15
    assert mul_ntt(a, b)[0] == Q - 5


def test_negacyclic_wraparound_sign():
    # x^(n-1) * x = x^n = -1.
    n = 16
    a = [0] * n
    a[n - 1] = 1
    b = [0] * n
    b[1] = 1
    product = mul_ntt(a, b)
    assert product[0] == Q - 1
    assert all(c == 0 for c in product[1:])


def test_div_inverts_mul():
    rng = random.Random(7)
    n = 64
    while True:
        f = [rng.randrange(Q) for _ in range(n)]
        if is_invertible(f):
            break
    g = [rng.randrange(Q) for _ in range(n)]
    h = div_ntt(g, f)
    assert mul_ntt(h, f) == [c % Q for c in g]


def test_div_rejects_non_invertible():
    n = 16
    zero = [0] * n
    with pytest.raises(ZeroDivisionError):
        div_ntt([1] + [0] * (n - 1), zero)


def test_is_invertible_detects_zero_divisors():
    n = 16
    assert not is_invertible([0] * n)
    assert is_invertible([1] + [0] * (n - 1))


def test_center_mod_q():
    assert center_mod_q(0) == 0
    assert center_mod_q(Q) == 0
    assert center_mod_q(Q // 2) == Q // 2
    assert center_mod_q(Q // 2 + 1) == Q // 2 + 1 - Q
    assert center_mod_q(-1) == -1
    assert center_mod_q(Q - 1) == -1
    for value in range(-30, 30):
        centered = center_mod_q(value)
        assert (centered - value) % Q == 0
        assert -Q // 2 <= centered <= Q // 2


def test_invalid_sizes_rejected():
    with pytest.raises(ValueError):
        ntt([1, 2, 3])
    with pytest.raises(ValueError):
        ntt([1])
