"""Edge-case and failure-injection tests for the sampler compiler."""

from fractions import Fraction

import pytest

from repro.bitslice import BitslicedKernel, pack_lane_bits
from repro.core import (
    BitslicedSampler,
    GaussianParams,
    compile_sampler_circuit,
    knuth_yao_walk,
    probability_matrix,
)
from repro.rng import BitStream, ChaChaSource, FixedSource, ListBitSource


def _exhaustive_ok(params):
    matrix = probability_matrix(params)
    circuit = compile_sampler_circuit(params)
    kernel = BitslicedKernel(circuit.roots)
    n = params.precision
    for word in range(1 << n):
        bits = [(word >> i) & 1 for i in range(n)]
        walk = knuth_yao_walk(matrix, BitStream(ListBitSource(bits)))
        out = kernel(pack_lane_bits([bits], n), 1)
        valid = out[-1] & 1
        if walk.failed:
            assert valid == 0
        else:
            assert valid == 1
            value = sum((out[t] & 1) << t for t in range(len(out) - 1))
            assert value == walk.value
    return circuit


def test_minimum_precision():
    """n = 2 is the smallest legal precision; the pipeline holds."""
    _exhaustive_ok(GaussianParams.from_sigma(2, precision=2))


def test_tiny_tail_cut():
    """tau = 1 truncates at one sigma; heavy truncation still exact."""
    params = GaussianParams(sigma_sq=Fraction(4), precision=8,
                            tail_cut=1)
    assert params.support_bound == 2
    circuit = _exhaustive_ok(params)
    assert circuit.num_magnitude_bits == 2


def test_very_peaked_distribution():
    """sigma = 0.3: nearly all mass at 0, single-leaf-ish tree."""
    params = GaussianParams.from_sigma(0.3, precision=10)
    _exhaustive_ok(params)


def test_wide_flat_distribution():
    """sigma = 12 at low precision: many rows truncate to zero."""
    params = GaussianParams.from_sigma(12, precision=9)
    circuit = _exhaustive_ok(params)
    assert circuit.matrix.max_value < circuit.matrix.num_rows - 1


def test_immediate_sublist_constant_circuit():
    """Sublists where 1^k 0 itself is a leaf compile to constants."""
    params = GaussianParams.from_sigma(2, precision=12)
    circuit = compile_sampler_circuit(params)
    immediate = [r for r in circuit.reports if r.width == 0]
    if immediate:
        for report in immediate:
            assert report.cube_count == 0
            assert report.exact


def test_qmc_width_limit_boundary():
    params = GaussianParams.from_sigma(2, precision=10)
    delta = compile_sampler_circuit(params).partition.delta
    # Limit exactly at Delta: still fully exact.
    at_limit = compile_sampler_circuit(params, qmc_width_limit=delta)
    assert all(r.exact for r in at_limit.reports)
    # Limit below Delta: wide sublists fall back to espresso.
    below = compile_sampler_circuit(params, qmc_width_limit=delta - 1)
    assert any(not r.exact for r in below.reports)


def test_sampler_exhausted_source_raises():
    params = GaussianParams.from_sigma(2, precision=16)
    circuit = compile_sampler_circuit(params)
    # Source with bytes for less than one batch.
    sampler = BitslicedSampler(circuit, source=FixedSource(b"\xAB" * 32),
                               batch_width=64)
    with pytest.raises(RuntimeError):
        sampler.sample_batch()


def test_compile_is_deterministic():
    params = GaussianParams.from_sigma(2, precision=20)
    a = compile_sampler_circuit(params)
    b = compile_sampler_circuit(params)
    assert a.gate_count() == b.gate_count()
    ka = BitslicedKernel(a.roots)
    kb = BitslicedKernel(b.roots)
    assert ka.source == kb.source


def test_batch_width_one():
    sampler = BitslicedSampler(
        compile_sampler_circuit(GaussianParams.from_sigma(2, 16)),
        source=ChaChaSource(3), batch_width=1)
    values = sampler.sample_many(50)
    assert len(values) == 50
    assert all(abs(v) <= 26 for v in values)


def test_sampler_uses_exactly_n_plus_one_words():
    """Randomness accounting: n input words + 1 sign word per batch,
    independent of how many kernel inputs are actually referenced."""
    params = GaussianParams.from_sigma(2, precision=24)
    circuit = compile_sampler_circuit(params)
    kernel_inputs = BitslicedKernel(circuit.roots).num_inputs
    assert kernel_inputs <= params.precision
    sampler = BitslicedSampler(circuit, source=ChaChaSource(4),
                               batch_width=8)
    sampler.source.reset_count()
    sampler.raw_batch()
    assert sampler.source.bytes_read == (params.precision + 1) * 1
