"""Known-answer tests: seeded Falcon signatures pinned byte for byte.

The fixtures under ``tests/kats/`` were generated once (seed, PRNG and
backend recorded in each file) and committed; every future refactor of
the numeric spine — scalar or vectorized — must keep reproducing the
exact same signature bytes, in both the with-NumPy and without-NumPy
environments.  A silent change here means a silent change to what the
scheme signs, which is exactly what these vectors exist to catch.

The n=256 vector costs a keygen of ~1s and runs under ``REPRO_FULL=1``.
"""

import json
from pathlib import Path

import pytest
from _env_gate import REPRO_FULL

from repro.falcon import HAVE_NUMPY, SecretKey

KAT_DIR = Path(__file__).parent / "kats"
FULL = REPRO_FULL

KAT_FILES = sorted(KAT_DIR.glob("falcon_*.json"))


def _load(path):
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def _kats():
    for path in KAT_FILES:
        kat = _load(path)
        if kat["n"] > 64 and not FULL:
            continue
        yield pytest.param(kat, id=f"n{kat['n']}")


def _regenerate(kat) -> SecretKey:
    return SecretKey.generate(n=kat["n"], seed=kat["seed"],
                              base_backend=kat["base_backend"],
                              prng=kat["prng"])


def test_kat_fixtures_exist():
    assert len(KAT_FILES) >= 3, KAT_FILES


@pytest.mark.parametrize("kat", _kats())
def test_kat_key_generation(kat):
    sk = _regenerate(kat)
    assert sk.keys.h == kat["public_key_h"]


@pytest.mark.parametrize("kat", _kats())
def test_kat_sequential_sign(kat):
    sk = _regenerate(kat)
    for message_hex, expected in zip(kat["messages"],
                                     kat["sign_sequential"]):
        signature = sk.sign(bytes.fromhex(message_hex))
        assert signature.salt.hex() == expected["salt"]
        assert signature.compressed.hex() == expected["compressed"]


@pytest.mark.parametrize("spine", ["scalar"]
                         + (["numpy"] if HAVE_NUMPY else []))
@pytest.mark.parametrize("kat", _kats())
def test_kat_batch_sign(kat, spine):
    sk = _regenerate(kat)
    messages = [bytes.fromhex(h) for h in kat["messages"]]
    signatures = sk.sign_many(messages, spine=spine)
    for signature, expected in zip(signatures, kat["sign_many_batch"]):
        assert signature.salt.hex() == expected["salt"]
        assert signature.compressed.hex() == expected["compressed"]


@pytest.mark.parametrize("kat", _kats())
def test_kat_signatures_verify(kat):
    sk = _regenerate(kat)
    messages = [bytes.fromhex(h) for h in kat["messages"]]
    signatures = sk.sign_many(messages)
    assert sk.public_key.verify_many(messages, signatures) \
        == [True] * len(messages)
