"""Differential tests: the vectorized keygen pipeline vs pure Python.

The keygen spines promise more than statistical agreement — for a fixed
seed the scalar and numpy routes must consume the identical PRNG byte
stream and emit **bit-identical** keys.  These tests pin every layer of
that promise: the bulk CDT block sampler, the batched invertibility and
Gram–Schmidt filters, the Babai quotients, the multiplication kernels,
and finally whole ``generate_keys`` runs.
"""

import random

import pytest

from repro.baselines.cdt import CdtTable, cdt_sample_block
from repro.core.gaussian import GaussianParams
from repro.falcon import (
    HAVE_NUMPY,
    generate_keys,
    gram_schmidt_norm_sq,
    gram_schmidt_norms_batch,
    is_invertible,
    poly,
)
from repro.falcon.ntrugen import _sample_fg
from repro.falcon.params import falcon_params
from repro.rng import ChaChaSource, CountingSource

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY,
                                 reason="NumPy not installed")


def _table(sigma=4.05, precision=64):
    return CdtTable(GaussianParams.from_sigma(sigma, precision))


# -- bulk CDT block sampler -------------------------------------------------

@needs_numpy
@pytest.mark.parametrize("count", [1, 7, 64, 1000])
def test_cdt_block_routes_identical(count):
    table = _table()
    scalar = cdt_sample_block(table, ChaChaSource(42), count,
                              route="scalar")
    vector = cdt_sample_block(table, ChaChaSource(42), count,
                              route="numpy")
    assert scalar == vector


@needs_numpy
def test_cdt_block_routes_consume_identical_stream():
    table = _table()
    counting_scalar = CountingSource(ChaChaSource(9))
    counting_vector = CountingSource(ChaChaSource(9))
    cdt_sample_block(table, counting_scalar, 333, route="scalar")
    cdt_sample_block(table, counting_vector, 333, route="numpy")
    assert counting_scalar.bytes_read == counting_vector.bytes_read


def test_cdt_block_matches_distribution_contract():
    """Block draws follow the documented stream contract: full-width
    words searched against the shifted CDF, then LSB-first sign bits."""
    from bisect import bisect_right

    table = _table()
    source = ChaChaSource(5)
    words = source.read_words(8 * table.num_bytes, 16)
    sign_data = ChaChaSource(5)
    sign_data.read_bytes(16 * table.num_bytes)  # skip the word block
    signs = sign_data.read_bytes(2)
    expected = []
    for index, word in enumerate(words):
        magnitude = bisect_right(table.shifted_entries, word)
        assert magnitude < len(table.shifted_entries)  # no gap hits here
        bit = (signs[index >> 3] >> (index & 7)) & 1
        expected.append(-magnitude if bit else magnitude)
    assert cdt_sample_block(table, ChaChaSource(5), 16,
                            route="scalar") == expected


def test_cdt_block_rejects_bad_route():
    with pytest.raises(ValueError):
        cdt_sample_block(_table(), ChaChaSource(0), 4, route="simd")


def test_sample_fg_spines_identical():
    params = falcon_params(64)
    scalar = _sample_fg(params, ChaChaSource(3), spine="scalar")
    assert len(scalar) == 64
    if HAVE_NUMPY:
        assert _sample_fg(params, ChaChaSource(3),
                          spine="numpy") == scalar


# -- batched filters --------------------------------------------------------

@needs_numpy
def test_batched_gram_schmidt_bit_identical():
    rng = random.Random(17)
    fs = [[rng.randrange(-40, 41) for _ in range(64)] for _ in range(6)]
    gs = [[rng.randrange(-40, 41) for _ in range(64)] for _ in range(6)]
    batch = gram_schmidt_norms_batch(fs, gs, spine="numpy")
    for f, g, norm_sq in zip(fs, gs, batch):
        assert norm_sq == gram_schmidt_norm_sq(f, g)  # same float, ==


@needs_numpy
def test_batched_invertibility_matches_scalar():
    from repro.falcon import is_invertible_array

    rng = random.Random(23)
    rows = [[rng.randrange(-5, 6) for _ in range(32)] for _ in range(20)]
    verdicts = is_invertible_array(rows)
    assert [bool(v) for v in verdicts] == \
        [is_invertible(row) for row in rows]


# -- multiplication kernels -------------------------------------------------

@pytest.mark.parametrize("strategy", ["schoolbook", "karatsuba",
                                      "kronecker", "legacy"])
def test_mul_strategies_identical(strategy):
    rng = random.Random(31)
    for n, bits in [(2, 300), (16, 9), (16, 700), (64, 60), (256, 14)]:
        a = [rng.getrandbits(bits) - (1 << (bits - 1)) for _ in range(n)]
        b = [rng.getrandbits(bits) - (1 << (bits - 1)) for _ in range(n)]
        reference = poly.mul_raw(a, b)  # auto dispatch
        with poly.mul_strategy(strategy):
            assert poly.mul_raw(a, b) == reference


def test_mul_strategy_rejects_unknown():
    with pytest.raises(ValueError):
        with poly.mul_strategy("fft"):
            pass


def test_adjoint_is_fft_conjugate():
    from repro.falcon import fft

    rng = random.Random(37)
    a = [rng.randrange(-9, 10) for _ in range(16)]
    adjoint_fft = fft([float(c) for c in poly.adjoint(a)])
    direct = [value.conjugate() for value in fft([float(c) for c in a])]
    assert all(abs(x - y) < 1e-9 for x, y in zip(adjoint_fft, direct))


# -- whole-pipeline identity ------------------------------------------------

@needs_numpy
@pytest.mark.parametrize("n", [8, 64])
def test_generate_keys_spines_bit_identical(n):
    scalar = generate_keys(n, source=ChaChaSource(1234), spine="scalar")
    vector = generate_keys(n, source=ChaChaSource(1234), spine="numpy")
    assert scalar.f == vector.f
    assert scalar.g == vector.g
    assert scalar.F == vector.F
    assert scalar.G == vector.G
    assert scalar.h == vector.h


@needs_numpy
def test_generate_keys_spines_consume_identical_stream():
    counting_scalar = CountingSource(ChaChaSource(77))
    counting_vector = CountingSource(ChaChaSource(77))
    generate_keys(32, source=counting_scalar, spine="scalar")
    generate_keys(32, source=counting_vector, spine="numpy")
    assert counting_scalar.bytes_read == counting_vector.bytes_read


def test_generate_keys_rejects_unknown_spine():
    with pytest.raises(ValueError):
        generate_keys(8, source=ChaChaSource(0), spine="gpu")


def test_generate_keys_auto_spine_matches_explicit():
    auto = generate_keys(8, source=ChaChaSource(55), spine="auto")
    explicit = "numpy" if HAVE_NUMPY else "scalar"
    again = generate_keys(8, source=ChaChaSource(55), spine=explicit)
    assert auto.f == again.f and auto.h == again.h
