"""The REPRO_FULL environment gate, in one place.

Lives in its own module (not conftest.py) because a bare ``pytest``
run from the repo root also loads ``benchmarks/conftest.py``, and two
``conftest`` modules fight over the same ``sys.modules`` slot —
``from conftest import ...`` would resolve to whichever loaded first.
"""

import os

#: Truthy for any value of ``REPRO_FULL`` other than unset/empty/"0".
REPRO_FULL = os.environ.get("REPRO_FULL", "") not in ("", "0")
