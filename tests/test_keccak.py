"""Known-answer and cross-validation tests for the from-scratch Keccak."""

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rng import keccak


def test_sha3_256_empty_vector():
    expected = bytes.fromhex(
        "a7ffc6f8bf1ed76651c14756a061d662f580ff4de43b49fa82d80a4b80f8434a")
    assert keccak.sha3_256(b"") == expected


def test_sha3_256_abc_vector():
    expected = bytes.fromhex(
        "3a985da74fe225b2045c172d6bd390bd855f086e3e9d525b46bfe24511431532")
    assert keccak.sha3_256(b"abc") == expected


def test_shake256_empty_vector_prefix():
    expected = bytes.fromhex(
        "46b9dd2b0ba88d13233b3feb743eeb24"
        "3fcd52ea62b81b82b50c27646ed5762f")
    assert keccak.shake256(b"", 32) == expected


def test_matches_hashlib_fixed_inputs():
    for message in [b"", b"a", b"abc", b"repro" * 100, bytes(range(256))]:
        assert keccak.sha3_224(message) == hashlib.sha3_224(message).digest()
        assert keccak.sha3_256(message) == hashlib.sha3_256(message).digest()
        assert keccak.sha3_384(message) == hashlib.sha3_384(message).digest()
        assert keccak.sha3_512(message) == hashlib.sha3_512(message).digest()
        assert keccak.shake128(message, 64) == hashlib.shake_128(
            message).digest(64)
        assert keccak.shake256(message, 64) == hashlib.shake_256(
            message).digest(64)


@settings(max_examples=50, deadline=None)
@given(st.binary(min_size=0, max_size=600))
def test_matches_hashlib_random_inputs(message):
    assert keccak.sha3_256(message) == hashlib.sha3_256(message).digest()
    assert keccak.shake256(message, 48) == hashlib.shake_256(
        message).digest(48)


@settings(max_examples=25, deadline=None)
@given(st.binary(min_size=0, max_size=300),
       st.integers(min_value=1, max_value=500))
def test_shake_incremental_squeeze_matches_one_shot(message, length):
    sponge = keccak.Shake256(message)
    pieces = []
    squeezed = 0
    step = 7
    while squeezed < length:
        take = min(step, length - squeezed)
        pieces.append(sponge.squeeze(take))
        squeezed += take
        step = step * 2 + 1
    assert b"".join(pieces) == keccak.shake256(message, length)


@settings(max_examples=25, deadline=None)
@given(st.binary(min_size=0, max_size=300))
def test_incremental_absorb_matches_one_shot(message):
    sponge = keccak.Shake128()
    for start in range(0, len(message), 13):
        sponge.absorb(message[start:start + 13])
    assert sponge.squeeze(40) == keccak.shake128(message, 40)


def test_absorb_after_squeeze_rejected():
    sponge = keccak.Shake256(b"x")
    sponge.squeeze(1)
    with pytest.raises(RuntimeError):
        sponge.absorb(b"y")


def test_sponge_copy_is_independent():
    sponge = keccak.Shake256(b"seed")
    clone = sponge.copy()
    a = sponge.squeeze(16)
    b = clone.squeeze(16)
    assert a == b
    assert sponge.squeeze(16) == clone.squeeze(16)


def test_invalid_state_size_rejected():
    with pytest.raises(ValueError):
        keccak.keccak_f1600([0] * 24)


def test_invalid_rate_rejected():
    with pytest.raises(ValueError):
        keccak.KeccakSponge(rate_bytes=0, domain_suffix=0x1F)
    with pytest.raises(ValueError):
        keccak.KeccakSponge(rate_bytes=200, domain_suffix=0x1F)


def test_permutation_changes_zero_state():
    state = keccak.keccak_f1600([0] * 25)
    assert any(lane != 0 for lane in state)
    assert all(0 <= lane < (1 << 64) for lane in state)
