"""Tests for the constant-time combiners (Eqn 2 and variants)."""

import pytest

from repro.boolfunc import (
    COMBINER_MODES,
    Cube,
    ExprBuilder,
    SublistCircuit,
    build_selectors,
    combine,
    evaluate,
    gate_counts,
)


def _selector_truth(bits, k):
    """Reference semantics of c_k = b_0 & ... & b_{k-1} & ~b_k."""
    if any(bits[i] == 0 for i in range(k)):
        return 0
    return 1 - bits[k]


def test_selectors_fire_exactly_on_their_prefix():
    builder = ExprBuilder()
    ks = [0, 1, 3, 5]
    selectors = build_selectors(builder, ks)
    n = 6
    for word in range(1 << n):
        bits = [(word >> i) & 1 for i in range(n)]
        inputs = dict(enumerate(bits))
        for k in ks:
            got = evaluate([selectors[k]], inputs)[0]
            assert got == _selector_truth(bits, k), (bits, k)


def test_selectors_are_one_hot():
    builder = ExprBuilder()
    ks = list(range(6))
    selectors = build_selectors(builder, ks)
    for word in range(1 << 6):
        bits = [(word >> i) & 1 for i in range(6)]
        inputs = dict(enumerate(bits))
        fired = sum(evaluate([selectors[k]], inputs)[0] for k in ks)
        # Exactly one fires unless the string is all ones.
        assert fired == (0 if all(bits) else 1)


def _toy_circuits(builder):
    """Two sublists with tiny suffix functions on global variables.

    Sublist k=0: suffix variable b_1; output bit0 = b_1, valid = 1.
    Sublist k=2: suffix variable b_3; output bit0 = ~b_3, bit1 = b_3,
                 valid = b_3 (pretend suffix 0 fails).
    """
    c0 = SublistCircuit(
        k=0,
        output_bits=(builder.var(1), builder.false),
        valid=builder.true)
    c2 = SublistCircuit(
        k=2,
        output_bits=(builder.not_(builder.var(3)), builder.var(3)),
        valid=builder.var(3))
    return [c0, c2]


def _reference_output(bits):
    """Hand semantics of the toy circuits over 4+ bits."""
    if bits[0] == 0:  # sublist 0
        return (bits[1], 0), 1
    if bits[0] == 1 and bits[1] == 1 and bits[2] == 0:  # sublist 2
        return (1 - bits[3], bits[3]), bits[3]
    return (None, None), 0  # no sublist: invalid


@pytest.mark.parametrize("mode", COMBINER_MODES)
def test_combiner_matches_reference(mode):
    builder = ExprBuilder()
    circuits = _toy_circuits(builder)
    outputs, valid = combine(builder, circuits, num_output_bits=2,
                             mode=mode)
    n = 5
    for word in range(1 << n):
        bits = [(word >> i) & 1 for i in range(n)]
        inputs = dict(enumerate(bits))
        got_bits = [evaluate([o], inputs)[0] for o in outputs]
        got_valid = evaluate([valid], inputs)[0]
        (want0, want1), want_valid = _reference_output(bits)
        assert got_valid == want_valid, (bits, mode)
        if want_valid:
            assert got_bits == [want0, want1], (bits, mode)


def test_all_modes_agree_pairwise():
    results = {}
    for mode in COMBINER_MODES:
        builder = ExprBuilder()
        circuits = _toy_circuits(builder)
        outputs, valid = combine(builder, circuits, num_output_bits=2,
                                 mode=mode)
        table = []
        for word in range(32):
            bits = [(word >> i) & 1 for i in range(5)]
            inputs = dict(enumerate(bits))
            got_valid = evaluate([valid], inputs)[0]
            got_bits = [evaluate([o], inputs)[0] for o in outputs]
            table.append((got_valid,
                          tuple(got_bits) if got_valid else None))
        results[mode] = table
    assert results["onehot"] == results["nested"]
    assert results["onehot"] == results["nested-implicit"]


def test_onehot_cheaper_than_nested_for_multi_output():
    """The flattened one-hot form shares selector work across outputs."""
    costs = {}
    for mode in COMBINER_MODES:
        builder = ExprBuilder()
        circuits = [
            SublistCircuit(
                k=k,
                output_bits=tuple(
                    builder.sop_from_cubes(
                        [Cube.from_prefix(3, [b, 1 - b])],
                        variable_offset=k + 1)
                    for b in (0, 1, 0, 1)),
                valid=builder.true)
            for k in range(10)]
        outputs, valid = combine(builder, circuits, num_output_bits=4,
                                 mode=mode)
        costs[mode] = gate_counts(list(outputs) + [valid])["total"]
    assert costs["onehot"] < costs["nested"]


def test_unknown_mode_rejected():
    builder = ExprBuilder()
    with pytest.raises(ValueError):
        combine(builder, [], 1, mode="bogus")


def test_missing_sublist_window_is_invalid():
    """A k between two present sublists must map to valid = 0."""
    builder = ExprBuilder()
    circuits = [
        SublistCircuit(k=0, output_bits=(builder.true,),
                       valid=builder.true),
        SublistCircuit(k=2, output_bits=(builder.true,),
                       valid=builder.true)]
    for mode in COMBINER_MODES:
        outputs, valid = combine(builder, circuits, 1, mode=mode)
        # String 1 0 ... belongs to the missing sublist k=1.
        inputs = {0: 1, 1: 0, 2: 0, 3: 0}
        assert evaluate([valid], inputs)[0] == 0, mode
        # Strings 0... and 1 1 0... select the present sublists.
        assert evaluate([valid], {0: 0, 1: 0, 2: 0, 3: 0})[0] == 1
        assert evaluate([valid], {0: 1, 1: 1, 2: 0, 3: 0})[0] == 1