"""Tests for terminating-string enumeration and Theorem 1 (Sec. 5)."""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    GaussianParams,
    check_theorem1,
    enumerate_by_walk,
    enumerate_failure_prefixes,
    enumerate_terminating_strings,
    knuth_yao_walk,
    max_free_suffix_length,
    probability_matrix,
)
from repro.rng import BitStream, ListBitSource

SIGMA2_N6 = GaussianParams.from_sigma(2, precision=6)


def test_closed_form_matches_brute_force_sigma2():
    matrix = probability_matrix(SIGMA2_N6)
    closed = enumerate_terminating_strings(matrix)
    brute = enumerate_by_walk(matrix)
    assert [(s.bits, s.value) for s in closed] == \
        [(s.bits, s.value) for s in brute]


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=2, max_value=30),
       st.integers(min_value=4, max_value=12))
def test_closed_form_matches_brute_force_random(sigma_sq, precision):
    params = GaussianParams(sigma_sq=Fraction(sigma_sq),
                            precision=precision, tail_cut=9)
    matrix = probability_matrix(params)
    closed = sorted((s.bits, s.value)
                    for s in enumerate_terminating_strings(matrix))
    brute = sorted((s.bits, s.value) for s in enumerate_by_walk(matrix))
    assert closed == brute


def test_list_size_equals_total_column_weight():
    matrix = probability_matrix(GaussianParams.from_sigma(2, precision=20))
    entries = enumerate_terminating_strings(matrix)
    assert len(entries) == sum(matrix.column_weights)


def test_every_string_replays_to_its_value():
    matrix = probability_matrix(GaussianParams.from_sigma(2, precision=12))
    for entry in enumerate_terminating_strings(matrix):
        stream = BitStream(ListBitSource(list(entry.bits)))
        result = knuth_yao_walk(matrix, stream)
        assert result.value == entry.value
        assert result.bits_used == len(entry.bits)


def test_failure_prefixes_never_terminate_and_cover_gap():
    matrix = probability_matrix(SIGMA2_N6)
    failures = enumerate_failure_prefixes(matrix)
    assert len(failures) == matrix.failure_count == 3
    assert (1, 1, 1, 1, 1, 1) in failures
    for prefix in failures:
        stream = BitStream(ListBitSource(list(prefix)))
        assert knuth_yao_walk(matrix, stream).failed


def test_theorem1_holds():
    for sigma in (1, 2, 6.15543):
        params = GaussianParams.from_sigma(sigma, precision=16)
        assert check_theorem1(probability_matrix(params))


def test_theorem1_string_form_rendering():
    matrix = probability_matrix(SIGMA2_N6)
    entries = enumerate_terminating_strings(matrix)
    first = next(e for e in entries if e.level == 1)
    # Level-1 leaf is reached by 0,0: reversed notation "00" + x-padding.
    assert first.padded_string(6) == "xxxx00"
    assert first.leading_ones == 0
    assert first.free_suffix_length == 1


def test_delta_observation_paper_values():
    """Sec. 5: Delta = 4, 4, 6 for sigma = 1, 2, 6.15543 (tau = 13)."""
    observed = {}
    for sigma in (1, 2, 6.15543):
        params = GaussianParams.from_sigma(sigma, precision=64)
        observed[sigma] = max_free_suffix_length(
            probability_matrix(params))
    assert observed[1] <= 4
    assert observed[2] <= 4
    assert observed[6.15543] <= 6


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=2, max_value=40),
       st.integers(min_value=6, max_value=20))
def test_no_terminating_string_is_all_ones(sigma_sq, precision):
    params = GaussianParams(sigma_sq=Fraction(sigma_sq),
                            precision=precision, tail_cut=10)
    matrix = probability_matrix(params)
    for entry in enumerate_terminating_strings(matrix):
        assert 0 in entry.bits
        # leading_ones + zero + suffix reconstructs the string
        k = entry.leading_ones
        assert entry.bits[:k] == (1,) * k
        assert entry.bits[k] == 0


def test_string_weights_account_for_all_inputs():
    """Sum over leaves of 2^(n - level - 1) plus failures equals 2^n."""
    matrix = probability_matrix(GaussianParams.from_sigma(2, precision=10))
    n = matrix.precision
    total = sum(1 << (n - entry.level - 1)
                for entry in enumerate_terminating_strings(matrix))
    assert total + matrix.failure_count == 1 << n
