"""Minimizer tests on *structured* inputs — the covers the sampler
actually generates (prefix cubes from terminating strings), as opposed
to the random functions in test_espresso.py."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boolfunc import (
    Cube,
    complement_cover,
    cover_is_tautology,
    espresso,
    minimize_cubes_exact,
    verify_cover,
)
from repro.core import (
    GaussianParams,
    enumerate_terminating_strings,
    probability_matrix,
)


def _sampler_cover(sigma, precision, bit):
    """ON/OFF prefix-cube covers for one output bit of f^bit_n."""
    params = GaussianParams.from_sigma(sigma, precision)
    matrix = probability_matrix(params)
    entries = enumerate_terminating_strings(matrix)
    on, off = [], []
    for entry in entries:
        cube = Cube.from_prefix(precision, entry.bits)
        (on if (entry.value >> bit) & 1 else off).append(cube)
    return on, off


@pytest.mark.parametrize("sigma,bit", [(2, 0), (2, 1), (2, 2), (3.5, 0)])
def test_espresso_on_real_sampler_functions(sigma, bit):
    on, off = _sampler_cover(sigma, 20, bit)
    if not on:
        pytest.skip("output bit constant for these parameters")
    result = espresso(on, off)
    assert verify_cover(result.cubes, on, off)
    # Minimization must actually merge: prefix cubes share structure.
    assert len(result.cubes) < len(on)


def test_prefix_cubes_are_pairwise_disjoint():
    """Terminating strings are prefix-free, so their cubes partition."""
    on, off = _sampler_cover(2, 14, 0)
    cubes = on + off
    for i, a in enumerate(cubes):
        for b in cubes[i + 1:]:
            assert not a.intersects(b)


def test_cover_plus_complement_is_tautology():
    on, off = _sampler_cover(2, 12, 1)
    cubes = on + off
    complement = complement_cover(cubes, 12)
    assert cover_is_tautology(list(cubes) + complement, 12)
    for cube in cubes:
        for comp in complement:
            assert not cube.intersects(comp)


def test_exact_cover_never_larger_than_input():
    on, off = _sampler_cover(2, 10, 0)
    # Project onto the first 6 variables for an exact-minimizable size.
    narrowed_on = [c for c in on if c.care < (1 << 6)]
    if not narrowed_on:
        pytest.skip("no narrow cubes at this precision")
    result = minimize_cubes_exact(6, narrowed_on)
    assert len(result.cubes) <= len(narrowed_on)
    assert result.exact


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=2, max_value=20),
       st.integers(min_value=8, max_value=12),
       st.integers(min_value=0, max_value=2))
def test_espresso_structured_random_params(sigma_sq, precision, bit):
    params = GaussianParams(sigma_sq=Fraction(sigma_sq),
                            precision=precision, tail_cut=8)
    matrix = probability_matrix(params)
    entries = enumerate_terminating_strings(matrix)
    on, off = [], []
    for entry in entries:
        cube = Cube.from_prefix(precision, entry.bits)
        (on if (entry.value >> bit) & 1 else off).append(cube)
    if not on:
        return
    result = espresso(on, off)
    assert verify_cover(result.cubes, on, off)


def test_espresso_cost_history_non_increasing_overall():
    on, off = _sampler_cover(6.15543, 16, 2)
    result = espresso(on, off, max_iterations=3)
    # The kept cover is the best seen; history's minimum equals it.
    assert min(result.history) == result.cost
