"""Serving-layer tests: sharding, coalescing, back-pressure, CT.

Pure stdlib asyncio + pytest (no pytest-asyncio): every async test
drives its own ``asyncio.run``.
"""

import asyncio
import threading

import pytest

from repro.ct import T_THRESHOLD, audit_coalescing, round_shape_trace
from repro.falcon import KeyStore
from repro.falcon.serving import (
    VERIFY_MERGED_TENANT,
    ConsistentHashRing,
    ShardedKeyStore,
    SigningService,
    derive_shard_seed,
    plan_rounds,
)


# -- consistent hashing ------------------------------------------------------

def test_ring_is_deterministic_across_instances():
    first = ConsistentHashRing(4)
    second = ConsistentHashRing(4)
    for i in range(50):
        tenant = f"tenant-{i}"
        assert first.shard_for(tenant) == second.shard_for(tenant)


def test_ring_covers_every_shard():
    ring = ConsistentHashRing(3)
    owners = {ring.shard_for(f"tenant-{i}") for i in range(200)}
    assert owners == {0, 1, 2}


def test_ring_growth_moves_only_a_fraction():
    before = ConsistentHashRing(3)
    after = ConsistentHashRing(4)
    tenants = [f"tenant-{i}" for i in range(400)]
    moved = sum(before.shard_for(t) != after.shard_for(t)
                for t in tenants)
    # Consistent hashing: growing 3 -> 4 shards should move roughly
    # 1/4 of tenants, never the bulk of them (modulo hashing would
    # move ~3/4).
    assert 0 < moved < len(tenants) // 2


def test_ring_validation():
    with pytest.raises(ValueError):
        ConsistentHashRing(0)
    with pytest.raises(ValueError):
        ConsistentHashRing(2, replicas=0)


def test_shard_seeds_distinct_from_each_other_and_key_seeds():
    from repro.falcon import derive_key_seed

    seeds = {derive_shard_seed(7, shard) for shard in range(8)}
    assert len(seeds) == 8
    assert derive_key_seed(7, 8, 0) not in seeds


# -- sharded store -----------------------------------------------------------

def test_tenants_route_to_stable_shards():
    store = ShardedKeyStore(shards=2, master_seed=1)
    for i in range(20):
        tenant = f"tenant-{i}"
        shard = store.shard_for(tenant)
        assert store.store_for(tenant) is store.stores[shard]


def test_per_tenant_signers_are_cached_and_distinct():
    store = ShardedKeyStore(shards=2, master_seed=2)
    alpha = store.signer("alpha", 8)
    beta = store.signer("beta", 8)
    assert store.signer("alpha", 8) is alpha  # cached checkout
    assert alpha.keys.f != beta.keys.f        # dedicated keys


def test_no_duplicate_key_material_across_shards():
    store = ShardedKeyStore(shards=3, master_seed=3)
    store.generate_ahead(8, 2)
    issued = [tuple(shard_store.acquire(8).keys.f)
              for shard_store in store.stores for _ in range(2)]
    assert len(set(issued)) == len(issued)


def test_sharded_store_persists_per_shard(tmp_path):
    store = ShardedKeyStore(tmp_path, shards=2, master_seed=4)
    store.generate_ahead(8, 1)
    assert (tmp_path / "shard-00").is_dir()
    assert (tmp_path / "shard-01").is_dir()
    restarted = ShardedKeyStore(tmp_path, shards=2, master_seed=4)
    assert restarted.available(8) == 2
    # Concurrent instances race their checkouts through atomic file
    # claims: the same tenant on two live stores gets two DIFFERENT
    # keys — persisted slots are never double-issued.
    a = store.signer("tenant-x", 8)
    b = restarted.signer("tenant-x", 8)
    assert a.keys.f != b.keys.f


def test_sharded_rotate_drops_tenant_signers():
    store = ShardedKeyStore(shards=2, master_seed=5)
    old = store.signer("gamma", 8)
    retired = store.rotate(8)
    fresh = store.signer("gamma", 8)
    assert fresh is not old
    assert fresh.keys.f != old.keys.f
    assert retired >= 0
    assert all(s.generation(8) == 1 for s in store.stores)


def test_sharded_stats_aggregate():
    store = ShardedKeyStore(shards=2, master_seed=6)
    store.generate_ahead(8, 1)
    store.signer("t0", 8)
    snapshot = store.stats()
    assert len(snapshot["shards"]) == 2
    assert snapshot["totals"]["generated"] >= 2
    assert snapshot["totals"]["served"] == 1
    assert snapshot["totals"]["tenants_checked_out"] == 1


def test_sign_and_verify_many_through_store():
    store = ShardedKeyStore(shards=2, master_seed=7)
    messages = [b"m0", b"m1", b"m2"]
    signatures = store.sign_many("tenant", 8, messages)
    assert store.verify_many("tenant", 8, messages, signatures) == \
        [True, True, True]


def test_public_key_cache_skips_signer_checkout():
    """The verify plane stays off the keystore: a cold tenant costs
    exactly one checkout to learn its key, and every later
    ``public_key`` / ``verify_many`` is served from the cache."""
    store = ShardedKeyStore(shards=2, master_seed=8)
    cold = store.public_key("tenant-v", 8)
    assert store.stats()["totals"]["served"] == 1
    for _ in range(3):
        assert store.public_key("tenant-v", 8) is cold
    message = b"cache-check"
    signature = store.signer("tenant-v", 8).sign(message)
    assert store.verify_many("tenant-v", 8, [message],
                             [signature]) == [True]
    snapshot = store.stats()["totals"]
    assert snapshot["served"] == 1  # still just the cold checkout
    assert snapshot["tenants_checked_out"] == 1


def test_sign_traffic_warms_the_verify_cache():
    store = ShardedKeyStore(shards=2, master_seed=9)
    signer = store.signer("tenant-w", 8)
    assert store.stats()["totals"]["served"] == 1
    # The sign checkout's public half feeds the verify plane: no
    # second checkout for the verify key.
    assert store.public_key("tenant-w", 8) is signer.public_key
    assert store.stats()["totals"]["served"] == 1


# -- round planning ----------------------------------------------------------

def test_plan_rounds_groups_by_tenant_and_kind_in_arrival_order():
    plans = plan_rounds([("a", "sign"), ("b", "sign"), ("a", "sign"),
                         ("a", "verify"), ("b", "sign")], 8)
    assert [(p.tenant, p.kind, p.lanes) for p in plans] == [
        ("a", "sign", (0, 2)),
        ("b", "sign", (1, 4)),
        ("a", "verify", (3,)),
    ]


def test_plan_rounds_merges_verify_lanes_across_tenants():
    """``coalesce_verify=True``: every verify lane — any tenant —
    shares one merged round under the sentinel tenant, while sign
    rounds stay strictly per-tenant."""
    arrivals = [("a", "sign"), ("b", "verify"), ("a", "verify"),
                ("b", "sign"), ("c", "verify")]
    plans = plan_rounds(arrivals, 8, coalesce_verify=True)
    assert [(p.tenant, p.kind, p.lanes) for p in plans] == [
        ("a", "sign", (0,)),
        (VERIFY_MERGED_TENANT, "verify", (1, 2, 4)),
        ("b", "sign", (3,)),
    ]
    # Default planning is unchanged: per-tenant verify rounds.
    default = plan_rounds(arrivals, 8)
    assert [(p.tenant, p.kind) for p in default] == [
        ("a", "sign"), ("b", "verify"), ("a", "verify"),
        ("b", "sign"), ("c", "verify")]


def test_plan_rounds_merged_verify_still_chunks_at_max_batch():
    arrivals = [("t%d" % i, "verify") for i in range(5)]
    plans = plan_rounds(arrivals, 2, coalesce_verify=True)
    assert [(p.tenant, p.lanes) for p in plans] == [
        (VERIFY_MERGED_TENANT, (0, 1)),
        (VERIFY_MERGED_TENANT, (2, 3)),
        (VERIFY_MERGED_TENANT, (4,)),
    ]


def test_plan_rounds_chunks_at_max_batch():
    plans = plan_rounds([("a", "sign")] * 5, 2)
    assert [p.lanes for p in plans] == [(0, 1), (2, 3), (4,)]


def test_plan_rounds_validation():
    with pytest.raises(ValueError):
        plan_rounds([("a", "sign")], 0)


# -- the coalescing service --------------------------------------------------

def _sign_all(service_kwargs, store, messages, tenant="tenant-a"):
    async def drive():
        async with SigningService(store, **service_kwargs) as service:
            return await service.sign_all(tenant, messages)
    return asyncio.run(drive())


def test_service_sign_verify_round_trip():
    async def drive():
        store = ShardedKeyStore(shards=2, master_seed=10)
        messages = [b"round-trip-%d" % i for i in range(5)]
        async with SigningService(store, n=8, max_batch=8,
                                  max_wait=0.05) as service:
            signatures = await service.sign_all("tenant-a", messages)
            verdicts = await asyncio.gather(
                *[service.verify("tenant-a", m, s)
                  for m, s in zip(messages, signatures)])
        assert verdicts == [True] * 5
        assert service.metrics.signed == 5
        assert service.metrics.verified == 5
        assert service.metrics.rounds >= 2
    asyncio.run(drive())


def test_cross_tenant_merged_verify_keeps_per_tenant_verdicts():
    """Verify lanes from different tenants share rounds (the default
    ``coalesce_verify=True``), and each lane still checks against its
    *own* tenant's key: swapping a signature across tenants fails."""
    async def drive():
        # One shard: both tenants drain through the same queue, so
        # their verify lanes can land in one merged round.
        store = ShardedKeyStore(shards=1, master_seed=14)
        async with SigningService(store, n=8, max_batch=16,
                                  max_wait=0.2,
                                  record_rounds=True) as service:
            sig_a = await service.sign("tenant-a", b"from-a")
            sig_b = await service.sign("tenant-b", b"from-b")
            verdicts = await asyncio.gather(
                service.verify("tenant-a", b"from-a", sig_a),
                service.verify("tenant-b", b"from-b", sig_b),
                service.verify("tenant-b", b"from-a", sig_a),
                service.verify("tenant-a", b"from-b", sig_b))
        assert verdicts == [True, True, False, False]
        assert service.metrics.verified == 4  # lanes, not verdicts
        # The concurrent verify burst rode merged rounds: some round
        # carried lanes from more than one tenant (each tenant only
        # contributed 2 lanes, so any round bigger than that merged).
        verify_rounds = [size for _, kind, size
                         in service.metrics.round_log
                         if kind == "verify"]
        assert sum(verify_rounds) == 4
        assert max(verify_rounds) > 2
    asyncio.run(drive())


def test_coalesced_signatures_byte_identical_to_direct_sign_many():
    """The acceptance criterion: one coalesced round == one direct
    ``sign_many`` call, byte for byte, for the same key and order."""
    messages = [b"identity-%d" % i for i in range(6)]
    store = ShardedKeyStore(shards=2, master_seed=11)
    coalesced = _sign_all(dict(n=8, max_batch=8, max_wait=0.2),
                          store, messages)
    direct_store = ShardedKeyStore(shards=2, master_seed=11)
    direct = direct_store.signer("tenant-a", 8).sign_many(messages)
    assert [(s.salt, s.compressed) for s in coalesced] == \
        [(s.salt, s.compressed) for s in direct]


def test_multi_round_coalescing_matches_chunked_direct_calls():
    """Rounds split at max_batch: replaying the *same* chunking
    through direct ``sign_many`` calls reproduces the exact bytes."""
    messages = [b"chunk-%d" % i for i in range(7)]
    store = ShardedKeyStore(shards=1, master_seed=12)

    async def drive():
        service = SigningService(store, n=8, max_batch=3,
                                 max_wait=0.2, record_rounds=True)
        async with service:
            signatures = await service.sign_all("tenant-a", messages)
        return signatures, [size for _, _, size
                            in service.metrics.round_log]

    coalesced, round_sizes = asyncio.run(drive())
    assert sum(round_sizes) == len(messages)
    assert max(round_sizes) <= 3
    direct_store = ShardedKeyStore(shards=1, master_seed=12)
    signer = direct_store.signer("tenant-a", 8)
    direct = []
    consumed = 0
    for size in round_sizes:
        direct.extend(signer.sign_many(messages[consumed:
                                                consumed + size]))
        consumed += size
    assert [(s.salt, s.compressed) for s in coalesced] == \
        [(s.salt, s.compressed) for s in direct]


def test_back_pressure_bounded_queue():
    """A full shard queue suspends producers instead of buffering:
    the observed high-water mark never exceeds the configured depth
    and every request still completes."""
    async def drive():
        store = ShardedKeyStore(shards=1, master_seed=13)
        store.signer("tenant-a", 8)  # pre-checkout: rounds are fast
        messages = [b"pressure-%d" % i for i in range(24)]
        async with SigningService(store, n=8, max_batch=4,
                                  max_wait=0.0,
                                  queue_depth=3) as service:
            signatures = await service.sign_all("tenant-a", messages)
        assert len(signatures) == 24
        assert service.metrics.queue_high_water <= 3
        assert service.metrics.requests == 24
    asyncio.run(drive())


def test_service_propagates_round_errors():
    async def drive():
        store = ShardedKeyStore(shards=1, master_seed=14)
        async with SigningService(store, n=7) as service:  # invalid n
            with pytest.raises(Exception):
                await service.sign("tenant-a", b"boom")
    asyncio.run(drive())


def test_poisoned_round_fails_only_its_own_futures():
    """Satellite regression: one poisoned round among healthy ones in
    the same drained batch.  The poison tenant's signer checkout
    raises; exactly its awaiters see the error, every other round in
    the batch completes, and the shard worker keeps serving."""
    async def drive():
        store = ShardedKeyStore(shards=1, master_seed=41)
        real_signer = store.signer

        def signer(tenant, n):
            if tenant == "tenant-poison":
                raise RuntimeError("poisoned checkout")
            return real_signer(tenant, n)

        store.signer = signer
        async with SigningService(store, n=8, max_batch=16,
                                  max_wait=0.2) as service:
            tenants = ["tenant-poison" if i % 3 == 0
                       else f"tenant-{i % 2}" for i in range(9)]
            results = await asyncio.gather(
                *[service.sign(tenant, b"mix-%d" % i)
                  for i, tenant in enumerate(tenants)],
                return_exceptions=True)
            for tenant, result in zip(tenants, results):
                if tenant == "tenant-poison":
                    assert isinstance(result, RuntimeError)
                else:
                    assert result.salt  # a real signature
            # The shard worker survived the poison round.
            follow_up = await service.sign("tenant-0", b"after")
            assert follow_up.salt
        assert service.metrics.signed == 7  # 6 healthy + follow-up
    asyncio.run(drive())


def test_shard_worker_survives_round_machinery_failure():
    """Even an error escaping the round planner itself fails only the
    drained batch — the drain loop keeps serving later submissions."""
    async def drive():
        store = ShardedKeyStore(shards=1, master_seed=42)
        async with SigningService(store, n=8,
                                  max_wait=0.0) as service:
            real_run_rounds = service._run_rounds
            blown = {"count": 0}

            async def flaky(shard, batch):
                if not blown["count"]:
                    blown["count"] += 1
                    raise RuntimeError("round machinery blew up")
                await real_run_rounds(shard, batch)

            service._run_rounds = flaky
            with pytest.raises(RuntimeError):
                await service.sign("tenant-a", b"doomed")
            signature = await service.sign("tenant-a", b"alive")
            assert signature.salt
    asyncio.run(drive())


def test_service_rejects_use_before_start_and_double_start():
    store = ShardedKeyStore(shards=1, master_seed=15)
    service = SigningService(store, n=8)
    with pytest.raises(RuntimeError):
        asyncio.run(service.sign("tenant-a", b"early"))

    async def double():
        async with SigningService(store, n=8) as running:
            with pytest.raises(RuntimeError):
                await running.start()
    asyncio.run(double())


def test_service_knob_validation():
    store = ShardedKeyStore(shards=1, master_seed=16)
    with pytest.raises(ValueError):
        SigningService(store, max_batch=0)
    with pytest.raises(ValueError):
        SigningService(store, max_wait=-1)
    with pytest.raises(ValueError):
        SigningService(store, queue_depth=0)


def test_concurrency_stress_many_clients_many_tenants():
    """Satellite stress test: N async clients x M tenants against a
    2-shard store — every request served, no duplicate key issuance,
    queue bounded, all signatures valid under the right tenant key."""
    clients, tenants, per_client = 12, 6, 4

    async def drive():
        store = ShardedKeyStore(shards=2, master_seed=17,
                                low_watermark=1, refill_target=2)
        service = SigningService(store, n=8, max_batch=8,
                                 max_wait=0.005, queue_depth=8)
        outcomes: list[tuple[str, bytes, object]] = []

        async def client(which: int) -> None:
            for i in range(per_client):
                tenant = f"tenant-{(which + i) % tenants}"
                message = b"stress-%d-%d" % (which, i)
                signature = await service.sign(tenant, message)
                outcomes.append((tenant, message, signature))

        async with service:
            await asyncio.gather(*[client(c) for c in range(clients)])

        assert len(outcomes) == clients * per_client
        assert service.metrics.queue_high_water <= 8
        # No duplicate issuance: every tenant signs under its own key,
        # and no two tenants ever received the same key material.
        issued = [tuple(store.signer(f"tenant-{t}", 8).keys.f)
                  for t in range(tenants)]
        assert len(set(issued)) == tenants
        # Every signature verifies under its tenant's key (and the
        # batched verify path agrees with per-request verdicts).
        for tenant, message, signature in outcomes:
            assert store.verify_many(tenant, 8, [message],
                                     [signature]) == [True]
        store.join_refills()

    asyncio.run(drive())


def test_stress_concurrent_acquires_threaded_store():
    """Direct store-level issuance race: concurrent threads draining
    one watermark-refilled store must never receive the same key."""
    store = KeyStore(master_seed=18, low_watermark=2, refill_target=4)
    issued: list[tuple] = []
    lock = threading.Lock()

    def drain():
        for _ in range(5):
            key = store.acquire(8)
            with lock:
                issued.append(tuple(key.keys.f))

    threads = [threading.Thread(target=drain) for _ in range(3)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    store.join_refills()
    assert len(issued) == 15
    assert len(set(issued)) == 15


# -- constant-time batch composition ----------------------------------------

def test_round_shape_trace_ignores_message_bytes():
    arrivals = [("a", "sign"), ("b", "sign"), ("a", "sign")]
    zero = round_shape_trace(arrivals, [b"\x00"] * 3, 4)
    secret = round_shape_trace(arrivals, [b"\xff", b"ab", b"s3"], 4)
    assert zero == secret == [2.0, 1.0]


def test_coalescing_audit_shows_no_leak():
    result = audit_coalescing()
    assert not result.leaking
    assert result.shapes_identical
    assert result.report.max_abs_t <= T_THRESHOLD


def test_live_service_round_shapes_secret_independent():
    """Two identical arrival patterns with different message contents
    produce identical round-shape multisets through the live service."""
    def shapes(fill: bytes) -> list[int]:
        async def drive():
            store = ShardedKeyStore(shards=2, master_seed=19)
            for t in range(3):
                store.signer(f"tenant-{t}", 8)
            service = SigningService(store, n=8, max_batch=4,
                                     max_wait=0.05,
                                     record_rounds=True)
            async with service:
                await asyncio.gather(*[
                    service.sign(f"tenant-{i % 3}",
                                 fill + b"-%d" % i)
                    for i in range(9)])
            return sorted(size for _, _, size
                          in service.metrics.round_log)
        return asyncio.run(drive())

    assert shapes(b"\x00" * 16) == shapes(b"\x7f" * 16)
