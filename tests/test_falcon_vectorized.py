"""Differential tests: the vectorized Falcon spine vs the scalar one.

The NumPy array kernels (FFT, NTT, flat-tree ffSampling, batch
sign/verify) must be **bit-identical** to the scalar reference paths —
not merely close — because batch signing reproduces scalar signatures
byte for byte.  These tests pin that, transform by transform and end
to end, across ring sizes.

The full-sign differentials run at small n by default; the larger
paper levels are exercised under ``REPRO_FULL=1`` (keygen cost).
"""

import importlib
import random

import pytest
from _env_gate import REPRO_FULL

# ``from .fft import fft`` rebinds the package attributes to the
# functions, so the submodules are fetched through importlib.
fft_mod = importlib.import_module("repro.falcon.fft")
ntt_mod = importlib.import_module("repro.falcon.ntt")

from repro.falcon import (  # noqa: E402
    HAVE_NUMPY,
    SecretKey,
    build_flat_ldl_tree,
    ff_sampling,
    ff_sampling_batch,
    flatten_ldl_tree,
    hash_to_point,
    tree_leaf_sigmas,
)
from repro.falcon.samplerz import RejectionSamplerZ
from repro.rng import ChaChaSource
from repro.rng.keccak import Shake256

numpy_only = pytest.mark.skipif(not HAVE_NUMPY,
                                reason="NumPy not installed")

FULL = REPRO_FULL

#: Transform-level differentials are cheap at every size.
TRANSFORM_SIZES = (8, 64, 256, 512, 1024)

#: Full keygen+sign differentials: small sizes always, paper levels
#: under REPRO_FULL=1.
SIGN_SIZES = (8, 64) + ((256, 512, 1024) if FULL else ())

if HAVE_NUMPY:
    import numpy as np


# -- transform kernels -----------------------------------------------------

@numpy_only
@pytest.mark.parametrize("n", TRANSFORM_SIZES)
def test_fft_kernels_bit_identical(n):
    rng = random.Random(100 + n)
    for _ in range(3):
        coeffs = [rng.uniform(-900, 900) for _ in range(n)]
        scalar = fft_mod.fft(coeffs)
        vector = fft_mod.fft_array(coeffs)
        assert list(vector) == scalar

        assert fft_mod.ifft_array(vector).tolist() == fft_mod.ifft(scalar)
        assert fft_mod.round_ifft_array(vector).tolist() \
            == fft_mod.round_ifft(scalar)

        even_s, odd_s = fft_mod.split_fft(scalar)
        even_v, odd_v = fft_mod.split_fft_array(vector)
        assert list(even_v) == even_s and list(odd_v) == odd_s
        assert list(fft_mod.merge_fft_array(even_v, odd_v)) \
            == fft_mod.merge_fft(even_s, odd_s)

        other = fft_mod.fft([rng.uniform(-10, 10) for _ in range(n)])
        assert list(fft_mod.mul_fft_array(vector, np.array(other))) \
            == fft_mod.mul_fft(scalar, other)
        assert list(fft_mod.div_fft_array(vector, np.array(other))) \
            == fft_mod.div_fft(scalar, other)
        assert list(fft_mod.adj_fft_array(vector)) \
            == fft_mod.adj_fft(scalar)


@numpy_only
@pytest.mark.parametrize("n", TRANSFORM_SIZES)
def test_fft_kernels_batched_lanes(n):
    rng = random.Random(200 + n)
    batch = [[rng.uniform(-50, 50) for _ in range(n)] for _ in range(4)]
    vector = fft_mod.fft_array(batch)
    for lane, coeffs in enumerate(batch):
        assert list(vector[lane]) == fft_mod.fft(coeffs)
    back = fft_mod.ifft_array(vector)
    for lane in range(len(batch)):
        assert back[lane].tolist() \
            == fft_mod.ifft(fft_mod.fft(batch[lane]))


@numpy_only
@pytest.mark.parametrize("n", TRANSFORM_SIZES)
def test_ntt_kernels_exact(n):
    rng = random.Random(300 + n)
    for _ in range(3):
        a = [rng.randrange(-3 * ntt_mod.Q, 3 * ntt_mod.Q)
             for _ in range(n)]
        b = [rng.randrange(ntt_mod.Q) for _ in range(n)]
        fa = ntt_mod.ntt(a)
        assert ntt_mod.ntt_array(a).tolist() == fa
        assert ntt_mod.intt_array(fa).tolist() == ntt_mod.intt(fa)
        assert ntt_mod.mul_ntt_array(a, b).tolist() \
            == ntt_mod.mul_ntt(a, b)
    # NTT roundtrip on a batch, one call:
    batch = [[rng.randrange(ntt_mod.Q) for _ in range(n)]
             for _ in range(5)]
    roundtrip = ntt_mod.intt_array(ntt_mod.ntt_array(batch))
    for lane, poly in enumerate(batch):
        assert roundtrip[lane].tolist() == poly


# -- flat tree + batched walk ----------------------------------------------

def _stub_sampler():
    state = [0]

    def sample(center, sigma):
        state[0] += 1
        return round(center) + state[0] % 3 - 1

    return sample


def test_flat_tree_matches_recursive():
    sk = SecretKey.generate(n=64, seed=21)
    flat = flatten_ldl_tree(sk.tree)
    assert flat.leaf_sigmas() == tree_leaf_sigmas(sk.tree)
    assert sk.flat_tree.leaf_sigma0 == flat.leaf_sigma0
    assert sk.flat_tree.leaf_sigma1 == flat.leaf_sigma1
    assert sk.flat_tree.leaf_l10 == flat.leaf_l10


@numpy_only
def test_vectorized_tree_build_bit_identical():
    sk = SecretKey.generate(n=64, seed=22)
    flat_scalar = flatten_ldl_tree(sk.tree)
    flat_vector = build_flat_ldl_tree(*sk._gram, sk.params.sigma)
    assert flat_vector.depth == flat_scalar.depth
    for level_v, level_s in zip(flat_vector.levels, flat_scalar.levels):
        assert np.array_equal(level_v, level_s)
    assert flat_vector.leaf_l10 == flat_scalar.leaf_l10
    assert flat_vector.leaf_sigma0 == flat_scalar.leaf_sigma0
    assert flat_vector.leaf_sigma1 == flat_scalar.leaf_sigma1


def test_batched_walk_matches_legacy_recursion():
    sk = SecretKey.generate(n=64, seed=23)
    rng = random.Random(5)
    t0 = [complex(rng.uniform(-2, 2), rng.uniform(-2, 2))
          for _ in range(64)]
    t1 = [complex(rng.uniform(-2, 2), rng.uniform(-2, 2))
          for _ in range(64)]
    z0_ref, z1_ref = ff_sampling(list(t0), list(t1), sk.tree,
                                 _stub_sampler())
    z0, z1 = ff_sampling_batch([list(t0)], [list(t1)], sk.flat_tree,
                               _stub_sampler())
    assert z0[0] == z0_ref and z1[0] == z1_ref
    if HAVE_NUMPY:
        z0_v, z1_v = ff_sampling_batch(np.array([t0]), np.array([t1]),
                                       sk.flat_tree, _stub_sampler())
        assert z0_v[0].tolist() == z0_ref
        assert z1_v[0].tolist() == z1_ref


@numpy_only
def test_batched_walk_lanes_identical_across_kernels():
    sk = SecretKey.generate(n=64, seed=24)
    rng = random.Random(6)
    t0 = [[complex(rng.uniform(-2, 2), rng.uniform(-2, 2))
           for _ in range(64)] for _ in range(3)]
    t1 = [[complex(rng.uniform(-2, 2), rng.uniform(-2, 2))
           for _ in range(64)] for _ in range(3)]
    z_scalar = ff_sampling_batch([list(lane) for lane in t0],
                                 [list(lane) for lane in t1],
                                 sk.flat_tree, _stub_sampler())
    z_vector = ff_sampling_batch(np.array(t0), np.array(t1),
                                 sk.flat_tree, _stub_sampler())
    for side in (0, 1):
        for lane in range(3):
            assert z_vector[side][lane].tolist() == z_scalar[side][lane]


# -- hash-to-point ---------------------------------------------------------

@pytest.mark.parametrize("n", (8, 64, 512))
def test_hash_to_point_matches_pure_python_shake(n):
    """The hashlib-backed bulk squeeze equals the spec's byte-at-a-time
    squeeze of the library's own Keccak."""
    message, salt = b"htp message", b"S" * 40
    sponge = Shake256(salt + message)
    limit = (1 << 16) // ntt_mod.Q * ntt_mod.Q
    reference = []
    while len(reference) < n:
        chunk = sponge.squeeze(2)
        value = (chunk[0] << 8) | chunk[1]
        if value < limit:
            reference.append(value % ntt_mod.Q)
    assert hash_to_point(message, salt, n) == reference


# -- sampler batching ------------------------------------------------------

def test_sample_lanes_width_one_matches_sample():
    def sampler(seed):
        return RejectionSamplerZ(
            _StubBase(ChaChaSource(seed)),
            uniform_source=ChaChaSource(1000 + seed))

    centers = [0.25, -1.8, 3.1, 0.0, -0.49, 7.7]
    reference = sampler(7)
    sequential = [reference.sample(c, 1.5) for c in centers]
    lanes = sampler(7)
    one_by_one = [lanes.sample_lanes([c], 1.5)[0] for c in centers]
    assert one_by_one == sequential


class _StubBase:
    """Minimal sigma-2-ish base sampler reading from a source."""

    def __init__(self, source):
        self.source = source

    def sample(self):
        word = self.source.read_bytes(1)[0]
        return (word & 7) - 4 + (word >> 7)


# -- full signing ----------------------------------------------------------

def _fresh(n, seed):
    return SecretKey.generate(n=n, seed=seed)


@pytest.mark.parametrize("n", SIGN_SIZES)
def test_sign_many_batch_of_one_reproduces_sign(n):
    messages = [b"diff-%d" % i for i in range(3)]
    legacy = _fresh(n, 31)
    reference = [legacy.sign(m) for m in messages]
    scalar = _fresh(n, 31)
    via_batch = [scalar.sign_many([m], spine="scalar")[0]
                 for m in messages]
    assert [(s.salt, s.compressed) for s in via_batch] \
        == [(s.salt, s.compressed) for s in reference]
    if HAVE_NUMPY:
        vector = _fresh(n, 31)
        via_numpy = [vector.sign_many([m], spine="numpy")[0]
                     for m in messages]
        assert [(s.salt, s.compressed) for s in via_numpy] \
            == [(s.salt, s.compressed) for s in reference]


@numpy_only
@pytest.mark.parametrize("n", SIGN_SIZES)
def test_sign_many_spines_identical(n):
    """The acceptance-criterion property: scalar and NumPy spines emit
    identical signature bytes for a fixed ChaCha seed."""
    messages = [b"spine-%d" % i for i in range(4)]
    scalar = _fresh(n, 32).sign_many(messages, spine="scalar")
    vector = _fresh(n, 32).sign_many(messages, spine="numpy")
    assert [(s.salt, s.compressed) for s in scalar] \
        == [(s.salt, s.compressed) for s in vector]


def test_sign_many_verifies_and_batches(n=64):
    sk = _fresh(n, 33)
    messages = [b"verify-%d" % i for i in range(6)]
    signatures = sk.sign_many(messages)
    pk = sk.public_key
    assert all(pk.verify(m, s) for m, s in zip(messages, signatures))
    verdicts = pk.verify_many(messages, signatures)
    assert verdicts == [True] * len(messages)
    tampered = list(messages)
    tampered[2] = b"tampered"
    assert pk.verify_many(tampered, signatures) \
        == [True, True, False, True, True, True]


def test_verify_many_rejects_malformed_compression(n=64):
    from repro.falcon import Signature

    sk = _fresh(n, 34)
    messages = [b"ok", b"bad"]
    good = sk.sign_many([messages[0]])[0]
    broken = Signature(salt=good.salt, compressed=b"\xff" * 3)
    assert sk.public_key.verify_many(messages, [good, broken]) \
        == [True, False]


def test_sign_many_empty_and_spine_validation():
    sk = _fresh(8, 35)
    assert sk.sign_many([]) == []
    with pytest.raises(ValueError):
        sk.sign_many([b"x"], spine="simd")
    if not HAVE_NUMPY:
        with pytest.raises(RuntimeError):
            sk.sign_many([b"x"], spine="numpy")


# -- CLI -------------------------------------------------------------------

def test_cli_bench_serve_smoke(capsys):
    from repro.cli import main

    assert main(["bench-serve", "--n", "16", "--signs", "4",
                 "--batch", "2", "--legacy-row"]) == 0
    out = capsys.readouterr().out
    assert "serving throughput" in out
    assert "verify_many" in out


def test_cli_falcon_spine_option(capsys):
    from repro.cli import main

    assert main(["falcon", "--n", "16", "--spine", "auto"]) == 0
    assert "verified   : True" in capsys.readouterr().out
