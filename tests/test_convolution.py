"""Tests for the convolution (large-sigma) extension."""

import math

import pytest

from repro.baselines import (
    ConvolutionSampler,
    empirical_moments,
    plan_convolution,
)
from repro.core import compile_sampler
from repro.rng import ChaChaSource


def test_plan_trivial_when_target_below_base():
    plan = plan_convolution(3.0, max_base_sigma=8.0)
    assert plan.stages == ()
    assert plan.base_sigma == 3.0
    assert plan.base_draws_per_sample == 1


def test_plan_reaches_small_base():
    plan = plan_convolution(215.0, max_base_sigma=8.0)
    assert plan.base_sigma <= 8.0
    assert plan.stages
    # Achieved sigma must reproduce the target through the stages.
    assert plan.achieved_sigma == pytest.approx(215.0, rel=1e-9)


def test_plan_rejects_bad_input():
    with pytest.raises(ValueError):
        plan_convolution(0, 8)
    with pytest.raises(ValueError):
        plan_convolution(10, -1)


def _base_factory(sigma, source):
    return compile_sampler(round(sigma, 5), precision=24, source=source)


def test_sampler_moments_sigma_215():
    """The paper's largest instance: sigma = 215 via convolution."""
    sampler = ConvolutionSampler(215.0, _base_factory,
                                 max_base_sigma=8.0,
                                 source=ChaChaSource(1))
    draws = 3000
    samples = sampler.sample_many(draws)
    mean, std = empirical_moments(samples)
    # Standard error of the mean is sigma/sqrt(n) ~ 3.9.
    assert abs(mean) < 4 * 215 / math.sqrt(draws)
    # Base sigma is rounded to 5 decimals; tolerance covers it.
    assert abs(std - 215.0) / 215.0 < 0.06


def test_sampler_moments_sigma_20():
    sampler = ConvolutionSampler(20.0, _base_factory,
                                 max_base_sigma=6.0,
                                 source=ChaChaSource(2))
    samples = sampler.sample_many(4000)
    mean, std = empirical_moments(samples)
    assert abs(mean) < 4 * 20 / math.sqrt(4000)
    assert abs(std - 20.0) / 20.0 < 0.06


def test_base_draw_count():
    plan = plan_convolution(215.0, max_base_sigma=8.0)
    assert plan.base_draws_per_sample == 2 ** len(plan.stages)
