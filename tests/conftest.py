"""Shared pytest configuration for the suite.

Centralizes the ``REPRO_FULL`` environment gate (paper-scale work:
large-n keygen, full KAT sets, slow examples) as a proper registered
marker, so individual test files stop re-deriving the env check and
``pytest --strict-markers`` passes.

Usage in tests::

    from _env_gate import REPRO_FULL       # branch on the flag
    @pytest.mark.repro_full                 # or skip whole tests

(The flag itself lives in ``tests/_env_gate.py`` — see that module's
docstring for why it cannot live here.)
"""

import pytest

from _env_gate import REPRO_FULL  # noqa: F401  (re-export)

#: Shared skip decorator for the quick tier (kept for files that mix
#: gated and ungated cases in one parametrize).
requires_full = pytest.mark.skipif(
    not REPRO_FULL, reason="paper-scale test; set REPRO_FULL=1")


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "repro_full: paper-scale test, runs only with REPRO_FULL=1")


def pytest_collection_modifyitems(config, items):
    if REPRO_FULL:
        return
    skip = pytest.mark.skip(
        reason="paper-scale test; set REPRO_FULL=1")
    for item in items:
        if "repro_full" in item.keywords:
            item.add_marker(skip)
