"""repro — constant-time discrete Gaussian sampling via Boolean
minimization, a reproduction of Karmakar, Roy, Vercauteren & Verbauwhede,
"Pushing the speed limit of constant-time discrete Gaussian sampling.
A case study on the Falcon signature scheme" (DAC 2019).

Quick start::

    import repro

    # The paper's sampler: sigma, n -> bitsliced constant-time sampler.
    # engine="auto" vectorizes over NumPy uint64 lanes when available;
    # every engine produces the same samples for the same seed.
    sampler = repro.compile_sampler(sigma=2, precision=64, engine="auto")
    values = sampler.sample_many(1000)   # super-batched kernel passes

    # The Falcon case study (Table 1):
    sk = repro.falcon.SecretKey.generate(n=256, seed=1)
    sk.use_base_sampler("bitsliced")
    signature = sk.sign(b"message")
    assert sk.public_key.verify(b"message", signature)

Subpackages
-----------
``repro.core``       Knuth-Yao machinery, the Fig. 4 compiler, samplers.
``repro.boolfunc``   Cube algebra, QMC/espresso minimizers, DAGs, Eqn 2.
``repro.bitslice``   Compiled kernels, lane packing, word engines.
``repro.baselines``  CDT samplers (Table 1) and convolution extension.
``repro.falcon``     The complete Falcon signature scheme.
``repro.ct``         Op-count cycle model and the dudect leakage test.
``repro.rng``        Keccak/SHAKE and ChaCha from scratch.
``repro.analysis``   Distribution statistics, histograms, tables.
"""

from . import analysis, baselines, bitslice, boolfunc, core, ct, falcon, rng
from .core import (
    BitslicedSampler,
    GaussianParams,
    KnuthYaoSampler,
    compile_sampler,
    compile_sampler_circuit,
    probability_matrix,
)

__version__ = "1.0.0"

__all__ = [
    "BitslicedSampler",
    "GaussianParams",
    "KnuthYaoSampler",
    "analysis",
    "baselines",
    "bitslice",
    "boolfunc",
    "compile_sampler",
    "compile_sampler_circuit",
    "core",
    "ct",
    "falcon",
    "probability_matrix",
    "rng",
]
