"""Sorting list L and dividing it into sublists — Sec. 5.1 and Fig. 3.

The efficient minimization strategy sorts the terminating strings
``x^i (0/1)^j 0 1^k`` by their trailing-ones count ``k`` and groups equal
``k`` into sublists ``l_0 .. l_n'``.  Within sublist ``l_k`` the first
``k + 1`` consumed bits are fixed (``1^k 0``), so the sample bits are a
Boolean function of only the next ``j <= Delta_k`` bits — small enough
for *exact* minimization.

This module computes the partition and the per-sublist metadata the
compiler needs:

* ``entries``: the significant suffix bits ``w`` (in walk order, i.e.
  ``w[0] = b_{k+1}``) with the leaf's sample value;
* ``delta``: the sublist's maximal suffix length ``Delta_k``;
* completeness bookkeeping: suffixes not covered by any entry can never
  terminate within precision ``n`` and become don't-cares / valid=0.
"""

from __future__ import annotations

from dataclasses import dataclass

from .enumeration import TerminatingString, enumerate_terminating_strings
from .gaussian import ProbabilityMatrix


@dataclass(frozen=True)
class SublistEntry:
    """A terminating string inside a sublist: suffix bits + sample value."""

    suffix: tuple[int, ...]
    value: int


@dataclass(frozen=True)
class Sublist:
    """Sublist ``l_k``: all terminating strings starting ``1^k 0``."""

    k: int
    entries: tuple[SublistEntry, ...]

    @property
    def delta(self) -> int:
        """``Delta_k``: longest significant suffix in this sublist."""
        if not self.entries:
            return 0
        return max(len(entry.suffix) for entry in self.entries)

    @property
    def is_immediate(self) -> bool:
        """True when the prefix ``1^k 0`` itself is a leaf (j = 0)."""
        return len(self.entries) == 1 and not self.entries[0].suffix


@dataclass(frozen=True)
class SublistPartition:
    """The sorted/partitioned list L for one probability matrix."""

    matrix: ProbabilityMatrix
    sublists: tuple[Sublist, ...]

    @property
    def max_k(self) -> int:
        """The paper's ``n'``: the largest trailing-ones count."""
        return max((s.k for s in self.sublists), default=0)

    @property
    def delta(self) -> int:
        """Global ``Delta = max_k Delta_k`` (paper Sec. 5, examples)."""
        return max((s.delta for s in self.sublists), default=0)

    @property
    def total_entries(self) -> int:
        return sum(len(s.entries) for s in self.sublists)

    def sublist_for(self, k: int) -> Sublist | None:
        for sub in self.sublists:
            if sub.k == k:
                return sub
        return None

    def render(self, sample_bits: int | None = None) -> str:
        """Fig. 3-style rendering: sorted strings beside sample values.

        Strings are shown in the paper's reversed notation (first random
        bit rightmost); samples as ``sample_bits``-wide binary.
        """
        n = self.matrix.precision
        if sample_bits is None:
            sample_bits = max(1, self.matrix.max_value.bit_length())
        lines = []
        for sub in self.sublists:
            lines.append(f"-- sublist l_{sub.k} (Delta_k = {sub.delta}) --")
            for entry in sub.entries:
                bits = (1,) * sub.k + (0,) + entry.suffix
                pad = n - len(bits)
                text = "x" * pad + "".join(str(b) for b in reversed(bits))
                sample = format(entry.value, f"0{sample_bits}b")
                lines.append(f"{text}  ->  {sample} ({entry.value})")
        return "\n".join(lines)


def partition_by_trailing_ones(
        matrix: ProbabilityMatrix) -> SublistPartition:
    """Sort list L by ``k`` and split it into sublists (Fig. 4, step 2).

    Sublists appear in ascending ``k``; only ``k`` values that actually
    contain terminating strings are present (empty sublists cannot ever
    produce a sample within precision ``n`` and fold into the combiner's
    final else / valid=0 branch).
    """
    grouped: dict[int, list[SublistEntry]] = {}
    for entry in enumerate_terminating_strings(matrix):
        k = entry.leading_ones
        suffix = entry.bits[k + 1:]
        grouped.setdefault(k, []).append(
            SublistEntry(suffix=suffix, value=entry.value))
    sublists = tuple(
        Sublist(k=k, entries=tuple(entries))
        for k, entries in sorted(grouped.items()))
    return SublistPartition(matrix=matrix, sublists=sublists)


def sorted_list_l(matrix: ProbabilityMatrix) -> list[TerminatingString]:
    """List L sorted in ascending order of ``k`` (paper Sec. 5.1)."""
    entries = enumerate_terminating_strings(matrix)
    return sorted(entries, key=lambda s: (s.leading_ones, s.level, s.bits))
