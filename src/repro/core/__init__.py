"""Core Knuth-Yao machinery: probabilities, DDG trees, enumeration."""

from .compiler import (
    COMPILATION_METHODS,
    SamplerCircuit,
    SublistReport,
    compile_sampler_circuit,
)
from .ddg import DDGTree, InternalNode, LeafNode, build_ddg_tree
from .enumeration import (
    TerminatingString,
    check_theorem1,
    enumerate_by_walk,
    enumerate_failure_prefixes,
    enumerate_terminating_strings,
    max_free_suffix_length,
)
from .fixedpoint import exp_neg_fixed, floor_scaled_sqrt
from .gaussian import (
    DEFAULT_TAIL_CUT,
    GaussianParams,
    ProbabilityMatrix,
    probability_matrix,
    sigma_squared_from_float,
    true_pmf,
)
from .knuth_yao import KnuthYaoSampler, WalkResult, knuth_yao_walk
from .sampler import (
    DEFAULT_BATCH_WIDTH,
    BitslicedSampler,
    compile_sampler,
)
from .sublists import (
    Sublist,
    SublistEntry,
    SublistPartition,
    partition_by_trailing_ones,
    sorted_list_l,
)

__all__ = [
    "BitslicedSampler",
    "COMPILATION_METHODS",
    "DEFAULT_BATCH_WIDTH",
    "DDGTree",
    "DEFAULT_TAIL_CUT",
    "GaussianParams",
    "InternalNode",
    "KnuthYaoSampler",
    "LeafNode",
    "ProbabilityMatrix",
    "Sublist",
    "SublistEntry",
    "SublistPartition",
    "TerminatingString",
    "WalkResult",
    "build_ddg_tree",
    "compile_sampler",
    "compile_sampler_circuit",
    "check_theorem1",
    "enumerate_by_walk",
    "enumerate_failure_prefixes",
    "enumerate_terminating_strings",
    "exp_neg_fixed",
    "floor_scaled_sqrt",
    "knuth_yao_walk",
    "max_free_suffix_length",
    "partition_by_trailing_ones",
    "probability_matrix",
    "sigma_squared_from_float",
    "SamplerCircuit",
    "SublistReport",
    "sorted_list_l",
    "true_pmf",
]
