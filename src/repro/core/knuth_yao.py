"""Column-scanning Knuth–Yao sampling — Algorithm 1 of the paper.

This is the time- and memory-efficient Knuth–Yao variant of Sinha Roy,
Vercauteren and Verbauwhede (SAC 2013, [32]) that generates the DDG tree
on the fly by scanning probability-matrix columns.  It is the *reference*,
non-constant-time sampler: its running time (bits consumed, rows scanned)
depends on the sample being produced, which is exactly the leakage the
paper's bitsliced sampler eliminates.

The implementation mirrors the paper's pseudocode line by line, with two
practical additions:

* the walk aborts after ``n`` columns (matrix exhausted) and reports a
  *truncation failure* (probability ``failure_count / 2^n``), which the
  public sampler handles by restarting;
* per-call statistics (bits used, rows scanned, restarts) are recorded so
  the cost model and the dudect experiment can quantify the timing leak.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..rng.source import BitStream, RandomSource, default_source
from .gaussian import GaussianParams, ProbabilityMatrix, probability_matrix


@dataclass
class WalkResult:
    """Outcome of a single Knuth–Yao walk (no restart)."""

    value: int | None
    bits_used: int
    rows_scanned: int

    @property
    def failed(self) -> bool:
        return self.value is None


def knuth_yao_walk(matrix: ProbabilityMatrix, bits: BitStream) -> WalkResult:
    """Run Algorithm 1 once over ``matrix`` with randomness ``bits``.

    Returns the sampled row, or ``None`` if all ``n`` columns are consumed
    without hitting a leaf.
    """
    d = 0
    rows_scanned = 0
    start = bits.bits_consumed
    max_row = matrix.num_rows - 1
    for col in range(matrix.precision):
        r = bits.take_bit()
        d = 2 * d + r
        for row in range(max_row, -1, -1):
            rows_scanned += 1
            d -= matrix.bit(row, col)
            # ct: vartime(secret-early-exit): Algorithm 1 stops the column scan at the sampled leaf — the distance-to-leaf leak the paper's circuit removes
            if d == -1:
                return WalkResult(value=row,
                                  bits_used=bits.bits_consumed - start,
                                  rows_scanned=rows_scanned)
    return WalkResult(value=None, bits_used=bits.bits_consumed - start,
                      rows_scanned=rows_scanned)


class KnuthYaoSampler:
    """Non-constant-time discrete Gaussian sampler (Algorithm 1).

    Parameters
    ----------
    params:
        Distribution parameters (sigma, precision, tail cut).
    source:
        Randomness source; defaults to ChaCha20 with seed 0.

    Examples
    --------
    >>> from fractions import Fraction
    >>> params = GaussianParams(sigma_sq=Fraction(4), precision=32)
    >>> sampler = KnuthYaoSampler(params)
    >>> magnitude = sampler.sample()
    >>> 0 <= magnitude <= params.support_bound
    True
    """

    def __init__(self, params: GaussianParams,
                 source: RandomSource | None = None) -> None:
        self.params = params
        self.matrix = probability_matrix(params)
        self.bits = BitStream(source if source is not None
                              else default_source())
        self.restarts = 0
        self.last_walk: WalkResult | None = None

    def sample(self) -> int:
        """Draw one non-negative sample (magnitude only), restarting on
        truncation failure."""
        while True:
            result = knuth_yao_walk(self.matrix, self.bits)
            self.last_walk = result
            # ct: vartime(secret-early-exit): walk termination time is the sampled value's leaf depth (restart itself is public, the depth is not)
            if not result.failed:
                return result.value
            self.restarts += 1

    def sample_signed(self) -> int:
        """Draw one sample from the full distribution over Z.

        A uniform sign bit is always consumed; for magnitude 0 it is
        ignored, which keeps ``P(0)`` correct because the matrix stores
        the *unhalved* probability for row 0 and doubled probabilities
        for the rest (Sec. 3.2).
        """
        magnitude = self.sample()
        sign = self.bits.take_bit()
        # Branchless negate (sign is 0/1): same values as the ternary
        # without a secret-selected arm.
        return (magnitude ^ -sign) + sign

    def sample_many(self, count: int) -> list[int]:
        """Draw ``count`` signed samples."""
        return [self.sample_signed() for _ in range(count)]
