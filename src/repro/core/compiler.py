"""The sampler compiler — the full Fig. 4 pipeline.

``sigma, n  ->  list L  ->  sublists  ->  minimized f^{i,k}_Delta  ->
constant-time combination  ->  executable bitsliced circuit``

Two compilation methods reproduce the paper's comparison (Table 2):

* ``method="efficient"`` — this paper's contribution (Sec. 5):
  partition by trailing ones, minimize each sublist function *exactly*
  (Quine–McCluskey + Petrick, standing in for Espresso ``-Dso -S1``),
  recombine with a constant-time selector chain (Eqn 2 / one-hot).
* ``method="simple"`` — the baseline of [21]: heuristically minimize the
  full ``n``-variable functions ``f^i_n`` in one piece with the espresso
  loop, no sublist structure.

Either way the result is a :class:`SamplerCircuit`: ``m`` magnitude-bit
outputs plus a ``valid`` output (strings that cannot terminate within
precision ``n`` — probability ``failure_count / 2^n`` — are flagged
invalid and the batch sampler discards those lanes, mirroring the
restart in Algorithm 1).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from ..boolfunc.cube import Cube
from ..boolfunc.espresso import complement_cover, espresso
from ..boolfunc.expr import Expr, ExprBuilder, circuit_depth, gate_counts
from ..boolfunc.mux import COMBINER_MODES, SublistCircuit, combine
from ..boolfunc.qmc import minimize_exact
from .gaussian import GaussianParams, ProbabilityMatrix, probability_matrix
from .sublists import Sublist, SublistPartition, partition_by_trailing_ones

#: Above this sublist width, exact QMC gives way to the espresso
#: heuristic (minterm tables grow as 2^width).
DEFAULT_QMC_WIDTH_LIMIT = 14

COMPILATION_METHODS = ("efficient", "simple")


@dataclass(frozen=True)
class SublistReport:
    """Minimization record for one sublist (diagnostics/benchmarks)."""

    k: int
    width: int
    num_entries: int
    cube_count: int
    literal_count: int
    exact: bool


@dataclass
class SamplerCircuit:
    """A compiled constant-time sampler as a Boolean circuit.

    ``output_bits[t]`` computes magnitude bit ``t`` (LSB first) of the
    sample; ``valid`` is 1 iff the input string terminates the walk.
    All expressions live in ``builder`` and take the ``n`` random bits
    ``b_0..b_{n-1}`` as variables.
    """

    params: GaussianParams
    matrix: ProbabilityMatrix
    method: str
    combiner: str
    builder: ExprBuilder
    output_bits: list[Expr]
    valid: Expr
    partition: SublistPartition | None
    reports: list[SublistReport] = field(default_factory=list)
    compile_seconds: float = 0.0

    @property
    def num_magnitude_bits(self) -> int:
        return len(self.output_bits)

    @property
    def num_input_bits(self) -> int:
        """Random bits consumed per sample (the precision ``n``)."""
        return self.params.precision

    @property
    def roots(self) -> list[Expr]:
        return list(self.output_bits) + [self.valid]

    def gate_count(self) -> dict[str, int]:
        """Gates by type for the whole circuit — the Table 2 cycle model
        (instructions per ``w``-sample batch)."""
        return gate_counts(self.roots)

    def depth(self) -> int:
        return circuit_depth(self.roots)

    @property
    def validity_rate(self) -> float:
        """Fraction of lanes expected valid: ``mass / 2^n``."""
        return self.matrix.mass / (1 << self.params.precision)


def _constant_sublist_circuit(builder: ExprBuilder, sublist: Sublist,
                              num_bits: int) -> SublistCircuit:
    """Circuit for an immediate sublist: ``1^k 0`` is itself a leaf."""
    value = sublist.entries[0].value
    outputs = tuple(builder.const((value >> t) & 1)
                    for t in range(num_bits))
    return SublistCircuit(k=sublist.k, output_bits=outputs,
                          valid=builder.true)


def _minimize_sublist_qmc(sublist: Sublist, width: int, num_bits: int,
                          ) -> tuple[list[tuple[Cube, ...]],
                                     tuple[Cube, ...], bool]:
    """Exact per-output minimization over minterm tables."""
    all_minterms: set[int] = set()
    on_sets: list[set[int]] = [set() for _ in range(num_bits)]
    for entry in sublist.entries:
        cube = Cube.from_prefix(width, entry.suffix)
        minterms = set(cube.minterms())
        all_minterms |= minterms
        for t in range(num_bits):
            if (entry.value >> t) & 1:
                on_sets[t] |= minterms
    dc = set(range(1 << width)) - all_minterms
    exact = True
    covers: list[tuple[Cube, ...]] = []
    for t in range(num_bits):
        result = minimize_exact(width, on_sets[t], dc)
        exact = exact and result.exact
        covers.append(result.cubes)
    valid_result = minimize_exact(width, all_minterms)
    exact = exact and valid_result.exact
    return covers, valid_result.cubes, exact


def _minimize_sublist_espresso(sublist: Sublist, width: int,
                               num_bits: int,
                               ) -> tuple[list[tuple[Cube, ...]],
                                          tuple[Cube, ...], bool]:
    """Heuristic fallback for wide sublists (sigma = 215 territory)."""
    entry_cubes = [Cube.from_prefix(width, entry.suffix)
                   for entry in sublist.entries]
    covers: list[tuple[Cube, ...]] = []
    for t in range(num_bits):
        on = [cube for cube, entry in zip(entry_cubes, sublist.entries)
              if (entry.value >> t) & 1]
        off = [cube for cube, entry in zip(entry_cubes, sublist.entries)
               if not (entry.value >> t) & 1]
        if not on:
            covers.append(())
            continue
        covers.append(espresso(on, off).cubes)
    valid_off = complement_cover(entry_cubes, width)
    valid_cover = espresso(entry_cubes, valid_off).cubes \
        if valid_off else (Cube.full(width),)
    return covers, valid_cover, False


def _compile_efficient(builder: ExprBuilder, matrix: ProbabilityMatrix,
                       partition: SublistPartition, num_bits: int,
                       combiner: str, use_global_delta: bool,
                       qmc_width_limit: int,
                       reports: list[SublistReport],
                       ) -> tuple[list[Expr], Expr]:
    circuits: list[SublistCircuit] = []
    n = matrix.precision
    global_delta = partition.delta
    for sublist in partition.sublists:
        if sublist.is_immediate:
            circuits.append(
                _constant_sublist_circuit(builder, sublist, num_bits))
            reports.append(SublistReport(
                k=sublist.k, width=0, num_entries=1, cube_count=0,
                literal_count=0, exact=True))
            continue
        width = sublist.delta
        if use_global_delta:
            width = min(global_delta, n - sublist.k - 1)
        if width <= qmc_width_limit:
            covers, valid_cover, exact = _minimize_sublist_qmc(
                sublist, width, num_bits)
        else:
            covers, valid_cover, exact = _minimize_sublist_espresso(
                sublist, width, num_bits)
        offset = sublist.k + 1
        outputs = tuple(builder.sop_from_cubes(cover, offset)
                        for cover in covers)
        valid = builder.sop_from_cubes(valid_cover, offset)
        circuits.append(SublistCircuit(k=sublist.k, output_bits=outputs,
                                       valid=valid))
        total_cubes = sum(len(c) for c in covers) + len(valid_cover)
        total_literals = sum(cube.literal_count
                             for cover in covers for cube in cover)
        total_literals += sum(c.literal_count for c in valid_cover)
        reports.append(SublistReport(
            k=sublist.k, width=width, num_entries=len(sublist.entries),
            cube_count=total_cubes, literal_count=total_literals,
            exact=exact))
    return combine(builder, circuits, num_bits, mode=combiner)


def _compile_simple(builder: ExprBuilder, matrix: ProbabilityMatrix,
                    num_bits: int, espresso_iterations: int,
                    reports: list[SublistReport],
                    ) -> tuple[list[Expr], Expr]:
    """The [21] baseline: one espresso run per output over all n bits."""
    from .enumeration import (
        enumerate_failure_prefixes,
        enumerate_terminating_strings,
    )

    n = matrix.precision
    entries = enumerate_terminating_strings(matrix)
    leaf_cubes = [Cube.from_prefix(n, entry.bits) for entry in entries]
    fail_cubes = [Cube.from_prefix(n, bits)
                  for bits in enumerate_failure_prefixes(matrix)]

    outputs: list[Expr] = []
    for t in range(num_bits):
        on = [cube for cube, entry in zip(leaf_cubes, entries)
              if (entry.value >> t) & 1]
        off = [cube for cube, entry in zip(leaf_cubes, entries)
               if not (entry.value >> t) & 1]
        if not on:
            outputs.append(builder.false)
            reports.append(SublistReport(
                k=-1, width=n, num_entries=0, cube_count=0,
                literal_count=0, exact=False))
            continue
        result = espresso(on, off, fail_cubes,
                          max_iterations=espresso_iterations)
        outputs.append(builder.sop_from_cubes(result.cubes))
        reports.append(SublistReport(
            k=-1, width=n, num_entries=len(on),
            cube_count=len(result.cubes),
            literal_count=sum(c.literal_count for c in result.cubes),
            exact=False))
    valid_result = espresso(leaf_cubes, fail_cubes,
                            max_iterations=espresso_iterations)
    valid = builder.sop_from_cubes(valid_result.cubes)
    return outputs, valid


#: Compiled circuits memoized by their full compile configuration.
#: Compilation is a pure function of that configuration, the result is
#: immutable once built, and the QMC/espresso pass costs hundreds of
#: milliseconds — without this cache every ``SecretKey`` construction
#: (keygen worker, signer checkout) re-pays it from scratch.
_CIRCUIT_CACHE: dict[tuple, SamplerCircuit] = {}
_CIRCUIT_CACHE_LOCK = threading.Lock()


def compile_sampler_circuit(params: GaussianParams,
                            method: str = "efficient",
                            combiner: str = "onehot",
                            use_global_delta: bool = False,
                            qmc_width_limit: int = DEFAULT_QMC_WIDTH_LIMIT,
                            espresso_iterations: int = 2,
                            cache: bool = True,
                            ) -> SamplerCircuit:
    """Compile a constant-time sampler circuit for ``params``.

    Parameters
    ----------
    method:
        ``"efficient"`` (paper, Sec. 5) or ``"simple"`` ([21] baseline).
    combiner:
        Selector recombination strategy (``efficient`` only); see
        :data:`repro.boolfunc.mux.COMBINER_MODES`.
    use_global_delta:
        Pad every sublist to the global ``Delta`` (the paper's framing)
        instead of the per-sublist ``Delta_k``; the ablation benchmark
        measures the cost difference.
    cache:
        Reuse a previously compiled circuit for the same configuration
        (default).  Pass ``False`` to force a fresh compile — e.g. when
        timing compilation itself.
    """
    if method not in COMPILATION_METHODS:
        raise ValueError(f"unknown method {method!r}")
    if combiner not in COMBINER_MODES:
        raise ValueError(f"unknown combiner {combiner!r}")

    cache_key = (params, method, combiner, use_global_delta,
                 qmc_width_limit, espresso_iterations)
    if cache:
        with _CIRCUIT_CACHE_LOCK:
            hit = _CIRCUIT_CACHE.get(cache_key)
        if hit is not None:
            return hit

    started = time.perf_counter()
    matrix = probability_matrix(params)
    num_bits = max(1, matrix.max_value.bit_length())
    builder = ExprBuilder()
    reports: list[SublistReport] = []

    partition: SublistPartition | None = None
    if method == "efficient":
        partition = partition_by_trailing_ones(matrix)
        output_bits, valid = _compile_efficient(
            builder, matrix, partition, num_bits, combiner,
            use_global_delta, qmc_width_limit, reports)
    else:
        output_bits, valid = _compile_simple(
            builder, matrix, num_bits, espresso_iterations, reports)

    circuit = SamplerCircuit(
        params=params, matrix=matrix, method=method, combiner=combiner,
        builder=builder, output_bits=list(output_bits), valid=valid,
        partition=partition, reports=reports,
        compile_seconds=time.perf_counter() - started)
    if cache:
        with _CIRCUIT_CACHE_LOCK:
            _CIRCUIT_CACHE.setdefault(cache_key, circuit)
    return circuit
