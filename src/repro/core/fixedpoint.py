"""Arbitrary-precision fixed-point arithmetic for Gaussian probabilities.

The probability matrix of Sec. 3.1/3.2 stores each probability to ``n``
binary digits, with ``n`` as large as 128 in the Falcon experiments — far
beyond IEEE-754 double precision.  This module evaluates ``exp(-x)`` for
exact rational ``x >= 0`` to any requested number of binary digits using
only integer arithmetic:

1. *Argument reduction*: pick ``k`` with ``y = x / 2^k <= 1/2``.
2. *Taylor series*: sum ``e^{-y} = sum (-y)^t / t!`` exactly over the
   rationals until the first omitted term is below the target error.
3. *Repeated squaring*: square a fixed-point approximation ``k`` times
   (``e^{-x} = (e^{-y})^{2^k}``), carrying generous guard bits so the
   accumulated rounding stays far below one output ulp.

All values are scaled integers: ``represent(v, p) = round(v * 2^p)``.
"""

from __future__ import annotations

from fractions import Fraction

#: Guard bits carried beyond the requested precision during internal
#: computation.  64 bits absorbs both Taylor truncation and the relative
#: error amplification of up to ~20 squarings with a huge margin.
GUARD_BITS = 64


def fraction_to_fixed(value: Fraction, precision: int) -> int:
    """Round a non-negative rational to a ``precision``-bit fixed point."""
    if value < 0:
        raise ValueError("fixed-point values must be non-negative")
    scaled_num = value.numerator << (precision + 1)
    quotient = scaled_num // value.denominator
    # Round to nearest (ties away from zero, irrelevant at these scales).
    return (quotient + 1) >> 1


def fixed_to_fraction(fixed: int, precision: int) -> Fraction:
    """Exact rational value of a fixed-point integer."""
    return Fraction(fixed, 1 << precision)


def exp_neg_fixed(x: Fraction, precision: int) -> int:
    """Return ``e^(-x)`` as a ``precision``-bit fixed-point integer.

    The result ``r`` satisfies ``|r / 2^precision - e^(-x)| < 2^-precision``
    (one ulp).  ``x`` must be a non-negative rational.
    """
    if x < 0:
        raise ValueError("exp_neg_fixed requires x >= 0")
    if x == 0:
        return 1 << precision

    work_bits = precision + GUARD_BITS

    # Crude underflow cut: e^-x < 2^-(precision+2) => result rounds to 0.
    # x / ln2 > precision + 2 with ln2 > 0.693 = 693/1000.
    if x * 1000 > (precision + 2) * 694:
        if x > (precision + 2):  # x > (precision+2) ln 2 certainly
            return 0

    # Argument reduction: y = x / 2^k with y <= 1/2.
    k = 0
    y = x
    while y > Fraction(1, 2):
        y /= 2
        k += 1

    # Taylor sum of e^{-y}, exact over Q.  |omitted| <= first omitted term.
    target = Fraction(1, 1 << (work_bits + k + 2))
    term = Fraction(1)
    total = Fraction(1)
    t = 0
    while True:
        t += 1
        term *= -y / t
        total += term
        if abs(term) < target:
            break

    value = fraction_to_fixed(total, work_bits)
    one = 1 << work_bits
    for _ in range(k):
        value = (value * value + (one >> 1)) >> work_bits
    # Drop guard bits with rounding.
    return (value + (1 << (GUARD_BITS - 1))) >> GUARD_BITS


def isqrt_floor(value: int) -> int:
    """Integer floor square root (thin wrapper for naming symmetry)."""
    if value < 0:
        raise ValueError("isqrt_floor requires a non-negative argument")
    return _isqrt(value)


def _isqrt(value: int) -> int:
    if value == 0:
        return 0
    candidate = 1 << ((value.bit_length() + 1) // 2)
    while True:
        better = (candidate + value // candidate) // 2
        if better >= candidate:
            return candidate
        candidate = better


def floor_scaled_sqrt(radicand: Fraction, multiplier: int = 1) -> int:
    """Return ``floor(multiplier * sqrt(radicand))`` for rational radicand.

    Used to compute the tail-cut support bound ``floor(tau * sigma)``
    exactly when only ``sigma^2`` is rational (e.g. sigma = sqrt(5) for
    the ternary-Falcon instance mentioned in Sec. 6).
    """
    if radicand < 0:
        raise ValueError("radicand must be non-negative")
    num = radicand.numerator
    den = radicand.denominator
    # floor(m * sqrt(num/den)) = floor(sqrt(m^2 * num * den) / den)
    return isqrt_floor(multiplier * multiplier * num * den) // den
