"""Discrete Gaussian distributions and Knuth–Yao probability matrices.

Implements Sec. 3.1 of the paper: the zero-centered discrete Gaussian
``D_sigma(z) = exp(-z^2 / 2 sigma^2) / S`` truncated to the interval
``[0, tau*sigma]`` (tail-cut factor ``tau``) and to ``n`` binary digits of
precision, arranged as the ``(tau*sigma + 1) x n`` probability matrix that
drives DDG-tree construction and column-scanning sampling.

Row convention (paper, Fig. 1): row ``v`` holds the ``n``-bit truncation of
``D_sigma(0)`` for ``v = 0`` and of ``2 * D_sigma(v)`` for ``v >= 1`` (the
factor 2 folds the symmetric negative side in; a separate uniform sign bit
restores it).  Column ``i`` holds the bit of weight ``2^-(i+1)``.

All probabilities are computed with exact integer arithmetic via
:mod:`repro.core.fixedpoint`, so matrices are reproducible bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from functools import lru_cache

from .fixedpoint import exp_neg_fixed, floor_scaled_sqrt

#: Extra bits used when evaluating rho(v) before normalization/truncation.
_NORMALIZATION_GUARD = 32

#: The paper's tail-cut factor for the Falcon experiments (Sec. 6).
DEFAULT_TAIL_CUT = 13


def sigma_squared_from_float(sigma: float) -> Fraction:
    """Best-effort exact ``sigma^2`` from a decimal sigma such as 6.15543.

    Decimal literals used in the literature (2, 6.15543, 215, ...) are
    converted through their shortest decimal representation so that e.g.
    ``sigma_squared_from_float(6.15543)`` is exactly ``(615543/100000)^2``.
    """
    as_fraction = Fraction(str(sigma))
    return as_fraction * as_fraction


@dataclass(frozen=True)
class GaussianParams:
    """Parameters of a truncated, fixed-precision discrete Gaussian.

    Attributes
    ----------
    sigma_sq:
        Exact ``sigma^2`` as a rational.  Using the square keeps
        irrational sigmas like ``sqrt(5)`` exactly representable.
    precision:
        Number of binary digits ``n`` kept per probability.
    tail_cut:
        Tail-cut factor ``tau``; samples lie in ``[0, floor(tau*sigma)]``.
    """

    sigma_sq: Fraction
    precision: int
    tail_cut: int = DEFAULT_TAIL_CUT

    def __post_init__(self) -> None:
        if self.sigma_sq <= 0:
            raise ValueError("sigma^2 must be positive")
        if self.precision < 2:
            raise ValueError("precision must be at least 2 bits")
        if self.tail_cut < 1:
            raise ValueError("tail-cut factor must be at least 1")

    @classmethod
    def from_sigma(cls, sigma: float | int | Fraction, precision: int,
                   tail_cut: int = DEFAULT_TAIL_CUT) -> "GaussianParams":
        """Construct from a decimal sigma (e.g. 2, 6.15543, 215)."""
        if isinstance(sigma, Fraction):
            sigma_sq = sigma * sigma
        else:
            sigma_sq = sigma_squared_from_float(float(sigma))
        return cls(sigma_sq=sigma_sq, precision=precision,
                   tail_cut=tail_cut)

    @property
    def sigma(self) -> float:
        """Floating-point sigma, for display only."""
        return float(self.sigma_sq) ** 0.5

    @property
    def support_bound(self) -> int:
        """``floor(tau * sigma)``: the largest representable sample."""
        return floor_scaled_sqrt(self.sigma_sq, self.tail_cut)

    def rho_fixed(self, z: int, precision: int) -> int:
        """``exp(-z^2 / (2 sigma^2))`` as a ``precision``-bit fixed point."""
        exponent = Fraction(z * z, 1) / (2 * self.sigma_sq)
        return exp_neg_fixed(exponent, precision)


@dataclass(frozen=True)
class ProbabilityMatrix:
    """The Knuth–Yao probability matrix and its derived structure.

    ``rows[v]`` is the ``n``-bit integer whose binary digits (MSB first)
    are the matrix row for sample value ``v``; i.e. column ``i`` of row
    ``v`` is ``(rows[v] >> (n - 1 - i)) & 1`` and carries probability
    weight ``2^-(i+1)``.
    """

    params: GaussianParams
    rows: tuple[int, ...]
    _column_weights: tuple[int, ...] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        n = self.params.precision
        weights = []
        for i in range(n):
            shift = n - 1 - i
            weights.append(sum((row >> shift) & 1 for row in self.rows))
        object.__setattr__(self, "_column_weights", tuple(weights))

    # -- basic accessors -------------------------------------------------

    @property
    def precision(self) -> int:
        """Number of columns ``n``."""
        return self.params.precision

    @property
    def num_rows(self) -> int:
        return len(self.rows)

    @property
    def max_value(self) -> int:
        """Largest sample value with non-zero probability."""
        for v in range(len(self.rows) - 1, -1, -1):
            if self.rows[v]:
                return v
        return 0

    def bit(self, value: int, column: int) -> int:
        """Matrix entry ``P[value][column]``."""
        n = self.params.precision
        if not 0 <= column < n:
            raise IndexError("column out of range")
        return (self.rows[value] >> (n - 1 - column)) & 1

    # -- derived Knuth–Yao structure -------------------------------------

    @property
    def column_weights(self) -> tuple[int, ...]:
        """Hamming weights ``h_i`` of each column (leaves per DDG level)."""
        return self._column_weights

    @property
    def cumulative_weights(self) -> tuple[int, ...]:
        """``H_i = sum_{j<=i} h_j * 2^(i-j)`` (Eqn. 1's subtrahend)."""
        values = []
        acc = 0
        for h in self._column_weights:
            acc = 2 * acc + h
            values.append(acc)
        return tuple(values)

    @property
    def deficits(self) -> tuple[int, ...]:
        """``D_i = 2^(i+1) - H_i``: internal-node counts per DDG level.

        ``D_i >= 1`` for every truncated matrix (total mass < 1), which is
        the engine behind Theorem 1: the all-ones bit string walks the
        topmost internal node forever and never terminates.
        """
        return tuple((1 << (i + 1)) - h
                     for i, h in enumerate(self.cumulative_weights))

    @property
    def mass(self) -> int:
        """Total probability mass scaled by ``2^n`` (= number of n-bit
        strings that terminate the Knuth–Yao walk)."""
        return sum(self.rows)

    @property
    def failure_count(self) -> int:
        """Number of ``n``-bit strings that never hit a leaf (= D_{n-1})."""
        return (1 << self.params.precision) - self.mass

    def pmf(self) -> tuple[Fraction, ...]:
        """The exact sampled distribution: ``rows[v] / 2^n``."""
        scale = 1 << self.params.precision
        return tuple(Fraction(row, scale) for row in self.rows)

    def column_rows_descending(self, column: int) -> tuple[int, ...]:
        """Rows with a set bit in ``column``, scanned MAXROW down to 0.

        This is Algorithm 1's inner-loop scan order; index ``u`` of this
        tuple is the sample value reached by walk position ``u``.
        """
        return tuple(v for v in range(len(self.rows) - 1, -1, -1)
                     if self.bit(v, column))

    def render(self) -> str:
        """Fig. 1-style textual rendering of the matrix."""
        n = self.params.precision
        lines = []
        for v, row in enumerate(self.rows):
            bits = format(row, f"0{n}b")
            lines.append(f"P{v} " + " ".join(bits))
        return "\n".join(lines)


@lru_cache(maxsize=None)
def _build_matrix_cached(sigma_sq: Fraction, precision: int,
                         tail_cut: int) -> tuple[int, ...]:
    params = GaussianParams(sigma_sq=sigma_sq, precision=precision,
                            tail_cut=tail_cut)
    bound = params.support_bound
    work_bits = precision + _NORMALIZATION_GUARD

    rho = [params.rho_fixed(v, work_bits) for v in range(bound + 1)]
    normalizer = rho[0] + 2 * sum(rho[1:])

    rows = []
    for v in range(bound + 1):
        weight = rho[v] if v == 0 else 2 * rho[v]
        # Truncate (floor) to n bits, as required for sum(P) <= 1.
        rows.append((weight << precision) // normalizer)
    return tuple(rows)


def probability_matrix(params: GaussianParams) -> ProbabilityMatrix:
    """Build the probability matrix for ``params`` (cached, exact)."""
    rows = _build_matrix_cached(params.sigma_sq, params.precision,
                                params.tail_cut)
    return ProbabilityMatrix(params=params, rows=rows)


def true_pmf(params: GaussianParams, extra_bits: int = 64,
             ) -> tuple[Fraction, ...]:
    """High-precision *folded* reference pmf over ``[0, support_bound]``.

    Returns the distribution of sample magnitudes in the matrix row
    convention — ``P(0)`` at index 0 and ``2 P(v)`` for ``v >= 1`` — so it
    sums to exactly 1.  Computed like the matrix but with ``extra_bits``
    more precision and no truncation; the statistics module uses it to
    measure the statistical distance introduced by n-bit truncation.
    """
    bound = params.support_bound
    work_bits = params.precision + _NORMALIZATION_GUARD + extra_bits
    rho = [params.rho_fixed(v, work_bits) for v in range(bound + 1)]
    normalizer = rho[0] + 2 * sum(rho[1:])
    return tuple(
        Fraction(rho[v] if v == 0 else 2 * rho[v], normalizer)
        for v in range(bound + 1))
