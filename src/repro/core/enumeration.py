"""Closed-form enumeration of sample-generating bit strings (Sec. 5).

The paper's Theorem 1 states that every random bit string that terminates
the Knuth–Yao walk has the form ``x^i (0/1)^j 0 1^k`` — in walk order, the
sampler first sees ``k`` ones, then a zero, then at most ``j`` further
*significant* bits, with ``j`` experimentally bounded by a small ``Delta``
(4 for sigma in {1, 2}, 6 for sigma = 6.15543, 15 for sigma = 215).

This module enumerates all terminating strings *without building the DDG
tree*, using the walk-state algebra derived in DESIGN.md Sec. 5:

* After bits ``b_0..b_i`` the walk's Algorithm-1 counter is
  ``d = B_i - H_i`` with ``B_i = sum b_t 2^(i-t)``; since ``B_i`` is a
  bijection of the prefix, the internal nodes at level ``i`` are exactly
  ``d in [0, D_i)`` where ``D_i = 2^(i+1) - H_i`` is the *deficit*.
* A leaf at level ``i`` is a pair ``(d_prev, b)`` with
  ``u = 2 d_prev + b < h_i``; its value is entry ``u`` of the column's
  bottom-up scan order, and its prefix is the ``i``-bit binary expansion
  of ``d_prev + H_{i-1}`` followed by ``b``.

The enumeration is therefore ``O(sum_i h_i)`` — the size of the paper's
list ``L`` — and doubles as a constructive proof of Theorem 1 that the
test suite checks against brute force.
"""

from __future__ import annotations

from dataclasses import dataclass

from .gaussian import ProbabilityMatrix


@dataclass(frozen=True)
class TerminatingString:
    """One entry of the paper's list ``L``.

    Attributes
    ----------
    bits:
        The significant bits in walk order ``(b_0, ..., b_c)``; don't-care
        padding up to precision ``n`` is implicit.
    value:
        The sample value at the leaf this string hits.
    """

    bits: tuple[int, ...]
    value: int

    @property
    def level(self) -> int:
        """DDG level of the leaf (``len(bits) - 1``)."""
        return len(self.bits) - 1

    @property
    def leading_ones(self) -> int:
        """Theorem 1's ``k``: ones consumed before the first zero."""
        k = 0
        for bit in self.bits:
            if bit == 1:
                k += 1
            else:
                return k
        raise AssertionError(
            "terminating string without a zero contradicts Theorem 1")

    @property
    def free_suffix_length(self) -> int:
        """Theorem 1's ``j``: significant bits after the mandatory zero."""
        return self.level - self.leading_ones

    def padded_string(self, precision: int) -> str:
        """Render in the paper's reversed notation ``x^i (0/1)^j 0 1^k``.

        The first consumed bit is written rightmost (it is the LSB in the
        paper's string convention), and unconsumed bits render as ``x``.
        """
        pad = precision - len(self.bits)
        if pad < 0:
            raise ValueError("precision smaller than string length")
        return "x" * pad + "".join(str(b) for b in reversed(self.bits))


def _prefix_bits(value: int, width: int) -> tuple[int, ...]:
    """``width``-bit big-endian expansion (b_0 first, b_0 = MSB)."""
    return tuple((value >> (width - 1 - t)) & 1 for t in range(width))


def enumerate_terminating_strings(
        matrix: ProbabilityMatrix) -> list[TerminatingString]:
    """Enumerate the paper's list ``L`` for ``matrix``.

    Entries come out sorted by level, then by walk position — the natural
    Algorithm-1 ordering.  ``len(result) == sum(matrix.column_weights)``.
    """
    strings: list[TerminatingString] = []
    internal_before = 1  # D_{-1}: the root
    h_cumulative = 0     # H_{i-1}
    for column in range(matrix.precision):
        h = matrix.column_weights[column]
        scan_order = matrix.column_rows_descending(column)
        for u in range(min(h, 2 * internal_before)):
            d_prev, last_bit = divmod(u, 2)
            prefix_value = d_prev + h_cumulative
            bits = _prefix_bits(prefix_value, column) + (last_bit,)
            strings.append(TerminatingString(bits=bits,
                                             value=scan_order[u]))
        h_cumulative = 2 * h_cumulative + h
        internal_before = 2 * internal_before - h
        if internal_before <= 0:
            break
    return strings


def enumerate_failure_prefixes(
        matrix: ProbabilityMatrix) -> list[tuple[int, ...]]:
    """All ``n``-bit strings that never terminate (the truncation gap).

    These are the internal nodes surviving at the last level:
    ``d in [0, D_{n-1})`` with prefix = digits of ``d + H_{n-1}``.
    The all-ones string is always among them (Theorem 1's core).
    """
    n = matrix.precision
    h_last = matrix.cumulative_weights[n - 1]
    deficit = matrix.deficits[n - 1]
    return [_prefix_bits(d + h_last, n) for d in range(deficit)]


def check_theorem1(matrix: ProbabilityMatrix) -> bool:
    """Verify Theorem 1 on ``matrix``: no terminating string is all ones.

    Returns True; raises ``AssertionError`` with a counterexample
    otherwise.  (``TerminatingString.leading_ones`` already asserts each
    string contains a zero; this adds the complementary check that the
    all-ones path is a live internal node at every level.)
    """
    for level, deficit in enumerate(matrix.deficits):
        if deficit < 1:
            raise AssertionError(
                f"deficit {deficit} < 1 at level {level}: the DDG tree "
                "is complete, which contradicts truncated probabilities")
    for entry in enumerate_terminating_strings(matrix):
        entry.leading_ones  # asserts a zero exists
    return True


def max_free_suffix_length(matrix: ProbabilityMatrix) -> int:
    """The paper's ``Delta``: max ``j`` over all terminating strings."""
    return max(entry.free_suffix_length
               for entry in enumerate_terminating_strings(matrix))


def enumerate_by_walk(matrix: ProbabilityMatrix,
                      max_level: int | None = None,
                      ) -> list[TerminatingString]:
    """Brute-force enumeration by walking every prefix (tests only).

    Exponential in the worst case but fine for the small precisions used
    in tests; exists purely to cross-validate the closed form.
    """
    limit = matrix.precision if max_level is None else max_level
    results: list[TerminatingString] = []

    def explore(level: int, d: int, bits: tuple[int, ...]) -> None:
        if level == limit:
            return
        for bit in (0, 1):
            u = 2 * d + bit
            h = matrix.column_weights[level]
            if u < h:
                value = matrix.column_rows_descending(level)[u]
                results.append(
                    TerminatingString(bits=bits + (bit,), value=value))
            else:
                explore(level + 1, u - h, bits + (bit,))

    explore(0, 0, ())
    results.sort(key=lambda s: (s.level, s.bits))
    return results
