"""Discrete distribution generating (DDG) trees — Sec. 3.2 and Fig. 1.

A DDG tree is a binary tree in which the number of leaves at level ``i``
equals the Hamming weight ``h_i`` of probability-matrix column ``i``; a
random walk from the root driven by fresh random bits terminates at a leaf
labelled with the sample value.

Levels follow the paper's convention: the children of the root live at
level 0, so reaching a node at level ``i`` consumes ``i + 1`` random bits.

Node ordering within a level follows Algorithm 1's scan: position ``u = 0``
corresponds to the *bottom* of the tree as drawn in Fig. 1 — the first set
bit encountered when scanning the column from MAXROW down to row 0.  With
that convention the whole tree is determined by the deficit recurrence
``D_i = 2 * D_{i-1} - h_i``: level ``i`` has ``2 * D_{i-1}`` nodes, of
which the first ``h_i`` positions are leaves and the rest are internal.

The explicit tree built here is used for rendering (Fig. 1), for directed
tests, and as an independent cross-check of the closed-form enumeration in
:mod:`repro.core.enumeration`; samplers never materialize it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..rng.source import BitStream
from .gaussian import ProbabilityMatrix


@dataclass(frozen=True)
class LeafNode:
    """A terminal node holding a sample value."""

    value: int

    @property
    def is_leaf(self) -> bool:
        return True


@dataclass(frozen=True)
class InternalNode:
    """A non-terminal node; ``child_base`` indexes into the next level.

    Children of the internal node at walk position ``d`` (after removing
    leaves) occupy positions ``2*d`` (bit 0) and ``2*d + 1`` (bit 1) of
    the next level.
    """

    child_base: int

    @property
    def is_leaf(self) -> bool:
        return False


@dataclass(frozen=True)
class DDGTree:
    """An explicitly materialized DDG tree of ``matrix.precision`` levels."""

    matrix: ProbabilityMatrix
    levels: tuple[tuple[LeafNode | InternalNode, ...], ...]

    @property
    def num_levels(self) -> int:
        return len(self.levels)

    def leaves_at_level(self, level: int) -> list[LeafNode]:
        return [node for node in self.levels[level] if node.is_leaf]

    def walk(self, bits: BitStream) -> tuple[int | None, int]:
        """Walk the tree with ``bits``; return ``(value, bits_used)``.

        ``value`` is ``None`` when the walk exhausts all levels without
        hitting a leaf (the truncation failure, probability
        ``matrix.failure_count / 2^n``).
        """
        child_base = 0  # the root's children sit at positions 0 and 1
        for level in self.levels:
            bit = bits.take_bit()
            # ct: vartime(secret-index): the walk follows the secret path through the materialized tree — the DDG traversal leak (Fig. 1)
            node = level[child_base + bit]
            # ct: vartime(secret-early-exit): termination depth equals the sampled leaf's level
            if node.is_leaf:
                return node.value, bits.bits_consumed
            child_base = node.child_base
        return None, bits.bits_consumed

    def render_ascii(self, max_levels: int | None = None) -> str:
        """Human-readable per-level rendering used by the Fig. 1 bench."""
        lines = []
        limit = self.num_levels if max_levels is None else max_levels
        for index, level in enumerate(self.levels[:limit]):
            parts = []
            for node in level:
                if node.is_leaf:
                    parts.append(str(node.value))
                else:
                    parts.append("I")
            lines.append(f"level {index:2d}: " + " ".join(parts))
        return "\n".join(lines)

    def to_dot(self, max_levels: int | None = None) -> str:
        """Graphviz rendering of the tree (Fig. 1 right-hand side)."""
        limit = self.num_levels if max_levels is None else max_levels
        lines = ["digraph ddg {", '  node [shape=circle];',
                 '  root [label="R", color=red];']
        # Node naming: n{level}_{position}.
        for level_index, level in enumerate(self.levels[:limit]):
            for position, node in enumerate(level):
                name = f"n{level_index}_{position}"
                if node.is_leaf:
                    lines.append(
                        f'  {name} [label="{node.value}", color=green];')
                else:
                    lines.append(f'  {name} [label="I", color=blue];')
        # Edges from root.
        if self.levels:
            for position in range(min(len(self.levels[0]), 2)):
                lines.append(f"  root -> n0_{position};")
        for level_index, level in enumerate(self.levels[:limit - 1]):
            for position, node in enumerate(level):
                if node.is_leaf:
                    continue
                for bit in (0, 1):
                    child = node.child_base + bit
                    if child < len(self.levels[level_index + 1]):
                        lines.append(
                            f"  n{level_index}_{position} -> "
                            f"n{level_index + 1}_{child};")
        lines.append("}")
        return "\n".join(lines)


def build_ddg_tree(matrix: ProbabilityMatrix) -> DDGTree:
    """Materialize the DDG tree of ``matrix``.

    Memory is ``O(sum_i 2 * D_{i-1})``; deficits stay small for Gaussian
    matrices (they equal the count of still-live internal paths), so this
    is perfectly affordable even at n = 128.
    """
    levels: list[tuple[LeafNode | InternalNode, ...]] = []
    internal_before = 1  # the root, D_{-1} = 1
    for column in range(matrix.precision):
        h = matrix.column_weights[column]
        width = 2 * internal_before
        values = matrix.column_rows_descending(column)
        nodes: list[LeafNode | InternalNode] = []
        for position in range(width):
            if position < h:
                nodes.append(LeafNode(value=values[position]))
            else:
                nodes.append(InternalNode(child_base=2 * (position - h)))
        levels.append(tuple(nodes))
        internal_before = width - h
    return DDGTree(matrix=matrix, levels=tuple(levels))
