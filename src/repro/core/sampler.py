"""The batch-oriented constant-time discrete Gaussian sampler.

Runtime counterpart of :mod:`repro.core.compiler`: wraps a compiled
:class:`~repro.core.compiler.SamplerCircuit` in a
:class:`~repro.bitslice.engine.BitslicedKernel` and feeds it machine
words of PRNG output, ``w`` samples per invocation (Sec. 3.2 of the
paper; ``w = 64`` on the paper's target, arbitrary here thanks to Python
integers).

Per batch the sampler consumes exactly ``n + 1`` random words — ``n``
bits plus a sign bit per lane — regardless of the values produced, and
executes exactly ``kernel.stats.word_ops`` bitwise instructions: the
operation trace is input-independent by construction, which is the
constant-time property the dudect experiment verifies.

Lanes whose ``valid`` bit is clear (walk cannot terminate within the
``n``-bit precision; probability ``failure_count / 2^n``) are discarded
during unpacking, exactly as Algorithm 1 restarts.  Only the publicly
known batch fill rate leaks.
"""

from __future__ import annotations

from ..bitslice.engine import BitslicedKernel
from ..bitslice.pack import unpack_lanes
from ..rng.source import CountingSource, RandomSource, default_source
from .compiler import SamplerCircuit, compile_sampler_circuit
from .gaussian import GaussianParams

#: The paper's batch width (64-bit target processor).
DEFAULT_BATCH_WIDTH = 64


class BitslicedSampler:
    """Constant-time discrete Gaussian sampler over signed integers.

    Examples
    --------
    >>> params = GaussianParams.from_sigma(2, precision=32)
    >>> sampler = BitslicedSampler.compile(params)
    >>> batch = sampler.sample_batch()
    >>> len(batch) <= sampler.batch_width
    True
    """

    def __init__(self, circuit: SamplerCircuit,
                 source: RandomSource | None = None,
                 batch_width: int = DEFAULT_BATCH_WIDTH) -> None:
        if batch_width < 1:
            raise ValueError("batch width must be positive")
        self.circuit = circuit
        self.kernel = BitslicedKernel(circuit.roots)
        self.source = CountingSource(
            source if source is not None else default_source())
        self.batch_width = batch_width
        self.batches_run = 0
        self.samples_discarded = 0
        self._buffer: list[int] = []

    @classmethod
    def compile(cls, params: GaussianParams,
                source: RandomSource | None = None,
                batch_width: int = DEFAULT_BATCH_WIDTH,
                **compile_kwargs) -> "BitslicedSampler":
        """One-call build: parameters -> circuit -> executable sampler."""
        circuit = compile_sampler_circuit(params, **compile_kwargs)
        return cls(circuit, source=source, batch_width=batch_width)

    # -- cost model -------------------------------------------------------

    @property
    def word_ops_per_batch(self) -> int:
        """Bitwise instructions per batch (the Table 2 cycle proxy)."""
        return self.kernel.stats.word_ops

    @property
    def cycles_per_sample(self) -> float:
        """Modeled sampling cycles per produced sample (PRNG excluded,
        like Table 2), accounting for invalid-lane loss."""
        produced = self.batch_width * self.circuit.validity_rate
        return self.word_ops_per_batch / produced

    @property
    def random_bytes_per_batch(self) -> int:
        words = self.circuit.num_input_bits + 1  # n bits + sign
        return words * ((self.batch_width + 7) // 8)

    # -- sampling ---------------------------------------------------------

    def raw_batch(self) -> tuple[list[int], int, int]:
        """Run one kernel batch; return (magnitudes, valid_mask, signs).

        ``magnitudes[j]`` is lane ``j``'s magnitude (garbage when the
        lane is invalid), ``valid_mask``/``signs`` are lane bitmasks.
        """
        width = self.batch_width
        n = self.circuit.num_input_bits
        needed = max(self.kernel.num_inputs, n)
        inputs = [self.source.read_word(width) for _ in range(needed)]
        sign_word = self.source.read_word(width)
        mask = (1 << width) - 1
        outputs = self.kernel(inputs, mask)
        magnitude_words = outputs[:-1]
        valid_mask = outputs[-1]
        magnitudes = unpack_lanes(magnitude_words, width)
        self.batches_run += 1
        return magnitudes, valid_mask, sign_word

    def sample_batch(self) -> list[int]:
        """Signed samples from one batch, invalid lanes compacted away."""
        magnitudes, valid_mask, sign_word = self.raw_batch()
        samples = []
        for lane in range(self.batch_width):
            if not (valid_mask >> lane) & 1:
                self.samples_discarded += 1
                continue
            value = magnitudes[lane]
            if (sign_word >> lane) & 1:
                value = -value
            samples.append(value)
        return samples

    def sample(self) -> int:
        """One signed sample (buffered batches underneath)."""
        while not self._buffer:
            self._buffer = self.sample_batch()
        return self._buffer.pop()

    def sample_many(self, count: int) -> list[int]:
        """Exactly ``count`` signed samples."""
        out: list[int] = []
        while len(out) < count:
            out.extend(self.sample_batch())
        del out[count:]
        return out


def compile_sampler(sigma: float, precision: int,
                    source: RandomSource | None = None,
                    batch_width: int = DEFAULT_BATCH_WIDTH,
                    tail_cut: int = 13,
                    **compile_kwargs) -> BitslicedSampler:
    """Top-level convenience: ``sigma, n -> ready-to-use sampler``.

    This is the library's main entry point::

        sampler = compile_sampler(sigma=2, precision=64)
        values = sampler.sample_many(1000)
    """
    params = GaussianParams.from_sigma(sigma, precision,
                                       tail_cut=tail_cut)
    return BitslicedSampler.compile(params, source=source,
                                    batch_width=batch_width,
                                    **compile_kwargs)
