"""The batch-oriented constant-time discrete Gaussian sampler.

Runtime counterpart of :mod:`repro.core.compiler`: wraps a compiled
:class:`~repro.core.compiler.SamplerCircuit` in a
:class:`~repro.bitslice.engine.BitslicedKernel` and feeds it machine
words of PRNG output, ``w`` samples per invocation (Sec. 3.2 of the
paper; ``w = 64`` on the paper's target, arbitrary here).

How those words are represented is pluggable — see
:mod:`repro.bitslice.wordengine`:

* ``engine="bigint"``  — one Python bigint per word (default);
* ``engine="numpy"``   — NumPy ``uint64`` chunk arrays, vectorized;
* ``engine="chunked"`` — pure-Python 64-bit chunks (NumPy-free stand-in);
* ``engine="auto"``    — ``numpy`` when available, else ``bigint``.

All engines consume the same PRNG byte stream with the same
byte-to-lane mapping, so their sample streams are **bit-identical**
(pinned by the differential tests) — switching engines changes
throughput, never output.

Per batch the sampler consumes exactly ``n + 1`` random words — ``n``
bits plus a sign bit per lane — regardless of the values produced, and
executes exactly ``kernel.stats.word_ops`` bitwise instructions per
batch: the operation trace is input-independent by construction, which
is the constant-time property the dudect experiment verifies.

Lanes whose ``valid`` bit is clear (walk cannot terminate within the
``n``-bit precision; probability ``failure_count / 2^n``) are discarded
during unpacking, exactly as Algorithm 1 restarts.  Only the publicly
known batch fill rate leaks.

For bulk work, :meth:`BitslicedSampler.sample_many` fuses several
batches into one *super-batch*: a single kernel pass over
``f * batch_width`` lanes, which amortizes Python call overhead (and,
on the NumPy engine, turns every gate into one vectorized instruction
over the whole block).  :meth:`BitslicedSampler.stream` exposes the
same machinery as an endless iterator that refills across
super-batches — the prefetched pool Falcon's ``RejectionSamplerZ``
draws from.
"""

from __future__ import annotations

from typing import Iterator

from ..bitslice.engine import shared_kernel
from ..bitslice.wordengine import WordEngine, get_engine
from ..rng.source import CountingSource, RandomSource, default_source
from .compiler import SamplerCircuit, compile_sampler_circuit
from .gaussian import GaussianParams

#: The paper's batch width (64-bit target processor).
DEFAULT_BATCH_WIDTH = 64

#: Largest number of batches :meth:`BitslicedSampler.sample_many` fuses
#: into one kernel pass.  64 batches of 64 lanes = 4096 lanes per pass:
#: wide enough to amortize interpreter overhead on every engine, small
#: enough to keep working-set memory trivial.
DEFAULT_MAX_FUSED_BATCHES = 64

#: Lane ceiling for one fused pass regardless of batch width, so wide
#: user-chosen widths don't fuse into multi-hundred-kilobit words.
MAX_FUSED_LANES = 8192

#: Measured sweet-spot batch width per word engine, used by
#: ``batch_width="auto"``.  Calibrated from
#: ``benchmarks/reports/BENCH_backend_scaling.json``: the NumPy engine
#: peaks at moderate widths (wide enough to amortize array-op overhead,
#: narrow enough that ``sample_many``'s fused passes stay cache-friendly
#: — PR 1 showed w=1024 *regressing* to 0.90x there), while the
#: Python-int engines keep gaining from wider words.
BATCH_WIDTH_CALIBRATION = {"bigint": 512, "chunked": 512, "numpy": 256}


def auto_batch_width(engine: str | WordEngine) -> int:
    """The calibrated batch width for ``engine`` (see table above).

    ``engine`` is resolved through :func:`get_engine`, so selector
    strings (``"auto"``, ``None``) work and typos raise instead of
    silently falling back to the default width.
    """
    return BATCH_WIDTH_CALIBRATION.get(get_engine(engine).name,
                                       DEFAULT_BATCH_WIDTH)


class BitslicedSampler:
    """Constant-time discrete Gaussian sampler over signed integers.

    Examples
    --------
    >>> params = GaussianParams.from_sigma(2, precision=32)
    >>> sampler = BitslicedSampler.compile(params)
    >>> batch = sampler.sample_batch()
    >>> len(batch) <= sampler.batch_width
    True
    """

    def __init__(self, circuit: SamplerCircuit,
                 source: RandomSource | None = None,
                 batch_width: int | str = DEFAULT_BATCH_WIDTH,
                 engine: str | WordEngine = "bigint",
                 prefetch_batches: int = 1,
                 max_fused_batches: int = DEFAULT_MAX_FUSED_BATCHES,
                 ) -> None:
        self.engine = get_engine(engine)
        if batch_width == "auto":
            # Engine-calibrated width.  Note the lane mapping (hence the
            # exact sample stream for a given seed) depends on the
            # width, so "auto" trades cross-engine stream identity for
            # throughput; pin an explicit width to reproduce streams.
            batch_width = auto_batch_width(self.engine)
        if not isinstance(batch_width, int) or batch_width < 1:
            raise ValueError("batch width must be a positive int "
                             "or 'auto'")
        if prefetch_batches < 1:
            raise ValueError("prefetch_batches must be positive")
        if max_fused_batches < 1:
            raise ValueError("max_fused_batches must be positive")
        self.circuit = circuit
        self.kernel = shared_kernel(circuit.roots)
        self.source = CountingSource(
            source if source is not None else default_source())
        self.batch_width = batch_width
        self.prefetch_batches = prefetch_batches
        self.max_fused_batches = max_fused_batches
        self.batches_run = 0
        self.samples_discarded = 0
        self._buffer: list[int] = []

    @classmethod
    def compile(cls, params: GaussianParams,
                source: RandomSource | None = None,
                batch_width: int | str = DEFAULT_BATCH_WIDTH,
                engine: str | WordEngine = "bigint",
                prefetch_batches: int = 1,
                max_fused_batches: int = DEFAULT_MAX_FUSED_BATCHES,
                **compile_kwargs) -> "BitslicedSampler":
        """One-call build: parameters -> circuit -> executable sampler."""
        circuit = compile_sampler_circuit(params, **compile_kwargs)
        return cls(circuit, source=source, batch_width=batch_width,
                   engine=engine, prefetch_batches=prefetch_batches,
                   max_fused_batches=max_fused_batches)

    # -- cost model -------------------------------------------------------

    @property
    def word_ops_per_batch(self) -> int:
        """Bitwise instructions per batch (the Table 2 cycle proxy).

        A static property of the compiled circuit, identical for every
        word engine: engines change how a word instruction is carried
        out, never how many there are.
        """
        return self.kernel.stats.word_ops

    @property
    def cycles_per_sample(self) -> float:
        """Modeled sampling cycles per produced sample (PRNG excluded,
        like Table 2), accounting for invalid-lane loss."""
        produced = self.batch_width * self.circuit.validity_rate
        return self.word_ops_per_batch / produced

    @property
    def random_bytes_per_batch(self) -> int:
        words = self.circuit.num_input_bits + 1  # n bits + sign
        return words * ((self.batch_width + 7) // 8)

    # -- kernel plumbing --------------------------------------------------

    def _kernel_pass(self, width: int) -> tuple[tuple, object, object]:
        """One straight-line kernel pass over ``width`` lanes.

        Draws the ``n`` input words plus the sign word in a single bulk
        PRNG read (byte-identical to sequential draws), evaluates the
        kernel, and returns ``(magnitude_words, valid_word, sign_word)``
        still in the engine's word representation.
        """
        n = self.circuit.num_input_bits
        needed = max(self.kernel.num_inputs, n)
        words = self.engine.draw_words(self.source, width, needed + 1)
        inputs, sign_word = words[:needed], words[needed]
        outputs = self.engine.run_kernel(self.kernel, inputs, width)
        return outputs[:-1], outputs[-1], sign_word

    # -- sampling ---------------------------------------------------------

    def raw_batch(self) -> tuple[list[int], int, int]:
        """Run one kernel batch; return (magnitudes, valid_mask, signs).

        ``magnitudes[j]`` is lane ``j``'s magnitude (garbage when the
        lane is invalid), ``valid_mask``/``signs`` are lane bitmasks
        (plain Python ints, whatever the engine).
        """
        width = self.batch_width
        magnitude_words, valid_word, sign_word = self._kernel_pass(width)
        magnitudes = self.engine.unpack(magnitude_words, width)
        valid_mask = self.engine.lane_mask(valid_word, width)
        signs = self.engine.lane_mask(sign_word, width)
        self.batches_run += 1
        return magnitudes, valid_mask, signs

    def sample_batch(self) -> list[int]:
        """Signed samples from one batch, invalid lanes compacted away."""
        width = self.batch_width
        magnitude_words, valid_word, sign_word = self._kernel_pass(width)
        samples, discarded = self.engine.compact(
            magnitude_words, valid_word, sign_word, width)
        self.batches_run += 1
        self.samples_discarded += discarded
        return samples

    def _sample_block(self, num_batches: int) -> list[int]:
        """``num_batches`` fused into one kernel pass (a super-batch).

        The effective word is ``num_batches * batch_width`` lanes wide;
        randomness cost and instruction trace scale exactly linearly
        (``num_batches`` times the per-batch figures), so the
        constant-time accounting is unchanged — there is just less
        Python between the gates.
        """
        width = self.batch_width * num_batches
        magnitude_words, valid_word, sign_word = self._kernel_pass(width)
        samples, discarded = self.engine.compact(
            magnitude_words, valid_word, sign_word, width)
        self.batches_run += num_batches
        self.samples_discarded += discarded
        return samples

    def sample(self) -> int:
        """One signed sample (buffered batches underneath).

        With ``prefetch_batches > 1`` the refill runs that many batches
        as one fused kernel pass, so pointwise consumers (Falcon's
        rejection wrapper) still get super-batch throughput.
        """
        # ct: allow(secret-loop): refill cadence is the public batch fill rate — every batch costs the same fixed kernel pass regardless of the values produced
        while not self._buffer:
            if self.prefetch_batches > 1:
                self._buffer = self._sample_block(self.prefetch_batches)
            else:
                self._buffer = self.sample_batch()
        return self._buffer.pop()

    def prefill(self, count: int) -> None:
        """Top the :meth:`sample` buffer up to ``count`` samples.

        Generation happens now, in ``prefetch_batches``-sized fused
        passes — exactly the chunks lazy refills would use, prepended
        in generation order — so the :meth:`sample` stream is
        *unchanged*; a serving loop just pays the kernel cost up front
        instead of mid-request.
        """
        while len(self._buffer) < count:
            if self.prefetch_batches > 1:
                block = self._sample_block(self.prefetch_batches)
            else:
                block = self.sample_batch()
            self._buffer = block + self._buffer

    def sample_many(self, count: int) -> list[int]:
        """Exactly ``count`` signed samples, drawn in super-batches.

        Batches are fused up to ``max_fused_batches`` at a time, sized
        to the remaining need.  The fusion schedule depends only on
        ``count`` and the (engine-independent) sample stream, so
        ``sample_many`` is also bit-identical across engines.
        """
        if count <= 0:
            return []
        out: list[int] = []
        width = self.batch_width
        cap = max(1, min(self.max_fused_batches,
                         MAX_FUSED_LANES // width))
        while len(out) < count:
            need = count - len(out)
            batches = min(cap, -(-need // width))  # ceil division
            out.extend(self._sample_block(batches))
        del out[count:]
        return out

    def stream(self, block_samples: int = 4096) -> Iterator[int]:
        """Endless sample iterator refilling across super-batches.

        Yields signed samples forever, drawing ``block_samples`` at a
        time through :meth:`sample_many`.  This is the prefetched pool
        a long-running consumer (e.g. a signing service) iterates.
        """
        if block_samples < 1:
            raise ValueError("block_samples must be positive")
        while True:
            yield from self.sample_many(block_samples)


def compile_sampler(sigma: float, precision: int,
                    source: RandomSource | None = None,
                    batch_width: int | str = DEFAULT_BATCH_WIDTH,
                    tail_cut: int = 13,
                    engine: str | WordEngine = "bigint",
                    prefetch_batches: int = 1,
                    max_fused_batches: int = DEFAULT_MAX_FUSED_BATCHES,
                    **compile_kwargs) -> BitslicedSampler:
    """Top-level convenience: ``sigma, n -> ready-to-use sampler``.

    This is the library's main entry point::

        sampler = compile_sampler(sigma=2, precision=64, engine="auto")
        values = sampler.sample_many(1000)

    ``engine`` selects the word backend (see
    :mod:`repro.bitslice.wordengine`); every choice produces the same
    sample stream for the same seed.
    """
    params = GaussianParams.from_sigma(sigma, precision,
                                       tail_cut=tail_cut)
    return BitslicedSampler.compile(params, source=source,
                                    batch_width=batch_width,
                                    engine=engine,
                                    prefetch_batches=prefetch_batches,
                                    max_fused_batches=max_fused_batches,
                                    **compile_kwargs)
