"""Bitsliced evaluation: compiled kernels, lane packing, word engines."""

from .engine import BitslicedKernel, KernelStats
from .pack import (
    lane_bit_matrix,
    lanes_where,
    pack_lane_bits,
    unpack_lanes,
    unpack_lanes_array,
)
from .wordengine import (
    AUTO_ENGINE,
    HAVE_NUMPY,
    BigIntEngine,
    ChunkedEngine,
    NumpyEngine,
    WordEngine,
    available_engines,
    get_engine,
)

__all__ = [
    "AUTO_ENGINE",
    "BigIntEngine",
    "BitslicedKernel",
    "ChunkedEngine",
    "HAVE_NUMPY",
    "KernelStats",
    "NumpyEngine",
    "WordEngine",
    "available_engines",
    "get_engine",
    "lane_bit_matrix",
    "lanes_where",
    "pack_lane_bits",
    "unpack_lanes",
    "unpack_lanes_array",
]
