"""Bitsliced evaluation: compiled kernels and lane packing."""

from .engine import BitslicedKernel, KernelStats
from .pack import lanes_where, pack_lane_bits, unpack_lanes

__all__ = [
    "BitslicedKernel",
    "KernelStats",
    "lanes_where",
    "pack_lane_bits",
    "unpack_lanes",
]
