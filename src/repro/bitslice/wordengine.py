"""Pluggable word engines: how a "machine word" is represented.

The paper's speed argument is SIMD bitslicing (Sec. 3.2): evaluate the
sampler's Boolean functions over wide machine words so one straight-line
pass yields ``w`` samples.  The reproduction originally modeled the word
as a single Python bigint.  This module abstracts that choice behind a
:class:`WordEngine` so the same compiled kernel can run over

* ``bigint``  — one arbitrary-width Python integer per variable (the
  original backend; ``w`` is unbounded);
* ``numpy``   — a NumPy ``uint64`` array of ``k = ceil(w / 64)`` chunks
  per variable, i.e. ``k x 64`` hardware lanes evaluated by vectorized
  bitwise instructions (the closest Python gets to the paper's AVX2
  target); and
* ``chunked`` — ``k`` parallel 64-bit Python integers, the pure-Python
  stand-in for the NumPy layout when NumPy is absent.

All engines consume the **same PRNG byte stream** with the same
byte-to-lane mapping (lane ``j`` of the batch is bit ``j``, LSB-first,
of the ``ceil(w / 8)``-byte block backing each word), so the sample
streams are bit-identical across engines — a property the differential
test suite pins down.  The straight-line kernel is shared: engines only
differ in how its bitwise operators are carried out, so the
input-independent operation trace (the constant-time property) is
preserved by construction.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Sequence

from ..rng.source import RandomSource
from .pack import lane_bit_matrix, unpack_lanes, unpack_lanes_array

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import BitslicedKernel

try:  # NumPy is optional: the chunked engine fills in when it's absent.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised in the no-numpy CI job
    _np = None

HAVE_NUMPY = _np is not None

#: Hardware lane width the vector engines slice words into.
CHUNK_BITS = 64


class WordEngine(ABC):
    """Strategy object deciding how kernel words are stored and moved.

    A *word* is whatever the engine uses to carry one input variable
    across all ``width`` lanes of a batch.  Engines must agree on the
    byte-to-lane mapping of :meth:`draw_words` so their sample streams
    are interchangeable bit-for-bit.
    """

    #: Registry name (``engine.name`` round-trips through get_engine).
    name: str = "abstract"
    #: Whether kernel evaluation is vectorized over 64-bit chunks.
    vectorized: bool = False

    # -- randomness -------------------------------------------------------

    def raw_block(self, source: RandomSource, bits: int,
                  count: int) -> bytes:
        """The ``count * ceil(bits / 8)`` bytes backing ``count`` words.

        One bulk PRNG call, so byte accounting is identical to drawing
        the words one at a time (sequential reads of the same stream).
        """
        return source.read_word_block(bits, count)

    @abstractmethod
    def draw_words(self, source: RandomSource, bits: int,
                   count: int) -> list:
        """Draw ``count`` fresh ``bits``-lane words from ``source``."""

    # -- kernel evaluation ------------------------------------------------

    @abstractmethod
    def run_kernel(self, kernel: "BitslicedKernel", inputs: Sequence,
                   width: int) -> tuple:
        """Evaluate ``kernel`` over engine words; one word per output."""

    # -- transposition back to per-lane integers --------------------------

    @abstractmethod
    def lane_mask(self, word, width: int) -> int:
        """Collapse a backend word to a Python-int lane bitmask."""

    @abstractmethod
    def unpack(self, words: Sequence, width: int) -> list[int]:
        """Transpose output words into ``width`` per-lane integers."""

    def compact(self, magnitude_words: Sequence, valid_word, sign_word,
                width: int) -> tuple[list[int], int]:
        """Signed samples in lane order with invalid lanes dropped.

        Returns ``(samples, discarded)``.  The generic path unpacks and
        filters in Python; vector engines override it with a fully
        vectorized transpose + select.
        """
        magnitudes = self.unpack(magnitude_words, width)
        valid_mask = self.lane_mask(valid_word, width)
        sign_mask = self.lane_mask(sign_word, width)
        samples: list[int] = []
        discarded = 0
        for lane in range(width):
            if not (valid_mask >> lane) & 1:
                discarded += 1
                continue
            value = magnitudes[lane]
            if (sign_mask >> lane) & 1:
                value = -value
            samples.append(value)
        return samples, discarded


def _compact_chunks(chunk_iter, width: int) -> tuple[list[int], int]:
    """Shared lane-selection loop over 64-bit chunk views.

    ``chunk_iter`` yields ``(magnitude_chunks, valid_chunk, sign_chunk,
    take)`` per 64-lane slice, all small integers — keeping the bit
    shifts on machine-word operands makes compaction O(width * m) even
    when the engine's full word is hundreds of kilobits wide.
    """
    samples: list[int] = []
    discarded = 0
    for magnitude_chunks, valid_chunk, sign_chunk, take in chunk_iter:
        for lane in range(take):
            if not (valid_chunk >> lane) & 1:
                discarded += 1
                continue
            value = 0
            for t, chunk in enumerate(magnitude_chunks):
                value |= ((chunk >> lane) & 1) << t
            if (sign_chunk >> lane) & 1:
                value = -value
            samples.append(value)
    return samples, discarded


class BigIntEngine(WordEngine):
    """One arbitrary-width Python integer per word (the original model).

    ``w`` is unbounded — a 4096-lane word is a 4096-bit integer whose
    bitwise operators CPython executes in C over 30-bit limbs, so wide
    batches already amortize interpreter overhead well.
    """

    name = "bigint"
    vectorized = False

    def draw_words(self, source: RandomSource, bits: int,
                   count: int) -> list[int]:
        return source.read_words(bits, count)

    def run_kernel(self, kernel: "BitslicedKernel", inputs: Sequence[int],
                   width: int) -> tuple[int, ...]:
        return kernel(inputs, (1 << width) - 1)

    def lane_mask(self, word: int, width: int) -> int:
        return word & ((1 << width) - 1)

    def unpack(self, words: Sequence[int], width: int) -> list[int]:
        return unpack_lanes(words, width)

    def compact(self, magnitude_words: Sequence[int], valid_word: int,
                sign_word: int, width: int) -> tuple[list[int], int]:
        # Serialize once, then walk byte-aligned 64-lane slices: lane
        # shifts stay on small ints instead of repeatedly shifting one
        # width-bit bigint (quadratic for fused super-batches).
        nbytes = ((width + 63) // 64) * 8
        as_bytes = [word.to_bytes(nbytes, "little")
                    for word in (*magnitude_words, valid_word, sign_word)]

        def chunks():
            for start in range(0, width, CHUNK_BITS):
                offset = start // 8
                view = [int.from_bytes(raw[offset:offset + 8], "little")
                        for raw in as_bytes]
                yield (view[:-2], view[-2], view[-1],
                       min(CHUNK_BITS, width - start))

        return _compact_chunks(chunks(), width)


class ChunkedEngine(WordEngine):
    """``k`` parallel 64-bit Python integers per word.

    The pure-Python stand-in for the NumPy layout: the kernel runs once
    per 64-lane chunk, exactly the loop a scalar C build of the paper's
    bitsliced code would execute.  Lane ``64 c + j`` lives in bit ``j``
    of chunk ``c``, matching :class:`NumpyEngine` bit-for-bit.
    """

    name = "chunked"
    vectorized = True

    @staticmethod
    def _chunk_masks(width: int) -> list[int]:
        masks = []
        remaining = width
        while remaining > 0:
            take = min(CHUNK_BITS, remaining)
            masks.append((1 << take) - 1)
            remaining -= take
        return masks

    def draw_words(self, source: RandomSource, bits: int,
                   count: int) -> list[tuple[int, ...]]:
        nbytes = (bits + 7) // 8
        raw = self.raw_block(source, bits, count)
        masks = self._chunk_masks(bits)
        words = []
        for i in range(count):
            value = int.from_bytes(raw[i * nbytes:(i + 1) * nbytes],
                                   "little")
            words.append(tuple(
                (value >> (CHUNK_BITS * c)) & masks[c]
                for c in range(len(masks))))
        return words

    def run_kernel(self, kernel: "BitslicedKernel",
                   inputs: Sequence[tuple[int, ...]],
                   width: int) -> tuple[tuple[int, ...], ...]:
        masks = self._chunk_masks(width)
        per_chunk: list[tuple[int, ...]] = []
        for c, mask in enumerate(masks):
            chunk_inputs = [word[c] for word in inputs]
            per_chunk.append(kernel(chunk_inputs, mask))
        # Transpose chunk-major results into per-output chunk tuples.
        return tuple(tuple(chunks[t] for chunks in per_chunk)
                     for t in range(len(per_chunk[0])))

    def lane_mask(self, word: tuple[int, ...], width: int) -> int:
        value = 0
        for c, chunk in enumerate(word):
            value |= chunk << (CHUNK_BITS * c)
        return value & ((1 << width) - 1)

    def unpack(self, words: Sequence[tuple[int, ...]],
               width: int) -> list[int]:
        return unpack_lanes([self.lane_mask(word, width)
                             for word in words], width)

    def compact(self, magnitude_words: Sequence[tuple[int, ...]],
                valid_word: tuple[int, ...], sign_word: tuple[int, ...],
                width: int) -> tuple[list[int], int]:
        def chunks():
            for c in range(len(valid_word)):
                yield ([word[c] for word in magnitude_words],
                       valid_word[c], sign_word[c],
                       min(CHUNK_BITS, width - c * CHUNK_BITS))

        return _compact_chunks(chunks(), width)


class NumpyEngine(WordEngine):
    """NumPy ``uint64`` arrays: ``k x 64`` lanes per kernel invocation.

    Each word is a length-``k`` ``uint64`` array; the generated kernel
    source (plain ``& | ^ ~``) executes unchanged over the arrays, so
    every gate becomes one vectorized instruction across all lanes —
    the Python rendition of the paper's AVX2 evaluation.  Unpacking
    uses a single ``np.unpackbits`` transpose instead of per-lane bit
    twiddling.
    """

    name = "numpy"
    vectorized = True

    def __init__(self) -> None:
        if _np is None:  # pragma: no cover - guarded by get_engine
            raise RuntimeError(
                "NumPy is not installed; use the 'chunked' engine")

    @staticmethod
    def _num_chunks(width: int) -> int:
        return (width + CHUNK_BITS - 1) // CHUNK_BITS

    def draw_words(self, source: RandomSource, bits: int, count: int):
        nbytes = (bits + 7) // 8
        k = self._num_chunks(bits)
        raw = self.raw_block(source, bits, count)
        if nbytes == k * 8:
            # Chunk-aligned width: reinterpret the keystream slab as
            # uint64 lanes directly (one copy into a writable buffer,
            # no per-byte shuffling).
            words = _np.frombuffer(bytearray(raw), dtype="<u8") \
                .reshape(count, k)
        else:
            buffer = _np.zeros((count, k * 8), dtype=_np.uint8)
            buffer[:, :nbytes] = _np.frombuffer(raw, dtype=_np.uint8) \
                .reshape(count, nbytes)
            words = buffer.view("<u8")
        tail = bits % CHUNK_BITS
        if tail:
            words[:, -1] &= _np.uint64((1 << tail) - 1)
        return [words[i] for i in range(count)]

    def run_kernel(self, kernel: "BitslicedKernel", inputs: Sequence,
                   width: int) -> tuple:
        k = self._num_chunks(width)
        mask = _np.uint64((1 << CHUNK_BITS) - 1)
        outputs = kernel(inputs, mask)
        # Constant roots come back as scalars; broadcast them so every
        # output is a k-chunk array like the rest.
        return tuple(
            out if isinstance(out, _np.ndarray)
            else _np.full(k, _np.uint64(out) & mask, dtype=_np.uint64)
            for out in outputs)

    def lane_mask(self, word, width: int) -> int:
        value = int.from_bytes(word.astype("<u8").tobytes(), "little")
        return value & ((1 << width) - 1)

    def unpack(self, words: Sequence, width: int) -> list[int]:
        return unpack_lanes_array(words, width).tolist()

    def compact(self, magnitude_words: Sequence, valid_word, sign_word,
                width: int) -> tuple[list[int], int]:
        all_words = list(magnitude_words) + [valid_word, sign_word]
        bits = lane_bit_matrix(all_words, width)
        m = len(magnitude_words)
        values = _np.zeros(width, dtype=_np.int64) if m == 0 else (
            _np.left_shift(_np.int64(1),
                           _np.arange(m, dtype=_np.int64))
            @ bits[:m].astype(_np.int64))
        valid = bits[m].astype(bool)
        negative = bits[m + 1].astype(bool)
        signed = _np.where(negative, -values, values)
        kept = signed[valid]
        return kept.tolist(), int(width - int(valid.sum()))


#: Engine classes by registry name.  ``numpy`` silently degrades to the
#: chunked layout when NumPy is unavailable (identical lane semantics,
#: so sample streams do not change — only throughput does).
_ENGINE_CLASSES: dict[str, type[WordEngine]] = {
    "bigint": BigIntEngine,
    "chunked": ChunkedEngine,
    "numpy": NumpyEngine if HAVE_NUMPY else ChunkedEngine,
}

#: Resolution of ``engine="auto"``: vectorized when NumPy is present.
AUTO_ENGINE = "numpy" if HAVE_NUMPY else "bigint"


def available_engines() -> list[str]:
    """Registry names accepted by :func:`get_engine` (sorted)."""
    return sorted(_ENGINE_CLASSES)


def get_engine(engine: str | WordEngine | None) -> WordEngine:
    """Resolve an engine name (or pass an instance through).

    ``None`` and ``"auto"`` pick the fastest available backend:
    ``numpy`` when importable, else ``bigint``.
    """
    if isinstance(engine, WordEngine):
        return engine
    if engine is None or engine == "auto":
        engine = AUTO_ENGINE
    try:
        cls = _ENGINE_CLASSES[engine]
    except KeyError:
        raise ValueError(
            f"unknown word engine {engine!r}; "
            f"choose from {available_engines()} or 'auto'") from None
    return cls()
