"""Bitsliced evaluation engine: expression DAG -> executable kernel.

The paper's sampler is a fixed sequence of bitwise word instructions; its
running time is the instruction count, independent of the data — that is
the whole constant-time argument.  This engine preserves that structure
in Python: the DAG is compiled **once** into straight-line Python source
(one line per gate, no branches, no data-dependent control flow at all)
and ``exec``-compiled into a callable.  The line count *is* the modeled
cycle count used to reproduce Table 2.

The reference interpreter in :func:`repro.boolfunc.expr.evaluate` computes
the same function ~10x slower; a hypothesis test pins the two together.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Sequence

from ..boolfunc.expr import (
    Expr,
    circuit_depth,
    gate_counts,
    input_variables,
    to_python_source,
)


@dataclass(frozen=True)
class KernelStats:
    """Static cost metrics of a compiled kernel (machine-model cycles)."""

    gates: dict[str, int]
    depth: int
    num_inputs: int
    num_outputs: int

    @property
    def word_ops(self) -> int:
        """Bitwise word instructions per kernel invocation.

        One invocation processes a whole ``w``-lane batch, so the
        modeled per-sample cost is ``word_ops / w`` — the quantity the
        paper reports as cycles (Table 2 counts cycles per 64 samples).
        """
        return self.gates["total"]


class BitslicedKernel:
    """A compiled straight-line evaluator for a set of output roots."""

    def __init__(self, roots: Sequence[Expr],
                 function_name: str = "kernel") -> None:
        self.roots = tuple(roots)
        self.source = to_python_source(self.roots, function_name)
        namespace: dict = {}
        exec(compile(self.source, f"<bitsliced:{function_name}>", "exec"),
             namespace)
        self._function = namespace[function_name]
        variables = input_variables(self.roots)
        self._num_inputs = (max(variables) + 1) if variables else 0
        self.stats = KernelStats(
            gates=gate_counts(self.roots),
            depth=circuit_depth(self.roots),
            num_inputs=self._num_inputs,
            num_outputs=len(self.roots),
        )

    @property
    def num_inputs(self) -> int:
        """Highest input variable index + 1 (length ``inputs`` needs)."""
        return self._num_inputs

    def __call__(self, inputs: Sequence, mask) -> tuple:
        """Evaluate all outputs over ``mask``-wide words.

        ``inputs[i]`` must carry variable ``b_i``; every lane of every
        output is computed unconditionally — there is no early exit by
        construction.

        The generated source uses only ``& | ^ ~``, so any word type
        with those operators works: Python bigints with a bigint mask
        (the classic backend) or NumPy ``uint64`` arrays with a
        ``uint64`` all-ones mask (the vectorized backend).  The word
        engines in :mod:`repro.bitslice.wordengine` pick the pairing.
        """
        if len(inputs) < self._num_inputs:
            raise ValueError(
                f"kernel needs {self._num_inputs} input words, "
                f"got {len(inputs)}")
        return self._function(inputs, mask)


#: Kernels memoized by the identity of their root expressions.  A
#: kernel is immutable once built (source, exec'd function, stats —
#: per-run state lives in the sampler), and ``Expr`` nodes hash by
#: identity, so the cache hits exactly when callers share a compiled
#: circuit — which the sampler-circuit cache makes the common case.
_KERNEL_CACHE: dict[tuple, BitslicedKernel] = {}
_KERNEL_CACHE_LOCK = threading.Lock()


def shared_kernel(roots: Sequence[Expr],
                  function_name: str = "kernel") -> BitslicedKernel:
    """A (possibly shared) compiled kernel for ``roots``.

    Topological sort + source generation + ``exec`` costs tens of
    milliseconds per circuit; samplers built over the same circuit —
    every signer checkout, every keygen in a warm worker — reuse one
    kernel instead of re-paying it.
    """
    key = (tuple(roots), function_name)
    with _KERNEL_CACHE_LOCK:
        kernel = _KERNEL_CACHE.get(key)
        if kernel is None:
            kernel = BitslicedKernel(roots, function_name)
            _KERNEL_CACHE[key] = kernel
    return kernel
