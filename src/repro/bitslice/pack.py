"""Packing and unpacking of bitsliced sample words.

In the bitsliced SIMD scheme of [21]/Sec. 3.2, input variable ``bvar_i``
is a machine word whose lane ``j`` carries random bit ``b_i`` of sample
``j``; evaluating the Boolean functions with bitwise instructions
produces output words ``svar_t`` whose lane ``j`` carries bit ``t`` of
sample ``j``.  Two transpositions connect this layout to ordinary
integers:

* *input packing* is free when the words come straight from a PRNG —
  any ``w`` fresh random bits form a valid lane-sliced word; and
* *output unpacking* transposes the ``m`` output words into ``w``
  small integers (this is the "overhead of packing and unpacking bits"
  the paper mentions).

Python integers of arbitrary width serve as machine words, which lets
the batch-width ablation sweep ``w`` beyond 64 without code changes.
"""

from __future__ import annotations

from typing import Sequence


def pack_lane_bits(samples_bits: Sequence[Sequence[int]],
                   num_words: int) -> list[int]:
    """Transpose per-sample bit vectors into lane-sliced words.

    ``samples_bits[j][i]`` is bit ``b_i`` of sample ``j``; the result's
    word ``i`` holds that bit in lane ``j``.  Used by tests to feed the
    kernel exactly the strings Algorithm 1 consumed.
    """
    words = [0] * num_words
    for lane, bits in enumerate(samples_bits):
        for index, bit in enumerate(bits):
            if index >= num_words:
                break
            if bit:
                words[index] |= 1 << lane
    return words


def unpack_lanes(words: Sequence[int], width: int) -> list[int]:
    """Transpose output words back into per-lane integers.

    ``words[t]`` carries output bit ``t``; the result's entry ``j`` is
    ``sum_t bit(words[t], j) << t``.  Runs in O(total set bits) by
    iterating set bits only — cheap for sparse high-order words.
    """
    values = [0] * width
    mask = (1 << width) - 1
    for bit_index, word in enumerate(words):
        remaining = word & mask
        while remaining:
            low = remaining & -remaining
            lane = low.bit_length() - 1
            values[lane] |= 1 << bit_index
            remaining ^= low
    return values


def lane_bit_matrix(words, width: int):
    """Array transpose: ``(len(words), width)`` 0/1 matrix of lane bits.

    ``words`` is a sequence of NumPy ``uint64`` chunk arrays (the
    :class:`~repro.bitslice.wordengine.NumpyEngine` word layout); row
    ``t``, column ``j`` of the result is bit ``j`` of word ``t``.  One
    vectorized ``np.unpackbits`` replaces the per-lane bit twiddling of
    :func:`unpack_lanes` — this is the "overhead of packing and
    unpacking bits" amortized across all lanes at once.
    """
    import numpy as np

    stacked = np.vstack([word.reshape(1, -1) for word in words])
    as_bytes = stacked.astype("<u8").view(np.uint8)
    bits = np.unpackbits(as_bytes, axis=1, bitorder="little")
    return bits[:, :width]


def unpack_lanes_array(words, width: int):
    """Vectorized :func:`unpack_lanes` for NumPy chunk-array words.

    Returns an ``int64`` array of ``width`` per-lane values, where
    ``words[t]`` carries output bit ``t`` of every lane.
    """
    import numpy as np

    if not len(words):
        return np.zeros(width, dtype=np.int64)
    bits = lane_bit_matrix(words, width)
    weights = np.left_shift(np.int64(1),
                            np.arange(len(words), dtype=np.int64))
    return weights @ bits.astype(np.int64)


def lanes_where(mask_word: int, width: int) -> list[int]:
    """Indices of set lanes in a mask word (e.g. the valid mask)."""
    lanes = []
    remaining = mask_word & ((1 << width) - 1)
    while remaining:
        low = remaining & -remaining
        lanes.append(low.bit_length() - 1)
        remaining ^= low
    return lanes
