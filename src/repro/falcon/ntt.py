"""Number-theoretic transform modulo Falcon's q = 12289.

Falcon's public-key arithmetic (computing ``h = g / f``, verification's
``s0 = c - s1 h``) happens in ``Z_q[x]/(x^n + 1)`` with ``q = 12289 =
3 * 2^12 + 1``, which supports negacyclic NTTs up to ``n = 2048``.

Implementation: the standard in-place Cooley–Tukey forward / Gentleman–
Sande inverse butterflies with ``psi``-power tables in bit-reversed
order (Longa–Naehrig formulation).  The generator and the primitive
``2n``-th roots are found at import time by search — no magic constants
to mistype — and cached per ``n``.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Sequence

Q = 12289


def _is_primitive_root(candidate: int, modulus: int,
                       factorization: list[int]) -> bool:
    order = modulus - 1
    return all(pow(candidate, order // p, modulus) != 1
               for p in factorization)


@lru_cache(maxsize=1)
def _generator() -> int:
    """Smallest primitive root modulo Q (Q - 1 = 2^12 * 3)."""
    for candidate in range(2, Q):
        if _is_primitive_root(candidate, Q, [2, 3]):
            return candidate
    raise AssertionError("no generator found")  # pragma: no cover


def _bit_reverse(value: int, bits: int) -> int:
    result = 0
    for _ in range(bits):
        result = (result << 1) | (value & 1)
        value >>= 1
    return result


@lru_cache(maxsize=None)
def _tables(n: int) -> tuple[tuple[int, ...], tuple[int, ...], int]:
    """(psi powers bit-reversed, inverse psi powers bit-reversed, n^-1)."""
    if n < 2 or n & (n - 1):
        raise ValueError("n must be a power of two, at least 2")
    if (Q - 1) % (2 * n):
        raise ValueError(f"no 2n-th root of unity mod {Q} for n={n}")
    psi = pow(_generator(), (Q - 1) // (2 * n), Q)
    psi_inv = pow(psi, -1, Q)
    bits = n.bit_length() - 1
    forward = [pow(psi, _bit_reverse(i, bits), Q) for i in range(n)]
    inverse = [pow(psi_inv, _bit_reverse(i, bits), Q) for i in range(n)]
    return tuple(forward), tuple(inverse), pow(n, -1, Q)


def ntt(coefficients: Sequence[int]) -> list[int]:
    """Forward negacyclic NTT (psi-twisted, bit-reversed output order)."""
    n = len(coefficients)
    forward, _, _ = _tables(n)
    a = [c % Q for c in coefficients]
    t = n
    m = 1
    while m < n:
        t //= 2
        for i in range(m):
            s = forward[m + i]
            start = 2 * i * t
            for j in range(start, start + t):
                u = a[j]
                v = a[j + t] * s % Q
                a[j] = (u + v) % Q
                a[j + t] = (u - v) % Q
        m *= 2
    return a


def intt(values: Sequence[int]) -> list[int]:
    """Inverse negacyclic NTT."""
    n = len(values)
    _, inverse, n_inv = _tables(n)
    a = list(values)
    t = 1
    m = n
    while m > 1:
        half = m // 2
        start = 0
        for i in range(half):
            s = inverse[half + i]
            for j in range(start, start + t):
                u = a[j]
                v = a[j + t]
                a[j] = (u + v) % Q
                a[j + t] = (u - v) * s % Q
            start += 2 * t
        t *= 2
        m = half
    return [x * n_inv % Q for x in a]


def mul_ntt(a: Sequence[int], b: Sequence[int]) -> list[int]:
    """Product in ``Z_q[x]/(x^n + 1)`` via NTT."""
    fa = ntt(a)
    fb = ntt(b)
    return intt([x * y % Q for x, y in zip(fa, fb)])


def div_ntt(a: Sequence[int], b: Sequence[int]) -> list[int]:
    """Quotient ``a / b``; raises ZeroDivisionError if b not invertible."""
    fa = ntt(a)
    fb = ntt(b)
    if any(x == 0 for x in fb):
        raise ZeroDivisionError("divisor not invertible mod q")
    return intt([x * pow(y, -1, Q) % Q for x, y in zip(fa, fb)])


def is_invertible(a: Sequence[int]) -> bool:
    """True iff ``a`` is a unit in ``Z_q[x]/(x^n + 1)``."""
    return all(x != 0 for x in ntt(a))


def center_mod_q(value: int) -> int:
    """Representative of ``value mod q`` in ``(-q/2, q/2]``."""
    value %= Q
    return value - Q if value > Q // 2 else value
