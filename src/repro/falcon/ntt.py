"""Number-theoretic transform modulo Falcon's q = 12289.

Falcon's public-key arithmetic (computing ``h = g / f``, verification's
``s0 = c - s1 h``) happens in ``Z_q[x]/(x^n + 1)`` with ``q = 12289 =
3 * 2^12 + 1``, which supports negacyclic NTTs up to ``n = 2048``.

Implementation: the standard in-place Cooley–Tukey forward / Gentleman–
Sande inverse butterflies with ``psi``-power tables in bit-reversed
order (Longa–Naehrig formulation).  The generator and the primitive
``2n``-th roots are found at import time by search — no magic constants
to mistype — and cached per ``n``.

When NumPy is installed, :func:`ntt_array`, :func:`intt_array` and
:func:`mul_ntt_array` run the same butterflies over ``uint64`` arrays
(last axis = coefficients, leading axes = independent lanes) with
**lazy reduction**: inside a stage only the twiddle product is reduced
mod q, the add/sub halves of the butterfly accumulate unreduced (the
bound grows by at most ``q`` per forward stage and doubles per inverse
stage — at ``n = 2048`` everything stays far below 2^64), and a single
reduction lands at the end.  All arithmetic is exact, so the array
path returns the same integers as the scalar one — batch verification
leans on that.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Sequence

try:  # Optional: powers the vectorized array NTT below.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised in the no-numpy CI job
    _np = None

HAVE_NUMPY = _np is not None

Q = 12289


def _is_primitive_root(candidate: int, modulus: int,
                       factorization: list[int]) -> bool:
    order = modulus - 1
    return all(pow(candidate, order // p, modulus) != 1
               for p in factorization)


@lru_cache(maxsize=1)
def _generator() -> int:
    """Smallest primitive root modulo Q (Q - 1 = 2^12 * 3)."""
    for candidate in range(2, Q):
        if _is_primitive_root(candidate, Q, [2, 3]):
            return candidate
    raise AssertionError("no generator found")  # pragma: no cover


def _bit_reverse(value: int, bits: int) -> int:
    result = 0
    for _ in range(bits):
        result = (result << 1) | (value & 1)
        value >>= 1
    return result


@lru_cache(maxsize=None)
def _tables(n: int) -> tuple[tuple[int, ...], tuple[int, ...], int]:
    """(psi powers bit-reversed, inverse psi powers bit-reversed, n^-1)."""
    if n < 2 or n & (n - 1):
        raise ValueError("n must be a power of two, at least 2")
    if (Q - 1) % (2 * n):
        raise ValueError(f"no 2n-th root of unity mod {Q} for n={n}")
    psi = pow(_generator(), (Q - 1) // (2 * n), Q)
    psi_inv = pow(psi, -1, Q)
    bits = n.bit_length() - 1
    forward = [pow(psi, _bit_reverse(i, bits), Q) for i in range(n)]
    inverse = [pow(psi_inv, _bit_reverse(i, bits), Q) for i in range(n)]
    return tuple(forward), tuple(inverse), pow(n, -1, Q)


def ntt(coefficients: Sequence[int]) -> list[int]:
    """Forward negacyclic NTT (psi-twisted, bit-reversed output order)."""
    n = len(coefficients)
    forward, _, _ = _tables(n)
    a = [c % Q for c in coefficients]
    t = n
    m = 1
    while m < n:
        t //= 2
        for i in range(m):
            s = forward[m + i]
            start = 2 * i * t
            for j in range(start, start + t):
                u = a[j]
                v = a[j + t] * s % Q
                a[j] = (u + v) % Q
                a[j + t] = (u - v) % Q
        m *= 2
    return a


def intt(values: Sequence[int]) -> list[int]:
    """Inverse negacyclic NTT."""
    n = len(values)
    _, inverse, n_inv = _tables(n)
    a = list(values)
    t = 1
    m = n
    while m > 1:
        half = m // 2
        start = 0
        for i in range(half):
            s = inverse[half + i]
            for j in range(start, start + t):
                u = a[j]
                v = a[j + t]
                a[j] = (u + v) % Q
                a[j + t] = (u - v) * s % Q
            start += 2 * t
        t *= 2
        m = half
    return [x * n_inv % Q for x in a]


def mul_ntt(a: Sequence[int], b: Sequence[int]) -> list[int]:
    """Product in ``Z_q[x]/(x^n + 1)`` via NTT."""
    fa = ntt(a)
    fb = ntt(b)
    return intt([x * y % Q for x, y in zip(fa, fb)])


def div_ntt(a: Sequence[int], b: Sequence[int]) -> list[int]:
    """Quotient ``a / b``; raises ZeroDivisionError if b not invertible."""
    fa = ntt(a)
    fb = ntt(b)
    if any(x == 0 for x in fb):
        raise ZeroDivisionError("divisor not invertible mod q")
    return intt([x * pow(y, -1, Q) % Q for x, y in zip(fa, fb)])


def is_invertible(a: Sequence[int]) -> bool:
    """True iff ``a`` is a unit in ``Z_q[x]/(x^n + 1)``."""
    return all(x != 0 for x in ntt(a))


def center_mod_q(value: int) -> int:
    """Representative of ``value mod q`` in ``(-q/2, q/2]``."""
    value %= Q
    return value - Q if value > Q // 2 else value


# -- NumPy array kernels ---------------------------------------------------

def _require_numpy() -> None:
    if _np is None:
        raise RuntimeError(
            "NumPy is required for the array NTT kernels; "
            "use the scalar functions instead")


@lru_cache(maxsize=None)
def _tables_array(n: int):
    """:func:`_tables` as read-only ``uint64`` arrays."""
    _require_numpy()
    forward, inverse, n_inv = _tables(n)
    fwd = _np.array(forward, dtype=_np.uint64)
    inv = _np.array(inverse, dtype=_np.uint64)
    fwd.setflags(write=False)
    inv.setflags(write=False)
    return fwd, inv, n_inv


def ntt_array(coefficients):
    """Batched forward negacyclic NTT over the last axis.

    Lazy reduction: per stage, only the twiddle product ``v`` is taken
    mod q; the butterfly halves ``u + v`` and ``u + q - v`` stay
    unreduced, so values grow by at most ``q`` per stage (bounded by
    ``(log2(n) + 1) * q``, nowhere near the ``2^64 / q`` product
    ceiling).  One final reduction restores canonical residues.
    """
    _require_numpy()
    a = _np.asarray(coefficients)
    n = a.shape[-1]
    forward, _, _ = _tables_array(n)
    q = _np.uint64(Q)
    a = (a.astype(_np.int64) % Q).astype(_np.uint64)
    lead = a.shape[:-1]
    t = n
    m = 1
    while m < n:
        t //= 2
        view = a.reshape(*lead, m, 2 * t)
        s = forward[m:2 * m]
        u = view[..., :t]
        v = (view[..., t:] * s[:, None]) % q
        lo = u + v
        hi = (u + q) - v
        view[..., :t] = lo
        view[..., t:] = hi
        m *= 2
    return a % q


def intt_array(values):
    """Batched inverse negacyclic NTT over the last axis."""
    _require_numpy()
    a = _np.asarray(values)
    n = a.shape[-1]
    _, inverse, n_inv = _tables_array(n)
    q = _np.uint64(Q)
    a = (a.astype(_np.int64) % Q).astype(_np.uint64)
    lead = a.shape[:-1]
    # Unreduced values at most double per stage; ``pad`` (a multiple of
    # q at least the current bound) keeps ``u - v`` non-negative in
    # uint64 before the reduced twiddle multiply.
    bound = Q
    t = 1
    m = n
    while m > 1:
        half = m // 2
        view = a.reshape(*lead, half, 2 * t)
        s = inverse[half:2 * half]
        u = view[..., :t]
        v = view[..., t:]
        pad = _np.uint64(Q * (-(-bound // Q)))
        lo = u + v
        hi = (((u + pad) - v) * s[:, None]) % q
        view[..., :t] = lo
        view[..., t:] = hi
        bound = 2 * bound
        t *= 2
        m = half
    return (a % q) * _np.uint64(n_inv) % q


def mul_ntt_array(a, b):
    """Batched product in ``Z_q[x]/(x^n + 1)`` (array :func:`mul_ntt`)."""
    _require_numpy()
    fa = ntt_array(a)
    fb = ntt_array(b)
    return intt_array(fa * fb % _np.uint64(Q))


def mul_ntt_rows_array(rows, ntt_rows):
    """Rowwise product of coefficient rows with *pre-transformed* rows.

    ``rows`` are ``(..., n)`` coefficient-domain polynomials;
    ``ntt_rows`` are already in the NTT domain (e.g. each public key's
    cached ``ntt(h)`` stacked into a ``(batch, n)`` matrix).  The whole
    batch rides one forward transform, one pointwise multiply, and one
    inverse transform — this is the kernel the cross-key verification
    engine leans on, so lanes under *different* keys still share a
    single vectorized pass.
    """
    _require_numpy()
    fa = ntt_array(rows)
    return intt_array(fa * _np.asarray(ntt_rows, dtype=_np.uint64)
                      % _np.uint64(Q))


def center_mod_q_array(values):
    """Array form of :func:`center_mod_q` (``int64`` output)."""
    _require_numpy()
    a = _np.asarray(values).astype(_np.int64) % Q
    return _np.where(a > Q // 2, a - Q, a)


def is_invertible_array(rows):
    """Per-row :func:`is_invertible` over ``(..., n)`` coefficient rows.

    One batched NTT answers the invertibility question for a whole
    block of keygen candidates; the arithmetic is exact, so each verdict
    matches the scalar function's (the candidate pipeline depends on
    that for spine-independent key streams).
    """
    _require_numpy()
    values = ntt_array(_np.asarray(rows, dtype=_np.int64))
    return (values != _np.uint64(0)).all(axis=-1)
