"""Negacyclic complex FFT over R[x]/(x^n + 1) — Falcon's number field.

Falcon does key generation and signing in the FFT representation of the
cyclotomic ring: a polynomial is stored by its values at the ``n``
primitive ``2n``-th roots of unity (the roots of ``x^n + 1``).

Point ordering is defined recursively and is what makes ``split``/
``merge`` trivial (they are the workhorses of ffSampling):

* the point list of size 1 is ``[-1]`` (the root of ``x + 1``);
* the point list of size ``n`` interleaves ``+sqrt(p), -sqrt(p)`` for
  each point ``p`` of size ``n/2`` (principal square root).

So slots ``2k`` and ``2k+1`` always hold a conjugate... more precisely a
``±zeta`` pair with ``zeta^2 = points_half[k]``, giving

    f(zeta)  = f_even(zeta^2) + zeta * f_odd(zeta^2)
    f(-zeta) = f_even(zeta^2) - zeta * f_odd(zeta^2)

Everything here is pure Python ``complex``; Falcon-1024 needs ~53-bit
precision, which doubles provide (the reference implementation makes the
same choice).
"""

from __future__ import annotations

import cmath
from functools import lru_cache
from typing import Sequence


@lru_cache(maxsize=None)
def fft_points(n: int) -> tuple[complex, ...]:
    """The ``n`` evaluation points (roots of ``x^n + 1``), slot order."""
    if n < 1 or n & (n - 1):
        raise ValueError("n must be a positive power of two")
    if n == 1:
        return (complex(-1),)
    half = fft_points(n // 2)
    points = []
    for p in half:
        z = cmath.sqrt(p)
        points.extend((z, -z))
    return tuple(points)


@lru_cache(maxsize=None)
def _merge_roots(n: int) -> tuple[complex, ...]:
    """``zeta_k = sqrt(points(n/2)[k])`` used by merge/split at size n."""
    return tuple(cmath.sqrt(p) for p in fft_points(n // 2))


def fft(coefficients: Sequence[float | complex]) -> list[complex]:
    """Forward negacyclic FFT of a coefficient vector."""
    n = len(coefficients)
    if n == 1:
        return [complex(coefficients[0])]
    if n & (n - 1):
        raise ValueError("length must be a power of two")
    even = fft(coefficients[0::2])
    odd = fft(coefficients[1::2])
    roots = _merge_roots(n)
    out = [0j] * n
    for k in range(n // 2):
        twist = roots[k] * odd[k]
        out[2 * k] = even[k] + twist
        out[2 * k + 1] = even[k] - twist
    return out


def ifft(values: Sequence[complex]) -> list[float]:
    """Inverse FFT returning real coefficients (imag parts dropped)."""
    return [v.real for v in _ifft_complex(list(values))]


def _ifft_complex(values: list[complex]) -> list[complex]:
    n = len(values)
    if n == 1:
        return [values[0]]
    if n & (n - 1):
        raise ValueError("length must be a power of two")
    even_vals, odd_vals = split_fft(values)
    even = _ifft_complex(even_vals)
    odd = _ifft_complex(odd_vals)
    out = [0j] * n
    out[0::2] = even
    out[1::2] = odd
    return out


def split_fft(values: Sequence[complex]) -> tuple[list[complex],
                                                  list[complex]]:
    """FFT-domain split: ``fft(f) -> fft(f_even), fft(f_odd)``.

    Used directly by ffSampling's tree descent (Falcon's
    ``splitfft``); exactly inverts :func:`merge_fft`.
    """
    n = len(values)
    roots = _merge_roots(n)
    even = [0j] * (n // 2)
    odd = [0j] * (n // 2)
    for k in range(n // 2):
        a, b = values[2 * k], values[2 * k + 1]
        even[k] = (a + b) / 2
        odd[k] = (a - b) / (2 * roots[k])
    return even, odd


def merge_fft(even: Sequence[complex], odd: Sequence[complex],
              ) -> list[complex]:
    """FFT-domain merge: ``fft(f_even), fft(f_odd) -> fft(f)``."""
    n = 2 * len(even)
    roots = _merge_roots(n)
    out = [0j] * n
    for k in range(n // 2):
        twist = roots[k] * odd[k]
        out[2 * k] = even[k] + twist
        out[2 * k + 1] = even[k] - twist
    return out


# -- pointwise ring operations in the FFT domain ---------------------------

def add_fft(a: Sequence[complex], b: Sequence[complex]) -> list[complex]:
    return [x + y for x, y in zip(a, b, strict=True)]


def sub_fft(a: Sequence[complex], b: Sequence[complex]) -> list[complex]:
    return [x - y for x, y in zip(a, b, strict=True)]


def mul_fft(a: Sequence[complex], b: Sequence[complex]) -> list[complex]:
    return [x * y for x, y in zip(a, b, strict=True)]


def div_fft(a: Sequence[complex], b: Sequence[complex]) -> list[complex]:
    return [x / y for x, y in zip(a, b, strict=True)]


def neg_fft(a: Sequence[complex]) -> list[complex]:
    return [-x for x in a]


def adj_fft(a: Sequence[complex]) -> list[complex]:
    """Adjoint (Hermitian conjugate) of a *real* polynomial.

    For real ``f`` and ``|zeta| = 1``, ``f*(zeta) = conj(f(zeta))``
    slot-by-slot, so no reordering is required.
    """
    return [x.conjugate() for x in a]


def fft_of_int_poly(coefficients: Sequence[int]) -> list[complex]:
    """FFT of an integer polynomial (convenience with float cast)."""
    return fft([float(c) for c in coefficients])


def round_ifft(values: Sequence[complex]) -> list[int]:
    """Inverse FFT followed by rounding to nearest integers."""
    return [round(c) for c in ifft(values)]
