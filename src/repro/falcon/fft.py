"""Negacyclic complex FFT over R[x]/(x^n + 1) — Falcon's number field.

Falcon does key generation and signing in the FFT representation of the
cyclotomic ring: a polynomial is stored by its values at the ``n``
primitive ``2n``-th roots of unity (the roots of ``x^n + 1``).

Point ordering is defined recursively and is what makes ``split``/
``merge`` trivial (they are the workhorses of ffSampling):

* the point list of size 1 is ``[-1]`` (the root of ``x + 1``);
* the point list of size ``n`` interleaves ``+sqrt(p), -sqrt(p)`` for
  each point ``p`` of size ``n/2`` (principal square root).

So slots ``2k`` and ``2k+1`` always hold a conjugate... more precisely a
``±zeta`` pair with ``zeta^2 = points_half[k]``, giving

    f(zeta)  = f_even(zeta^2) + zeta * f_odd(zeta^2)
    f(-zeta) = f_even(zeta^2) - zeta * f_odd(zeta^2)

Everything here is pure Python ``complex``; Falcon-1024 needs ~53-bit
precision, which doubles provide (the reference implementation makes the
same choice).

Array kernels
-------------
When NumPy is installed, every transform also exists in an array form
(:func:`fft_array`, :func:`ifft_array`, :func:`split_fft_array`,
:func:`merge_fft_array`, and the pointwise ``*_array`` helpers) working
on ``complex128`` arrays of shape ``(..., n)`` — leading axes are
independent lanes, which is how the batch signing path runs one kernel
pass over a whole batch of messages.

The array kernels are **bit-identical** to the scalar functions, not
merely close: complex multiplication is hand-rolled from real ops using
CPython's ``_Py_c_prod`` formula and division uses CPython's Smith-style
``_Py_c_quot`` (NumPy's own complex ``*``/``/`` round differently), and
the twiddle factors are the exact same ``cmath.sqrt`` values the scalar
recursion uses.  The differential tests pin this slot for slot, which
is what lets the vectorized signing spine reproduce scalar signatures
byte for byte.
"""

from __future__ import annotations

import cmath
from functools import lru_cache
from typing import Sequence

try:  # Optional: powers the vectorized array kernels below.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised in the no-numpy CI job
    _np = None

HAVE_NUMPY = _np is not None


@lru_cache(maxsize=None)
def fft_points(n: int) -> tuple[complex, ...]:
    """The ``n`` evaluation points (roots of ``x^n + 1``), slot order."""
    if n < 1 or n & (n - 1):
        raise ValueError("n must be a positive power of two")
    if n == 1:
        return (complex(-1),)
    half = fft_points(n // 2)
    points = []
    for p in half:
        z = cmath.sqrt(p)
        points.extend((z, -z))
    return tuple(points)


@lru_cache(maxsize=None)
def _merge_roots(n: int) -> tuple[complex, ...]:
    """``zeta_k = sqrt(points(n/2)[k])`` used by merge/split at size n."""
    return tuple(cmath.sqrt(p) for p in fft_points(n // 2))


def fft(coefficients: Sequence[float | complex]) -> list[complex]:
    """Forward negacyclic FFT of a coefficient vector."""
    n = len(coefficients)
    if n == 1:
        return [complex(coefficients[0])]
    if n & (n - 1):
        raise ValueError("length must be a power of two")
    even = fft(coefficients[0::2])
    odd = fft(coefficients[1::2])
    roots = _merge_roots(n)
    out = [0j] * n
    for k in range(n // 2):
        twist = roots[k] * odd[k]
        out[2 * k] = even[k] + twist
        out[2 * k + 1] = even[k] - twist
    return out


def ifft(values: Sequence[complex]) -> list[float]:
    """Inverse FFT returning real coefficients (imag parts dropped)."""
    return [v.real for v in _ifft_complex(list(values))]


def _ifft_complex(values: list[complex]) -> list[complex]:
    n = len(values)
    if n == 1:
        return [values[0]]
    if n & (n - 1):
        raise ValueError("length must be a power of two")
    even_vals, odd_vals = split_fft(values)
    even = _ifft_complex(even_vals)
    odd = _ifft_complex(odd_vals)
    out = [0j] * n
    out[0::2] = even
    out[1::2] = odd
    return out


def split_fft(values: Sequence[complex]) -> tuple[list[complex],
                                                  list[complex]]:
    """FFT-domain split: ``fft(f) -> fft(f_even), fft(f_odd)``.

    Used directly by ffSampling's tree descent (Falcon's
    ``splitfft``); exactly inverts :func:`merge_fft`.
    """
    n = len(values)
    roots = _merge_roots(n)
    even = [0j] * (n // 2)
    odd = [0j] * (n // 2)
    for k in range(n // 2):
        a, b = values[2 * k], values[2 * k + 1]
        even[k] = (a + b) / 2
        odd[k] = (a - b) / (2 * roots[k])
    return even, odd


def merge_fft(even: Sequence[complex], odd: Sequence[complex],
              ) -> list[complex]:
    """FFT-domain merge: ``fft(f_even), fft(f_odd) -> fft(f)``."""
    n = 2 * len(even)
    roots = _merge_roots(n)
    out = [0j] * n
    for k in range(n // 2):
        twist = roots[k] * odd[k]
        out[2 * k] = even[k] + twist
        out[2 * k + 1] = even[k] - twist
    return out


# -- pointwise ring operations in the FFT domain ---------------------------

def add_fft(a: Sequence[complex], b: Sequence[complex]) -> list[complex]:
    return [x + y for x, y in zip(a, b, strict=True)]


def sub_fft(a: Sequence[complex], b: Sequence[complex]) -> list[complex]:
    return [x - y for x, y in zip(a, b, strict=True)]


def mul_fft(a: Sequence[complex], b: Sequence[complex]) -> list[complex]:
    return [x * y for x, y in zip(a, b, strict=True)]


def div_fft(a: Sequence[complex], b: Sequence[complex]) -> list[complex]:
    return [x / y for x, y in zip(a, b, strict=True)]


def neg_fft(a: Sequence[complex]) -> list[complex]:
    return [-x for x in a]


def adj_fft(a: Sequence[complex]) -> list[complex]:
    """Adjoint (Hermitian conjugate) of a *real* polynomial.

    For real ``f`` and ``|zeta| = 1``, ``f*(zeta) = conj(f(zeta))``
    slot-by-slot, so no reordering is required.
    """
    return [x.conjugate() for x in a]


def fft_of_int_poly(coefficients: Sequence[int]) -> list[complex]:
    """FFT of an integer polynomial (convenience with float cast)."""
    return fft([float(c) for c in coefficients])


def round_ifft(values: Sequence[complex]) -> list[int]:
    """Inverse FFT followed by rounding to nearest integers."""
    return [round(c) for c in ifft(values)]


# -- NumPy array kernels ---------------------------------------------------
#
# Shape convention: every function operates on the last axis (length n);
# leading axes are independent lanes (e.g. a batch of messages).

def _require_numpy() -> None:
    if _np is None:
        raise RuntimeError(
            "NumPy is required for the array FFT kernels; "
            "use the scalar functions instead")


@lru_cache(maxsize=None)
def _bitrev_perm(n: int):
    """Leaf order of the even/odd recursion: index ``g`` holds
    coefficient ``bitrev(g)`` (an involution, so it inverts itself)."""
    _require_numpy()
    bits = n.bit_length() - 1
    perm = _np.zeros(n, dtype=_np.intp)
    for g in range(n):
        value, rev = g, 0
        for _ in range(bits):
            rev = (rev << 1) | (value & 1)
            value >>= 1
        perm[g] = rev
    perm.setflags(write=False)
    return perm


@lru_cache(maxsize=None)
def _merge_roots_array(n: int):
    """:func:`_merge_roots` as a ``complex128`` array (same values)."""
    _require_numpy()
    roots = _np.array(_merge_roots(n), dtype=_np.complex128)
    roots.setflags(write=False)
    return roots


@lru_cache(maxsize=None)
def _split_div_tables(n: int):
    """Precomputed Smith-division tables for the split denominators.

    The split's divisor ``2 * roots[k]`` is a constant per slot, so the
    branch choice, ratio and denominator of CPython's ``_Py_c_quot``
    are computed once here (in Python floats, the exact values the
    scalar code derives per call) and the per-call work reduces to a
    few fused array ops in :func:`_div_by_split_tables`.
    """
    _require_numpy()
    use_real = _np.empty(n // 2, dtype=bool)
    ratio = _np.empty(n // 2, dtype=_np.float64)
    denom = _np.empty(n // 2, dtype=_np.float64)
    for k, root in enumerate(_merge_roots(n)):
        b = 2 * root
        if abs(b.real) >= abs(b.imag):
            use_real[k] = True
            ratio[k] = b.imag / b.real
            denom[k] = b.real + b.imag * ratio[k]
        else:
            use_real[k] = False
            ratio[k] = b.real / b.imag
            denom[k] = b.real * ratio[k] + b.imag
    for table in (use_real, ratio, denom):
        table.setflags(write=False)
    return use_real, ratio, denom


def _div_by_split_tables(a, n: int):
    """``a / (2 * roots)`` with the precomputed tables for size ``n``.

    Performs exactly the selected-branch arithmetic of :func:`cdiv`
    (hence of CPython's ``_Py_c_quot``) per slot; the unselected
    branch's values are finite garbage discarded by ``where``.
    """
    use_real, ratio, denom = _split_div_tables(n)
    ar, ai = a.real, a.imag
    ar_ratio = ar * ratio
    ai_ratio = ai * ratio
    out = _np.empty(a.shape, dtype=_np.complex128)
    out.real = _np.where(use_real, (ar + ai_ratio) / denom,
                         (ar_ratio + ai) / denom)
    out.imag = _np.where(use_real, (ai - ar_ratio) / denom,
                         (ai_ratio - ar) / denom)
    return out


def cmul(a, b):
    """Elementwise complex product, bit-identical to CPython's.

    NumPy's complex ``*`` may round differently from CPython's
    ``_Py_c_prod`` (SIMD/FMA paths); this hand-rolled version performs
    the exact scalar sequence ``(ar*br - ai*bi, ar*bi + ai*br)`` with
    separate IEEE ops, so vectorized and scalar pipelines agree slot
    for slot.
    """
    out = _np.empty(_np.broadcast(a, b).shape, dtype=_np.complex128)
    ar, ai = a.real, a.imag
    br, bi = b.real, b.imag
    out.real = ar * br - ai * bi
    out.imag = ar * bi + ai * br
    return out


def cdiv(a, b):
    """Elementwise complex quotient via CPython's Smith algorithm.

    Mirrors ``_Py_c_quot`` branch for branch (scale by whichever
    component of the divisor is larger), which both CPython and the
    scalar code use — NumPy's own ``/`` multiplies by a reciprocal and
    rounds differently.
    """
    ar, ai = a.real, a.imag
    br, bi = b.real, b.imag
    use_real = _np.abs(br) >= _np.abs(bi)
    with _np.errstate(divide="ignore", invalid="ignore"):
        ratio_r = bi / br
        denom_r = br + bi * ratio_r
        real_r = (ar + ai * ratio_r) / denom_r
        imag_r = (ai - ar * ratio_r) / denom_r
        ratio_i = br / bi
        denom_i = br * ratio_i + bi
        real_i = (ar * ratio_i + ai) / denom_i
        imag_i = (ai * ratio_i - ar) / denom_i
    out = _np.empty(_np.broadcast(a, b).shape, dtype=_np.complex128)
    out.real = _np.where(use_real, real_r, real_i)
    out.imag = _np.where(use_real, imag_r, imag_i)
    return out


def _div_real(a, divisor: float):
    """``a / divisor`` for a real divisor, matching ``complex / int``.

    CPython routes ``complex / int`` through ``_Py_c_quot`` with a zero
    imaginary part, which reduces to dividing both components.
    """
    out = _np.empty(a.shape, dtype=_np.complex128)
    out.real = a.real / divisor
    out.imag = a.imag / divisor
    return out


def _as_complex_array(values):
    a = _np.asarray(values)
    if a.dtype != _np.complex128:
        a = a.astype(_np.complex128)
    return a


def fft_array(coefficients):
    """Batched forward FFT over the last axis; see :func:`fft`.

    Iterative bottom-up form of the scalar recursion: coefficients are
    laid out in the recursion's leaf order (bit-reversal), then merged
    level by level with exactly the scalar butterfly
    ``even[k] +/- roots[k] * odd[k]``.
    """
    _require_numpy()
    a = _as_complex_array(coefficients)
    n = a.shape[-1]
    if n == 1:
        return a.copy()
    if n & (n - 1):
        raise ValueError("length must be a power of two")
    state = a[..., _bitrev_perm(n)]
    lead = state.shape[:-1]
    m = 1
    while m < n:
        m2 = 2 * m
        view = state.reshape(*lead, n // m2, 2, m)
        even = view[..., 0, :]
        odd = view[..., 1, :]
        twist = cmul(_merge_roots_array(m2), odd)
        merged = _np.empty((*lead, n // m2, m2), dtype=_np.complex128)
        merged[..., 0::2] = even + twist
        merged[..., 1::2] = even - twist
        state = merged.reshape(*lead, n)
        m = m2
    return state


def ifft_array(values):
    """Batched inverse FFT over the last axis, returning real coeffs."""
    _require_numpy()
    a = _as_complex_array(values)
    n = a.shape[-1]
    if n == 1:
        return a.real.copy()
    if n & (n - 1):
        raise ValueError("length must be a power of two")
    lead = a.shape[:-1]
    state = a
    m = n
    while m > 1:
        view = state.reshape(*lead, n // m, m)
        hi = view[..., 0::2]
        lo = view[..., 1::2]
        even = (hi + lo) / 2.0
        odd = _div_by_split_tables(hi - lo, m)
        split = _np.empty((*lead, n // m, 2, m // 2),
                          dtype=_np.complex128)
        split[..., 0, :] = even
        split[..., 1, :] = odd
        state = split.reshape(*lead, n)
        m //= 2
    return state[..., _bitrev_perm(n)].real.copy()


def split_fft_array(values):
    """Array form of :func:`split_fft` (over the last axis)."""
    _require_numpy()
    a = _as_complex_array(values)
    n = a.shape[-1]
    hi = a[..., 0::2]
    lo = a[..., 1::2]
    even = (hi + lo) / 2.0
    odd = _div_by_split_tables(hi - lo, n)
    return even, odd


def merge_fft_array(even, odd):
    """Array form of :func:`merge_fft` (over the last axis)."""
    _require_numpy()
    e = _as_complex_array(even)
    o = _as_complex_array(odd)
    n = 2 * e.shape[-1]
    twist = cmul(_merge_roots_array(n), o)
    out = _np.empty((*e.shape[:-1], n), dtype=_np.complex128)
    out[..., 0::2] = e + twist
    out[..., 1::2] = e - twist
    return out


def fft_of_int_rows(rows):
    """Batched :func:`fft_of_int_poly`: FFT of ``(batch, n)`` integer rows.

    ``np.asarray(..., dtype=float64)`` applies the same
    round-to-nearest int-to-float conversion as the scalar
    ``float(c)`` cast, so each output row is bit-identical to
    ``fft_of_int_poly`` of that row (the keygen pipeline's batched
    Gram–Schmidt filter relies on this).
    """
    _require_numpy()
    return fft_array(_np.asarray(rows, dtype=_np.float64))


def mul_fft_array(a, b):
    """Pointwise product (array form of :func:`mul_fft`)."""
    _require_numpy()
    return cmul(_as_complex_array(a), _as_complex_array(b))


def div_fft_array(a, b):
    """Pointwise quotient (array form of :func:`div_fft`)."""
    _require_numpy()
    return cdiv(_as_complex_array(a), _as_complex_array(b))


def adj_fft_array(a):
    """Adjoint (array form of :func:`adj_fft`)."""
    _require_numpy()
    return _np.conj(_as_complex_array(a))


def round_ifft_array(values):
    """Inverse FFT + round to nearest integers (``int64`` array).

    ``np.rint`` rounds half to even, exactly like the builtin
    ``round`` the scalar path uses.
    """
    _require_numpy()
    return _np.rint(ifft_array(values)).astype(_np.int64)
