"""Falcon parameter sets.

The paper's Table 1 instantiates Falcon at ``N in {256, 512, 1024}``
(its "Level 1/2/3", matching the 2018 NIST submission's ladder).  For
``N = 512`` and ``N = 1024`` the constants are the official ones from
the Falcon specification; every other power-of-two degree (used by the
paper's Level 1 at 256 and by fast unit tests at 8..128) is derived from
the specification's own formula chain:

* ``eps       = 1 / sqrt(lambda * 2^64)``   (query bound Q_s = 2^64)
* ``smoothing = (1/pi) * sqrt(ln(4 N (1 + 1/eps)) / 2)``
* ``sigma     = 1.17 * sqrt(q) * smoothing``
* ``sigma_min = smoothing``  (the spec's eta-epsilon of Z, reused)
* ``beta^2    = floor((1.1 * sigma * sqrt(2N))^2)``

which reproduces the official 512/1024 constants to ~5 significant
digits (lambda = 128 for N <= 512, 256 for N = 1024).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

#: Falcon's modulus, shared by all parameter sets.
Q = 12289

#: Upper bound on the ffSampling leaf standard deviations.
SIGMA_MAX = 1.8205

#: Salt length in bytes (the spec's 320-bit nonce).
SALT_BYTES = 40


@dataclass(frozen=True)
class FalconParams:
    """One Falcon instance."""

    n: int
    sigma: float
    sigma_min: float
    sig_bound: int           # beta^2: max squared norm of (s0, s1)
    sig_payload_bits: int    # compressed-signature budget for s1

    @property
    def sigma_max(self) -> float:
        return SIGMA_MAX

    @property
    def keygen_sigma(self) -> float:
        """Standard deviation of f, g coefficients:
        ``1.17 * sqrt(q / (2N))``."""
        return 1.17 * math.sqrt(Q / (2 * self.n))

    @property
    def salt_bytes(self) -> int:
        return SALT_BYTES


def _security_lambda(n: int) -> int:
    return 256 if n >= 1024 else 128


@lru_cache(maxsize=None)
def falcon_params(n: int) -> FalconParams:
    """Parameter set for ring degree ``n`` (power of two, 4..1024)."""
    if n < 4 or n & (n - 1):
        raise ValueError("n must be a power of two, at least 4")
    if n == 512:
        sigma, sigma_min = 165.7366171829776, 1.2778336969128337
        sig_bound = 34034726
    elif n == 1024:
        sigma, sigma_min = 168.38857144654395, 1.29828033442751
        sig_bound = 70265242
    else:
        eps = 1.0 / math.sqrt(_security_lambda(n) * 2.0 ** 64)
        smoothing = (1.0 / math.pi) * math.sqrt(
            math.log(4 * n * (1 + 1 / eps)) / 2)
        sigma = 1.17 * math.sqrt(Q) * smoothing
        sigma_min = smoothing
        sig_bound = math.floor((1.1 * sigma * math.sqrt(2 * n)) ** 2)
    # ~10 bits/coefficient plus slack; resampling covers overflows
    # (official byte lengths for 512/1024 correspond to ~9.8 bits).
    payload_bits = 11 * n + 64
    return FalconParams(n=n, sigma=sigma, sigma_min=sigma_min,
                        sig_bound=sig_bound,
                        sig_payload_bits=payload_bits)


#: The paper's three security levels (Table 1).
PAPER_LEVELS = {
    "Level 1": 256,
    "Level 2": 512,
    "Level 3": 1024,
}
