"""Append-only signed-record ledger: the verify-heavy workload.

# ct: exempt(ct): append-only ledger plane — every value handled here
# is public protocol data (encoded public keys, messages, signatures,
# block headers and their hashes); no key material, sampler state or
# other secret-tainted value ever flows into this module.

The ROADMAP's "signed-ledger scenario" made concrete: records —
``(public key, message, signature)`` under **arbitrary, mixed keys** —
arrive into a bounded :class:`Mempool`; a block builder drains it,
pushes the whole mixed-key batch through the cross-key verification
engine (:func:`repro.falcon.batchverify.verify_batch_report`) in one
vectorized NTT pass, commits the verified lanes into a hash-chained
block and reports the rejected lanes with per-lane reasons — a bad
record *never* blocks the rest of its batch.

Blocks persist as one JSON line each, appended with flush + fsync, so
a crash can tear at most the final line; :class:`Ledger` detects the
torn tail on load, truncates it, and resumes from the last durable
block (the crash-recovery round-trip tests pin this).

Committed blocks optionally carry each record's recomputed ``s1`` rows
(``expand=True``, the default) — captured for free during commit
verification.  A later audit can then take the aggregate-then-verify
fast path: ``verify_chain(mode="aggregate")`` re-checks each block via
per-lane shortness plus one random-linear-combination congruence whose
weights are seeded by the block's own header hash, falling back to the
full engine pass per block whenever the aggregate check fails — so
audit verdicts are exact either way.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from hashlib import sha256
from pathlib import Path
from typing import Sequence

from .batchverify import BatchVerifyReport, verify_batch_report
from .scheme import PublicKey, Signature
from .serialize import (
    SerializeError,
    decode_public_key,
    decode_signature,
    encode_public_key,
    encode_signature,
)

GENESIS_HASH = "0" * 64

#: Audit modes :meth:`Ledger.verify_chain` understands.
AUDIT_MODES = ("full", "aggregate")


class LedgerError(Exception):
    """Corruption or protocol violation in the ledger plane."""


class MempoolFull(LedgerError):
    """The bounded mempool refused a record (back-pressure signal)."""


class RecordError(LedgerError):
    """A record's encoded fields failed to decode."""


def _record_id(public_key_bytes: bytes, message: bytes,
               signature_bytes: bytes) -> str:
    digest = sha256()
    digest.update(b"falcon-record")
    for part in (public_key_bytes, message, signature_bytes):
        digest.update(len(part).to_bytes(4, "big"))
        digest.update(part)
    return digest.hexdigest()


@dataclass(frozen=True)
class SignedRecord:
    """One ledger entry: a signed message under some public key.

    Fields are the canonical wire encodings (so the record is
    self-contained on disk and its identity is a pure content hash);
    :meth:`decode` rebuilds the live objects for verification.
    """

    public_key_bytes: bytes
    message: bytes
    signature_bytes: bytes

    @classmethod
    def make(cls, public_key: PublicKey, message: bytes,
             signature: Signature) -> "SignedRecord":
        return cls(public_key_bytes=encode_public_key(public_key),
                   message=bytes(message),
                   signature_bytes=encode_signature(signature,
                                                    public_key.n))

    @property
    def record_id(self) -> str:
        return _record_id(self.public_key_bytes, self.message,
                          self.signature_bytes)

    def decode(self) -> tuple[PublicKey, Signature, int]:
        try:
            public_key = decode_public_key(self.public_key_bytes)
            signature, n = decode_signature(self.signature_bytes)
        except SerializeError as error:
            raise RecordError(str(error)) from error
        if n != public_key.n:
            raise RecordError(
                f"signature degree {n} != public-key degree "
                f"{public_key.n}")
        return public_key, signature, n


class Mempool:
    """Bounded FIFO of pending records with content-hash dedup."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("mempool capacity must be positive")
        self.capacity = capacity
        self._pending: list[SignedRecord] = []
        self._ids: set[str] = set()
        self.dropped_duplicates = 0

    def __len__(self) -> int:
        return len(self._pending)

    def add(self, record: SignedRecord) -> bool:
        """Queue a record.  False = duplicate (dropped); raises
        :class:`MempoolFull` when at capacity — admission control is
        the *caller's* back-pressure signal, silent drops would turn
        overload into data loss."""
        record_id = record.record_id
        if record_id in self._ids:
            self.dropped_duplicates += 1
            return False
        if len(self._pending) >= self.capacity:
            raise MempoolFull(
                f"mempool at capacity ({self.capacity} records)")
        self._pending.append(record)
        self._ids.add(record_id)
        return True

    def drain(self, limit: int | None = None) -> list[SignedRecord]:
        """Pop up to ``limit`` records in arrival order."""
        if limit is None or limit >= len(self._pending):
            drained, self._pending = self._pending, []
        else:
            drained = self._pending[:limit]
            self._pending = self._pending[limit:]
        for record in drained:
            self._ids.discard(record.record_id)
        return drained


def _records_root(record_ids: Sequence[str]) -> str:
    digest = sha256(b"falcon-records")
    for record_id in record_ids:
        digest.update(bytes.fromhex(record_id))
    return digest.hexdigest()


@dataclass(frozen=True)
class BlockHeader:
    """Hash-chained block header (identity = content hash)."""

    index: int
    prev_hash: str
    records_root: str
    count: int
    timestamp_us: int

    @property
    def hash(self) -> str:
        return sha256(
            b"falcon-block|%d|%s|%s|%d|%d"
            % (self.index, self.prev_hash.encode("ascii"),
               self.records_root.encode("ascii"), self.count,
               self.timestamp_us)).hexdigest()


@dataclass(frozen=True)
class Block:
    """A committed block: header + verified records (+ optional
    expansion — the recomputed ``s1`` rows the aggregate audit eats)."""

    header: BlockHeader
    records: tuple[SignedRecord, ...]
    s1_rows: tuple[tuple[int, ...], ...] | None = None

    def to_json(self) -> str:
        payload = {
            "header": {
                "index": self.header.index,
                "prev": self.header.prev_hash,
                "root": self.header.records_root,
                "count": self.header.count,
                "ts_us": self.header.timestamp_us,
                "hash": self.header.hash,
            },
            "records": [
                {"pk": record.public_key_bytes.hex(),
                 "msg": record.message.hex(),
                 "sig": record.signature_bytes.hex()}
                for record in self.records
            ],
            "s1": ([list(row) for row in self.s1_rows]
                   if self.s1_rows is not None else None),
        }
        return json.dumps(payload, separators=(",", ":"),
                          sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "Block":
        try:
            payload = json.loads(line)
            header = BlockHeader(
                index=payload["header"]["index"],
                prev_hash=payload["header"]["prev"],
                records_root=payload["header"]["root"],
                count=payload["header"]["count"],
                timestamp_us=payload["header"]["ts_us"])
            records = tuple(
                SignedRecord(public_key_bytes=bytes.fromhex(entry["pk"]),
                             message=bytes.fromhex(entry["msg"]),
                             signature_bytes=bytes.fromhex(entry["sig"]))
                for entry in payload["records"])
            s1_rows = (tuple(tuple(row) for row in payload["s1"])
                       if payload.get("s1") is not None else None)
            stored_hash = payload["header"]["hash"]
        except (ValueError, KeyError, TypeError) as error:
            raise LedgerError(f"malformed block line: {error}") \
                from error
        if header.hash != stored_hash:
            raise LedgerError(
                f"block {header.index}: stored hash does not match "
                f"header content")
        if header.count != len(records):
            raise LedgerError(
                f"block {header.index}: count {header.count} != "
                f"{len(records)} records")
        return cls(header=header, records=records, s1_rows=s1_rows)


@dataclass
class CommitResult:
    """What one :meth:`Ledger.commit` round did."""

    block: Block | None
    accepted: list[str]
    rejected: list[tuple[str, str]]  # (record_id, reason)
    report: BatchVerifyReport | None = None


@dataclass
class ChainAudit:
    """Outcome of :meth:`Ledger.verify_chain`."""

    ok: bool
    mode: str
    blocks: int
    records: int
    failures: list[tuple[int, str | None, str]] = field(
        default_factory=list)  # (block index, record_id | None, why)
    aggregate_fastpath: int = 0  # blocks settled by the RLC pre-check


class Ledger:
    """Append-only signed-record ledger over the cross-key engine.

    ``directory=None`` keeps the chain in memory only (tests, bench
    warm-up); otherwise blocks append to ``<directory>/ledger.jsonl``
    with flush + fsync per block and torn-tail recovery on load.
    ``expand=True`` stores each committed record's recomputed ``s1``
    row so audits can ride the aggregate fast path.
    """

    FILENAME = "ledger.jsonl"

    def __init__(self, directory: str | Path | None = None, *,
                 capacity: int = 4096, max_block_records: int = 1024,
                 expand: bool = True, spine: str = "auto") -> None:
        if max_block_records < 1:
            raise ValueError("max_block_records must be positive")
        self.mempool = Mempool(capacity)
        self.max_block_records = max_block_records
        self.expand = expand
        self.spine = spine
        self.blocks: list[Block] = []
        self.path: Path | None = None
        self.recovered_bytes = 0  # torn tail truncated on load
        self.rejected_total: dict[str, int] = {}
        self._committed: set[str] = set()
        if directory is not None:
            directory = Path(directory)
            directory.mkdir(parents=True, exist_ok=True)
            self.path = directory / self.FILENAME
            self._load()

    # -- persistence -------------------------------------------------------

    def _load(self) -> None:
        """Replay the on-disk chain; truncate a torn final line.

        A torn *final* line is the signature of a crash mid-append
        (each block is written with flush + fsync, so earlier lines
        are durable); anything malformed before the tail is real
        corruption and raises :class:`LedgerError` instead.
        """
        assert self.path is not None
        if not self.path.exists():
            return
        raw = self.path.read_bytes()
        offset = 0
        valid = 0
        while offset < len(raw):
            newline = raw.find(b"\n", offset)
            if newline < 0:  # no terminator: torn tail
                break
            line = raw[offset:newline]
            try:
                block = Block.from_json(line.decode("utf-8"))
            except (LedgerError, UnicodeDecodeError) as error:
                if newline == len(raw) - 1:
                    break  # torn tail that happens to end in \n
                raise LedgerError(
                    f"corrupt block at byte {offset}: {error}") \
                    from error
            self._check_linkage(block)
            self.blocks.append(block)
            self._committed.update(record.record_id
                                   for record in block.records)
            offset = newline + 1
            valid = offset
        if valid < len(raw):
            self.recovered_bytes = len(raw) - valid
            with open(self.path, "r+b") as handle:
                handle.truncate(valid)
                handle.flush()
                os.fsync(handle.fileno())

    def _check_linkage(self, block: Block) -> None:
        expected_prev = self.tip_hash
        expected_index = len(self.blocks)
        if block.header.index != expected_index:
            raise LedgerError(
                f"block index {block.header.index}, expected "
                f"{expected_index}")
        if block.header.prev_hash != expected_prev:
            raise LedgerError(
                f"block {block.header.index}: prev_hash does not "
                f"match chain tip")
        root = _records_root([record.record_id
                              for record in block.records])
        if block.header.records_root != root:
            raise LedgerError(
                f"block {block.header.index}: records_root does not "
                f"match records")

    def _append_to_disk(self, block: Block) -> None:
        if self.path is None:
            return
        line = block.to_json().encode("utf-8") + b"\n"
        with open(self.path, "ab") as handle:
            handle.write(line)
            handle.flush()
            os.fsync(handle.fileno())

    # -- chain state -------------------------------------------------------

    @property
    def height(self) -> int:
        return len(self.blocks)

    @property
    def tip_hash(self) -> str:
        return (self.blocks[-1].header.hash if self.blocks
                else GENESIS_HASH)

    @property
    def records_committed(self) -> int:
        return len(self._committed)

    # -- intake ------------------------------------------------------------

    def submit(self, record: SignedRecord) -> bool:
        """Queue a record for the next block.  False = duplicate of a
        pending *or already-committed* record; raises
        :class:`MempoolFull` at capacity."""
        if record.record_id in self._committed:
            self.mempool.dropped_duplicates += 1
            return False
        return self.mempool.add(record)

    def submit_signed(self, public_key: PublicKey, message: bytes,
                      signature: Signature) -> SignedRecord:
        """Encode + queue in one step; returns the record either way
        (check :attr:`Mempool.dropped_duplicates` for dedup stats)."""
        record = SignedRecord.make(public_key, message, signature)
        self.submit(record)
        return record

    # -- commit ------------------------------------------------------------

    def commit(self, max_records: int | None = None, *,
               timestamp_us: int = 0) -> CommitResult:
        """Drain the mempool and commit one batch-verified block.

        The entire drained batch — arbitrary mixed keys and degrees —
        rides one cross-key engine pass; lanes that fail are returned
        in ``rejected`` with the engine's per-lane reason and never
        block their batch.  No block is written when nothing verifies.
        """
        limit = self.max_block_records
        if max_records is not None:
            limit = min(limit, max_records)
        drained = self.mempool.drain(limit)
        rejected: list[tuple[str, str]] = []
        lanes: list[tuple[SignedRecord, PublicKey, Signature]] = []
        for record in drained:
            record_id = record.record_id
            if record_id in self._committed:
                rejected.append((record_id, "duplicate"))
                continue
            try:
                public_key, signature, _ = record.decode()
            except RecordError as error:
                rejected.append((record_id, f"decode: {error}"))
                continue
            lanes.append((record, public_key, signature))
        report = None
        accepted: list[SignedRecord] = []
        s1_rows: list[tuple[int, ...]] = []
        if lanes:
            report = verify_batch_report(
                [(public_key, record.message, signature)
                 for record, public_key, signature in lanes],
                spine=self.spine, keep_s1=self.expand)
            for (record, _, _), verdict, s1 in zip(
                    lanes, report.lanes,
                    report.s1_rows or [None] * len(lanes)):
                if verdict.ok:
                    accepted.append(record)
                    if self.expand:
                        s1_rows.append(tuple(s1))
                else:
                    reason = verdict.reason
                    if verdict.detail:
                        reason = f"{reason}: {verdict.detail}"
                    rejected.append((record.record_id, reason))
        for _, reason in rejected:
            label = reason.split(":", 1)[0]
            self.rejected_total[label] = \
                self.rejected_total.get(label, 0) + 1
        if not accepted:
            return CommitResult(block=None, accepted=[],
                                rejected=rejected, report=report)
        header = BlockHeader(
            index=len(self.blocks), prev_hash=self.tip_hash,
            records_root=_records_root([record.record_id
                                        for record in accepted]),
            count=len(accepted), timestamp_us=int(timestamp_us))
        block = Block(header=header, records=tuple(accepted),
                      s1_rows=tuple(s1_rows) if self.expand else None)
        self._append_to_disk(block)
        self.blocks.append(block)
        self._committed.update(record.record_id
                               for record in accepted)
        return CommitResult(block=block,
                            accepted=[record.record_id
                                      for record in accepted],
                            rejected=rejected, report=report)

    # -- audit -------------------------------------------------------------

    def verify_chain(self, mode: str = "full", *,
                     rounds: int = 1) -> ChainAudit:
        """Re-verify the whole chain: linkage, roots, every signature.

        ``mode="full"`` re-runs the cross-key engine over each block.
        ``mode="aggregate"`` takes the RLC fast path over blocks that
        carry their ``s1`` expansion — weights seeded by the block's
        own header hash, so they are fixed by content committed before
        the audit — and falls back to the full pass per block when the
        aggregate check fails (or the expansion is missing), keeping
        verdicts exact.
        """
        if mode not in AUDIT_MODES:
            raise ValueError(f"unknown audit mode {mode!r}; "
                             f"choose from {AUDIT_MODES}")
        audit = ChainAudit(ok=True, mode=mode, blocks=len(self.blocks),
                           records=0)
        prev_hash = GENESIS_HASH
        for index, block in enumerate(self.blocks):
            header = block.header
            if (header.index != index
                    or header.prev_hash != prev_hash):
                audit.failures.append((index, None, "broken chain "
                                       "linkage"))
                prev_hash = header.hash
                continue
            root = _records_root([record.record_id
                                  for record in block.records])
            if header.records_root != root:
                audit.failures.append((index, None,
                                       "records_root mismatch"))
                prev_hash = header.hash
                continue
            prev_hash = header.hash
            lanes = []
            lane_records = []
            for record in block.records:
                try:
                    public_key, signature, _ = record.decode()
                except RecordError as error:
                    audit.failures.append(
                        (index, record.record_id, f"decode: {error}"))
                    continue
                lanes.append((public_key, record.message, signature))
                lane_records.append(record)
            audit.records += len(block.records)
            if not lanes:
                continue
            expanded = (mode == "aggregate"
                        and block.s1_rows is not None
                        and len(block.s1_rows) == len(lanes))
            if expanded:
                report = verify_batch_report(
                    [lane + (list(s1),) for lane, s1
                     in zip(lanes, block.s1_rows)],
                    spine=self.spine, precheck="rlc",
                    precheck_seed=bytes.fromhex(header.hash),
                    precheck_rounds=rounds)
                if report.precheck_passed:
                    audit.aggregate_fastpath += 1
            else:
                report = verify_batch_report(lanes, spine=self.spine)
            for record, verdict in zip(lane_records, report.lanes):
                if not verdict.ok:
                    audit.failures.append(
                        (index, record.record_id, verdict.reason))
        audit.ok = not audit.failures
        return audit

    # -- reporting ---------------------------------------------------------

    def stats(self) -> dict:
        return {
            "height": self.height,
            "tip_hash": self.tip_hash,
            "records_committed": self.records_committed,
            "mempool_pending": len(self.mempool),
            "mempool_capacity": self.mempool.capacity,
            "duplicates_dropped": self.mempool.dropped_duplicates,
            "rejected_total": dict(self.rejected_total),
            "expand": self.expand,
            "recovered_bytes": self.recovered_bytes,
            "path": str(self.path) if self.path else None,
        }
