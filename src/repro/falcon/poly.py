"""Exact integer polynomial arithmetic in Z[x]/(x^n + 1).

NTRUSolve (key generation) works over towers of cyclotomic subrings with
*exact* big-integer coefficients that grow to thousands of bits; this
module supplies the required primitives:

* negacyclic multiplication (Karatsuba above a schoolbook threshold —
  Python bigints make the coefficient growth free of overflow concerns);
* the Galois conjugate ``f(-x)``;
* the field norm ``N(f) = f_e^2 - x f_o^2`` mapping Z[x]/(x^n+1) down to
  Z[x]/(x^{n/2}+1);
* the lift ``f(x) -> f(x^2)`` going back up the tower.

These are the Falcon/NTRUSolve identities of Pornin–Prest ("More
efficient algorithms for the NTRU key generation"), also used by the
reference Python implementation.
"""

from __future__ import annotations

from typing import Sequence

try:  # Optional: exact vectorized convolution for small coefficients.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised in the no-numpy CI job
    _np = None

#: Below this size, schoolbook multiplication beats Karatsuba's overhead.
KARATSUBA_THRESHOLD = 32

#: ``np.convolve`` on int64 is exact only while every accumulated dot
#: product stays below 2^63; the dispatch bound keeps a safety bit.
_CONVOLVE_LIMIT = 1 << 62


def add(a: Sequence[int], b: Sequence[int]) -> list[int]:
    return [x + y for x, y in zip(a, b, strict=True)]


def sub(a: Sequence[int], b: Sequence[int]) -> list[int]:
    return [x - y for x, y in zip(a, b, strict=True)]


def neg(a: Sequence[int]) -> list[int]:
    return [-x for x in a]


def scalar_mul(a: Sequence[int], k: int) -> list[int]:
    return [x * k for x in a]


def _schoolbook(a: Sequence[int], b: Sequence[int]) -> list[int]:
    out = [0] * (len(a) + len(b) - 1)
    for i, x in enumerate(a):
        if x == 0:
            continue
        for j, y in enumerate(b):
            out[i + j] += x * y
    return out


def _karatsuba(a: list[int], b: list[int]) -> list[int]:
    n = len(a)
    if n <= KARATSUBA_THRESHOLD or n % 2:
        return _schoolbook(a, b)
    half = n // 2
    a0, a1 = a[:half], a[half:]
    b0, b1 = b[:half], b[half:]
    low = _karatsuba(a0, b0)
    high = _karatsuba(a1, b1)
    mid = _karatsuba([x + y for x, y in zip(a0, a1)],
                     [x + y for x, y in zip(b0, b1)])
    cross = [m - lo - hi for m, lo, hi in zip(mid, low, high)]
    out = [0] * (2 * n - 1)
    for i, v in enumerate(low):
        out[i] += v
    for i, v in enumerate(cross):
        out[half + i] += v
    for i, v in enumerate(high):
        out[2 * half + i] += v
    return out


def mul_raw(a: Sequence[int], b: Sequence[int]) -> list[int]:
    """Plain polynomial product (degree ``len(a)+len(b)-2``).

    Runs on the array representation (one exact ``int64`` convolution)
    whenever the coefficients are provably too small to overflow —
    the common case in the lower NTRUSolve tower levels — and falls
    back to bigint Karatsuba/schoolbook as they grow.
    """
    if not a or not b:
        return []
    if _np is not None and len(a) >= 16:
        bound = (max(map(abs, a), default=0)
                 * max(map(abs, b), default=0)
                 * min(len(a), len(b)))
        if bound < _CONVOLVE_LIMIT:
            return _np.convolve(
                _np.asarray(a, dtype=_np.int64),
                _np.asarray(b, dtype=_np.int64)).tolist()
    return _karatsuba(list(a), list(b))


def mul_negacyclic(a: Sequence[int], b: Sequence[int]) -> list[int]:
    """Product in Z[x]/(x^n + 1): wrap-around with sign flip."""
    n = len(a)
    if len(b) != n:
        raise ValueError("length mismatch")
    raw = mul_raw(a, b)
    out = raw[:n] + [0] * (n - min(n, len(raw)))
    for i in range(n, len(raw)):
        out[i - n] -= raw[i]
    return out


def galois_conjugate(a: Sequence[int]) -> list[int]:
    """``f(x) -> f(-x)``: negate odd-index coefficients."""
    return [(-c if i % 2 else c) for i, c in enumerate(a)]


def field_norm(a: Sequence[int]) -> list[int]:
    """Norm map down one tower level.

    With ``f = f_e(x^2) + x f_o(x^2)``, the relative norm is
    ``N(f)(y) = f_e(y)^2 - y * f_o(y)^2`` over ``Z[y]/(y^{n/2} + 1)``;
    equivalently ``N(f)(x^2) = f(x) f(-x)``.
    """
    n = len(a)
    if n == 1:
        return [a[0]]
    even = list(a[0::2])
    odd = list(a[1::2])
    even_sq = mul_negacyclic(even, even)
    odd_sq = mul_negacyclic(odd, odd)
    # Multiply odd_sq by y in Z[y]/(y^{n/2} + 1): rotate with sign flip.
    half = n // 2
    shifted = [0] * half
    for i in range(half):
        j = i + 1
        if j < half:
            shifted[j] += odd_sq[i]
        else:
            shifted[j - half] -= odd_sq[i]
    return sub(even_sq, shifted)


def lift(a: Sequence[int]) -> list[int]:
    """``f(y) -> f(x^2)``: interleave with zeros (inverse tower step)."""
    out = [0] * (2 * len(a))
    out[0::2] = a
    return out


def infinity_norm(a: Sequence[int]) -> int:
    return max((abs(c) for c in a), default=0)


def square_norm(a: Sequence[int]) -> int:
    return sum(c * c for c in a)


def max_bitsize(polynomials: Sequence[Sequence[int]]) -> int:
    """Largest coefficient bit length across several polynomials."""
    worst = 0
    for poly in polynomials:
        for c in poly:
            worst = max(worst, abs(c).bit_length())
    return worst
