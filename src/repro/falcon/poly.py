"""Exact integer polynomial arithmetic in Z[x]/(x^n + 1).

NTRUSolve (key generation) works over towers of cyclotomic subrings with
*exact* big-integer coefficients that grow to thousands of bits; this
module supplies the required primitives:

* negacyclic multiplication, dispatched by operand shape: an exact
  ``int64`` NumPy convolution while coefficients are provably small,
  Kronecker substitution (pack each polynomial into ONE big integer,
  multiply with CPython's subquadratic bigint kernel, slice the product
  back out of its bytes) once they grow, and Karatsuba/schoolbook in
  between — every route returns identical integers;
* the Galois conjugate ``f(-x)``;
* the field norm ``N(f) = f_e^2 - x f_o^2`` mapping Z[x]/(x^n+1) down to
  Z[x]/(x^{n/2}+1);
* the lift ``f(x) -> f(x^2)`` going back up the tower.

These are the Falcon/NTRUSolve identities of Pornin–Prest ("More
efficient algorithms for the NTRU key generation"), also used by the
reference Python implementation.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Sequence

try:  # Optional: exact vectorized convolution for small coefficients.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised in the no-numpy CI job
    _np = None

#: Below this size, schoolbook multiplication beats Karatsuba's overhead.
KARATSUBA_THRESHOLD = 32

#: ``np.convolve`` on int64 is exact only while every accumulated dot
#: product stays below 2^63; the dispatch bound keeps a safety bit.
_CONVOLVE_LIMIT = 1 << 62

#: Kronecker substitution beats Python-level Karatsuba where the degree
#: is high and the coefficients moderate (just past the convolve limit:
#: the mid-tower field norms) — there the Python recursion overhead
#: dominates.  Deep in the tower (tiny degree, multi-thousand-bit
#: coefficients) CPython's own bigint Karatsuba does the same C work
#: without the packing passes, so the dispatch stays out of its way.
_KRONECKER_MIN_DEGREE = 64
_KRONECKER_MAX_BOUND_BITS = 768

#: Multiplication strategies accepted by :func:`mul_strategy`.  ``auto``
#: is the full dispatch; ``legacy`` is the pre-Kronecker dispatch
#: (convolve + Karatsuba), kept addressable so benchmarks can measure the
#: reference route; the rest force a single kernel (differential tests).
MUL_STRATEGIES = ("auto", "legacy", "schoolbook", "karatsuba", "kronecker")

_active_strategy = "auto"


@contextmanager
def mul_strategy(name: str):
    """Force a :func:`mul_raw` dispatch strategy within a ``with`` block.

    All strategies compute the same exact integers; this exists so
    differential tests can pin kernel agreement and benchmarks can put a
    number on each route (e.g. the pre-Kronecker ``legacy`` dispatch).
    """
    global _active_strategy
    if name not in MUL_STRATEGIES:
        raise ValueError(f"unknown mul strategy {name!r}; "
                         f"choose from {MUL_STRATEGIES}")
    previous = _active_strategy
    _active_strategy = name
    try:
        yield
    finally:
        _active_strategy = previous


def add(a: Sequence[int], b: Sequence[int]) -> list[int]:
    return [x + y for x, y in zip(a, b, strict=True)]


def sub(a: Sequence[int], b: Sequence[int]) -> list[int]:
    return [x - y for x, y in zip(a, b, strict=True)]


def neg(a: Sequence[int]) -> list[int]:
    return [-x for x in a]


def scalar_mul(a: Sequence[int], k: int) -> list[int]:
    return [x * k for x in a]


def _schoolbook(a: Sequence[int], b: Sequence[int]) -> list[int]:
    out = [0] * (len(a) + len(b) - 1)
    for i, x in enumerate(a):
        if x == 0:
            continue
        for j, y in enumerate(b):
            out[i + j] += x * y
    return out


def _karatsuba(a: list[int], b: list[int]) -> list[int]:
    n = len(a)
    if n <= KARATSUBA_THRESHOLD or n % 2:
        return _schoolbook(a, b)
    half = n // 2
    a0, a1 = a[:half], a[half:]
    b0, b1 = b[:half], b[half:]
    low = _karatsuba(a0, b0)
    high = _karatsuba(a1, b1)
    mid = _karatsuba([x + y for x, y in zip(a0, a1)],
                     [x + y for x, y in zip(b0, b1)])
    cross = [m - lo - hi for m, lo, hi in zip(mid, low, high)]
    out = [0] * (2 * n - 1)
    for i, v in enumerate(low):
        out[i] += v
    for i, v in enumerate(cross):
        out[half + i] += v
    for i, v in enumerate(high):
        out[2 * half + i] += v
    return out


def _pack_nonneg(values: Sequence[int], word_bytes: int) -> int:
    """``sum(v << (8 * word_bytes * i))`` for non-negative ``v`` via one
    ``int.from_bytes`` over a pre-filled buffer (no bigint shifts)."""
    buffer = bytearray(word_bytes * len(values))
    for i, v in enumerate(values):
        if v:
            start = i * word_bytes
            buffer[start:start + (v.bit_length() + 7) // 8] = \
                v.to_bytes((v.bit_length() + 7) // 8, "little")
    return int.from_bytes(buffer, "little")


def _kronecker(a: Sequence[int], b: Sequence[int],
               bound: int | None = None) -> list[int]:
    """Exact product by Kronecker substitution.

    Evaluate both polynomials at ``x = 2^w`` (``w`` wide enough that
    result coefficients cannot touch), multiply the two big integers —
    CPython's C bigint multiplication, subquadratic and far faster than
    Python-level Karatsuba — and read the coefficients back out of the
    product's byte string.  Signed coefficients are handled by packing
    positive and negative parts separately and, on the way out, adding a
    per-digit offset of ``2^(w-1)`` so each digit of the (possibly
    negative) product becomes an independent non-negative byte field.

    ``bound`` is the coefficient-magnitude bound (:func:`_convolve_bound`
    of the operands), accepted pre-computed so the dispatch's scan is
    not repeated.
    """
    if bound is None:
        bound = _convolve_bound(a, b)
    word_bytes = bound.bit_length() // 8 + 1  # 8*wb >= bit_length + 2
    word_bits = 8 * word_bytes
    packed_a = _pack_nonneg([v if v > 0 else 0 for v in a], word_bytes) \
        - _pack_nonneg([-v if v < 0 else 0 for v in a], word_bytes)
    packed_b = _pack_nonneg([v if v > 0 else 0 for v in b], word_bytes) \
        - _pack_nonneg([-v if v < 0 else 0 for v in b], word_bytes)
    product = packed_a * packed_b
    count = len(a) + len(b) - 1
    half = 1 << (word_bits - 1)
    # Digit-wise offset: every result coefficient c satisfies |c| <= bound
    # < 2^(w-1) - 1, so c + 2^(w-1) lies in (0, 2^w) and the offset
    # product has independent, borrow-free base-2^w digits.
    offset = _pack_nonneg([half] * count, word_bytes)
    raw = (product + offset).to_bytes(word_bytes * count, "little")
    return [int.from_bytes(raw[i * word_bytes:(i + 1) * word_bytes],
                           "little") - half
            for i in range(count)]


def _convolve_bound(a: Sequence[int], b: Sequence[int]) -> int:
    return (max(map(abs, a), default=0) * max(map(abs, b), default=0)
            * min(len(a), len(b)))


def mul_raw(a: Sequence[int], b: Sequence[int]) -> list[int]:
    """Plain polynomial product (degree ``len(a)+len(b)-2``).

    Dispatch (``auto`` strategy): one exact ``int64`` convolution while
    the coefficients are provably too small to overflow — the common
    case in the upper NTRUSolve tower levels — then Kronecker
    substitution once the operands are big enough to amortize its
    packing passes, with bigint Karatsuba/schoolbook covering the
    remainder.  All routes produce identical integers (pinned by the
    differential tests); :func:`mul_strategy` forces a specific one.
    """
    if not a or not b:
        return []
    strategy = _active_strategy
    if strategy == "schoolbook":
        return _schoolbook(a, b)
    if strategy == "kronecker":
        return _kronecker(a, b)
    if strategy == "karatsuba":
        return _karatsuba(list(a), list(b))
    bound = None
    if _np is not None and len(a) >= 16:
        bound = _convolve_bound(a, b)
        if bound < _CONVOLVE_LIMIT:
            return _np.convolve(
                _np.asarray(a, dtype=_np.int64),
                _np.asarray(b, dtype=_np.int64)).tolist()
    if strategy == "auto" and \
            min(len(a), len(b)) >= _KRONECKER_MIN_DEGREE:
        if bound is None:
            bound = _convolve_bound(a, b)
        if _CONVOLVE_LIMIT <= bound < (1 << _KRONECKER_MAX_BOUND_BITS):
            return _kronecker(a, b, bound)
    return _karatsuba(list(a), list(b))


def mul_negacyclic(a: Sequence[int], b: Sequence[int]) -> list[int]:
    """Product in Z[x]/(x^n + 1): wrap-around with sign flip."""
    n = len(a)
    if len(b) != n:
        raise ValueError("length mismatch")
    raw = mul_raw(a, b)
    out = raw[:n] + [0] * (n - min(n, len(raw)))
    for i in range(n, len(raw)):
        out[i - n] -= raw[i]
    return out


def galois_conjugate(a: Sequence[int]) -> list[int]:
    """``f(x) -> f(-x)``: negate odd-index coefficients."""
    return [(-c if i % 2 else c) for i, c in enumerate(a)]


def adjoint(a: Sequence[int]) -> list[int]:
    """Hermitian adjoint ``f*(x) = f(x^-1)`` in ``Z[x]/(x^n + 1)``.

    ``x^-i = -x^(n-i)``, so the adjoint keeps the constant term and
    reverse-negates the rest; in the FFT domain it is the complex
    conjugate (``adj_fft``), which is how the Babai quotients use it.
    """
    n = len(a)
    if n == 1:
        return [a[0]]
    return [a[0]] + [-c for c in a[:0:-1]]


def field_norm(a: Sequence[int]) -> list[int]:
    """Norm map down one tower level.

    With ``f = f_e(x^2) + x f_o(x^2)``, the relative norm is
    ``N(f)(y) = f_e(y)^2 - y * f_o(y)^2`` over ``Z[y]/(y^{n/2} + 1)``;
    equivalently ``N(f)(x^2) = f(x) f(-x)``.
    """
    n = len(a)
    if n == 1:
        return [a[0]]
    even = list(a[0::2])
    odd = list(a[1::2])
    even_sq = mul_negacyclic(even, even)
    odd_sq = mul_negacyclic(odd, odd)
    # Multiply odd_sq by y in Z[y]/(y^{n/2} + 1): rotate with sign flip.
    half = n // 2
    shifted = [0] * half
    for i in range(half):
        j = i + 1
        if j < half:
            shifted[j] += odd_sq[i]
        else:
            shifted[j - half] -= odd_sq[i]
    return sub(even_sq, shifted)


def lift(a: Sequence[int]) -> list[int]:
    """``f(y) -> f(x^2)``: interleave with zeros (inverse tower step)."""
    out = [0] * (2 * len(a))
    out[0::2] = a
    return out


def infinity_norm(a: Sequence[int]) -> int:
    return max((abs(c) for c in a), default=0)


def square_norm(a: Sequence[int]) -> int:
    return sum(c * c for c in a)


def max_bitsize(polynomials: Sequence[Sequence[int]]) -> int:
    """Largest coefficient bit length across several polynomials."""
    worst = 0
    for poly in polynomials:
        for c in poly:
            worst = max(worst, abs(c).bit_length())
    return worst
