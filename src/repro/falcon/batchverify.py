"""Cross-key batch verification: one NTT pass over many public keys.

``PublicKey.verify_many`` batches verification under a *single* key; a
fleet verifying records from millions of distinct users degenerates to
one tiny NTT pass per key.  This module removes that restriction: the
engine takes ``(public_key, message, signature)`` triples under
arbitrary, mixed keys, groups the lanes by ring degree, stacks each
key's cached ``ntt(h)`` into a ``(batch, n)`` uint64 matrix, and runs
the **entire mixed-key batch** through one vectorized
``ntt_array -> rowwise pointwise-mul -> intt_array`` pass plus one
vectorized norm check.  All the modular arithmetic is exact, so
verdicts are bit-identical to per-key :meth:`PublicKey.verify` (pinned
by the differential suite); a pure-Python fallback covers the no-NumPy
deployment.

Failures are *reported*, never silently dropped: each lane of a
:class:`BatchVerifyReport` carries a verdict plus a reason
(``"decompress"`` with the decoder's detail, ``"norm-bound"``, or
``"ok"``), so callers like the ledger's block builder can reject bad
lanes without blocking the rest of the batch.

The aggregate-then-verify fast path (the folded-falcon shape, see
SNIPPETS.md #3) is the opt-in ``precheck="rlc"``: for *expanded* lanes
that also carry the recomputed ``s1`` (``(pk, message, sig, s1)``),
verification splits into per-lane shortness (cheap) and the lattice
congruence ``s1 + s2*h - c = 0 (mod q)``, and the congruences of a
whole batch collapse into **one** random-linear-combination check::

    sum_i rho_i * (s1_i + s2_i * h_i - c_i)  =  0   (mod q)

with weights ``rho_i`` derived from a caller-supplied seed.  By NTT
linearity the check needs the batched forward transform of the ``s2``
rows plus just two more forward transforms (of the rho-weighted ``s1``
and ``c`` sums) — and **no inverse transforms at all**.  A batch with
any lane whose congruence residual is non-zero survives the check with
probability at most ``1/q`` per independent round (the residual is a
non-zero linear form in the ``rho_i`` over the prime field), so
``precheck_rounds=r`` drives soundness error below ``q^-r``.  When the
aggregate check fails, the engine falls back to the full per-lane path
and returns exact verdicts — aggregate-then-verify never changes
*what* is accepted, only how cheaply acceptance is established.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from hashlib import sha256
from typing import Sequence

from .encoding import DecompressError, decompress, decompress_rows
from .ntt import (
    HAVE_NUMPY,
    Q,
    center_mod_q,
    center_mod_q_array,
    intt,
    mul_ntt_rows_array,
    ntt,
    ntt_array,
)
from .params import falcon_params
from .scheme import hash_to_point

if HAVE_NUMPY:
    import numpy as _np
else:  # pragma: no cover - exercised in the no-numpy CI job
    _np = None

#: Per-lane outcome labels (machine-readable; ``detail`` carries the
#: human-readable specifics, e.g. the decompress error text).
REASON_OK = "ok"
REASON_DECOMPRESS = "decompress"
REASON_NORM = "norm-bound"

#: Prechecks :func:`verify_batch` understands (``None`` = full path).
PRECHECKS = (None, "rlc")


@dataclass(frozen=True)
class LaneVerdict:
    """One lane's outcome: the verdict plus why."""

    ok: bool
    reason: str
    detail: str = ""


@dataclass(frozen=True)
class BatchVerifyReport:
    """Everything one engine pass learned about a batch.

    ``verdicts`` matches per-key :meth:`PublicKey.verify` bit for bit.
    ``s1_rows`` (with ``keep_s1=True``) holds each accepted lane's
    recomputed centered ``s1`` — the expansion the RLC aggregate path
    consumes later, captured at zero extra cost.  ``precheck_passed``
    is True when an ``"rlc"`` aggregate check settled the batch
    without the per-lane inverse-NTT pass.
    """

    verdicts: list[bool]
    lanes: list[LaneVerdict]
    s1_rows: list | None = None
    precheck_passed: bool = False

    @property
    def accepted(self) -> int:
        return sum(1 for lane in self.lanes if lane.ok)

    @property
    def rejected(self) -> int:
        return len(self.lanes) - self.accepted

    def reasons(self) -> dict:
        """Histogram of per-lane reasons (rejections and accepts)."""
        counts: dict[str, int] = {}
        for lane in self.lanes:
            counts[lane.reason] = counts.get(lane.reason, 0) + 1
        return counts


def _resolve_spine(spine: str) -> str:
    if spine not in ("auto", "numpy", "scalar"):
        raise ValueError(f"unknown spine {spine!r}; "
                         f"choose from ('auto', 'numpy', 'scalar')")
    if spine == "auto":
        return "numpy" if HAVE_NUMPY else "scalar"
    if spine == "numpy" and not HAVE_NUMPY:
        raise RuntimeError("NumPy is not installed; use spine='scalar'")
    return spine


@dataclass
class _Lane:
    """A decoded lane awaiting arithmetic (index into the batch)."""

    index: int
    public_key: object
    s2: list
    hashed: list
    s1_claimed: list | None = None
    # Filled by the arithmetic passes:
    verdict: LaneVerdict | None = None
    s1: list | None = field(default=None, repr=False)


#: Smallest same-degree group worth the batched row decoder's setup
#: cost; below this the scalar decoder is faster (measured crossover
#: is ~16-32 lanes at n=256).
ROWS_DECODE_MIN = 32


def _decode_rows(items: Sequence, spine: str) -> dict[int, list]:
    """Batched phase-1 decode: lanes grouped by (degree, blob width)
    through :func:`decompress_rows`, one vectorized Golomb–Rice walk
    per group.  Returns ``{item index: s2}`` for the lanes it decoded;
    failed or too-small groups are left to the scalar decoder (which
    also supplies the canonical error message on failure)."""
    decoded: dict[int, list] = {}
    if spine != "numpy":
        return decoded
    groups: dict[tuple[int, int], list[int]] = {}
    for index, item in enumerate(items):
        blob = item[2].compressed
        groups.setdefault((item[0].n, len(blob)), []).append(index)
    for (n, _width), indexes in groups.items():
        if len(indexes) < ROWS_DECODE_MIN:
            continue
        coefficients, failed = decompress_rows(
            [items[index][2].compressed for index in indexes], n)
        for row, index in enumerate(indexes):
            if not failed[row]:
                decoded[index] = coefficients[row].tolist()
    return decoded


def _decode_lanes(items: Sequence, spine: str = "scalar"
                  ) -> tuple[list[LaneVerdict | None], list[_Lane]]:
    """Shared phase 1: decompress + hash every lane, report failures.

    A lane whose signature fails canonical decompression gets its
    verdict here (with the decoder's message as detail) and never
    blocks the rest of the batch — the old single-key path silently
    dropped these lanes with no stat.  On the numpy spine, big
    same-degree groups decode through the vectorized row decoder;
    accept/reject stays bit-identical either way.
    """
    verdicts: list[LaneVerdict | None] = [None] * len(items)
    live: list[_Lane] = []
    decoded = _decode_rows(items, spine)
    for index, item in enumerate(items):
        public_key, message, signature = item[0], item[1], item[2]
        s1_claimed = item[3] if len(item) > 3 else None
        s2 = decoded.get(index)
        if s2 is None:
            try:
                s2 = decompress(signature.compressed, public_key.n)
            except DecompressError as error:
                verdicts[index] = LaneVerdict(False, REASON_DECOMPRESS,
                                              str(error))
                continue
        hashed = hash_to_point(message, signature.salt, public_key.n)
        live.append(_Lane(index=index, public_key=public_key, s2=s2,
                          hashed=hashed, s1_claimed=s1_claimed))
    return verdicts, live


def _norm_sq(s1: Sequence[int], s2: Sequence[int]) -> int:
    return sum(c * c for c in s1) + sum(c * c for c in s2)


def _full_pass_numpy(group: list[_Lane], n: int, keep_s1: bool) -> None:
    """The tentpole kernel: the whole mixed-key degree group through
    ONE batched forward NTT, one rowwise pointwise multiply against
    the stacked per-key ``ntt(h)`` rows, one batched inverse NTT and
    one vectorized norm reduction."""
    bound = falcon_params(n).sig_bound
    s2_mat = _np.asarray([lane.s2 for lane in group], dtype=_np.int64)
    h_mat = _np.stack([lane.public_key.h_ntt_row for lane in group])
    s2h = mul_ntt_rows_array(s2_mat, h_mat).astype(_np.int64)
    c_mat = _np.asarray([lane.hashed for lane in group],
                        dtype=_np.int64)
    s1 = center_mod_q_array(c_mat - s2h)
    norms = (s1 * s1).sum(axis=1) + (s2_mat * s2_mat).sum(axis=1)
    for row, lane in enumerate(group):
        ok = bool(norms[row] <= bound)
        lane.verdict = LaneVerdict(ok, REASON_OK if ok else REASON_NORM)
        if keep_s1 and ok:
            lane.s1 = [int(value) for value in s1[row]]


def _full_pass_scalar(group: list[_Lane], n: int, keep_s1: bool) -> None:
    """Pure-Python fallback: per-lane scalar NTTs, identical verdicts."""
    bound = falcon_params(n).sig_bound
    for lane in group:
        h_ntt = lane.public_key.h_ntt
        s2h = intt([x * y % Q for x, y in zip(ntt(lane.s2), h_ntt)])
        s1 = [center_mod_q(c - x)
              for c, x in zip(lane.hashed, s2h)]
        ok = _norm_sq(s1, lane.s2) <= bound
        lane.verdict = LaneVerdict(ok, REASON_OK if ok else REASON_NORM)
        if keep_s1 and ok:
            lane.s1 = s1


def rlc_weights(seed: bytes, count: int, round_index: int = 0
                ) -> list[int]:
    """Deterministic RLC weights in ``[1, q-1]``.

    Each weight hashes ``(seed, round, lane)`` through SHA-256, so a
    verifier binding ``seed`` to content an adversary must commit to
    first (the ledger uses the block header hash) gets Fiat–Shamir-
    style non-interactive weights.  The ``mod (q-1)`` bias is below
    ``2^-50`` and irrelevant to the ``1/q`` soundness bound.
    """
    weights = []
    for lane in range(count):
        digest = sha256(b"falcon-rlc|%d|%d|%b"
                        % (round_index, lane, seed)).digest()
        weights.append(1 + int.from_bytes(digest[:8], "big") % (Q - 1))
    return weights


def _rlc_congruence_holds(group: list[_Lane], n: int, seed: bytes,
                          rounds: int, spine: str) -> bool:
    """The aggregate congruence over one degree group.

    Checks ``sum_i rho_i * (s1_i + s2_i*h_i - c_i) = 0 (mod q)`` in
    the NTT domain.  By linearity the rho-weighted ``s1`` and ``c``
    sums are folded in the coefficient domain first, so the whole
    check per round costs one batched forward NTT of the ``s2`` rows
    (shared across rounds) plus two single forward NTTs — and no
    inverse NTT anywhere.
    """
    if spine == "numpy":
        q = _np.uint64(Q)
        s2_mat = _np.asarray([lane.s2 for lane in group],
                             dtype=_np.int64)
        h_mat = _np.stack([lane.public_key.h_ntt_row
                           for lane in group])
        s2h_ntt = ntt_array(s2_mat) * h_mat % q
        s1_mat = (_np.asarray([lane.s1_claimed for lane in group],
                              dtype=_np.int64) % Q).astype(_np.uint64)
        c_mat = _np.asarray([lane.hashed for lane in group],
                            dtype=_np.uint64)
        for round_index in range(rounds):
            rho = _np.asarray(rlc_weights(seed, len(group),
                                          round_index),
                              dtype=_np.uint64)[:, None]
            # Products stay below q^2 ~ 2^27.2 and the lane sum below
            # batch * 2^27.2 — far from the uint64 ceiling.
            folded_s1 = (rho * s1_mat).sum(axis=0) % q
            folded_c = (rho * c_mat).sum(axis=0) % q
            folded_s2h = (rho * s2h_ntt).sum(axis=0) % q
            residual = (ntt_array(folded_s1) + folded_s2h
                        + (q - ntt_array(folded_c))) % q
            if residual.any():
                return False
        return True
    s2h_ntts = [[x * y % Q for x, y in zip(ntt(lane.s2),
                                           lane.public_key.h_ntt)]
                for lane in group]
    for round_index in range(rounds):
        rho = rlc_weights(seed, len(group), round_index)
        folded_s1 = [0] * n
        folded_c = [0] * n
        folded_s2h = [0] * n
        for weight, lane, s2h_ntt in zip(rho, group, s2h_ntts):
            for k in range(n):
                folded_s1[k] = (folded_s1[k]
                                + weight * lane.s1_claimed[k]) % Q
                folded_c[k] = (folded_c[k]
                               + weight * lane.hashed[k]) % Q
                folded_s2h[k] = (folded_s2h[k]
                                 + weight * s2h_ntt[k]) % Q
        lhs = ntt(folded_s1)
        rhs = ntt(folded_c)
        if any((lhs[k] + folded_s2h[k] - rhs[k]) % Q
               for k in range(n)):
            return False
    return True


def _aggregate_pass(group: list[_Lane], n: int, seed: bytes,
                    rounds: int, spine: str, keep_s1: bool) -> bool:
    """Aggregate-then-verify for one expanded degree group.

    Per-lane shortness first (cheap, exact), then one RLC congruence
    for the whole group.  Returns False when the aggregate check did
    not hold — the caller re-runs the full path, so verdicts stay
    exact whatever a corrupted expansion claims.
    """
    bound = falcon_params(n).sig_bound
    for lane in group:
        if (lane.s1_claimed is None or len(lane.s1_claimed) != n
                or any(not -Q // 2 <= c <= Q // 2
                       for c in lane.s1_claimed)):
            return False
        ok = _norm_sq(lane.s1_claimed, lane.s2) <= bound
        lane.verdict = LaneVerdict(ok, REASON_OK if ok else REASON_NORM)
        if keep_s1 and ok:
            lane.s1 = list(lane.s1_claimed)
    if not _rlc_congruence_holds(group, n, seed, rounds, spine):
        for lane in group:  # exact verdicts come from the full pass
            lane.verdict = None
            lane.s1 = None
        return False
    return True


def verify_batch_report(items: Sequence, *, spine: str = "auto",
                        keep_s1: bool = False,
                        precheck: str | None = None,
                        precheck_seed: bytes = b"",
                        precheck_rounds: int = 1) -> BatchVerifyReport:
    """Verify a mixed-key batch and report per-lane outcomes.

    ``items`` are ``(public_key, message, signature)`` triples —
    arbitrary keys and ring degrees may share one batch — or
    ``(public_key, message, signature, s1)`` expanded quadruples when
    ``precheck="rlc"`` requests the aggregate-then-verify fast path.
    ``keep_s1`` captures each accepted lane's recomputed ``s1`` in the
    report (the expansion a later aggregate pass needs).
    """
    if precheck not in PRECHECKS:
        raise ValueError(f"unknown precheck {precheck!r}; "
                         f"choose from {PRECHECKS}")
    if precheck_rounds < 1:
        raise ValueError("precheck_rounds must be at least 1")
    spine = _resolve_spine(spine)
    verdicts, live = _decode_lanes(items, spine)
    if precheck == "rlc" and any(lane.s1_claimed is None
                                 for lane in live):
        raise ValueError("precheck='rlc' needs expanded lanes: "
                         "(public_key, message, signature, s1)")
    by_degree: dict[int, list[_Lane]] = {}
    for lane in live:
        by_degree.setdefault(lane.public_key.n, []).append(lane)
    precheck_passed = bool(precheck == "rlc" and live)
    for n, group in sorted(by_degree.items()):
        settled = False
        if precheck == "rlc":
            settled = _aggregate_pass(group, n, precheck_seed,
                                      precheck_rounds, spine, keep_s1)
        if not settled:
            precheck_passed = False
            if spine == "numpy":
                _full_pass_numpy(group, n, keep_s1)
            else:
                _full_pass_scalar(group, n, keep_s1)
    s1_rows: list | None = [None] * len(items) if keep_s1 else None
    for lane in live:
        verdicts[lane.index] = lane.verdict
        if keep_s1 and lane.s1 is not None:
            s1_rows[lane.index] = lane.s1
    lanes = [verdict if verdict is not None
             else LaneVerdict(False, REASON_DECOMPRESS)
             for verdict in verdicts]
    return BatchVerifyReport(
        verdicts=[lane.ok for lane in lanes], lanes=lanes,
        s1_rows=s1_rows, precheck_passed=precheck_passed)


def verify_batch(items: Sequence, *, spine: str = "auto",
                 precheck: str | None = None,
                 precheck_seed: bytes = b"",
                 precheck_rounds: int = 1) -> list[bool]:
    """Cross-key batch verification: per-lane verdicts only.

    Bit-identical to calling each lane's ``public_key.verify(message,
    signature)`` — but the whole mixed-key batch rides one vectorized
    NTT pass.  See :func:`verify_batch_report` for per-lane reasons
    and the expanded-lane ``precheck`` semantics.
    """
    return verify_batch_report(
        items, spine=spine, precheck=precheck,
        precheck_seed=precheck_seed,
        precheck_rounds=precheck_rounds).verdicts
