"""Sharded key stores: consistent hashing over per-shard pools.

A serving deployment partitions its key pools so provisioning,
rotation and refill scale horizontally: each shard is a full
:class:`~repro.falcon.keystore.KeyStore` (its own directory, manifest,
lock file and watermark refill), and tenants map onto shards through a
consistent-hash ring, so adding shards moves only ``1/shards`` of the
tenant space.

Shard master seeds derive from ``(master_seed, shard)`` via SHA-256 —
two shards of one deployment can never derive the same per-slot seed,
so no key material is ever duplicated across shards (asserted by the
serving test suite's duplicate-issuance stress test).
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from hashlib import sha256
from pathlib import Path
from typing import Sequence

from ..keystore import KeyStore, fenced_signer_checkout
from ..scheme import PublicKey, SecretKey, Signature


def derive_shard_seed(master_seed: int | bytes, shard: int) -> bytes:
    """Deterministic 32-byte master seed for one shard.

    Distinct from every :func:`~repro.falcon.keystore.derive_key_seed`
    output domain (different prefix), so shard seeds and slot seeds
    can never collide either.
    """
    if isinstance(master_seed, int):
        master = b"%d" % master_seed
    else:
        master = bytes(master_seed)
    return sha256(b"falcon-shard|%b|%d" % (master, shard)).digest()


def _tenant_bytes(tenant: str | bytes) -> bytes:
    return tenant.encode() if isinstance(tenant, str) else bytes(tenant)


class ConsistentHashRing:
    """SHA-256 consistent-hash ring with virtual nodes.

    Each shard owns ``replicas`` points on a 64-bit ring; a tenant
    maps to the first point clockwise of its own hash.  The mapping is
    a pure function of ``(shards, replicas, tenant)`` — restarts and
    rebalances are deterministic, and growing the ring from ``s`` to
    ``s + 1`` shards relocates only the tenants whose arc the new
    shard's points split.
    """

    def __init__(self, shards: int, replicas: int = 64) -> None:
        if shards < 1:
            raise ValueError("need at least one shard")
        if replicas < 1:
            raise ValueError("need at least one replica per shard")
        self.shards = shards
        self.replicas = replicas
        points: list[tuple[int, int]] = []
        for shard in range(shards):
            for replica in range(replicas):
                digest = sha256(b"falcon-ring|%d|%d"
                                % (shard, replica)).digest()
                points.append((int.from_bytes(digest[:8], "big"), shard))
        points.sort()
        self._hashes = [point for point, _ in points]
        self._owners = [shard for _, shard in points]

    def shard_for(self, tenant: str | bytes) -> int:
        """The shard owning ``tenant`` (first ring point clockwise)."""
        return self.preference(tenant)[0]

    def preference(self, tenant: str | bytes) -> list[int]:
        """All shards in failover order for ``tenant``.

        The home shard first, then each further shard in the order its
        first ring point appears clockwise — the standard consistent-
        hash replica walk, so failover targets are as stable under
        ring growth as primary ownership is.
        """
        digest = sha256(b"falcon-tenant|%b"
                        % _tenant_bytes(tenant)).digest()
        point = int.from_bytes(digest[:8], "big")
        start = bisect_right(self._hashes, point) % len(self._hashes)
        order: list[int] = []
        seen: set[int] = set()
        for step in range(len(self._owners)):
            owner = self._owners[(start + step) % len(self._owners)]
            if owner not in seen:
                seen.add(owner)
                order.append(owner)
                if len(order) == self.shards:
                    break
        return order


class ShardedKeyStore:
    """Tenant-facing façade over ``shards`` independent key stores.

    Construction mirrors :class:`~repro.falcon.keystore.KeyStore`
    (every keyword flows through to the per-shard stores); with a
    ``directory``, each shard persists under ``directory/shard-NN``.

    Per-tenant signer checkout: :meth:`signer` checks a dedicated key
    out of the tenant's shard on first use and caches it, so every
    tenant signs under its own key while sharing the shard's batched
    pipeline.  :meth:`sign_many` / :meth:`verify_many` are the batch
    primitives the asyncio coalescing front drives.
    """

    def __init__(self, directory: str | Path | None = None, *,
                 shards: int = 2,
                 replicas: int = 64,
                 master_seed: int | bytes = 0,
                 **store_kwargs) -> None:
        base = Path(directory) if directory is not None else None
        self.ring = ConsistentHashRing(shards, replicas)
        self.master_seed = master_seed
        self.stores = [
            KeyStore(base / f"shard-{shard:02d}" if base is not None
                     else None,
                     master_seed=derive_shard_seed(master_seed, shard),
                     **store_kwargs)
            for shard in range(shards)]
        self._signers: dict[tuple[str, int, int], SecretKey] = {}
        self._signer_guards: dict[tuple[str, int, int],
                                  threading.Lock] = {}
        self._signer_lock = threading.Lock()
        # Verify-plane cache: (tenant, n) -> PublicKey.  Shard-
        # agnostic on purpose — a verify round needs no secret key,
        # no slot claim and no cohort fence, so once populated it
        # never touches the keystore again (and verify load can never
        # contend checkouts with sign load).
        self._public_keys: dict[tuple[str, int], PublicKey] = {}
        self._pk_lock = threading.Lock()

    @property
    def shards(self) -> int:
        return len(self.stores)

    # -- mapping -----------------------------------------------------------

    def shard_for(self, tenant: str | bytes) -> int:
        return self.ring.shard_for(tenant)

    def shard_preference(self, tenant: str | bytes) -> list[int]:
        """Failover order for ``tenant`` (home shard first)."""
        return self.ring.preference(tenant)

    def store_for(self, tenant: str | bytes) -> KeyStore:
        return self.stores[self.shard_for(tenant)]

    # -- provisioning ------------------------------------------------------

    def generate_ahead(self, n: int, count_per_shard: int) -> int:
        """Provision ``count_per_shard`` keys on every shard."""
        total = 0
        for store in self.stores:
            total += store.generate_ahead(n, count_per_shard)
        return total

    def available(self, n: int) -> int:
        """Ready keys across all shards."""
        return sum(store.available(n) for store in self.stores)

    def rotate(self, n: int, regenerate: int | None = None) -> int:
        """Rotate the degree-``n`` cohort on every shard; cached
        per-tenant signers of that degree are dropped so the next
        checkout serves the fresh generation."""
        retired = sum(store.rotate(n, regenerate=regenerate)
                      for store in self.stores)
        with self._signer_lock:
            for key in [key for key in self._signers if key[1] == n]:
                del self._signers[key]
        with self._pk_lock:
            for key in [key for key in self._public_keys
                        if key[1] == n]:
                del self._public_keys[key]
        return retired

    def join_refills(self, timeout: float | None = None) -> None:
        for store in self.stores:
            store.join_refills(timeout)

    def close(self) -> None:
        """Orderly shutdown of every shard store (refills joined,
        warm keygen process pools stopped)."""
        for store in self.stores:
            store.close()

    # -- serving -----------------------------------------------------------

    def signer(self, tenant: str | bytes, n: int) -> SecretKey:
        """The tenant's dedicated signing key (checked out of the
        tenant's shard on first use, cached thereafter).

        Cold-cache checkouts are serialized per ``(tenant, n)`` —
        concurrent first requests wait for one checkout instead of
        each burning a slot — and rotation-fenced through
        :meth:`KeyStore.checkout_current`, so a freshly rotated
        tenant can never be re-pinned to a retired cohort.
        """
        return self.signer_on(self.shard_for(tenant), tenant, n)

    def signer_on(self, shard: int, tenant: str | bytes,
                  n: int) -> SecretKey:
        """The tenant's signing key on an explicit shard.

        Failover routing (a circuit breaker shedding a tenant off its
        home shard) checks a key out of the fallback shard the first
        time the tenant lands there; the cache is keyed per shard so a
        recovered home shard serves the tenant's original key again.
        """
        key = (_tenant_bytes(tenant).decode("latin-1"), n, shard)
        signer = fenced_signer_checkout(self.stores[shard], n,
                                        lock=self._signer_lock,
                                        guards=self._signer_guards,
                                        cache=self._signers, key=key)
        if shard == self.shard_for(tenant):
            # Sign traffic warms the verify plane: the home shard's
            # key is the tenant's canonical identity, so its public
            # half feeds the checkout-free verify cache.
            with self._pk_lock:
                self._public_keys.setdefault((key[0], n),
                                             signer.public_key)
        return signer

    def public_key(self, tenant: str | bytes, n: int) -> PublicKey:
        """The tenant's verification key, without keystore contention.

        Served from the verify-plane cache when warm (no checkout, no
        cohort fencing, no slot claim — verify rounds stay off the
        keystore entirely).  A cold tenant costs exactly one home-
        shard signer checkout to learn its key pair; every later
        verify reuses the cached public half and its precomputed
        ``ntt(h)`` row.
        """
        cache_key = (_tenant_bytes(tenant).decode("latin-1"), n)
        with self._pk_lock:
            public_key = self._public_keys.get(cache_key)
        if public_key is not None:
            return public_key
        return self.signer(tenant, n).public_key

    def sign_many(self, tenant: str | bytes, n: int,
                  messages: Sequence[bytes],
                  spine: str = "auto") -> list[Signature]:
        """Batch-sign under the tenant's checked-out key (byte-
        identical to ``self.signer(tenant, n).sign_many(...)``)."""
        return self.signer(tenant, n).sign_many(messages, spine=spine)

    def verify_many(self, tenant: str | bytes, n: int,
                    messages: Sequence[bytes],
                    signatures: Sequence[Signature]) -> list[bool]:
        """Batch-verify against the tenant's public key (checkout-free
        once the verify-plane cache is warm)."""
        return self.public_key(tenant, n).verify_many(
            messages, signatures)

    # -- metrics -----------------------------------------------------------

    def stats(self) -> dict:
        """Aggregated metrics snapshot: per-shard stores plus totals
        (pool depth, checkout counts, refill latency, generations)."""
        per_shard = [store.stats() for store in self.stores]
        totals = {
            "generated": sum(s.generated for s in per_shard),
            "served": sum(s.served for s in per_shard),
            "refills": sum(s.refills for s in per_shard),
            "watermark_triggers": sum(s.watermark_triggers
                                      for s in per_shard),
            "retired": sum(s.retired for s in per_shard),
            "available": {},
            "tenants_checked_out": len(self._signers),
            "public_keys_cached": len(self._public_keys),
        }
        for snapshot in per_shard:
            for n, depth in snapshot.available.items():
                totals["available"][n] = \
                    totals["available"].get(n, 0) + depth
        return {
            "shards": [s.as_dict() for s in per_shard],
            "totals": totals,
        }
