"""Failure vocabulary of the serving plane.

Recovery code is only as good as the error types it can branch on.
Two conditions recur at every layer of the plane — the keystore, the
coalescing service, the worker pool, the wire — and both get one
canonical type here so callers (and tests) can catch them without
knowing which layer failed:

* :class:`ServingUnavailable` — the request could not be served *right
  now*: a dead connection, a timed-out round-trip, a shard whose
  circuit breaker is open, a worker pool past its restart budget.  It
  subclasses :class:`ConnectionError` so pre-existing callers that
  caught connection loss keep working, and it is the signal the
  retry-with-backoff path treats as retryable.
* :class:`DeadlineExceeded` — the caller's deadline passed before a
  result existed.  Subclasses :class:`TimeoutError`; never retried
  (the budget is spent by definition).
"""

from __future__ import annotations


class ServingUnavailable(ConnectionError):
    """The serving plane cannot take (or finish) this request now.

    Raised for dead peers, request timeouts, exhausted worker restart
    budgets and open circuit breakers.  Retryable by policy.
    """


class DeadlineExceeded(TimeoutError):
    """The caller's deadline passed before the request completed.

    Not retryable: the time budget the deadline expressed is gone.
    """
