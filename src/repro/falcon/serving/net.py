"""The wire protocol: length-prefixed asyncio socket frames.

Everything below this module coalesces and signs; this module puts a
**network** in front of it.  The protocol is deliberately minimal —
binary frames over a stream socket, no external dependencies:

Frame layout (all integers big-endian)::

    MAGIC(4) | VERSION(1) | KIND(1) | REQ_ID(4) | BODY_LEN(4) | body
    body := TENANT_LEN(2) tenant | TOKEN_LEN(2) token | payload

* ``MAGIC`` = ``b"FLCN"`` and ``VERSION`` = 1: a peer speaking
  anything else is cut off after one error frame — the stream cannot
  be trusted to stay frame-aligned.
* ``KIND`` selects the operation: ``sign`` (payload = message) and
  ``verify`` (payload = ``SIG_LEN(4) | encoded signature | message``)
  requests; ``sign-ok`` (payload = the canonical
  :func:`~repro.falcon.serialize.encode_signature` bytes — **fixed
  length per ring degree**, so response sizes cannot leak signature
  content), ``verify-ok`` and ``error`` responses.
* ``REQ_ID`` correlates responses with requests: a client may keep
  many requests in flight on one connection and responses return in
  completion order.
* ``BODY_LEN`` is capped (``max_frame_bytes``): an adversarial length
  prefix is rejected with one error frame and a clean close instead
  of an unbounded allocation.

**Authentication** is per tenant: the server holds a ``tenant →
token`` map and every request carries the tenant's token, compared
with :func:`hmac.compare_digest` (no early-exit byte comparison).
**Rate limiting** is a per-tenant token bucket refilled at
``rate_limit`` frames/second with ``burst`` capacity — an exhausted
bucket earns an ``error`` frame, not a closed connection.

**Graceful drain**: :meth:`NetServer.stop` stops accepting
connections and refuses new request frames (``draining`` errors),
waits for every in-flight request to finish its round, then stops the
:class:`~repro.falcon.serving.SigningService` underneath — which
flushes queued rounds and fails anything stranded, so no awaiter ever
hangs on a stopping server.

**Constant-time discipline**: frame shapes — kind, tenant length,
token length, payload length — are a pure function of request
*metadata*, never of message bytes, signature bytes or key material
(responses are fixed-size per degree by the padded signature
encoding).  :func:`repro.ct.coalesce.audit_coalescing` includes frame
shapes alongside round shapes in its two-class dudect pass.
"""

from __future__ import annotations

import asyncio
import hashlib
import hmac
import struct
import time
from collections import OrderedDict
from dataclasses import dataclass, field

from ..scheme import Signature
from ..serialize import SerializeError, decode_signature, encode_signature
from .errors import DeadlineExceeded, ServingUnavailable

MAGIC = b"FLCN"
VERSION = 1

#: Request kinds.
FRAME_SIGN = 0x01
FRAME_VERIFY = 0x02
#: Response kinds.
FRAME_SIGN_OK = 0x81
FRAME_VERIFY_OK = 0x82
FRAME_ERROR = 0xEE

_REQUEST_KINDS = (FRAME_SIGN, FRAME_VERIFY)

#: Error codes carried in the first two bytes of an error payload.
ERR_BAD_FRAME = 1
ERR_UNSUPPORTED = 2
ERR_AUTH = 3
ERR_RATE_LIMITED = 4
ERR_DRAINING = 5
ERR_ROUND_FAILED = 6
ERR_TOO_LARGE = 7

ERROR_NAMES = {
    ERR_BAD_FRAME: "bad-frame",
    ERR_UNSUPPORTED: "unsupported",
    ERR_AUTH: "auth-failed",
    ERR_RATE_LIMITED: "rate-limited",
    ERR_DRAINING: "draining",
    ERR_ROUND_FAILED: "round-failed",
    ERR_TOO_LARGE: "frame-too-large",
}

_HEADER = struct.Struct(">4sBBII")
HEADER_BYTES = _HEADER.size

#: Default cap on one frame's body.  Generous for any sane message,
#: tiny against a hostile 4 GiB length prefix.
MAX_FRAME_BYTES = 1 << 20


class FrameError(Exception):
    """A protocol-level failure (carries the wire error code)."""

    def __init__(self, code: int, detail: str = "") -> None:
        name = ERROR_NAMES.get(code, str(code))
        super().__init__(f"{name}: {detail}" if detail else name)
        self.code = code
        self.detail = detail


def encode_frame(kind: int, req_id: int, tenant: bytes, token: bytes,
                 payload: bytes) -> bytes:
    """Serialize one frame (the single encoder both ends share)."""
    body = (len(tenant).to_bytes(2, "big") + tenant
            + len(token).to_bytes(2, "big") + token + payload)
    return _HEADER.pack(MAGIC, VERSION, kind, req_id, len(body)) + body


def encode_request_frame(kind: int, req_id: int, tenant: str,
                         token: bytes, payload: bytes) -> bytes:
    """Serialize a request frame (tenant as text, like clients send)."""
    return encode_frame(kind, req_id, tenant.encode(), token, payload)


def decode_body(body: bytes) -> tuple[bytes, bytes, bytes]:
    """Split a frame body into ``(tenant, token, payload)``."""
    if len(body) < 2:
        raise FrameError(ERR_BAD_FRAME, "truncated tenant length")
    tenant_len = int.from_bytes(body[:2], "big")
    offset = 2 + tenant_len
    if len(body) < offset + 2:
        raise FrameError(ERR_BAD_FRAME, "truncated tenant/token")
    token_len = int.from_bytes(body[offset:offset + 2], "big")
    tenant = body[2:offset]
    offset += 2
    if len(body) < offset + token_len:
        raise FrameError(ERR_BAD_FRAME, "truncated token")
    token = body[offset:offset + token_len]
    return tenant, token, body[offset + token_len:]


def frame_shape(frame: bytes) -> tuple[int, int, int, int, int]:
    """The externally observable shape of one encoded frame.

    ``(kind, req_id, tenant_len, token_len, payload_len)`` — exactly
    what a passive observer learns from sizes and headers.  The CT
    audit feeds two secret-differing request classes through the real
    encoder and requires identical shape traces.

    Any malformed input — truncated header, wrong magic/version, a
    ``BODY_LEN`` that disagrees with the bytes present — raises
    :class:`FrameError`, never a bare :class:`struct.error`.
    """
    if len(frame) < HEADER_BYTES:
        raise FrameError(ERR_BAD_FRAME, "truncated header")
    magic, version, kind, req_id, body_len = _HEADER.unpack_from(frame)
    if magic != MAGIC or version != VERSION:
        raise FrameError(ERR_BAD_FRAME, "not a frame")
    if body_len != len(frame) - HEADER_BYTES:
        raise FrameError(
            ERR_BAD_FRAME,
            f"body length {body_len} != {len(frame) - HEADER_BYTES} "
            f"bytes present")
    tenant, token, payload = decode_body(frame[HEADER_BYTES:])
    return kind, req_id, len(tenant), len(token), len(payload)


def encode_verify_payload(signature: Signature, n: int,
                          message: bytes) -> bytes:
    encoded = encode_signature(signature, n)
    return len(encoded).to_bytes(4, "big") + encoded + message


def decode_verify_payload(payload: bytes) -> tuple[Signature, int, bytes]:
    if len(payload) < 4:
        raise FrameError(ERR_BAD_FRAME, "truncated signature length")
    sig_len = int.from_bytes(payload[:4], "big")
    if len(payload) < 4 + sig_len:
        raise FrameError(ERR_BAD_FRAME, "truncated signature")
    try:
        signature, n = decode_signature(payload[4:4 + sig_len])
    except SerializeError as error:
        raise FrameError(ERR_BAD_FRAME, str(error)) from error
    return signature, n, payload[4 + sig_len:]


@dataclass(frozen=True)
class RetryPolicy:
    """Jittered exponential retry backoff, deterministic under a seed.

    ``delay(attempt, token)`` grows ``backoff * multiplier**attempt``
    and spreads it by ±``jitter`` (a fraction of the base), with the
    jitter drawn from SHA-256 over ``(seed, token, attempt)`` — so two
    clients retrying the same outage de-synchronize (no thundering
    herd) yet every run of the chaos suite sleeps the same schedule.
    """

    attempts: int = 3
    backoff: float = 0.05
    multiplier: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def delay(self, attempt: int, token: str = "") -> float:
        base = self.backoff * self.multiplier ** attempt
        if self.jitter <= 0.0:
            return base
        material = b"falcon-retry|%d|%s|%d" % (
            self.seed, token.encode("utf-8"), attempt)
        draw = int.from_bytes(
            hashlib.sha256(material).digest()[:8], "big") / 2.0**64
        return base * (1.0 + self.jitter * (2.0 * draw - 1.0))


class TokenBucket:
    """Per-tenant rate limiter: ``rate`` tokens/s, ``burst`` capacity.

    Deterministic and injectable (``clock``) so tests do not sleep.
    """

    def __init__(self, rate: float, burst: float,
                 clock=time.monotonic) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._tokens = burst
        self._stamp = clock()

    def try_take(self, amount: float = 1.0) -> bool:
        now = self._clock()
        self._tokens = min(self.burst,
                           self._tokens + (now - self._stamp) * self.rate)
        self._stamp = now
        if self._tokens >= amount:
            self._tokens -= amount
            return True
        return False


@dataclass
class NetServerMetrics:
    """Live counters of one :class:`NetServer`."""

    connections: int = 0
    frames: int = 0
    served: int = 0
    #: Sign requests answered from the req_id dedup cache (a retry of
    #: a request whose response was lost on the wire).
    deduped: int = 0
    rejected: dict[str, int] = field(default_factory=dict)

    def reject(self, code: int) -> None:
        name = ERROR_NAMES.get(code, str(code))
        self.rejected[name] = self.rejected.get(name, 0) + 1

    def as_dict(self) -> dict:
        return {
            "connections": self.connections,
            "frames": self.frames,
            "served": self.served,
            "deduped": self.deduped,
            "rejected": dict(self.rejected),
        }


class NetServer:
    """Asyncio socket front for a :class:`SigningService`.

    ``tokens`` maps tenant name to its authentication token; when
    provided, every request frame must carry the matching token
    (unknown tenants are refused with the same ``auth-failed`` error
    as wrong tokens — the error does not reveal which).  ``None``
    disables authentication (loopback demos).  ``rate_limit`` arms a
    per-tenant token bucket (``burst`` defaults to twice the rate).

    Lifecycle::

        async with SigningService(store, n=64) as service:
            server = NetServer(service, tokens={"tenant-a": b"s3cret"})
            await server.start()          # 127.0.0.1, ephemeral port
            ...                           # clients connect to server.port
            await server.stop()           # graceful drain

    :meth:`stop` drains: the listener closes, request frames arriving
    on live connections are refused with ``draining``, in-flight
    requests finish their rounds, then the service underneath stops
    (flushing its queues and failing anything stranded).
    """

    def __init__(self, service, *,
                 tokens: dict[str, bytes] | None = None,
                 rate_limit: float | None = None,
                 burst: float | None = None,
                 max_frame_bytes: int = MAX_FRAME_BYTES,
                 clock=time.monotonic,
                 fault_plan=None,
                 dedup_cache: int = 1024) -> None:
        if max_frame_bytes < HEADER_BYTES:
            raise ValueError("max_frame_bytes too small to frame")
        if burst is not None and rate_limit is None:
            raise ValueError("burst needs rate_limit")
        self.service = service
        self.tokens = ({tenant: bytes(token)
                        for tenant, token in tokens.items()}
                       if tokens is not None else None)
        self.rate_limit = rate_limit
        self.burst = (burst if burst is not None
                      else (2.0 * rate_limit if rate_limit else None))
        self.max_frame_bytes = max_frame_bytes
        self.metrics = NetServerMetrics()
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}
        self._server: asyncio.AbstractServer | None = None
        self._draining = False
        self._inflight: set[asyncio.Task] = set()
        self._connections: set[asyncio.StreamWriter] = set()
        # Wire-level fault injection (outbound frames only — the
        # request path is the client's to break).
        self._faults = (fault_plan.injector()
                        if fault_plan is not None else None)
        # req_id dedup: what makes sign retries safe.  A retried sign
        # whose first attempt DID execute (the response frame was
        # lost) replays the cached response bytes instead of signing
        # again — exactly-once effect over an at-least-once wire.
        # Keyed by (tenant, req_id, payload hash) so one client's
        # req_ids cannot collide with another's for different work.
        self._dedup_cap = dedup_cache
        self._dedup: OrderedDict = OrderedDict()

    # -- lifecycle ---------------------------------------------------------

    async def start(self, host: str = "127.0.0.1",
                    port: int = 0) -> None:
        if self._server is not None:
            raise RuntimeError("server already started")
        self._server = await asyncio.start_server(
            self._serve_connection, host, port)

    @property
    def port(self) -> int:
        """The bound port (useful with the ephemeral default)."""
        if self._server is None:
            raise RuntimeError("server is not running")
        return self._server.sockets[0].getsockname()[1]

    async def stop(self, stop_service: bool = True) -> None:
        """Graceful drain (idempotent).

        New connections and new request frames are refused from the
        first moment; every request already dispatched runs its round
        to completion and sends its response; then the listener and
        all connections close, and (by default) the coalescing
        service underneath is stopped too — its own stop flushes
        queued rounds and fails stranded futures, so nothing hangs.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._inflight:
            await asyncio.gather(*tuple(self._inflight),
                                 return_exceptions=True)
        for writer in tuple(self._connections):
            writer.close()
        self._connections.clear()
        if stop_service:
            await self.service.stop()

    # -- the connection loop -----------------------------------------------

    async def _send(self, writer: asyncio.StreamWriter,
                    lock: asyncio.Lock, frame: bytes) -> None:
        if self._faults is not None:
            action = self._faults.frame_action()
            if action == "drop":
                return  # the response vanishes on the wire
            if action == "truncate":
                # Half a frame, then cut the connection: the client
                # must treat the stream as unframed from here on.
                async with lock:
                    writer.write(frame[:max(1, len(frame) // 2)])
                    try:
                        await writer.drain()
                    except ConnectionError:
                        pass
                    writer.close()
                return
            if isinstance(action, tuple):  # ("delay", seconds)
                await asyncio.sleep(action[1])
        async with lock:
            writer.write(frame)
            await writer.drain()

    async def _send_error(self, writer, lock, req_id: int, code: int,
                          detail: str = "") -> None:
        self.metrics.reject(code)
        payload = code.to_bytes(2, "big") + detail.encode()
        await self._send(writer, lock, encode_frame(
            FRAME_ERROR, req_id, b"", b"", payload))

    def _authorize(self, tenant: str, token: bytes) -> bool:
        if self.tokens is None:
            return True
        expected = self.tokens.get(tenant)
        # Compare against a dummy for unknown tenants too: one code
        # path, one error, no tenant-existence oracle.
        reference = expected if expected is not None else b"\x00"
        valid = hmac.compare_digest(reference, token)
        return valid and expected is not None

    def _rate_ok(self, tenant: str) -> bool:
        if self.rate_limit is None:
            return True
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = self._buckets.setdefault(
                tenant, TokenBucket(self.rate_limit, self.burst,
                                    clock=self._clock))
        return bucket.try_take()

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        self.metrics.connections += 1
        self._connections.add(writer)
        lock = asyncio.Lock()
        try:
            while True:
                try:
                    header = await reader.readexactly(HEADER_BYTES)
                except (asyncio.IncompleteReadError, ConnectionError):
                    return  # clean EOF or mid-frame disconnect
                magic, version, kind, req_id, body_len = \
                    _HEADER.unpack(header)
                if magic != MAGIC:
                    # The stream is not frame-aligned: one error,
                    # then cut the peer off.
                    await self._send_error(writer, lock, req_id,
                                           ERR_BAD_FRAME, "bad magic")
                    return
                if version != VERSION:
                    await self._send_error(writer, lock, req_id,
                                           ERR_UNSUPPORTED,
                                           f"version {version}")
                    return
                if body_len > self.max_frame_bytes:
                    # An adversarial length prefix: refuse before
                    # buffering a byte of it.
                    await self._send_error(writer, lock, req_id,
                                           ERR_TOO_LARGE,
                                           f"{body_len} bytes")
                    return
                try:
                    body = await reader.readexactly(body_len)
                except (asyncio.IncompleteReadError, ConnectionError):
                    return  # disconnected mid-frame: nothing partial
                self.metrics.frames += 1
                if kind not in _REQUEST_KINDS:
                    await self._send_error(writer, lock, req_id,
                                           ERR_BAD_FRAME,
                                           f"kind 0x{kind:02x}")
                    continue
                try:
                    tenant_raw, token, payload = decode_body(body)
                    tenant = tenant_raw.decode("utf-8")
                except (FrameError, UnicodeDecodeError) as error:
                    await self._send_error(writer, lock, req_id,
                                           ERR_BAD_FRAME, str(error))
                    continue
                if self._draining:
                    await self._send_error(writer, lock, req_id,
                                           ERR_DRAINING)
                    continue
                if not self._authorize(tenant, token):
                    await self._send_error(writer, lock, req_id,
                                           ERR_AUTH)
                    continue
                if not self._rate_ok(tenant):
                    await self._send_error(writer, lock, req_id,
                                           ERR_RATE_LIMITED)
                    continue
                task = asyncio.ensure_future(self._dispatch(
                    writer, lock, kind, req_id, tenant, payload))
                self._inflight.add(task)
                task.add_done_callback(self._inflight.discard)
        finally:
            self._connections.discard(writer)
            writer.close()

    async def _dispatch(self, writer, lock, kind: int, req_id: int,
                        tenant: str, payload: bytes) -> None:
        """Run one authorized request through the coalescing service
        and send its response frame.  Any failure answers with an
        error frame — a poison request never takes the connection
        (let alone the server) down with it."""
        dedup_key = None
        if kind == FRAME_SIGN and self._dedup_cap > 0:
            dedup_key = (tenant, req_id,
                         hashlib.sha256(payload).digest()[:8])
            cached = self._dedup.get(dedup_key)
            if cached is not None:
                # A retry of work already done: replay the exact
                # response bytes, sign nothing twice.
                self._dedup.move_to_end(dedup_key)
                self.metrics.deduped += 1
                await self._send(writer, lock, cached)
                self.metrics.served += 1
                return
        try:
            if kind == FRAME_SIGN:
                signature = await self.service.sign(tenant, payload)
                response = encode_frame(
                    FRAME_SIGN_OK, req_id, b"", b"",
                    encode_signature(signature, self.service.n))
                if dedup_key is not None:
                    # Cache BEFORE sending: a response lost on the
                    # wire must still be replayable.
                    self._dedup[dedup_key] = response
                    while len(self._dedup) > self._dedup_cap:
                        self._dedup.popitem(last=False)
            else:
                signature, _n, message = decode_verify_payload(payload)
                verdict = await self.service.verify(tenant, message,
                                                    signature)
                response = encode_frame(FRAME_VERIFY_OK, req_id, b"",
                                        b"", b"\x01" if verdict
                                        else b"\x00")
            await self._send(writer, lock, response)
            self.metrics.served += 1
        except FrameError as error:
            await self._send_error(writer, lock, req_id, error.code,
                                   error.detail)
        except ConnectionError:  # peer vanished awaiting the round
            pass
        except Exception as error:
            # The detail is the exception CLASS only: failure-path
            # frames must not vary with request content (str(error)
            # can embed message-derived state), so error frames stay
            # a pure function of the failure class — audited in
            # repro.ct.coalesce alongside the success shapes.
            await self._send_error(writer, lock, req_id,
                                   ERR_ROUND_FAILED,
                                   type(error).__name__)


class NetClient:
    """Async client for :class:`NetServer` (one connection, many
    in-flight requests, responses correlated by request id).

    ``tokens`` maps tenant to its auth token (missing tenants send an
    empty token).  Usable as an async context manager::

        async with await NetClient.connect("127.0.0.1", port,
                                           tokens=tokens) as client:
            signature = await client.sign("tenant-a", b"message")
            assert await client.verify("tenant-a", b"message",
                                       signature)

    Server-side refusals raise :class:`FrameError` with the wire code
    (``auth-failed``, ``rate-limited``, ``draining``, ...); a dropped
    connection fails every pending request with
    :class:`ServingUnavailable` (a ``ConnectionError``) — a client
    never hangs on a dead peer.

    **Timeouts and retries.**  ``connect_timeout`` bounds dialing,
    ``request_timeout`` bounds each round-trip; on transport failure
    (connection lost, truncated stream, timeout) the client reconnects
    and retries under ``retry`` (a :class:`RetryPolicy`; attempts=1
    disables).  Retries reuse the SAME req_id, so a sign whose first
    attempt executed — only the response was lost — is answered from
    the server's dedup cache, never signed twice.  Every ``sign`` /
    ``verify`` takes ``deadline=`` (absolute event-loop time): the
    call raises :class:`DeadlineExceeded` rather than outlive it.
    """

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter, *,
                 tokens: dict[str, bytes] | None = None,
                 host: str | None = None,
                 port: int | None = None,
                 connect_timeout: float = 5.0,
                 request_timeout: float | None = None,
                 retry: RetryPolicy | None = None) -> None:
        self._reader = reader
        self._writer = writer
        self._tokens = dict(tokens) if tokens else {}
        self._host = host
        self._port = port
        self._connect_timeout = connect_timeout
        self._request_timeout = request_timeout
        self._retry = retry if retry is not None else RetryPolicy()
        self._pending: dict[int, asyncio.Future] = {}
        self._next_id = 0
        self._write_lock = asyncio.Lock()
        self._closed = False
        self._reader_task = asyncio.ensure_future(self._read_loop())

    @classmethod
    async def connect(cls, host: str, port: int, *,
                      tokens: dict[str, bytes] | None = None,
                      connect_timeout: float = 5.0,
                      request_timeout: float | None = None,
                      retry: RetryPolicy | None = None
                      ) -> "NetClient":
        reader, writer = await cls._dial(host, port, connect_timeout)
        return cls(reader, writer, tokens=tokens, host=host,
                   port=port, connect_timeout=connect_timeout,
                   request_timeout=request_timeout, retry=retry)

    @staticmethod
    async def _dial(host: str, port: int, timeout: float):
        try:
            return await asyncio.wait_for(
                asyncio.open_connection(host, port), timeout)
        except asyncio.TimeoutError:
            raise ServingUnavailable(
                f"connect to {host}:{port} timed out after "
                f"{timeout}s") from None
        except OSError as error:
            raise ServingUnavailable(
                f"cannot connect to {host}:{port}: {error}"
            ) from error

    async def __aenter__(self) -> "NetClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def close(self) -> None:
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, Exception):
            pass
        self._writer.close()
        self._fail_pending(ServingUnavailable("client closed"))

    def _fail_pending(self, error: Exception) -> None:
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(error)

    async def _ensure_connected(self) -> None:
        """Reconnect after a transport failure (retry support).

        Only clients built through :meth:`connect` know their
        endpoint; a raw reader/writer pair cannot be re-dialed and
        stays failed.
        """
        if self._closed:
            raise ServingUnavailable("client closed")
        if not self._writer.is_closing():
            return
        if self._host is None or self._port is None:
            raise ServingUnavailable(
                "connection lost (no endpoint to reconnect)")
        reader, writer = await self._dial(self._host, self._port,
                                          self._connect_timeout)
        self._reader = reader
        self._writer = writer
        self._reader_task = asyncio.ensure_future(self._read_loop())

    async def _read_loop(self) -> None:
        writer = self._writer
        try:
            while True:
                header = await self._reader.readexactly(HEADER_BYTES)
                magic, version, kind, req_id, body_len = \
                    _HEADER.unpack(header)
                if magic != MAGIC or version != VERSION:
                    raise FrameError(ERR_BAD_FRAME,
                                     "garbled response stream")
                body = await self._reader.readexactly(body_len)
                future = self._pending.pop(req_id, None)
                if future is None or future.done():
                    continue  # response to a forgotten request
                _tenant, _token, payload = decode_body(body)
                if kind == FRAME_SIGN_OK:
                    signature, _n = decode_signature(payload)
                    future.set_result(signature)
                elif kind == FRAME_VERIFY_OK:
                    future.set_result(payload == b"\x01")
                elif kind == FRAME_ERROR:
                    code = int.from_bytes(payload[:2], "big")
                    future.set_exception(FrameError(
                        code, payload[2:].decode("utf-8", "replace")))
                else:
                    future.set_exception(FrameError(
                        ERR_BAD_FRAME, f"response kind 0x{kind:02x}"))
        except (asyncio.IncompleteReadError, ConnectionError,
                asyncio.CancelledError, FrameError):
            writer.close()
            self._fail_pending(ServingUnavailable("connection lost"))
        except Exception as error:  # pragma: no cover - defensive
            writer.close()
            self._fail_pending(error)

    async def _attempt(self, kind: int, req_id: int, tenant: str,
                       payload: bytes, deadline: float | None):
        """One request round-trip, bounded by the request timeout and
        the caller's deadline.  Transport failures surface as
        :class:`ServingUnavailable` (retryable); a passed deadline as
        :class:`DeadlineExceeded` (not)."""
        loop = asyncio.get_running_loop()
        await self._ensure_connected()
        future = loop.create_future()
        self._pending[req_id] = future
        token = self._tokens.get(tenant, b"")
        frame = encode_request_frame(kind, req_id, tenant, token,
                                     payload)
        try:
            async with self._write_lock:
                self._writer.write(frame)
                await self._writer.drain()
        except (ConnectionError, OSError) as error:
            self._pending.pop(req_id, None)
            raise ServingUnavailable(
                f"connection lost sending request: {error}"
            ) from error
        timeout = self._request_timeout
        if deadline is not None:
            remaining = deadline - loop.time()
            if remaining <= 0:
                self._pending.pop(req_id, None)
                raise DeadlineExceeded("deadline passed")
            timeout = (remaining if timeout is None
                       else min(timeout, remaining))
        if timeout is None:
            return await future
        try:
            return await asyncio.wait_for(future, timeout)
        except asyncio.TimeoutError:
            self._pending.pop(req_id, None)
            if deadline is not None and loop.time() >= deadline:
                raise DeadlineExceeded(
                    "deadline passed awaiting response") from None
            raise ServingUnavailable(
                f"request timed out after {timeout:.3f}s") from None

    async def _request(self, kind: int, tenant: str, payload: bytes,
                       deadline: float | None = None):
        req_id = self._next_id
        self._next_id = (self._next_id + 1) & 0xFFFFFFFF
        loop = asyncio.get_running_loop()
        attempts = max(1, self._retry.attempts)
        for attempt in range(attempts):
            try:
                return await self._attempt(kind, req_id, tenant,
                                           payload, deadline)
            except ServingUnavailable:
                # Transport failure: retrying is safe — verify is
                # idempotent and sign replays the SAME req_id, which
                # the server's dedup cache answers without signing
                # twice.  Server-spoken refusals (FrameError) and
                # passed deadlines are NOT retried.
                if attempt + 1 >= attempts:
                    raise
                delay = self._retry.delay(attempt,
                                          token=f"{tenant}|{req_id}")
                if (deadline is not None
                        and loop.time() + delay >= deadline):
                    raise
                await asyncio.sleep(delay)

    async def sign(self, tenant: str, message: bytes, *,
                   deadline: float | None = None) -> Signature:
        """Sign ``message`` under ``tenant``'s key, over the wire."""
        return await self._request(FRAME_SIGN, tenant, message,
                                   deadline)

    async def verify(self, tenant: str, message: bytes,
                     signature: Signature, n: int | None = None, *,
                     deadline: float | None = None) -> bool:
        """Verify over the wire (``n`` defaults to the signature's
        natural degree as carried by its encoding header)."""
        if n is None:
            n = _degree_from_signature(signature)
        payload = encode_verify_payload(signature, n, message)
        return await self._request(FRAME_VERIFY, tenant, payload,
                                   deadline)

    async def verify_all(self, items, *,
                         deadline: float | None = None) -> list[bool]:
        """Concurrent convenience: verify ``(tenant, message,
        signature)`` triples, gathered in order.

        The requests go out pipelined on the one connection, so the
        server's coalescer can merge them — across tenants — into
        maximal cross-key verify rounds; this is the client shape the
        ledger workload drives.
        """
        return list(await asyncio.gather(
            *[self.verify(tenant, message, signature,
                          deadline=deadline)
              for tenant, message, signature in items]))


def _degree_from_signature(signature: Signature) -> int:
    """Infer the ring degree from a signature's padded payload width
    (``sig_payload_bits`` is strictly monotone in ``n``, so the
    fixed-size compressed field identifies the parameter set)."""
    from ..params import falcon_params

    width = len(signature.compressed)
    for exponent in range(2, 11):  # supported degrees: 4 .. 1024
        n = 1 << exponent
        if (falcon_params(n).sig_payload_bits + 7) // 8 == width:
            return n
    raise ValueError(f"no parameter set pads signatures to {width} "
                     "bytes; pass n explicitly")
