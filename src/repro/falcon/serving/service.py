"""The asyncio coalescing front: many awaiters, few batched rounds.

PR 3 made one ``sign_many`` call fast; a serving deployment has the
inverse shape — thousands of independent ``sign(tenant, message)``
calls that must *become* ``sign_many`` rounds to ride the batched
spine.  :class:`SigningService` does that coalescing:

* every request enqueues onto its shard's **bounded** asyncio queue
  (a full queue suspends the caller — back-pressure, not unbounded
  buffering);
* one worker per shard drains up to ``max_batch`` requests, waiting
  at most ``max_wait`` seconds for stragglers once the first request
  of a round has arrived (the classic batch-window trade: larger
  windows coalesce more, at latency cost);
* the drained batch is partitioned into per-``(tenant, kind)`` rounds
  by :func:`plan_rounds` and each round runs ``sign_many`` /
  ``verify_many`` under the tenant's checked-out signer on a worker
  thread, so the event loop stays responsive while the CPU-bound
  spine runs.

**Byte identity**: a coalesced round calls the exact
``SecretKey.sign_many`` the direct API exposes, with messages in
arrival order — signatures are bit-identical to a direct call with
the same key and message order (pinned by the serving test suite).

**Constant-time discipline**: round composition — how many rounds, of
what sizes, in what order — is computed by :func:`plan_rounds` from
arrival *metadata only* (tenant id, request kind, arrival order).
Message bytes, signature bytes and key material are never inputs to
the scheduling decision, so the coalescing layer cannot leak secrets
through batch shape (the GALACTICS lesson); :mod:`repro.ct.coalesce`
runs a dudect-style two-class pass over exactly this property.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Sequence

from ..batchverify import verify_batch
from ..scheme import Signature
from .errors import DeadlineExceeded, ServingUnavailable
from .sharded import ShardedKeyStore

#: Request kinds the coalescer schedules.
KIND_SIGN = "sign"
KIND_VERIFY = "verify"

#: The ``RoundPlan.tenant`` sentinel for a cross-tenant merged verify
#: round (verification needs no secret key, so verify lanes from
#: *different* tenants can share one maximal batch — each lane still
#: checks against its own tenant's public key).
VERIFY_MERGED_TENANT = "*"


class CircuitBreaker:
    """Per-shard circuit breaker: closed → open → half-open → closed.

    ``failures`` consecutive round failures trip the breaker open;
    while open, :meth:`allow` refuses traffic (the service sheds it to
    the next shard on the consistent-hash ring).  After ``reset_after``
    seconds one probe round is allowed through (half-open): success
    closes the breaker, failure re-opens it for another full cooldown.
    """

    def __init__(self, failures: int = 5, reset_after: float = 1.0,
                 clock=time.monotonic) -> None:
        if failures < 1:
            raise ValueError("failure threshold must be at least 1")
        self.failure_threshold = failures
        self.reset_after = reset_after
        self._clock = clock
        self._failures = 0
        self._state = "closed"
        self._opened_at = 0.0
        self.opens = 0

    @property
    def state(self) -> str:
        return self._state

    def allow(self) -> bool:
        """May a request route to this shard right now?  The first
        allow after the cooldown is the half-open probe."""
        if self._state == "closed":
            return True
        if self._state == "open":
            if self._clock() - self._opened_at >= self.reset_after:
                self._state = "half-open"
                return True
            return False
        # half-open: one probe is already in flight; hold the rest.
        return False

    def record_success(self) -> None:
        self._failures = 0
        self._state = "closed"

    def record_failure(self) -> None:
        if self._state == "open":
            return  # a straggler round; don't extend the cooldown
        if self._state == "half-open":
            self._trip()
            return
        self._failures += 1
        if self._failures >= self.failure_threshold:
            self._trip()

    def _trip(self) -> None:
        self._state = "open"
        self._opened_at = self._clock()
        self._failures = 0
        self.opens += 1


@dataclass(frozen=True)
class RoundPlan:
    """One batched round: which drained lanes run together.

    ``lanes`` are indices into the drained request batch, in arrival
    order — a pure function of arrival metadata (see
    :func:`plan_rounds`).
    """

    tenant: str
    kind: str
    lanes: tuple[int, ...]


def plan_rounds(arrivals: Sequence[tuple[str, str]],
                max_batch: int, *,
                coalesce_verify: bool = False) -> list[RoundPlan]:
    """Partition drained requests into per-``(tenant, kind)`` rounds.

    ``arrivals`` is the drained batch's metadata — ``(tenant, kind)``
    per request, in arrival order.  Requests sharing a tenant and kind
    coalesce into one round (chunked at ``max_batch``), rounds are
    emitted in first-arrival order, and lanes within a round keep
    arrival order — which is what makes coalesced signatures byte-
    identical to a direct ``sign_many`` over the same message order.

    ``coalesce_verify=True`` additionally merges **all** verify lanes
    — any tenant — into shared rounds under the
    :data:`VERIFY_MERGED_TENANT` sentinel: a verify round needs no
    secret key, so nothing ties it to one tenant, and the cross-key
    engine checks every lane against its own tenant's public key in
    one vectorized pass.  Sign rounds stay strictly per-tenant.

    This function is deliberately *blind*: it receives no message
    bytes, no signatures, no key material.  Round composition —
    merged or not — is secret-independent by construction, and the
    type signature is the contract (checked by
    :mod:`repro.ct.coalesce` in both planning modes).
    """
    if max_batch < 1:
        raise ValueError("max_batch must be at least 1")
    groups: dict[tuple[str, str], list[int]] = {}
    order: list[tuple[str, str]] = []
    for lane, (tenant, kind) in enumerate(arrivals):
        if coalesce_verify and kind == KIND_VERIFY:
            key = (VERIFY_MERGED_TENANT, kind)
        else:
            key = (tenant, kind)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(lane)
    plans: list[RoundPlan] = []
    for tenant, kind in order:
        lanes = groups[(tenant, kind)]
        for start in range(0, len(lanes), max_batch):
            plans.append(RoundPlan(
                tenant=tenant, kind=kind,
                lanes=tuple(lanes[start:start + max_batch])))
    return plans


@dataclass
class ServiceMetrics:
    """Live counters of one :class:`SigningService` instance."""

    requests: int = 0
    signed: int = 0
    verified: int = 0
    rounds: int = 0
    coalesced_max: int = 0
    queue_high_water: int = 0
    #: Rounds that raised (their awaiters saw the exception).
    failed_rounds: int = 0
    #: Requests routed off their home shard by an open breaker.
    shed_requests: int = 0
    #: Requests whose deadline passed before a result existed.
    deadline_expired: int = 0
    #: Per-round shape log ``(shard, kind, size)`` — populated only
    #: with ``record_rounds=True`` (the CT harness reads this).
    round_log: list[tuple[int, str, int]] = field(default_factory=list)

    @property
    def coalesced_avg(self) -> float:
        done = self.signed + self.verified
        return done / self.rounds if self.rounds else 0.0

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "signed": self.signed,
            "verified": self.verified,
            "rounds": self.rounds,
            "coalesced_avg": round(self.coalesced_avg, 2),
            "coalesced_max": self.coalesced_max,
            "queue_high_water": self.queue_high_water,
            "failed_rounds": self.failed_rounds,
            "shed_requests": self.shed_requests,
            "deadline_expired": self.deadline_expired,
        }


@dataclass
class _Request:
    tenant: str
    kind: str
    message: bytes
    signature: Signature | None
    future: asyncio.Future
    #: Absolute loop-time instant after which the caller no longer
    #: wants the result (None = no deadline).
    deadline: float | None = None


class SigningService:
    """Async facade coalescing per-request traffic into batched rounds.

    ``store`` is a :class:`~repro.falcon.serving.ShardedKeyStore`
    (each tenant signs under its own checked-out key).  Use as an
    async context manager::

        store = ShardedKeyStore(shards=2, master_seed=7)
        async with SigningService(store, n=256, max_batch=32,
                                  max_wait=0.002) as service:
            signature = await service.sign("tenant-a", b"message")
            assert await service.verify("tenant-a", b"message",
                                        signature)

    Knobs: ``max_batch`` bounds a round, ``max_wait`` is the batch
    window (seconds the first request of a round waits for company; 0
    drains only what is already queued), ``queue_depth`` bounds each
    shard queue — a full queue suspends callers (back-pressure)
    instead of buffering without limit.  ``offload=True`` (default)
    runs each round on a worker thread so the event loop stays
    responsive while the CPU-bound spine runs; ``offload=False`` runs
    rounds inline on the loop — on a single-core host the GIL makes
    the thread hop pure overhead, and inline execution trades loop
    responsiveness for peak throughput.

    ``worker_pool`` escapes the GIL entirely: rounds are submitted to
    a :class:`~repro.falcon.serving.ShardWorkerPool` — one dedicated
    worker *process* per shard, with warm per-tenant spines — so a
    multi-core host runs one round per shard truly in parallel.  The
    pool must be built over the same ``shards`` / ``master_seed`` /
    ``directory`` deployment as ``store`` (the store keeps doing the
    tenant→shard routing); the service does not own the pool's
    lifecycle — start it before and stop it after the service.

    ``coalesce_verify=True`` (default) merges verify lanes across
    tenants into maximal rounds: verification needs no secret key, so
    verify rounds skip signer checkout entirely (each lane checks
    against its tenant's cached public key through the cross-key
    batch engine) and nothing ties a round to one tenant.
    """

    def __init__(self, store: ShardedKeyStore, *,
                 n: int = 64,
                 max_batch: int = 32,
                 max_wait: float = 0.002,
                 queue_depth: int = 256,
                 spine: str = "auto",
                 offload: bool = True,
                 worker_pool=None,
                 record_rounds: bool = False,
                 breaker_failures: int = 5,
                 breaker_reset: float = 1.0,
                 coalesce_verify: bool = True) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if max_wait < 0:
            raise ValueError("max_wait must be non-negative")
        if queue_depth < 1:
            raise ValueError("queue_depth must be at least 1")
        self.store = store
        self.n = n
        self.max_batch = max_batch
        self.max_wait = max_wait
        self.queue_depth = queue_depth
        self.spine = spine
        self.offload = offload
        self.worker_pool = worker_pool
        # Verify lanes merge across tenants into maximal rounds by
        # default (they need no secret key; the cross-key engine
        # checks each lane against its own tenant's public key).
        self.coalesce_verify = coalesce_verify
        self.metrics = ServiceMetrics()
        self._record_rounds = record_rounds
        # Per-shard circuit breakers (breaker_failures=0 disables
        # breaking entirely — every request stays on its home shard).
        self.breakers: list[CircuitBreaker] = (
            [CircuitBreaker(breaker_failures, breaker_reset)
             for _ in range(store.shards)]
            if breaker_failures > 0 else [])
        self._queues: list[asyncio.Queue] = []
        self._workers: list[asyncio.Task] = []
        self._started = False
        self._stopping = False

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        if self._started:
            raise RuntimeError("service already started")
        self._queues = [asyncio.Queue(maxsize=self.queue_depth)
                        for _ in range(self.store.shards)]
        self._workers = [
            asyncio.ensure_future(self._shard_worker(shard))
            for shard in range(self.store.shards)]
        self._started = True

    async def stop(self) -> None:
        """Flush queued work, stop the workers, join refills.

        New submissions are refused the moment stop begins; a request
        that nonetheless slipped behind the shutdown sentinel gets a
        ``RuntimeError`` on its future rather than hanging forever.
        """
        if not self._started or self._stopping:
            return
        self._stopping = True
        queues = self._queues
        for queue in queues:
            await queue.put(None)
        await asyncio.gather(*self._workers)
        self._workers = []
        self._queues = []
        self._started = False
        self._stopping = False
        for queue in queues:  # strand nothing behind the sentinel
            while True:
                try:
                    request = queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if request is not None and not request.future.done():
                    request.future.set_exception(
                        RuntimeError("service stopped"))
        await asyncio.to_thread(self.store.join_refills)

    async def __aenter__(self) -> "SigningService":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -- request surface ---------------------------------------------------

    def _route(self, tenant: str) -> int:
        """Pick the shard for one request: the home shard unless its
        circuit breaker refuses, then the first healthy shard along
        the tenant's ring preference (shedding), else fail fast."""
        if not self.breakers:
            return self.store.shard_for(tenant)
        preference = self.store.shard_preference(tenant)
        if self.breakers[preference[0]].allow():
            return preference[0]
        for shard in preference[1:]:
            if self.breakers[shard].allow():
                self.metrics.shed_requests += 1
                return shard
        raise ServingUnavailable(
            "every shard's circuit breaker is open")

    async def _submit(self, request: _Request):
        if not self._started or self._stopping:
            raise RuntimeError("service is not running")
        shard = self._route(request.tenant)
        queue = self._queues[shard]
        if request.deadline is None:
            await queue.put(request)  # suspends when full:
            #                           back-pressure
            self.metrics.requests += 1
            self.metrics.queue_high_water = max(
                self.metrics.queue_high_water, queue.qsize())
            return await request.future
        loop = asyncio.get_running_loop()
        budget = request.deadline - loop.time()
        if budget <= 0:
            self.metrics.deadline_expired += 1
            raise DeadlineExceeded("deadline passed before submission")
        try:
            await asyncio.wait_for(queue.put(request), budget)
        except asyncio.TimeoutError:
            self.metrics.deadline_expired += 1
            raise DeadlineExceeded(
                "deadline passed waiting for queue space") from None
        self.metrics.requests += 1
        self.metrics.queue_high_water = max(
            self.metrics.queue_high_water, queue.qsize())
        try:
            # wait_for cancels the future on timeout, so the round
            # fan-out (which checks future.done()) skips it cleanly.
            return await asyncio.wait_for(
                request.future, request.deadline - loop.time())
        except asyncio.TimeoutError:
            self.metrics.deadline_expired += 1
            raise DeadlineExceeded(
                "deadline passed before the round completed") from None

    async def sign(self, tenant: str, message: bytes, *,
                   deadline: float | None = None) -> Signature:
        """Sign ``message`` under ``tenant``'s key; coalesced into the
        shard's next ``sign_many`` round.  ``deadline`` is an absolute
        event-loop instant (``loop.time() + budget``); a request whose
        deadline passes before its round completes raises
        :class:`DeadlineExceeded` — never later than the deadline plus
        scheduler jitter, and never with a half-delivered result."""
        future = asyncio.get_running_loop().create_future()
        return await self._submit(_Request(
            tenant=tenant, kind=KIND_SIGN, message=message,
            signature=None, future=future, deadline=deadline))

    async def verify(self, tenant: str, message: bytes,
                     signature: Signature, *,
                     deadline: float | None = None) -> bool:
        """Verify against ``tenant``'s public key; coalesced into the
        shard's next ``verify_many`` round."""
        future = asyncio.get_running_loop().create_future()
        return await self._submit(_Request(
            tenant=tenant, kind=KIND_VERIFY, message=message,
            signature=signature, future=future, deadline=deadline))

    async def sign_all(self, tenant: str,
                       messages: Sequence[bytes], *,
                       deadline: float | None = None
                       ) -> list[Signature]:
        """Concurrent convenience: ``sign`` every message, gathered."""
        return list(await asyncio.gather(
            *[self.sign(tenant, message, deadline=deadline)
              for message in messages]))

    # -- the coalescing loop -----------------------------------------------

    async def _drain(self, queue: asyncio.Queue,
                     first: _Request) -> tuple[list[_Request], bool]:
        """Collect one round's batch: the first request plus whatever
        arrives within the batch window, up to ``max_batch``."""
        batch = [first]
        stopping = False
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.max_wait
        while len(batch) < self.max_batch:
            timeout = deadline - loop.time()
            if timeout <= 0:
                # Window closed: take only what is already queued.
                try:
                    item = queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
            else:
                try:
                    item = await asyncio.wait_for(queue.get(), timeout)
                except asyncio.TimeoutError:
                    break
            if item is None:
                stopping = True
                break
            batch.append(item)
        return batch, stopping

    async def _shard_worker(self, shard: int) -> None:
        """The shard's drain loop.  It must outlive any round failure:
        a raising round fails only its own futures (isolated in
        :meth:`_run_one_round`), and even an unexpected error escaping
        the round machinery fails only the drained batch — never the
        loop, which would strand every later submission to this shard
        on a dead queue."""
        queue = self._queues[shard]
        while True:
            first = await queue.get()
            if first is None:
                return
            batch, stopping = await self._drain(queue, first)
            try:
                await self._run_rounds(shard, batch)
            except Exception as error:
                for request in batch:
                    if not request.future.done():
                        request.future.set_exception(error)
            if stopping:
                return

    async def _run_rounds(self, shard: int,
                          batch: list[_Request]) -> None:
        # Prune lanes that no longer want a result: futures already
        # done (deadline cancellation, shutdown) and deadlines that
        # passed while queued.  Pruning happens BEFORE planning, so
        # round shapes stay a pure function of the surviving arrival
        # metadata — the CT audit covers this path too.
        now = asyncio.get_running_loop().time()
        live: list[_Request] = []
        for request in batch:
            if request.future.done():
                continue
            if request.deadline is not None and request.deadline <= now:
                self.metrics.deadline_expired += 1
                request.future.set_exception(DeadlineExceeded(
                    "deadline passed while queued"))
                continue
            live.append(request)
        batch = live
        if not batch:
            return
        plans = plan_rounds([(r.tenant, r.kind) for r in batch],
                            self.max_batch,
                            coalesce_verify=self.coalesce_verify)
        for plan in plans:
            requests = [batch[lane] for lane in plan.lanes]
            self.metrics.rounds += 1
            self.metrics.coalesced_max = max(
                self.metrics.coalesced_max, len(requests))
            if self._record_rounds:
                self.metrics.round_log.append(
                    (shard, plan.kind, len(requests)))
            await self._run_one_round(shard, plan, requests)

    async def _run_one_round(self, shard: int, plan: RoundPlan,
                             requests: list[_Request]) -> None:
        """Execute one round with full failure isolation.

        Everything that can raise — signer checkout, the batched
        kernel, worker-pool IPC, even result fan-out — is confined to
        this round: a poison round fails exactly its own awaiters'
        futures and returns, so the rest of the drained batch keeps
        draining and the shard worker keeps serving (regression-tested
        with one poisoned round among healthy ones).
        """
        messages = [r.message for r in requests]

        def run_round():
            if self.worker_pool is not None:
                # One IPC round-trip per round: the shard's dedicated
                # worker process signs/verifies with its warm spines.
                # A cross-tenant merged verify round ships its per-
                # lane tenants so each lane checks against its own
                # tenant's key.
                tenant_arg = plan.tenant
                if (plan.kind == KIND_VERIFY
                        and plan.tenant == VERIFY_MERGED_TENANT):
                    tenant_arg = [r.tenant for r in requests]
                return self.worker_pool.run_round(
                    shard, tenant_arg, plan.kind, self.n, messages,
                    signatures=([r.signature for r in requests]
                                if plan.kind == KIND_VERIFY else None))
            if plan.kind == KIND_VERIFY:
                # Verify rounds never touch the keystore: each lane's
                # public key comes from the store's verify-plane cache
                # (no checkout, no cohort fence — sign load cannot be
                # contended by verify load), and the whole round —
                # merged tenants included — rides one cross-key
                # engine pass.
                return verify_batch(
                    [(self.store.public_key(r.tenant, self.n),
                      r.message, r.signature) for r in requests],
                    spine=self.spine)
            # One worker-thread hop per round: signer checkout
            # (cached after first use) plus the batched kernel
            # call together, so the event loop stays free while
            # the CPU-bound spine runs.  A shed round (routed off the
            # tenant's home shard by an open breaker) checks out of
            # the fallback shard explicitly.
            if shard == self.store.shard_for(plan.tenant):
                signer = self.store.signer(plan.tenant, self.n)
            else:
                signer = self.store.signer_on(shard, plan.tenant,
                                              self.n)
            return signer.sign_many(messages, spine=self.spine)

        breaker = self.breakers[shard] if self.breakers else None
        try:
            if self.offload or self.worker_pool is not None:
                results = await asyncio.to_thread(run_round)
            else:
                results = run_round()
            if len(results) != len(requests):  # a broken backend
                raise RuntimeError(
                    f"round returned {len(results)} results for "
                    f"{len(requests)} requests")
            if breaker is not None:
                breaker.record_success()
            if plan.kind == KIND_SIGN:
                self.metrics.signed += len(requests)
            else:
                self.metrics.verified += len(requests)
            for request, result in zip(requests, results):
                if not request.future.done():
                    request.future.set_result(result)
        except Exception as error:  # fail THIS round's awaiters only
            if breaker is not None:
                breaker.record_failure()
            self.metrics.failed_rounds += 1
            for request in requests:
                if not request.future.done():
                    request.future.set_exception(error)
