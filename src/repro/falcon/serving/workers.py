"""Multi-process shard workers: real parallelism for the signing plane.

The asyncio :class:`~repro.falcon.serving.SigningService` coalesces
well, but every round still executes under one CPython GIL — every
committed benchmark before this layer ran on one core, and offloading
rounds to *threads* cannot change that.  :class:`ShardWorkerPool`
fans the shards out over **processes**: each shard gets a dedicated,
long-lived worker process that owns the shard's key material and runs
its ``sign_many`` / ``verify_many`` rounds, so a multi-core host runs
as many rounds truly in parallel as it has shards.

Design points:

* **One worker per shard, for the shard's lifetime.**  The worker
  builds its shard's :class:`~repro.falcon.keystore.KeyStore` once
  (same derived master seed and directory layout as
  :class:`~repro.falcon.serving.ShardedKeyStore` — the flock'ed slot
  manifests already make concurrent instances safe) and keeps its
  per-tenant signers checked out across rounds: the ffLDL trees,
  sampler pools and cached NTT transforms stay **warm**, exactly the
  amortization that made one-task-per-key process pools lose to
  single-process keygen.
* **Batched task submission.**  The unit of IPC is a whole coalesced
  round — one pickled ``(tenant, kind, messages)`` message per round,
  one reply with the round's results — never one task per request.
* **Byte identity.**  A worker signs with the very key the in-process
  path would have checked out for that tenant (same derived shard
  seed, same checkout order), through the very same ``sign_many``;
  signatures travel back as raw ``(salt, compressed)`` bytes.  The
  loopback test suite pins over-the-wire bytes == direct bytes.
* **Failure isolation and supervision.**  A raising round travels back
  as an error reply and re-raises in the submitting process for that
  round only; the worker's loop keeps serving.  A *dead* worker
  (SIGKILL, crash, pipe EOF) fails only the in-flight round with
  :class:`ShardWorkerError`; the pool then **respawns** the shard's
  worker on the next round — within a bounded restart budget with
  exponential backoff — and re-warms it by replaying every
  ``(tenant, n)`` signer checkout in first-seen order, so a memory-only
  deployment's respawned worker re-derives byte-identical keys (slot
  seeds are a pure function of the shard seed and checkout order).  A
  shard past its restart budget raises
  :class:`~repro.falcon.serving.errors.ServingUnavailable`-compatible
  errors until the pool is restarted.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import threading
import time
from pathlib import Path
from typing import Sequence

from ..scheme import Signature
from .errors import ServingUnavailable

#: Round kinds a worker executes (mirrors the service's constants;
#: re-declared here so worker processes do not import the asyncio
#: layer).  ``warm`` is supervision-internal: it checks a tenant's
#: signer out without signing, used to replay checkout order into a
#: respawned worker.  ``die`` is fault-injection-internal: the worker
#: hard-exits on receipt (the parent's injector decides the kills, so
#: one counter survives respawns and ``max_per_site`` means what it
#: says).
_KIND_SIGN = "sign"
_KIND_VERIFY = "verify"
_KIND_WARM = "warm"
_KIND_DIE = "die"

#: Exit status a fault-injected worker dies with (visible in
#: ``Process.exitcode`` — tests assert the crash was the planned one).
FAULT_EXIT_CODE = 17


class ShardWorkerError(ServingUnavailable):
    """A shard worker process failed outside a round (died, refused)."""


def _worker_main(connection, shard: int, config: dict) -> None:
    """A shard worker process: build the shard store, serve rounds.

    Runs until the parent sends ``None`` (orderly drain) or the pipe
    breaks (parent died).  Per-tenant signers are checked out on first
    use and cached for the lifetime of the process — warm spines.
    """
    from ..batchverify import verify_batch
    from ..keystore import KeyStore
    from .sharded import derive_shard_seed

    directory = config.get("directory")
    store = KeyStore(
        directory,
        master_seed=derive_shard_seed(config["master_seed"], shard),
        prng=config.get("prng", "chacha20"),
        base_backend=config.get("base_backend", "bitsliced"),
        keygen_spine=config.get("keygen_spine", "auto"))
    spine = config.get("spine", "auto")
    signers = {}

    def signer(tenant: str, n: int):
        key = (tenant, n)
        if key not in signers:
            signers[key] = store.checkout_current(n)[0]
        return signers[key]

    while True:
        try:
            task = connection.recv()
        except (EOFError, OSError):  # parent went away
            break
        if task is None:
            break
        tenant, kind, n, messages, signatures = task
        if kind == _KIND_DIE:
            # Simulate SIGKILL: no reply, no cleanup, no atexit — the
            # parent sees pipe EOF with the round still in flight.
            os._exit(FAULT_EXIT_CODE)
        try:
            if kind == _KIND_WARM:
                signer(tenant, n)
                reply = ("ok", None)
            elif kind == _KIND_SIGN:
                signed = signer(tenant, n).sign_many(messages,
                                                     spine=spine)
                reply = ("ok", [(s.salt, s.compressed) for s in signed])
            elif kind == _KIND_VERIFY:
                rebuilt = [Signature(salt=salt, compressed=compressed)
                           for salt, compressed in signatures]
                # ``tenant`` is a per-lane list for cross-tenant
                # merged rounds; each lane verifies against its own
                # tenant's public key in one cross-key engine pass.
                lane_tenants = (list(tenant)
                                if isinstance(tenant, (list, tuple))
                                else [tenant] * len(messages))
                verdicts = verify_batch(
                    [(signer(t, n).public_key, message, signature)
                     for t, message, signature
                     in zip(lane_tenants, messages, rebuilt)],
                    spine=spine)
                reply = ("ok", list(verdicts))
            else:
                raise ValueError(f"unknown round kind {kind!r}")
        except Exception as error:
            try:  # most exceptions pickle; fall back to their repr
                import pickle
                pickle.dumps(error)
                reply = ("error", error)
            except Exception:
                reply = ("error", RuntimeError(repr(error)))
        try:
            connection.send(reply)
        except (BrokenPipeError, OSError):  # parent went away
            break
    store.close()
    connection.close()


class ShardWorkerPool:
    """One dedicated worker process per shard, rounds as batched tasks.

    Construction mirrors :class:`~repro.falcon.serving
    .ShardedKeyStore` — same ``shards`` / ``master_seed`` /
    ``directory`` triple, so a pool and a sharded store describe the
    same deployment (with a shared directory the flock'ed manifests
    keep their slot claims disjoint; memory-only, the deterministic
    seed derivation makes worker checkouts reproduce the in-process
    checkout sequence).  Use as a context manager, or call
    :meth:`start` / :meth:`stop`::

        with ShardWorkerPool(shards=2, master_seed=7) as pool:
            signatures = pool.run_round(
                shard=0, tenant="tenant-a", kind="sign", n=64,
                messages=[b"hello"])

    ``run_round`` is thread-safe per shard (a per-shard lock
    serializes the pipe round-trip — rounds for one shard are
    sequential by design, matching the service's one-worker-per-shard
    drain loop) and blocking: the asyncio layer calls it through
    ``asyncio.to_thread``, so N shards run N rounds truly in parallel
    on a multi-core host.
    """

    def __init__(self, *, shards: int = 2,
                 master_seed: int | bytes = 0,
                 directory: str | Path | None = None,
                 prng: str = "chacha20",
                 base_backend: str = "bitsliced",
                 keygen_spine: str = "auto",
                 spine: str = "auto",
                 mp_context: str | None = None,
                 fault_plan=None,
                 max_restarts: int = 3,
                 restart_backoff: float = 0.05) -> None:
        if shards < 1:
            raise ValueError("need at least one shard")
        self.shards = shards
        self._config_base = {
            "master_seed": master_seed,
            "prng": prng,
            "base_backend": base_backend,
            "keygen_spine": keygen_spine,
            "spine": spine,
        }
        # The PARENT owns the kill schedule: one injector whose
        # counters survive worker respawns, so a plan's max_per_site
        # caps total kills — a respawned worker building its own
        # injector would replay the same coin and die forever.
        self._faults = (fault_plan.injector()
                        if fault_plan is not None else None)
        self._directory = Path(directory) if directory is not None \
            else None
        self._context = (mp.get_context(mp_context) if mp_context
                         else mp.get_context())
        self._processes: list = []
        self._connections: list = []
        self._locks = [threading.Lock() for _ in range(shards)]
        self._started = False
        self._stopped = False
        # Supervision state, all per shard and guarded by the shard
        # lock: restart counters against the budget, the earliest
        # monotonic instant the next respawn may happen (exponential
        # backoff), and the warm list — every (tenant, n) this shard
        # has checked out, in first-seen order, replayed into a
        # respawned worker so checkout order (hence key bytes, for
        # memory-only stores) is preserved.
        self.max_restarts = max_restarts
        self.restart_backoff = restart_backoff
        self._restarts = [0] * shards
        self._next_restart = [0.0] * shards
        self._warm_order: list[list[tuple[str, int]]] = [
            [] for _ in range(shards)]
        self._warm_seen: list[set] = [set() for _ in range(shards)]
        self._rounds_failed = [0] * shards

    # -- lifecycle ---------------------------------------------------------

    def _spawn(self, shard: int) -> None:
        """Create shard's worker process + pipe at its slot."""
        config = dict(self._config_base)
        config["directory"] = (
            str(self._directory / f"shard-{shard:02d}")
            if self._directory is not None else None)
        parent_end, worker_end = self._context.Pipe()
        process = self._context.Process(
            target=_worker_main, args=(worker_end, shard, config),
            daemon=True, name=f"falcon-shard-worker-{shard}")
        process.start()
        worker_end.close()  # the worker holds its own copy
        if shard < len(self._processes):
            self._processes[shard] = process
            self._connections[shard] = parent_end
        else:
            self._processes.append(process)
            self._connections.append(parent_end)

    def start(self) -> None:
        if self._started:
            raise RuntimeError("pool already started")
        for shard in range(self.shards):
            self._spawn(shard)
        self._started = True

    def stop(self, timeout: float = 10.0) -> None:
        """Drain and stop every worker (idempotent).

        Sends each worker the orderly-shutdown sentinel, joins with
        ``timeout``, and terminates stragglers — in-flight rounds
        complete first because the sentinel queues behind them on the
        pipe.
        """
        if not self._started or self._stopped:
            return
        self._stopped = True
        for connection, lock in zip(self._connections, self._locks):
            with lock:
                try:
                    connection.send(None)
                except (BrokenPipeError, OSError):
                    pass
        for process in self._processes:
            process.join(timeout)
            if process.is_alive():  # pragma: no cover - hung worker
                process.terminate()
                process.join(timeout)
        for connection in self._connections:
            connection.close()

    def __enter__(self) -> "ShardWorkerPool":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        return (self._started and not self._stopped
                and all(p.is_alive() for p in self._processes))

    # -- supervision -------------------------------------------------------

    def _reap_locked(self, shard: int) -> None:
        """Acknowledge a dead worker (shard lock held): reap the
        process and close the now-useless parent pipe end."""
        process = self._processes[shard]
        if process.is_alive():  # kill a wedged worker outright
            process.terminate()
        process.join(1.0)
        try:
            self._connections[shard].close()
        except OSError:  # pragma: no cover - already closed
            pass

    def _ensure_worker_locked(self, shard: int) -> None:
        """Respawn shard's worker if it died (shard lock held).

        Enforces the restart budget, waits out the exponential
        backoff window, and replays the shard's warm list so the new
        worker checks tenants out in the original first-seen order.
        """
        if self._processes[shard].is_alive():
            return
        self._reap_locked(shard)
        if self._restarts[shard] >= self.max_restarts:
            raise ShardWorkerError(
                f"shard {shard} worker restart budget exhausted "
                f"({self.max_restarts} restarts)")
        delay = self._next_restart[shard] - time.monotonic()
        if delay > 0:
            time.sleep(delay)
        self._restarts[shard] += 1
        self._next_restart[shard] = (
            time.monotonic()
            + self.restart_backoff * 2.0 ** (self._restarts[shard] - 1))
        self._spawn(shard)
        self._rewarm_locked(shard)

    def _rewarm_locked(self, shard: int) -> None:
        """Replay the shard's (tenant, n) checkouts into a fresh
        worker, in first-seen order (shard lock held)."""
        connection = self._connections[shard]
        for tenant, n in self._warm_order[shard]:
            try:
                connection.send((tenant, _KIND_WARM, n, None, None))
                status, _ = connection.recv()
            except (EOFError, BrokenPipeError, OSError) as error:
                raise ShardWorkerError(
                    f"shard {shard} worker died during re-warm"
                ) from error
            if status != "ok":
                raise ShardWorkerError(
                    f"shard {shard} re-warm of ({tenant!r}, {n}) "
                    f"failed")

    def stats(self) -> dict:
        """Supervision snapshot: restart/failure counters per shard."""
        return {
            "restarts": list(self._restarts),
            "rounds_failed": list(self._rounds_failed),
            "alive": [p.is_alive() for p in self._processes],
            "warm_tenants": [len(order)
                             for order in self._warm_order],
            "max_restarts": self.max_restarts,
        }

    # -- round execution ---------------------------------------------------

    def run_round(self, shard: int, tenant, kind: str, n: int,
                  messages: Sequence[bytes],
                  signatures: Sequence[Signature] | None = None):
        """Run one coalesced round on ``shard``'s worker process.

        ``tenant`` is one tenant id for sign rounds, or — for a
        cross-tenant merged verify round — a list of per-lane tenant
        ids aligned with ``messages``.

        Blocking (call from a thread); returns what the in-process
        round would have — a ``Signature`` list for sign rounds, a
        bool list for verify rounds.  A round that raised in the
        worker re-raises here; a worker that died mid-round raises
        :class:`ShardWorkerError` for **this round only** — the next
        round respawns the worker (warm re-derivation, bounded restart
        budget, exponential backoff).
        """
        if not self._started or self._stopped:
            raise ShardWorkerError("worker pool is not running")
        if not 0 <= shard < self.shards:
            raise ValueError(f"no such shard {shard}")
        payload = ([(s.salt, s.compressed) for s in signatures]
                   if signatures is not None else None)
        with self._locks[shard]:
            self._ensure_worker_locked(shard)
            connection = self._connections[shard]
            if (self._faults is not None
                    and kind in (_KIND_SIGN, _KIND_VERIFY)
                    and self._faults.kill_worker(shard)):
                # Queue the kill ahead of the round: the worker
                # hard-exits on it, and the round below dies with a
                # pipe EOF — exactly a SIGKILL landing mid-round.
                try:
                    connection.send((tenant, _KIND_DIE, n, None, None))
                except (BrokenPipeError, OSError):
                    pass
            try:
                connection.send((tenant, kind, n, list(messages),
                                 payload))
                reply = connection.recv()
            except (EOFError, BrokenPipeError, OSError) as error:
                self._rounds_failed[shard] += 1
                self._reap_locked(shard)
                raise ShardWorkerError(
                    f"shard {shard} worker died mid-round") from error
            # Record first-seen (tenant, n) checkouts in lane order —
            # merged verify rounds carry a per-lane tenant list, and
            # the worker checks each lane's tenant out in that order,
            # so the warm-replay list must match it exactly (checkout
            # order determines key bytes for memory-only stores).
            lane_tenants = (list(tenant)
                            if isinstance(tenant, (list, tuple))
                            else [tenant])
            for lane_tenant in lane_tenants:
                if (lane_tenant, n) not in self._warm_seen[shard]:
                    self._warm_seen[shard].add((lane_tenant, n))
                    self._warm_order[shard].append((lane_tenant, n))
        status, result = reply
        if status == "error":
            raise result
        if kind == _KIND_SIGN:
            return [Signature(salt=salt, compressed=compressed)
                    for salt, compressed in result]
        return result
