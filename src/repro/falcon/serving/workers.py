"""Multi-process shard workers: real parallelism for the signing plane.

The asyncio :class:`~repro.falcon.serving.SigningService` coalesces
well, but every round still executes under one CPython GIL — every
committed benchmark before this layer ran on one core, and offloading
rounds to *threads* cannot change that.  :class:`ShardWorkerPool`
fans the shards out over **processes**: each shard gets a dedicated,
long-lived worker process that owns the shard's key material and runs
its ``sign_many`` / ``verify_many`` rounds, so a multi-core host runs
as many rounds truly in parallel as it has shards.

Design points:

* **One worker per shard, for the shard's lifetime.**  The worker
  builds its shard's :class:`~repro.falcon.keystore.KeyStore` once
  (same derived master seed and directory layout as
  :class:`~repro.falcon.serving.ShardedKeyStore` — the flock'ed slot
  manifests already make concurrent instances safe) and keeps its
  per-tenant signers checked out across rounds: the ffLDL trees,
  sampler pools and cached NTT transforms stay **warm**, exactly the
  amortization that made one-task-per-key process pools lose to
  single-process keygen.
* **Batched task submission.**  The unit of IPC is a whole coalesced
  round — one pickled ``(tenant, kind, messages)`` message per round,
  one reply with the round's results — never one task per request.
* **Byte identity.**  A worker signs with the very key the in-process
  path would have checked out for that tenant (same derived shard
  seed, same checkout order), through the very same ``sign_many``;
  signatures travel back as raw ``(salt, compressed)`` bytes.  The
  loopback test suite pins over-the-wire bytes == direct bytes.
* **Failure isolation.**  A raising round travels back as an error
  reply and re-raises in the submitting process for that round only;
  the worker's loop keeps serving.  A *dead* worker (killed process)
  surfaces as :class:`ShardWorkerError` on submission.
"""

from __future__ import annotations

import multiprocessing as mp
import threading
from pathlib import Path
from typing import Sequence

from ..scheme import Signature

#: Round kinds a worker executes (mirrors the service's constants;
#: re-declared here so worker processes do not import the asyncio
#: layer).
_KIND_SIGN = "sign"
_KIND_VERIFY = "verify"


class ShardWorkerError(RuntimeError):
    """A shard worker process failed outside a round (died, refused)."""


def _worker_main(connection, shard: int, config: dict) -> None:
    """A shard worker process: build the shard store, serve rounds.

    Runs until the parent sends ``None`` (orderly drain) or the pipe
    breaks (parent died).  Per-tenant signers are checked out on first
    use and cached for the lifetime of the process — warm spines.
    """
    from ..keystore import KeyStore
    from .sharded import derive_shard_seed

    directory = config.get("directory")
    store = KeyStore(
        directory,
        master_seed=derive_shard_seed(config["master_seed"], shard),
        prng=config.get("prng", "chacha20"),
        base_backend=config.get("base_backend", "bitsliced"),
        keygen_spine=config.get("keygen_spine", "auto"))
    spine = config.get("spine", "auto")
    signers = {}

    def signer(tenant: str, n: int):
        key = (tenant, n)
        if key not in signers:
            signers[key] = store.checkout_current(n)[0]
        return signers[key]

    while True:
        try:
            task = connection.recv()
        except (EOFError, OSError):  # parent went away
            break
        if task is None:
            break
        tenant, kind, n, messages, signatures = task
        try:
            if kind == _KIND_SIGN:
                signed = signer(tenant, n).sign_many(messages,
                                                     spine=spine)
                reply = ("ok", [(s.salt, s.compressed) for s in signed])
            elif kind == _KIND_VERIFY:
                rebuilt = [Signature(salt=salt, compressed=compressed)
                           for salt, compressed in signatures]
                verdicts = signer(tenant, n).public_key.verify_many(
                    messages, rebuilt)
                reply = ("ok", list(verdicts))
            else:
                raise ValueError(f"unknown round kind {kind!r}")
        except Exception as error:
            try:  # most exceptions pickle; fall back to their repr
                import pickle
                pickle.dumps(error)
                reply = ("error", error)
            except Exception:
                reply = ("error", RuntimeError(repr(error)))
        try:
            connection.send(reply)
        except (BrokenPipeError, OSError):  # parent went away
            break
    store.close()
    connection.close()


class ShardWorkerPool:
    """One dedicated worker process per shard, rounds as batched tasks.

    Construction mirrors :class:`~repro.falcon.serving
    .ShardedKeyStore` — same ``shards`` / ``master_seed`` /
    ``directory`` triple, so a pool and a sharded store describe the
    same deployment (with a shared directory the flock'ed manifests
    keep their slot claims disjoint; memory-only, the deterministic
    seed derivation makes worker checkouts reproduce the in-process
    checkout sequence).  Use as a context manager, or call
    :meth:`start` / :meth:`stop`::

        with ShardWorkerPool(shards=2, master_seed=7) as pool:
            signatures = pool.run_round(
                shard=0, tenant="tenant-a", kind="sign", n=64,
                messages=[b"hello"])

    ``run_round`` is thread-safe per shard (a per-shard lock
    serializes the pipe round-trip — rounds for one shard are
    sequential by design, matching the service's one-worker-per-shard
    drain loop) and blocking: the asyncio layer calls it through
    ``asyncio.to_thread``, so N shards run N rounds truly in parallel
    on a multi-core host.
    """

    def __init__(self, *, shards: int = 2,
                 master_seed: int | bytes = 0,
                 directory: str | Path | None = None,
                 prng: str = "chacha20",
                 base_backend: str = "bitsliced",
                 keygen_spine: str = "auto",
                 spine: str = "auto",
                 mp_context: str | None = None) -> None:
        if shards < 1:
            raise ValueError("need at least one shard")
        self.shards = shards
        self._config_base = {
            "master_seed": master_seed,
            "prng": prng,
            "base_backend": base_backend,
            "keygen_spine": keygen_spine,
            "spine": spine,
        }
        self._directory = Path(directory) if directory is not None \
            else None
        self._context = (mp.get_context(mp_context) if mp_context
                         else mp.get_context())
        self._processes: list = []
        self._connections: list = []
        self._locks = [threading.Lock() for _ in range(shards)]
        self._started = False
        self._stopped = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        if self._started:
            raise RuntimeError("pool already started")
        for shard in range(self.shards):
            config = dict(self._config_base)
            config["directory"] = (
                str(self._directory / f"shard-{shard:02d}")
                if self._directory is not None else None)
            parent_end, worker_end = self._context.Pipe()
            process = self._context.Process(
                target=_worker_main, args=(worker_end, shard, config),
                daemon=True, name=f"falcon-shard-worker-{shard}")
            process.start()
            worker_end.close()  # the worker holds its own copy
            self._processes.append(process)
            self._connections.append(parent_end)
        self._started = True

    def stop(self, timeout: float = 10.0) -> None:
        """Drain and stop every worker (idempotent).

        Sends each worker the orderly-shutdown sentinel, joins with
        ``timeout``, and terminates stragglers — in-flight rounds
        complete first because the sentinel queues behind them on the
        pipe.
        """
        if not self._started or self._stopped:
            return
        self._stopped = True
        for connection, lock in zip(self._connections, self._locks):
            with lock:
                try:
                    connection.send(None)
                except (BrokenPipeError, OSError):
                    pass
        for process in self._processes:
            process.join(timeout)
            if process.is_alive():  # pragma: no cover - hung worker
                process.terminate()
                process.join(timeout)
        for connection in self._connections:
            connection.close()

    def __enter__(self) -> "ShardWorkerPool":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        return (self._started and not self._stopped
                and all(p.is_alive() for p in self._processes))

    # -- round execution ---------------------------------------------------

    def run_round(self, shard: int, tenant: str, kind: str, n: int,
                  messages: Sequence[bytes],
                  signatures: Sequence[Signature] | None = None):
        """Run one coalesced round on ``shard``'s worker process.

        Blocking (call from a thread); returns what the in-process
        round would have — a ``Signature`` list for sign rounds, a
        bool list for verify rounds.  A round that raised in the
        worker re-raises here; a dead worker raises
        :class:`ShardWorkerError`.
        """
        if not self._started or self._stopped:
            raise ShardWorkerError("worker pool is not running")
        if not 0 <= shard < self.shards:
            raise ValueError(f"no such shard {shard}")
        payload = ([(s.salt, s.compressed) for s in signatures]
                   if signatures is not None else None)
        connection = self._connections[shard]
        with self._locks[shard]:
            try:
                connection.send((tenant, kind, n, list(messages),
                                 payload))
                reply = connection.recv()
            except (EOFError, BrokenPipeError, OSError) as error:
                raise ShardWorkerError(
                    f"shard {shard} worker died mid-round") from error
        status, result = reply
        if status == "error":
            raise result
        if kind == _KIND_SIGN:
            return [Signature(salt=salt, compressed=compressed)
                    for salt, compressed in result]
        return result
