"""Production serving layer over the batched Falcon spine.

Four layers above :class:`~repro.falcon.keystore.KeyStore`:

* :class:`ShardedKeyStore` — consistent-hash tenant→shard mapping over
  per-shard generate-ahead pools (each shard has its own directory,
  manifest, lock file and derived master seed), with per-tenant signer
  checkout and an aggregated metrics snapshot;
* :class:`SigningService` — an asyncio facade that coalesces
  concurrent ``sign(tenant, message)`` / ``verify(tenant, message,
  signature)`` calls into batched ``sign_many`` / ``verify_many``
  rounds per shard, with max-batch / max-wait knobs and back-pressure
  through bounded queues;
* :class:`ShardWorkerPool` — one dedicated worker *process* per shard
  with warm per-tenant spines, so rounds escape the GIL and a
  multi-core host signs truly in parallel (plug into
  ``SigningService(worker_pool=...)``);
* :class:`NetServer` / :class:`NetClient` — the wire: length-prefixed
  asyncio socket frames (``MAGIC | version | kind | req-id | body``)
  with per-tenant authentication tokens, token-bucket rate limits and
  graceful drain.

Round composition is a pure function of arrival *metadata* — see
:func:`plan_rounds` — and wire-frame shapes are a pure function of
request metadata, never of message or key contents; the dudect-style
two-class check over both lives in :mod:`repro.ct.coalesce`.

The failure story is first-class: :class:`FaultPlan` injects seeded,
reproducible faults (worker kills, dropped/truncated/delayed frames,
failed claims, stalled refills) and the plane survives them — worker
supervision with bounded restarts (:class:`ShardWorkerPool`), per-shard
circuit breakers shedding to ring neighbours (:class:`CircuitBreaker`),
deadline propagation and retry-with-dedup on the wire
(:class:`RetryPolicy`, :class:`NetClient`), and a crash-safe claim
journal in the keystore.  :class:`ServingUnavailable` /
:class:`DeadlineExceeded` are the two errors every layer speaks.
"""

from .errors import DeadlineExceeded, ServingUnavailable
from .faults import FaultInjector, FaultPlan, FaultStats, InjectedFault
from .net import (
    FrameError,
    NetClient,
    NetServer,
    RetryPolicy,
    TokenBucket,
    encode_request_frame,
    frame_shape,
)
from .sharded import ConsistentHashRing, ShardedKeyStore, derive_shard_seed
from .service import (
    KIND_SIGN,
    KIND_VERIFY,
    VERIFY_MERGED_TENANT,
    CircuitBreaker,
    RoundPlan,
    ServiceMetrics,
    SigningService,
    plan_rounds,
)
from .workers import ShardWorkerError, ShardWorkerPool

__all__ = [
    "CircuitBreaker",
    "ConsistentHashRing",
    "DeadlineExceeded",
    "FaultInjector",
    "FaultPlan",
    "FaultStats",
    "FrameError",
    "InjectedFault",
    "KIND_SIGN",
    "KIND_VERIFY",
    "NetClient",
    "NetServer",
    "RetryPolicy",
    "RoundPlan",
    "ServiceMetrics",
    "ServingUnavailable",
    "ShardWorkerError",
    "ShardWorkerPool",
    "ShardedKeyStore",
    "SigningService",
    "TokenBucket",
    "VERIFY_MERGED_TENANT",
    "derive_shard_seed",
    "encode_request_frame",
    "frame_shape",
    "plan_rounds",
]
