"""Production serving layer over the batched Falcon spine.

Two layers above :class:`~repro.falcon.keystore.KeyStore`:

* :class:`ShardedKeyStore` — consistent-hash tenant→shard mapping over
  per-shard generate-ahead pools (each shard has its own directory,
  manifest, lock file and derived master seed), with per-tenant signer
  checkout and an aggregated metrics snapshot;
* :class:`SigningService` — an asyncio facade that coalesces
  concurrent ``sign(tenant, message)`` / ``verify(tenant, message,
  signature)`` calls into batched ``sign_many`` / ``verify_many``
  rounds per shard, with max-batch / max-wait knobs and back-pressure
  through bounded queues.

Round composition is a pure function of arrival *metadata* — see
:func:`plan_rounds` — never of message or key contents; the dudect-
style check lives in :mod:`repro.ct.coalesce`.
"""

from .sharded import ConsistentHashRing, ShardedKeyStore, derive_shard_seed
from .service import (
    RoundPlan,
    ServiceMetrics,
    SigningService,
    plan_rounds,
)

__all__ = [
    "ConsistentHashRing",
    "RoundPlan",
    "ServiceMetrics",
    "ShardedKeyStore",
    "SigningService",
    "derive_shard_seed",
    "plan_rounds",
]
