"""Deterministic fault injection for the serving plane.

The chaos suite needs failures that are *adversarial but reproducible*:
a worker SIGKILL that lands on the same round in every run, a dropped
response frame that always hits request 3, a claim crash that happens
exactly once.  Wall-clock randomness cannot give that, so every
decision here is a pure function of ``(seed, site, counter)``:

    sha256(b"falcon-fault|<seed>|<site>|<counter>")[:8]  <  rate * 2**64

where ``site`` names the injection point (``"kill-worker:3"``,
``"frame:send"``, ``"claim"``, ...) and ``counter`` is how many times
that site has been evaluated so far.  Two runs with the same plan and
the same sequence of operations fire the same faults — regardless of
timing, interleaving of *other* sites, or which process asks (the plan
is picklable and travels to shard workers with the rest of the config).

A :class:`FaultPlan` is inert data; call :meth:`FaultPlan.injector` to
get the stateful :class:`FaultInjector` that owns the per-site counters.
Layers that inject faults accept the *plan* in their constructor and
build their own injector, so forked/spawned workers don't share counter
state with the parent.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

__all__ = [
    "FaultPlan",
    "FaultInjector",
    "FaultStats",
    "InjectedFault",
]


class InjectedFault(RuntimeError):
    """An error raised on purpose by the fault-injection layer.

    Distinct from organic failures so tests can assert that the plane
    failed for the reason the plan dictated and not an unrelated bug.
    """


def _decide(seed: int, site: str, counter: int, rate: float) -> bool:
    """The one deterministic coin: True iff this (site, counter) fires."""
    if rate <= 0.0:
        return False
    if rate >= 1.0:
        return True
    material = b"falcon-fault|%d|%s|%d" % (seed, site.encode("utf-8"), counter)
    draw = int.from_bytes(hashlib.sha256(material).digest()[:8], "big")
    return draw < int(rate * 2.0**64)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, picklable description of which faults to inject where.

    Every ``*_rate`` is a probability in [0, 1] evaluated by the
    deterministic coin above; ``max_per_site`` caps how many times any
    single site may fire (0 = unlimited), which is how tests arrange
    "exactly one SIGKILL" without racing on timing.
    """

    seed: int = 0
    # Worker-process faults: hard-exit a shard worker between receiving
    # a round and executing it.  ``kill_worker_shards`` narrows the
    # blast radius to specific shards (None = all shards eligible).
    kill_worker: float = 0.0
    kill_worker_shards: Optional[Tuple[int, ...]] = None
    # Wire faults, evaluated per outbound frame on the server.
    drop_frame: float = 0.0
    truncate_frame: float = 0.0
    delay_frame: float = 0.0
    delay_seconds: float = 0.05
    # Keystore faults.  ``fail_claim`` makes a slot claim raise before
    # touching disk; ``crash_claim`` simulates dying *between* the
    # claim-rename and serving the key (the journal's reason to exist).
    fail_claim: float = 0.0
    crash_claim: float = 0.0
    # Refill faults: ``fail_refill`` makes the background refill raise;
    # ``stall_refill_seconds`` sleeps it first (0 = no stall).
    fail_refill: float = 0.0
    stall_refill_seconds: float = 0.0
    # Cap on fires per site (0 = unlimited).
    max_per_site: int = 0

    def injector(self) -> "FaultInjector":
        return FaultInjector(self)

    def any_armed(self) -> bool:
        return any(
            rate > 0.0
            for rate in (
                self.kill_worker,
                self.drop_frame,
                self.truncate_frame,
                self.delay_frame,
                self.fail_claim,
                self.crash_claim,
                self.fail_refill,
            )
        ) or self.stall_refill_seconds > 0.0


@dataclass
class FaultStats:
    """Counts of evaluations and fires, per site, for reporting."""

    evaluated: Dict[str, int] = field(default_factory=dict)
    fired: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Dict[str, int]]:
        return {"evaluated": dict(self.evaluated), "fired": dict(self.fired)}

    @property
    def total_fired(self) -> int:
        return sum(self.fired.values())


class FaultInjector:
    """Stateful evaluator of a :class:`FaultPlan`.

    Owns the per-site counters (thread-safe; shard workers are
    single-threaded but the server side evaluates from multiple asyncio
    callbacks and the keystore from refill threads).
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self.stats = FaultStats()

    def _fire(self, site: str, rate: float) -> bool:
        with self._lock:
            count = self._counters.get(site, 0)
            self._counters[site] = count + 1
            self.stats.evaluated[site] = self.stats.evaluated.get(site, 0) + 1
            if (
                self.plan.max_per_site
                and self.stats.fired.get(site, 0) >= self.plan.max_per_site
            ):
                return False
            if not _decide(self.plan.seed, site, count, rate):
                return False
            self.stats.fired[site] = self.stats.fired.get(site, 0) + 1
            return True

    # -- worker faults -------------------------------------------------

    def kill_worker(self, shard: int) -> bool:
        """Should this shard worker hard-exit before running the round?"""
        plan = self.plan
        if plan.kill_worker <= 0.0:
            return False
        if (
            plan.kill_worker_shards is not None
            and shard not in plan.kill_worker_shards
        ):
            return False
        return self._fire("kill-worker:%d" % shard, plan.kill_worker)

    # -- wire faults ---------------------------------------------------

    def frame_action(self, site: str = "frame:send"):
        """None, "drop", "truncate", or ("delay", seconds) for one frame.

        Evaluated in a fixed order (drop, truncate, delay) so a plan
        arming several wire faults stays deterministic.
        """
        plan = self.plan
        if self._fire(site + ":drop", plan.drop_frame):
            return "drop"
        if self._fire(site + ":truncate", plan.truncate_frame):
            return "truncate"
        if self._fire(site + ":delay", plan.delay_frame):
            return ("delay", plan.delay_seconds)
        return None

    # -- keystore faults -----------------------------------------------

    def claim_action(self):
        """None, "fail" (claim raises early) or "crash" (die mid-claim)."""
        plan = self.plan
        if self._fire("claim:fail", plan.fail_claim):
            return "fail"
        if self._fire("claim:crash", plan.crash_claim):
            return "crash"
        return None

    def refill_should_fail(self) -> bool:
        return self._fire("refill:fail", self.plan.fail_refill)

    def refill_stall(self) -> float:
        """Seconds to sleep before attempting the refill (0 = none)."""
        if self.plan.stall_refill_seconds <= 0.0:
            return 0.0
        if self._fire("refill:stall", 1.0):
            return self.plan.stall_refill_seconds
        return 0.0

    # -- helpers -------------------------------------------------------

    def error(self, message: str) -> InjectedFault:
        """Build the canonical injected-fault exception for raising."""
        return InjectedFault(message)
