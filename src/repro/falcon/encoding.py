"""Falcon signature compression (the spec's Golomb–Rice-style coding).

A signature's ``s2`` polynomial has Gaussian coefficients of standard
deviation ~165, so ~8 low bits are incompressible noise and the high
bits are geometrically distributed.  The spec encodes each coefficient
as:

* 1 sign bit,
* the 7 low bits of the absolute value,
* the remaining high part ``|s| >> 7`` in unary (that many ``0`` bits,
  then a terminating ``1``).

The bit budget is fixed per parameter set; unused space is zero-padded
(and checked on decode), and encoders report failure when a freak
signature exceeds the budget — the signer simply retries, as the
reference implementation does.  Decoding enforces canonicity: padding
must be all-zero, ``-0`` is rejected, and every magnitude must lie
within the parameter set's coefficient range (any valid signature's
coefficients satisfy ``c^2 <= beta^2``, so a longer unary run can only
come from a malformed or forged blob).
"""

from __future__ import annotations

from math import isqrt

from .params import falcon_params

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised in the no-numpy job
    _np = None


def max_coefficient(n: int) -> int:
    """Largest |s2 coefficient| any valid Falcon-``n`` signature can
    carry: ``floor(sqrt(beta^2))`` (one coefficient taking the entire
    norm budget)."""
    return isqrt(falcon_params(n).sig_bound)


class CompressError(Exception):
    """Signature does not fit the fixed bit budget (resample)."""


class DecompressError(Exception):
    """Malformed or non-canonical compressed signature."""


class _BitWriter:
    def __init__(self) -> None:
        self.bits: list[int] = []

    def write(self, bit: int) -> None:
        self.bits.append(bit)

    def write_int(self, value: int, width: int) -> None:
        for position in range(width - 1, -1, -1):
            self.bits.append((value >> position) & 1)

    def to_bytes(self, total_bits: int) -> bytes:
        if len(self.bits) > total_bits:
            raise CompressError(
                f"needs {len(self.bits)} bits > budget {total_bits}")
        padded = self.bits + [0] * (total_bits - len(self.bits))
        out = bytearray()
        for start in range(0, len(padded), 8):
            byte = 0
            for bit in padded[start:start + 8]:
                byte = (byte << 1) | bit
            out.append(byte)
        return bytes(out)


class _BitReader:
    def __init__(self, data: bytes) -> None:
        self.data = data
        self.position = 0

    def read(self) -> int:
        byte_index, bit_index = divmod(self.position, 8)
        if byte_index >= len(self.data):
            raise DecompressError("compressed signature truncated")
        self.position += 1
        return (self.data[byte_index] >> (7 - bit_index)) & 1

    def read_int(self, width: int) -> int:
        value = 0
        for _ in range(width):
            value = (value << 1) | self.read()
        return value

    def remaining_all_zero(self) -> bool:
        total = len(self.data) * 8
        while self.position < total:
            if self.read():
                return False
        return True


def compress(coefficients: list[int], payload_bits: int) -> bytes:
    """Compress ``s2`` into exactly ``ceil(payload_bits / 8)`` bytes.

    The bit stream is accumulated in one Python bigint (a sentinel top
    bit preserves leading zeros) instead of a per-bit list — the signer
    compresses every signature, so this path is hot.  The emitted bytes
    are identical to the straightforward :class:`_BitWriter` form.
    """
    acc = 1  # sentinel: keeps leading zero bits in the integer
    bits = 0
    for value in coefficients:
        sign = 1 if value < 0 else 0
        magnitude = -value if value < 0 else value
        high = magnitude >> 7
        # sign bit, 7 low bits, `high` zeros, terminating 1:
        chunk = (((sign << 7) | (magnitude & 0x7F)) << (high + 1)) | 1
        acc = (acc << (high + 9)) | chunk
        bits += high + 9
    total_bits = ((payload_bits + 7) // 8) * 8
    if bits > total_bits:
        raise CompressError(
            f"needs {bits} bits > budget {total_bits}")
    acc <<= total_bits - bits  # zero padding
    return acc.to_bytes(total_bits // 8 + 1, "big")[1:]


def decompress(data: bytes, n: int) -> list[int]:
    """Inverse of :func:`compress`; raises on any non-canonical form.

    ``n`` is the ring degree: each decoded magnitude is checked against
    :func:`max_coefficient` for that parameter set, so a unary run
    encoding a coefficient no valid signature could carry (the old
    guard allowed magnitudes up to ~131k, ~22x the Falcon-512 bound)
    is rejected as malformed.

    Operates on the bit stream as a text of ``0``/``1`` characters so
    the unary runs are located with C-speed ``str.find`` — same
    accept/reject behavior as the bit-by-bit reference reader.
    """
    limit = max_coefficient(n)
    max_high = limit >> 7
    total = len(data) * 8
    stream = bin((1 << total) | int.from_bytes(data, "big"))[3:]
    out = []
    position = 0
    for _ in range(n):
        if position + 8 > total:
            raise DecompressError("compressed signature truncated")
        sign = stream[position] == "1"
        low = int(stream[position + 1:position + 8], 2)
        terminator = stream.find("1", position + 8)
        if terminator < 0:
            raise DecompressError("compressed signature truncated")
        high = terminator - (position + 8)
        if high > max_high:
            raise DecompressError(
                "unary run exceeds the coefficient bound")
        magnitude = (high << 7) | low
        if magnitude > limit:
            raise DecompressError(
                f"coefficient {magnitude} exceeds the parameter "
                f"set's bound {limit}")
        if sign and magnitude == 0:
            raise DecompressError("negative zero is non-canonical")
        out.append(-magnitude if sign else magnitude)
        position = terminator + 1
    if "1" in stream[position:]:
        raise DecompressError("non-zero padding")
    return out


def decompress_rows(blobs: list[bytes], n: int):
    """Decode a whole batch of equal-width compressed signatures at once.

    The per-degree payload width is fixed, so a batch's bit streams
    stack into one ``(batch, total_bits)`` matrix and the Golomb–Rice
    walk vectorizes *across lanes*: precompute, per lane, the
    next-set-bit index for every position and the 8-bit window value at
    every position, then run the ``n``-step record walk with one gather
    per step over the whole batch.  Per-lane decode cost amortizes with
    batch size exactly like the engine's batched NTT pass does.

    Returns ``(coefficients, failed)``: an ``(batch, n)`` int64 matrix
    and a boolean lane mask.  Accept/reject agrees with the scalar
    :func:`decompress` bit for bit — a flagged lane fails every check
    the scalar decoder enforces (truncation, over-long unary runs,
    out-of-range magnitudes, negative zero, non-zero padding) and rows
    of failed lanes are garbage; callers wanting the canonical error
    message re-run :func:`decompress` on just those lanes.  Requires
    NumPy and blobs of one shared byte width.
    """
    if _np is None:  # pragma: no cover - numpy baked into the CI image
        raise RuntimeError("decompress_rows requires NumPy")
    batch = len(blobs)
    width = len(blobs[0])
    if any(len(blob) != width for blob in blobs):
        raise ValueError("decompress_rows needs equal-width blobs")
    limit = max_coefficient(n)
    max_high = limit >> 7
    total = width * 8
    data = _np.frombuffer(b"".join(blobs),
                          _np.uint8).reshape(batch, width)
    bits = _np.unpackbits(data, axis=1)
    # next_one[l, j] = smallest set-bit index >= j (sentinel: total).
    # Padded so the record walk below never needs a bounds clamp: the
    # walk's lookahead index tops out at total + 9.
    index_of_one = _np.where(bits != 0,
                             _np.arange(total, dtype=_np.int32),
                             _np.int32(total))
    next_one = _np.full((batch, total + 10), _np.int32(total))
    next_one[:, :total] = _np.minimum.accumulate(
        index_of_one[:, ::-1], axis=1)[:, ::-1]
    # The record walk: only the terminator chain is sequential (record
    # i + 1 starts one past record i's terminating 1-bit), so the loop
    # carries just the lookahead cursor — 3 vectorized ops per step
    # over the whole batch — and everything else is gathered after.
    rows = _np.arange(batch)
    terms = _np.empty((batch, n), dtype=_np.int32)
    look = _np.full(batch, 8, dtype=_np.int32)  # start + 8, start = 0
    for i in range(n):
        terminator = next_one[rows, look]
        terms[:, i] = terminator
        look = terminator + _np.int32(9)
    starts = _np.empty((batch, n), dtype=_np.int32)
    starts[:, 0] = 0
    starts[:, 1:] = terms[:, :-1] + 1
    # Each record's leading 8 bits (sign | 7 low bits) straddle at most
    # two bytes; gather them straight out of a 16-bit byte-pair view.
    pairs = _np.zeros((batch, width + 1), dtype=_np.int32)
    pairs[:, :width] = data.astype(_np.int32) << 8
    pairs[:, :width - 1] |= data[:, 1:]
    words = (pairs[rows[:, None], starts >> 3]
             >> (8 - (starts & 7))) & 0xFF
    high = terms - starts - 8
    sign = words >> 7
    magnitude = (_np.maximum(high, 0) << 7) | (words & 0x7F)
    failed = ((starts + 8 > total).any(axis=1)
              | (terms >= total).any(axis=1)
              | (high > max_high).any(axis=1)
              | (magnitude > limit).any(axis=1)
              | ((sign == 1) & (magnitude == 0)).any(axis=1)
              | (next_one[rows, terms[:, -1] + 1] < total))
    coefficients = _np.where(sign == 1, -magnitude, magnitude)
    return coefficients, failed
