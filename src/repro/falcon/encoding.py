"""Falcon signature compression (the spec's Golomb–Rice-style coding).

A signature's ``s2`` polynomial has Gaussian coefficients of standard
deviation ~165, so ~8 low bits are incompressible noise and the high
bits are geometrically distributed.  The spec encodes each coefficient
as:

* 1 sign bit,
* the 7 low bits of the absolute value,
* the remaining high part ``|s| >> 7`` in unary (that many ``0`` bits,
  then a terminating ``1``).

The bit budget is fixed per parameter set; unused space is zero-padded
(and checked on decode), and encoders report failure when a freak
signature exceeds the budget — the signer simply retries, as the
reference implementation does.  Decoding enforces canonicity: padding
must be all-zero and ``-0`` is rejected.
"""

from __future__ import annotations


class CompressError(Exception):
    """Signature does not fit the fixed bit budget (resample)."""


class DecompressError(Exception):
    """Malformed or non-canonical compressed signature."""


class _BitWriter:
    def __init__(self) -> None:
        self.bits: list[int] = []

    def write(self, bit: int) -> None:
        self.bits.append(bit)

    def write_int(self, value: int, width: int) -> None:
        for position in range(width - 1, -1, -1):
            self.bits.append((value >> position) & 1)

    def to_bytes(self, total_bits: int) -> bytes:
        if len(self.bits) > total_bits:
            raise CompressError(
                f"needs {len(self.bits)} bits > budget {total_bits}")
        padded = self.bits + [0] * (total_bits - len(self.bits))
        out = bytearray()
        for start in range(0, len(padded), 8):
            byte = 0
            for bit in padded[start:start + 8]:
                byte = (byte << 1) | bit
            out.append(byte)
        return bytes(out)


class _BitReader:
    def __init__(self, data: bytes) -> None:
        self.data = data
        self.position = 0

    def read(self) -> int:
        byte_index, bit_index = divmod(self.position, 8)
        if byte_index >= len(self.data):
            raise DecompressError("compressed signature truncated")
        self.position += 1
        return (self.data[byte_index] >> (7 - bit_index)) & 1

    def read_int(self, width: int) -> int:
        value = 0
        for _ in range(width):
            value = (value << 1) | self.read()
        return value

    def remaining_all_zero(self) -> bool:
        total = len(self.data) * 8
        while self.position < total:
            if self.read():
                return False
        return True


def compress(coefficients: list[int], payload_bits: int) -> bytes:
    """Compress ``s2`` into exactly ``ceil(payload_bits / 8)`` bytes."""
    writer = _BitWriter()
    for value in coefficients:
        sign = 1 if value < 0 else 0
        magnitude = -value if value < 0 else value
        writer.write(sign)
        writer.write_int(magnitude & 0x7F, 7)
        high = magnitude >> 7
        for _ in range(high):
            writer.write(0)
        writer.write(1)
    total_bits = ((payload_bits + 7) // 8) * 8
    return writer.to_bytes(total_bits)


def decompress(data: bytes, n: int) -> list[int]:
    """Inverse of :func:`compress`; raises on any non-canonical form."""
    reader = _BitReader(data)
    out = []
    for _ in range(n):
        sign = reader.read()
        low = reader.read_int(7)
        high = 0
        while True:
            bit = reader.read()
            if bit:
                break
            high += 1
            if high > (1 << 10):
                raise DecompressError("unary run too long")
        magnitude = (high << 7) | low
        if sign and magnitude == 0:
            raise DecompressError("negative zero is non-canonical")
        out.append(-magnitude if sign else magnitude)
    if not reader.remaining_all_zero():
        raise DecompressError("non-zero padding")
    return out
