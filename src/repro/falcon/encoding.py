"""Falcon signature compression (the spec's Golomb–Rice-style coding).

A signature's ``s2`` polynomial has Gaussian coefficients of standard
deviation ~165, so ~8 low bits are incompressible noise and the high
bits are geometrically distributed.  The spec encodes each coefficient
as:

* 1 sign bit,
* the 7 low bits of the absolute value,
* the remaining high part ``|s| >> 7`` in unary (that many ``0`` bits,
  then a terminating ``1``).

The bit budget is fixed per parameter set; unused space is zero-padded
(and checked on decode), and encoders report failure when a freak
signature exceeds the budget — the signer simply retries, as the
reference implementation does.  Decoding enforces canonicity: padding
must be all-zero, ``-0`` is rejected, and every magnitude must lie
within the parameter set's coefficient range (any valid signature's
coefficients satisfy ``c^2 <= beta^2``, so a longer unary run can only
come from a malformed or forged blob).
"""

from __future__ import annotations

from math import isqrt

from .params import falcon_params


def max_coefficient(n: int) -> int:
    """Largest |s2 coefficient| any valid Falcon-``n`` signature can
    carry: ``floor(sqrt(beta^2))`` (one coefficient taking the entire
    norm budget)."""
    return isqrt(falcon_params(n).sig_bound)


class CompressError(Exception):
    """Signature does not fit the fixed bit budget (resample)."""


class DecompressError(Exception):
    """Malformed or non-canonical compressed signature."""


class _BitWriter:
    def __init__(self) -> None:
        self.bits: list[int] = []

    def write(self, bit: int) -> None:
        self.bits.append(bit)

    def write_int(self, value: int, width: int) -> None:
        for position in range(width - 1, -1, -1):
            self.bits.append((value >> position) & 1)

    def to_bytes(self, total_bits: int) -> bytes:
        if len(self.bits) > total_bits:
            raise CompressError(
                f"needs {len(self.bits)} bits > budget {total_bits}")
        padded = self.bits + [0] * (total_bits - len(self.bits))
        out = bytearray()
        for start in range(0, len(padded), 8):
            byte = 0
            for bit in padded[start:start + 8]:
                byte = (byte << 1) | bit
            out.append(byte)
        return bytes(out)


class _BitReader:
    def __init__(self, data: bytes) -> None:
        self.data = data
        self.position = 0

    def read(self) -> int:
        byte_index, bit_index = divmod(self.position, 8)
        if byte_index >= len(self.data):
            raise DecompressError("compressed signature truncated")
        self.position += 1
        return (self.data[byte_index] >> (7 - bit_index)) & 1

    def read_int(self, width: int) -> int:
        value = 0
        for _ in range(width):
            value = (value << 1) | self.read()
        return value

    def remaining_all_zero(self) -> bool:
        total = len(self.data) * 8
        while self.position < total:
            if self.read():
                return False
        return True


def compress(coefficients: list[int], payload_bits: int) -> bytes:
    """Compress ``s2`` into exactly ``ceil(payload_bits / 8)`` bytes.

    The bit stream is accumulated in one Python bigint (a sentinel top
    bit preserves leading zeros) instead of a per-bit list — the signer
    compresses every signature, so this path is hot.  The emitted bytes
    are identical to the straightforward :class:`_BitWriter` form.
    """
    acc = 1  # sentinel: keeps leading zero bits in the integer
    bits = 0
    for value in coefficients:
        sign = 1 if value < 0 else 0
        magnitude = -value if value < 0 else value
        high = magnitude >> 7
        # sign bit, 7 low bits, `high` zeros, terminating 1:
        chunk = (((sign << 7) | (magnitude & 0x7F)) << (high + 1)) | 1
        acc = (acc << (high + 9)) | chunk
        bits += high + 9
    total_bits = ((payload_bits + 7) // 8) * 8
    if bits > total_bits:
        raise CompressError(
            f"needs {bits} bits > budget {total_bits}")
    acc <<= total_bits - bits  # zero padding
    return acc.to_bytes(total_bits // 8 + 1, "big")[1:]


def decompress(data: bytes, n: int) -> list[int]:
    """Inverse of :func:`compress`; raises on any non-canonical form.

    ``n`` is the ring degree: each decoded magnitude is checked against
    :func:`max_coefficient` for that parameter set, so a unary run
    encoding a coefficient no valid signature could carry (the old
    guard allowed magnitudes up to ~131k, ~22x the Falcon-512 bound)
    is rejected as malformed.

    Operates on the bit stream as a text of ``0``/``1`` characters so
    the unary runs are located with C-speed ``str.find`` — same
    accept/reject behavior as the bit-by-bit reference reader.
    """
    limit = max_coefficient(n)
    max_high = limit >> 7
    total = len(data) * 8
    stream = bin((1 << total) | int.from_bytes(data, "big"))[3:]
    out = []
    position = 0
    for _ in range(n):
        if position + 8 > total:
            raise DecompressError("compressed signature truncated")
        sign = stream[position] == "1"
        low = int(stream[position + 1:position + 8], 2)
        terminator = stream.find("1", position + 8)
        if terminator < 0:
            raise DecompressError("compressed signature truncated")
        high = terminator - (position + 8)
        if high > max_high:
            raise DecompressError(
                "unary run exceeds the coefficient bound")
        magnitude = (high << 7) | low
        if magnitude > limit:
            raise DecompressError(
                f"coefficient {magnitude} exceeds the parameter "
                f"set's bound {limit}")
        if sign and magnitude == 0:
            raise DecompressError("negative zero is non-canonical")
        out.append(-magnitude if sign else magnitude)
        position = terminator + 1
    if "1" in stream[position:]:
        raise DecompressError("non-zero padding")
    return out
