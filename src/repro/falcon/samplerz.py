"""Integer Gaussian sampling at arbitrary center — Falcon's SamplerZ.

ffSampling's leaves need draws from ``D_{Z, sigma', c}`` where the
center ``c`` changes every call and ``sigma'`` lies in
``[sigma_min, SIGMA_MAX = 1.8205]``.  The paper's experiment plugs its
fixed base sampler (sigma = 2, the value "the number field" dictates,
Sec. 6) into the Falcon reference implementation exactly here: base
draws provide candidates and a rejection step reshapes them to the
target center and width.

:class:`RejectionSamplerZ` implements that construction for any backend
exposing the signed ``sample()`` interface — the three CDT baselines,
Algorithm 1, or the bitsliced constant-time sampler — so Table 1's
backend comparison is a one-argument swap.  Acceptance for candidate
``z = round(c) + x``, ``x ~ D_{Z, 2}``:

    accept with prob  rho_{sigma',c}(z) / (M * rho_2(x)),
    M = max_z ratio  (finite because sigma' < 2)

computed in double precision, as the reference implementation does.

:class:`ReferenceSamplerZ` (uniform-interval rejection) provides a
slow, obviously-correct cross-check for the tests.
"""

from __future__ import annotations

import math

from ..ctlint.annotations import secret_params
from ..rng.source import RandomSource, default_source
from .params import SIGMA_MAX

try:  # Optional: vectorizes the block parse of acceptance uniforms.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised in the no-numpy CI job
    _np = None

#: The paper's base sampler width ("this sigma can be either 2 or
#: sqrt(5)"; we use the binary-field instance, sigma = 2).
BASE_SIGMA = 2.0


class RejectionSamplerZ:
    """``D_{Z, sigma', c}`` by rejection from a pluggable sigma=2 base.

    Parameters
    ----------
    base_sampler:
        Any object with a signed ``sample()`` drawing from
        ``D_{Z, BASE_SIGMA}`` (and optionally a ``counter`` for op
        accounting).
    uniform_source:
        Source for the acceptance uniforms (53-bit doubles).
    uniform_block:
        How many 7-byte acceptance uniforms each refill pre-draws from
        ``uniform_source`` in one bulk read (parsed vectorized when
        NumPy is available).  Uniforms are consumed in stream order, so
        for a *dedicated* uniform source any block size yields the same
        acceptance decisions; when the source is shared with the base
        sampler, pre-drawing reorders the shared stream's split between
        the two consumers (outputs stay correctly distributed — set
        ``uniform_block=1`` to reproduce historical per-call streams).
    """

    def __init__(self, base_sampler,
                 uniform_source: RandomSource | None = None,
                 base_sigma: float = BASE_SIGMA,
                 uniform_block: int = 64) -> None:
        if uniform_block < 1:
            raise ValueError("uniform_block must be positive")
        self.base = base_sampler
        self.uniforms = (uniform_source if uniform_source is not None
                         else default_source())
        self.base_sigma = base_sigma
        self.uniform_block = uniform_block
        self.base_draws = 0
        self.accepted = 0
        #: Base draws the most recent accepted sample needed — the
        #: public rejection count, exposed for diagnostics.
        self.attempts_last = 0
        #: Pre-drawn uniforms, reversed so pop() yields stream order.
        self._uniform_queue: list[float] = []
        # Hot-path constants: sample() runs 2n times per signature, so
        # attribute lookups are hoisted once here.  Values are computed
        # by the exact expressions the per-call path used, keeping the
        # accept/reject decisions bit-identical.
        self._inv_base = 1.0 / (2.0 * self.base_sigma * self.base_sigma)
        counter = getattr(self.base, "counter", None)
        self._book_rng = counter.rng if counter is not None else None

    def _refill_uniforms(self) -> None:
        # One bulk draw of `block` 56-bit words (7 bytes each, exactly
        # the historical per-call consumption, in stream order).
        block = self.uniform_block
        if _np is not None and block > 1:
            words = self.uniforms.read_words_array(56, block)
            values = ((words >> _np.uint64(3))
                      * (2.0 ** -53)).tolist()
        else:
            values = [(word >> 3) * (2.0 ** -53)
                      for word in self.uniforms.read_words(56, block)]
        values.reverse()
        self._uniform_queue = values

    def _uniform01(self) -> float:
        if not self._uniform_queue:
            self._refill_uniforms()
        if self._book_rng is not None:
            # Book the acceptance-test randomness with the base draw so
            # the cost model sees the full per-candidate PRNG bill.
            self._book_rng(7)
        return self._uniform_queue.pop()

    @secret_params("center", "sigma")
    def sample(self, center: float, sigma: float) -> int:
        """One draw from ``D_{Z, sigma, center}``.

        The loop body is written with hoisted locals (it dominates the
        non-FFT share of signing time) but performs the exact same IEEE
        operations as the straightforward form, so the sample stream
        for a given seed is unchanged.
        """
        # ct: allow(secret-early-exit): validation against the public parameter-set bound (0, base_sigma) — rejects misconfiguration, not key-dependent values
        if not 0 < sigma < self.base_sigma:
            raise ValueError(
                # ct: allow(vartime-str): renders the rejected sigma only on the misconfiguration path, never on an accepted draw
                f"sigma must lie in (0, {self.base_sigma}); "
                f"got {sigma}")
        # ct: vartime(vartime-div): IEEE double division on the leaf sigma — the reference implementation's arithmetic; the paper's fixed-point spine is the planned fix
        inv_target = 1.0 / (2.0 * sigma * sigma)
        inv_base = self._inv_base
        center_round = round(center)
        fractional = center - center_round  # in [-0.5, 0.5]
        # log-ratio g(u) = -(u - d)^2 * inv_target + u^2 * inv_base is a
        # downward parabola (inv_base < inv_target); its real maximum:
        # ct: vartime(vartime-div): double division on the secret center's fractional part (reference arithmetic, see above)
        peak = fractional * inv_target / (inv_target - inv_base)
        offset = peak - fractional
        # Squares are written as explicit products (not ``** 2``) so
        # the batched :meth:`sample_lanes` — whose NumPy-assisted prep
        # performs the same IEEE multiplies — matches bit for bit.
        log_m = (-(offset * offset) * inv_target
                 + peak * peak * inv_base)
        base_sample = self.base.sample
        book_rng = self._book_rng
        exp = math.exp
        queue = self._uniform_queue
        draws = 0
        while True:
            x = base_sample()
            draws += 1
            z = center_round + x
            dz = z - center
            log_ratio = -(dz * dz) * inv_target + x * x * inv_base
            if not queue:
                self._refill_uniforms()
                queue = self._uniform_queue
            if book_rng is not None:
                book_rng(7)
            # ct: vartime(secret-early-exit, vartime-call): the acceptance test — rejection count is public by the smoothing argument, but math.exp latency on the secret log-ratio is the GALACTICS vector; fixed-point spline tracked in ROADMAP
            if queue.pop() < exp(log_ratio - log_m):
                self.base_draws += draws
                self.accepted += 1
                self.attempts_last = draws
                return z

    def _take_uniforms(self, count: int) -> list[float]:
        """``count`` acceptance uniforms, in queue (stream) order.

        Refills trigger at the same queue-exhaustion points as
        :meth:`_uniform01`, so the underlying PRNG stream is split
        identically; only the per-call booking granularity differs
        (the bytes are booked once for the whole take).
        """
        out: list[float] = []
        queue = self._uniform_queue
        remaining = count
        while remaining > 0:
            if not queue:
                self._refill_uniforms()
                queue = self._uniform_queue
            grab = min(remaining, len(queue))
            out.extend(queue[:-grab - 1:-1])
            del queue[-grab:]
            remaining -= grab
        if self._book_rng is not None:
            self._book_rng(7 * count)
        return out

    @secret_params("centers", "sigma")
    def sample_lanes(self, centers: list[float],
                     sigma: float) -> list[int]:
        """One draw per center from ``D_{Z, sigma, center_i}``.

        Batch counterpart of :meth:`sample` for the ffSampling leaves,
        where every lane of a signing batch shares the leaf's sigma.
        Rejection runs round-based: each round bulk-draws one base
        candidate and one uniform per still-pending lane (in lane
        order) and decides all of them; rejected lanes continue into
        the next round.  The acceptance arithmetic per lane is exactly
        :meth:`sample`'s, in pure Python floats, so results are
        identical whether or not NumPy is installed.
        """
        # ct: allow(secret-early-exit): validation against the public parameter-set bound (0, base_sigma), as in sample()
        if not 0 < sigma < self.base_sigma:
            raise ValueError(
                # ct: allow(vartime-str): renders the rejected sigma only on the misconfiguration path, never on an accepted draw
                f"sigma must lie in (0, {self.base_sigma}); "
                f"got {sigma}")
        count = len(centers)
        if count == 0:
            return []
        # ct: vartime(vartime-div): IEEE double division on the leaf sigma (reference arithmetic, as in sample())
        inv_target = 1.0 / (2.0 * sigma * sigma)
        inv_base = self._inv_base
        if _np is not None and count >= 8:
            # Vectorized per-center prep.  Only IEEE +,-,*,/ and
            # round-half-even are involved, every one of which NumPy
            # evaluates identically to CPython floats, so this is
            # bit-identical to the loop below (and to :meth:`sample`).
            center_arr = _np.asarray(centers, dtype=_np.float64)
            round_arr = _np.rint(center_arr)
            fractional = center_arr - round_arr
            # ct: vartime(vartime-div): double division on the secret centers' fractional parts (vectorized prep, bit-identical to the scalar loop)
            peak = fractional * inv_target / (inv_target - inv_base)
            offset = peak - fractional
            log_ms = (-(offset * offset) * inv_target
                      + peak * peak * inv_base).tolist()
            rounds = [int(r) for r in round_arr.tolist()]
        else:
            rounds = []
            log_ms = []
            for center in centers:
                center_round = round(center)
                fractional = center - center_round
                # ct: vartime(vartime-div): double division on the secret center's fractional part (scalar prep)
                peak = fractional * inv_target / (inv_target - inv_base)
                offset = peak - fractional
                rounds.append(center_round)
                log_ms.append(-(offset * offset) * inv_target
                              + peak * peak * inv_base)
        results: list[int] = [0] * count
        attempts = [0] * count
        pending = list(range(count))
        take = getattr(self.base, "take", None)
        exp = math.exp
        accepted = 0
        while pending:
            width = len(pending)
            if take is not None:
                candidates = take(width)
            else:
                candidates = [self.base.sample() for _ in range(width)]
            uniforms = self._take_uniforms(width)
            self.base_draws += width
            still: list[int] = []
            append_still = still.append
            for slot, lane in enumerate(pending):
                x = candidates[slot]
                z = rounds[lane] + x
                dz = z - centers[lane]
                log_ratio = -(dz * dz) * inv_target + x * x * inv_base
                attempts[lane] += 1
                # ct: vartime(secret-branch, vartime-call): per-lane acceptance test — same reviewed pair as sample(): public rejection count, GALACTICS-exposed exp latency
                if uniforms[slot] < exp(log_ratio - log_ms[lane]):
                    results[lane] = z
                    accepted += 1
                    self.attempts_last = attempts[lane]
                else:
                    append_still(lane)
            pending = still
        self.accepted += accepted
        return results

    @property
    def acceptance_rate(self) -> float:
        if self.base_draws == 0:
            return 0.0
        return self.accepted / self.base_draws


class ReferenceSamplerZ:
    """Uniform-interval rejection — slow but transparently correct.

    Draws ``z`` uniformly from ``[round(c) - span, round(c) + span]``
    and accepts with probability ``rho_{sigma,c}(z)``; used only to
    cross-check :class:`RejectionSamplerZ` in the tests.
    """

    def __init__(self, source: RandomSource | None = None,
                 tail_cut: float = 9.0) -> None:
        self.source = source if source is not None else default_source()
        self.tail_cut = tail_cut

    def _uniform_below(self, bound: int) -> int:
        bits = bound.bit_length()
        while True:
            raw = int.from_bytes(
                self.source.read_bytes((bits + 7) // 8), "little")
            raw &= (1 << bits) - 1
            if raw < bound:
                return raw

    def _uniform01(self) -> float:
        raw = int.from_bytes(self.source.read_bytes(7), "little")
        return (raw >> 3) * (2.0 ** -53)

    @secret_params("center", "sigma")
    def sample(self, center: float, sigma: float) -> int:
        span = math.ceil(self.tail_cut * sigma) + 1
        center_round = round(center)
        width = 2 * span + 1
        while True:
            z = center_round - span + self._uniform_below(width)
            # ct: vartime(vartime-pow, vartime-div, vartime-call): textbook rho evaluation — test-only reference sampler, transparently variable-time
            rho = math.exp(-(z - center) ** 2 / (2 * sigma * sigma))
            # ct: vartime(secret-early-exit): uniform-interval rejection — test-only reference, acceptance depends on the drawn value
            if self._uniform01() < rho:
                return z


def sampler_z_max_sigma_check() -> None:
    """Module sanity: Falcon leaf sigmas always fit under the base."""
    if SIGMA_MAX >= BASE_SIGMA:  # pragma: no cover - spec constant
        raise AssertionError("sigma_max must stay below the base sigma")
