"""Integer Gaussian sampling at arbitrary center — Falcon's SamplerZ.

ffSampling's leaves need draws from ``D_{Z, sigma', c}`` where the
center ``c`` changes every call and ``sigma'`` lies in
``[sigma_min, SIGMA_MAX = 1.8205]``.  The paper's experiment plugs its
fixed base sampler (sigma = 2, the value "the number field" dictates,
Sec. 6) into the Falcon reference implementation exactly here: base
draws provide candidates and a rejection step reshapes them to the
target center and width.

:class:`RejectionSamplerZ` implements that construction for any backend
exposing the signed ``sample()`` interface — the three CDT baselines,
Algorithm 1, or the bitsliced constant-time sampler — so Table 1's
backend comparison is a one-argument swap.  Acceptance for candidate
``z = round(c) + x``, ``x ~ D_{Z, 2}``:

    accept with prob  rho_{sigma',c}(z) / (M * rho_2(x)),
    M = max_z ratio  (finite because sigma' < 2)

computed in double precision, as the reference implementation does.

:class:`ReferenceSamplerZ` (uniform-interval rejection) provides a
slow, obviously-correct cross-check for the tests.
"""

from __future__ import annotations

import math

from ..rng.source import RandomSource, default_source
from .params import SIGMA_MAX

try:  # Optional: vectorizes the block parse of acceptance uniforms.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised in the no-numpy CI job
    _np = None

#: The paper's base sampler width ("this sigma can be either 2 or
#: sqrt(5)"; we use the binary-field instance, sigma = 2).
BASE_SIGMA = 2.0


class RejectionSamplerZ:
    """``D_{Z, sigma', c}`` by rejection from a pluggable sigma=2 base.

    Parameters
    ----------
    base_sampler:
        Any object with a signed ``sample()`` drawing from
        ``D_{Z, BASE_SIGMA}`` (and optionally a ``counter`` for op
        accounting).
    uniform_source:
        Source for the acceptance uniforms (53-bit doubles).
    uniform_block:
        How many 7-byte acceptance uniforms each refill pre-draws from
        ``uniform_source`` in one bulk read (parsed vectorized when
        NumPy is available).  Uniforms are consumed in stream order, so
        for a *dedicated* uniform source any block size yields the same
        acceptance decisions; when the source is shared with the base
        sampler, pre-drawing reorders the shared stream's split between
        the two consumers (outputs stay correctly distributed — set
        ``uniform_block=1`` to reproduce historical per-call streams).
    """

    def __init__(self, base_sampler,
                 uniform_source: RandomSource | None = None,
                 base_sigma: float = BASE_SIGMA,
                 uniform_block: int = 64) -> None:
        if uniform_block < 1:
            raise ValueError("uniform_block must be positive")
        self.base = base_sampler
        self.uniforms = (uniform_source if uniform_source is not None
                         else default_source())
        self.base_sigma = base_sigma
        self.uniform_block = uniform_block
        self.base_draws = 0
        self.accepted = 0
        #: Pre-drawn uniforms, reversed so pop() yields stream order.
        self._uniform_queue: list[float] = []

    def _refill_uniforms(self) -> None:
        # One bulk draw of `block` 56-bit words (7 bytes each, exactly
        # the historical per-call consumption, in stream order).
        block = self.uniform_block
        if _np is not None and block > 1:
            words = self.uniforms.read_words_array(56, block)
            values = ((words >> _np.uint64(3))
                      * (2.0 ** -53)).tolist()
        else:
            values = [(word >> 3) * (2.0 ** -53)
                      for word in self.uniforms.read_words(56, block)]
        values.reverse()
        self._uniform_queue = values

    def _uniform01(self) -> float:
        if not self._uniform_queue:
            self._refill_uniforms()
        counter = getattr(self.base, "counter", None)
        if counter is not None:
            # Book the acceptance-test randomness with the base draw so
            # the cost model sees the full per-candidate PRNG bill.
            counter.rng(7)
        return self._uniform_queue.pop()

    def sample(self, center: float, sigma: float) -> int:
        """One draw from ``D_{Z, sigma, center}``."""
        if not 0 < sigma < self.base_sigma:
            raise ValueError(
                f"sigma must lie in (0, {self.base_sigma}); got {sigma}")
        inv_target = 1.0 / (2.0 * sigma * sigma)
        inv_base = 1.0 / (2.0 * self.base_sigma * self.base_sigma)
        center_round = round(center)
        fractional = center - center_round  # in [-0.5, 0.5]
        # log-ratio g(u) = -(u - d)^2 * inv_target + u^2 * inv_base is a
        # downward parabola (inv_base < inv_target); its real maximum:
        peak = fractional * inv_target / (inv_target - inv_base)
        log_m = (-(peak - fractional) ** 2 * inv_target
                 + peak * peak * inv_base)
        while True:
            x = self.base.sample()
            self.base_draws += 1
            z = center_round + x
            log_ratio = (-(z - center) ** 2 * inv_target
                         + x * x * inv_base)
            if self._uniform01() < math.exp(log_ratio - log_m):
                self.accepted += 1
                return z

    @property
    def acceptance_rate(self) -> float:
        if self.base_draws == 0:
            return 0.0
        return self.accepted / self.base_draws


class ReferenceSamplerZ:
    """Uniform-interval rejection — slow but transparently correct.

    Draws ``z`` uniformly from ``[round(c) - span, round(c) + span]``
    and accepts with probability ``rho_{sigma,c}(z)``; used only to
    cross-check :class:`RejectionSamplerZ` in the tests.
    """

    def __init__(self, source: RandomSource | None = None,
                 tail_cut: float = 9.0) -> None:
        self.source = source if source is not None else default_source()
        self.tail_cut = tail_cut

    def _uniform_below(self, bound: int) -> int:
        bits = bound.bit_length()
        while True:
            raw = int.from_bytes(
                self.source.read_bytes((bits + 7) // 8), "little")
            raw &= (1 << bits) - 1
            if raw < bound:
                return raw

    def _uniform01(self) -> float:
        raw = int.from_bytes(self.source.read_bytes(7), "little")
        return (raw >> 3) * (2.0 ** -53)

    def sample(self, center: float, sigma: float) -> int:
        span = math.ceil(self.tail_cut * sigma) + 1
        center_round = round(center)
        width = 2 * span + 1
        while True:
            z = center_round - span + self._uniform_below(width)
            rho = math.exp(-(z - center) ** 2 / (2 * sigma * sigma))
            if self._uniform01() < rho:
                return z


def sampler_z_max_sigma_check() -> None:
    """Module sanity: Falcon leaf sigmas always fit under the base."""
    if SIGMA_MAX >= BASE_SIGMA:  # pragma: no cover - spec constant
        raise AssertionError("sigma_max must stay below the base sigma")
