"""Generate-ahead Falcon key store: pools, workers, disk persistence.

The serving deployments the ROADMAP targets do not generate a key per
request — they draw from a pre-filled pool and refill it off the hot
path.  :class:`KeyStore` is that layer:

* **generate-ahead pools** per ring degree, filled by
  :meth:`KeyStore.generate_ahead` — inline, or fanned out over a
  process pool (key generation is CPU-bound Python, so real
  parallelism needs processes, not threads);
* **deterministic provisioning**: every pool slot's seed derives from
  ``(master_seed, n, index)`` via SHA-256, so a store can be audited or
  rebuilt bit-for-bit (the keygen spines guarantee the same seed gives
  the same key with or without NumPy);
* **disk persistence** through the canonical ``serialize`` round-trip
  (`save_secret_key` / `load_secret_key`): keys survive restarts, and
  every acquisition exercises the full canonical decode — range
  checks, G recomputation, NTRU-equation verification;
* **a locked slot manifest**: slot indices are claimed under an
  exclusive cross-process file lock, with the manifest re-read inside
  the critical section — several store instances (or processes) may
  share one directory without ever deriving the same per-slot seed
  twice.  Slot indices are strictly monotone per degree: a slot, once
  claimed, is never reissued, whether it was served, retired, or lost;
* **generation cohorts**: the manifest stamps each degree with a
  generation number and the first slot index of the current cohort.
  :meth:`rotate` retires the live cohort (pooled keys are discarded
  and their files removed — retired slots are *not* re-derivable
  because the index sequence keeps advancing) and optionally
  regenerates a fresh cohort;
* **watermark refill**: with ``low_watermark`` set, every checkout
  that leaves the pool below the watermark triggers a refill up to
  ``refill_target`` — on a background thread by default, so the
  serving path never blocks on key generation (the dry-``acquire``
  inline fallback remains as a last resort);
* **signer cache**: :meth:`sign_many` keeps one decoded
  :class:`~repro.falcon.scheme.SecretKey` checked out per degree, so
  batch signing reuses its precomputed ffLDL tree instead of decoding
  per call;
* **metrics**: :meth:`stats` snapshots pool depth, checkout counts,
  refill counts and latency, cohort generations — the dashboard
  surface the serving layer aggregates per shard.

Tenant-facing sharding (consistent hashing, per-tenant signer
checkout, the asyncio coalescing front) lives one layer up, in
:mod:`repro.falcon.serving`.
"""

from __future__ import annotations

import json
import re
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from hashlib import sha256
from pathlib import Path
from typing import Sequence

try:  # POSIX cross-process advisory locks; absent on some platforms.
    import fcntl as _fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    _fcntl = None

from ..ctlint.annotations import secret_params
from .scheme import PublicKey, SecretKey, Signature
from .serialize import (
    SECRET_KEY_SUFFIX,
    atomic_write_bytes,
    load_secret_key,
    save_secret_key,
)

_KEY_FILE_PATTERN = re.compile(
    r"falcon_n(?P<n>\d+)_(?P<index>\d+)"
    + re.escape(SECRET_KEY_SUFFIX) + r"$")

#: Per-directory manifest holding, per ring degree, the next unissued
#: slot index, the current generation and the cohort's first slot.
#: Key files alone cannot carry that information — :meth:`KeyStore
#: .acquire` deletes the file it checks out, so a fully drained store
#: would otherwise restart at index 0 and re-issue key material that
#: is already in some caller's hands.
_STATE_FILE = "keystore-state.json"

#: Lock file guarding manifest read-modify-write cycles across
#: processes (and across store instances within one process).
_LOCK_FILE = "keystore.lock"

#: Claim journal: one JSON line per claim transition (``claimed`` when
#: a slot's key file is renamed to its claim scratch, ``served`` once
#: the material has been read into the claimant's memory).  A crash
#: between rename and serve leaves a ``claimed`` entry whose scratch
#: still exists — restart recovery rolls it BACK into the pool (the
#: caller never saw the key, so the slot is still the store's to
#: serve).  A crash between serve and unlink leaves a ``served`` entry
#: — recovery rolls it FORWARD (unlinks the scratch; re-pooling it
#: would double-serve the slot).  Either way no slot is double-served
#: or leaked.
_JOURNAL_FILE = "keystore-claims.jsonl"

#: Claim scratch files older than this are crash leftovers (a live
#: claim exists for milliseconds between rename and unlink) and are
#: swept at store construction — secret key material must not linger
#: in orphaned scratch files.  Ages are clamped at zero before the
#: comparison: a scratch whose mtime sits in the *future* (clock skew
#: between NFS client and server, coarse filesystem timestamp
#: granularity) is by definition fresh, never stale — the naive
#: ``now - mtime`` difference going negative must not be allowed to
#: wrap into "very old" through any later arithmetic, and a racing
#: process's live claim must never be swept out from under it.  The
#: threshold is per-store configurable (``stale_claim_seconds``) so
#: deployments on high-skew shared filesystems can widen it.
_STALE_CLAIM_SECONDS = 60.0


@secret_params("master_seed")
def derive_key_seed(master_seed: int | bytes, n: int, index: int) -> bytes:
    """Deterministic 32-byte PRNG seed for pool slot ``(n, index)``.

    Integer master seeds of any sign and size are accepted (hashed via
    their decimal form, so ``-1`` and huge seeds work); byte seeds are
    hashed as-is.
    """
    if isinstance(master_seed, int):
        # ct: allow(vartime-str): decimal rendering feeds SHA-256 off the signing path; the format is pinned by the committed keystore KATs
        master = b"%d" % master_seed
    else:
        master = bytes(master_seed)
    # ct: allow(vartime-str): fixed-shape domain-separation label, pinned by the committed keystore KATs
    material = b"falcon-keystore|%b|%d|%d" % (master, n, index)
    return sha256(material).digest()


def generate_encoded_key(n: int, seed: bytes, prng: str = "chacha20",
                         keygen_spine: str = "auto") -> bytes:
    """Generate one key and return its canonical encoding.

    Module-level (not a method) so process pools can pickle the job;
    returning the *encoded* bytes keeps the inter-process payload small
    and guarantees every pooled key round-trips the serializer.
    """
    secret_key = SecretKey.generate(n=n, seed=seed, prng=prng,
                                    keygen_spine=keygen_spine)
    from .serialize import encode_secret_key
    return encode_secret_key(secret_key)


def generate_encoded_key_block(n: int, seeds: Sequence[bytes],
                               prng: str = "chacha20",
                               keygen_spine: str = "auto") -> list[bytes]:
    """Generate a whole block of keys in one process-pool task.

    One-slot-per-task submission pays the per-task costs — pickling,
    pool dispatch, and above all the worker's one-time warmup (CDT
    table construction, NumPy kernel caches) — once *per key*, which
    is exactly why the pooled keygen row regressed to 0.08–0.93x
    single-process.  A block task pays them once per *worker*: the
    first key in the block warms the worker's caches and every later
    key in the block (and in any later block the warm worker picks up)
    rides them.
    """
    return [generate_encoded_key(n, seed, prng, keygen_spine)
            for seed in seeds]


@dataclass
class _PoolEntry:
    """One ready key: encoded bytes in memory, file on disk, or both."""

    encoded: bytes | None = None
    path: Path | None = None
    index: int = -1
    generation: int = 0

    def read(self) -> bytes:
        if self.encoded is not None:
            return self.encoded
        return self.path.read_bytes()


@dataclass
class KeyStoreStats:
    """Counters for monitoring a store (returned by :meth:`stats`).

    ``served`` is the checkout count (acquires); ``refills`` counts
    completed refill passes with their cumulative and most recent
    latency; ``watermark_triggers`` counts checkouts that dipped below
    the watermark; ``retired`` counts keys discarded by rotation.
    """

    generated: int = 0
    served: int = 0
    loaded_from_disk: int = 0
    refills: int = 0
    watermark_triggers: int = 0
    retired: int = 0
    last_refill_seconds: float = 0.0
    total_refill_seconds: float = 0.0
    #: Background refill passes that raised (the exception is recorded
    #: in ``last_refill_error``, the watermark trigger re-armed, and
    #: the next below-watermark checkout tries again — a refill death
    #: is never silent and never permanent).
    refill_errors: int = 0
    last_refill_error: str = ""
    #: Claim-journal recovery outcomes at store construction: slots
    #: rolled back into the pool (crash before serve) and scratches
    #: rolled forward (crash after serve, before unlink).
    claims_recovered: int = 0
    claims_rolled_forward: int = 0
    available: dict[int, int] = field(default_factory=dict)
    generation: dict[int, int] = field(default_factory=dict)

    def as_dict(self) -> dict:
        """JSON-friendly snapshot (the metrics-export surface)."""
        return {
            "generated": self.generated,
            "served": self.served,
            "loaded_from_disk": self.loaded_from_disk,
            "refills": self.refills,
            "watermark_triggers": self.watermark_triggers,
            "retired": self.retired,
            "last_refill_seconds": round(self.last_refill_seconds, 6),
            "total_refill_seconds": round(self.total_refill_seconds, 6),
            "refill_errors": self.refill_errors,
            "last_refill_error": self.last_refill_error,
            "claims_recovered": self.claims_recovered,
            "claims_rolled_forward": self.claims_rolled_forward,
            "available": {str(n): depth
                          for n, depth in self.available.items()},
            "generation": {str(n): generation
                           for n, generation in
                           self.generation.items()},
        }


def fenced_signer_checkout(store: "KeyStore", n: int, *, lock, guards,
                           cache, key) -> SecretKey:
    """The shared signer-cache checkout loop (rotation-fenced).

    Used by :meth:`KeyStore.signer` (cache keyed by degree) and the
    sharded layer's per-tenant signer (cache keyed by tenant): a
    per-key guard serializes cold-cache checkouts so concurrent first
    users wait for one checkout instead of each burning a slot, and
    the generation re-check under the cache lock discards a checkout
    that a concurrent :meth:`KeyStore.rotate` retired mid-flight.
    """
    with lock:
        guard = guards.setdefault(key, threading.Lock())
    with guard:
        while True:
            with lock:
                cached = cache.get(key)
            if cached is not None:
                return cached
            acquired, generation = store.checkout_current(n)
            with lock:
                if store.generation(n) == generation:
                    return cache.setdefault(key, acquired)


class KeyStore:
    """A generate-ahead pool of Falcon secret keys.

    ``directory=None`` keeps the store purely in memory; with a
    directory, every generated key is persisted (atomically) and
    existing persisted keys plus the slot-index manifest are read back
    at construction, so a restarted store resumes from disk without
    ever re-issuing a slot it already handed out.  Slot claims happen
    under an exclusive manifest lock with a reload inside the critical
    section, so any number of stores (including other processes)
    sharing the directory claim disjoint slots.  A memory-only store
    has no such memory across processes — it is deterministic from
    ``master_seed`` by design, so two memory-only stores with the same
    seed serve the same keys.  ``workers > 1`` fans
    :meth:`generate_ahead` out over a process pool.

    ``low_watermark > 0`` arms watermark refill: a checkout leaving
    fewer than ``low_watermark`` pooled keys schedules a refill up to
    ``refill_target`` (default ``2 * low_watermark``), on a daemon
    thread when ``refill_async`` (the default) or inline otherwise.
    """

    def __init__(self, directory: str | Path | None = None, *,
                 master_seed: int | bytes = 0,
                 prng: str = "chacha20",
                 base_backend: str = "bitsliced",
                 keygen_spine: str = "auto",
                 workers: int = 1,
                 low_watermark: int = 0,
                 refill_target: int | None = None,
                 refill_async: bool = True,
                 stale_claim_seconds: float = _STALE_CLAIM_SECONDS,
                 fault_plan=None) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if low_watermark < 0:
            raise ValueError("low_watermark must be non-negative")
        if refill_target is not None and refill_target < low_watermark:
            raise ValueError("refill_target must be >= low_watermark")
        if stale_claim_seconds <= 0:
            raise ValueError("stale_claim_seconds must be positive")
        self.directory = Path(directory) if directory is not None else None
        self.master_seed = master_seed
        self.prng = prng
        self.base_backend = base_backend
        self.keygen_spine = keygen_spine
        self.workers = workers
        self.low_watermark = low_watermark
        self.refill_target = (refill_target if refill_target is not None
                              else 2 * low_watermark)
        self.refill_async = refill_async
        self.stale_claim_seconds = stale_claim_seconds
        # Fault injection (duck-typed: anything with an ``injector()``
        # returning claim_action/refill_should_fail/refill_stall/error
        # — in practice a serving.faults.FaultPlan; the keystore never
        # imports the serving package, avoiding an import cycle).
        self._faults = (fault_plan.injector()
                        if fault_plan is not None else None)
        self._executor = None  # lazy, persistent (warm workers)
        self._executor_guard = threading.Lock()
        self._pools: dict[int, deque[_PoolEntry]] = {}
        self._next_index: dict[int, int] = {}
        self._generation: dict[int, int] = {}
        self._cohort_start: dict[int, int] = {}
        self._signers: dict[int, SecretKey] = {}
        self._signer_guards: dict[int, threading.Lock] = {}
        self._stats = KeyStoreStats()
        self._lock = threading.RLock()
        self._refilling: set[int] = set()
        self._refill_threads: list[threading.Thread] = []
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
            with self._manifest_lock():
                self._reload_state()
                self._index_directory()

    # -- manifest ----------------------------------------------------------

    #: Process-wide manifest locks keyed by resolved directory — the
    #: fallback serialization between store *instances* sharing a
    #: directory when POSIX ``flock`` is unavailable (without it,
    #: cross-instance claims in one process would interleave and
    #: re-issue slot seeds).
    _directory_locks: dict[str, threading.RLock] = {}
    _directory_locks_guard = threading.Lock()

    def _directory_lock(self) -> threading.RLock:
        key = str(self.directory.resolve())
        with KeyStore._directory_locks_guard:
            return KeyStore._directory_locks.setdefault(
                key, threading.RLock())

    @contextmanager
    def _manifest_lock(self):
        """Exclusive manifest critical section.

        In-process: the store's re-entrant lock plus a process-wide
        per-directory lock (so two *instances* sharing a directory
        serialize even where ``flock`` does not exist).  Cross-
        process: an exclusive ``flock`` on the directory's lock file.
        Every slot claim re-reads the manifest inside this section, so
        no two claimants can ever observe the same next-index.  On
        platforms without ``fcntl``, cross-*process* sharing of one
        directory is not protected (POSIX-only guarantee).
        """
        with self._lock:
            if self.directory is None:
                yield
                return
            with self._directory_lock():
                if _fcntl is None:  # pragma: no cover - non-POSIX
                    yield
                    return
                lock_path = self.directory / _LOCK_FILE
                with open(lock_path, "a+b") as handle:
                    _fcntl.flock(handle.fileno(), _fcntl.LOCK_EX)
                    try:
                        yield
                    finally:
                        _fcntl.flock(handle.fileno(), _fcntl.LOCK_UN)

    def _reload_state(self) -> None:
        """Merge the on-disk manifest into the in-memory counters.

        Counters only ever move forward (``max``): a stale in-memory
        view can never pull the claimed range backwards, and a manifest
        advanced by another store instance is always honoured before
        new slots are claimed.
        """
        if self.directory is None:
            return
        state_path = self.directory / _STATE_FILE
        if not state_path.exists():
            return
        state = json.loads(state_path.read_text(encoding="utf-8"))
        for n, next_index in state.get("next_index", {}).items():
            key = int(n)
            self._next_index[key] = max(self._next_index.get(key, 0),
                                        int(next_index))
        for n, generation in state.get("generation", {}).items():
            key = int(n)
            self._generation[key] = max(self._generation.get(key, 0),
                                        int(generation))
        for n, start in state.get("cohort_start", {}).items():
            key = int(n)
            self._cohort_start[key] = max(self._cohort_start.get(key, 0),
                                          int(start))

    def _write_state(self) -> None:
        payload = {
            "next_index": {str(n): index for n, index in
                           sorted(self._next_index.items())},
            "generation": {str(n): generation for n, generation in
                           sorted(self._generation.items())},
            "cohort_start": {str(n): start for n, start in
                             sorted(self._cohort_start.items())},
        }
        atomic_write_bytes(self.directory / _STATE_FILE,
                           json.dumps(payload, indent=1).encode())

    def _journal_append(self, record: dict) -> None:
        """Append one claim transition to the journal (no-op for
        memory-only stores).  One short JSON line per append — small
        enough that concurrent appenders' lines never interleave."""
        if self.directory is None:
            return
        line = json.dumps(record, separators=(",", ":")) + "\n"
        with open(self.directory / _JOURNAL_FILE, "a",
                  encoding="utf-8") as handle:
            handle.write(line)

    def _recover_journal(self) -> None:
        """Resolve claims a crashed claimant left behind (called at
        construction, under the manifest lock).

        Per journaled scratch, the LAST recorded state wins:

        * ``served`` + scratch still on disk → the key reached its
          caller; crash happened before the unlink.  Roll FORWARD:
          unlink the scratch (re-pooling would double-serve).
        * ``claimed`` + scratch on disk and *stale* → crash between
          rename and serve; the caller never saw the key.  Roll BACK:
          rename the scratch to its original slot name so the
          adoption pass re-pools it (no slot leaked).  Fresh scratches
          are live claims in another process and are left alone (same
          age rule, same clamped-at-zero skew handling, as the
          journal-less sweep).
        * scratch gone → the claim resolved itself; drop the entry.

        The journal is compacted afterwards: only still-live claims
        keep their entries.
        """
        journal_path = self.directory / _JOURNAL_FILE
        if not journal_path.exists():
            return
        states: dict[str, dict] = {}
        for line in journal_path.read_text(
                encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue  # torn final write at crash: ignore
            scratch_name = record.get("scratch")
            if scratch_name:
                states[scratch_name] = record
        keep: list[dict] = []
        for scratch_name, record in states.items():
            scratch = self.directory / scratch_name
            if not scratch.exists():
                continue
            if record.get("state") == "served":
                scratch.unlink(missing_ok=True)
                self._stats.claims_rolled_forward += 1
                continue
            slot_name = record.get("slot")
            if not slot_name:  # pragma: no cover - malformed entry
                keep.append(record)
                continue
            try:
                age = max(0.0, time.time() - scratch.stat().st_mtime)
            except OSError:  # pragma: no cover - claimant finished
                continue
            if age <= self.stale_claim_seconds:
                keep.append(record)  # live claim elsewhere: hands off
                continue
            slot = self.directory / slot_name
            if slot.exists():  # pragma: no cover - duplicate material
                scratch.unlink(missing_ok=True)
            else:
                scratch.rename(slot)
                self._stats.claims_recovered += 1
        payload = "".join(json.dumps(record, separators=(",", ":"))
                          + "\n" for record in keep)
        atomic_write_bytes(journal_path, payload.encode())

    def _index_directory(self) -> None:
        """Adopt keys already persisted under ``directory``.

        Key files below the current cohort start belong to a retired
        generation: they are removed, never adopted (their slots stay
        burned — the manifest's next-index is already past them).
        Live files clamp the next-slot counters up, so even a store
        whose manifest was deleted never re-issues a slot that still
        has a key file.  Journaled claims are recovered first (rolled
        forward or back — see :meth:`_recover_journal`); stale
        ``.claim-*`` scratch files with no journal entry — a claimant
        crashed between its rename and unlink before the journal
        existed — are swept so secret key material never lingers;
        fresh claims (a live checkout in another process) are left
        alone.
        """
        self._recover_journal()
        for scratch in self.directory.glob(
                "falcon_n*" + SECRET_KEY_SUFFIX + ".claim-*"):
            try:
                mtime = scratch.stat().st_mtime
            except OSError:  # pragma: no cover - claimant finished
                continue
            # Clamp at zero: a future mtime (clock skew, NFS timestamp
            # granularity) means "fresh", and must never be able to
            # read as ancient — sweeping a racing process's live claim
            # would destroy the one copy of that slot's key material.
            age = max(0.0, time.time() - mtime)
            if age > self.stale_claim_seconds:
                scratch.unlink(missing_ok=True)
        for path in sorted(self.directory.glob("falcon_n*" +
                                               SECRET_KEY_SUFFIX)):
            match = _KEY_FILE_PATTERN.match(path.name)
            if not match:
                continue
            n = int(match.group("n"))
            index = int(match.group("index"))
            if index < self._cohort_start.get(n, 0):
                path.unlink(missing_ok=True)
                self._stats.retired += 1
                continue
            self._pools.setdefault(n, deque()).append(
                _PoolEntry(path=path, index=index,
                           generation=self._generation.get(n, 0)))
            self._next_index[n] = max(self._next_index.get(n, 0),
                                      index + 1)
            self._stats.loaded_from_disk += 1

    def _key_path(self, n: int, index: int) -> Path:
        return self.directory / (f"falcon_n{n:04d}_{index:06d}"
                                 + SECRET_KEY_SUFFIX)

    def _claim_indices(self, n: int, count: int) -> list[int]:
        """Claim ``count`` fresh slot indices for degree ``n``.

        The reload-claim-persist cycle runs under the manifest lock:
        concurrent claimants (other threads, other store instances,
        other processes) always observe each other's claims and the
        returned ranges are disjoint.  Claimed indices are persisted
        *before* any key material exists — a crash mid-generation
        burns the slots rather than ever re-deriving their seeds.
        """
        with self._manifest_lock():
            self._reload_state()
            start = self._next_index.get(n, 0)
            self._next_index[n] = start + count
            if self.directory is not None:
                self._write_state()
            return list(range(start, start + count))

    # -- pool management ---------------------------------------------------

    def _process_pool(self):
        """The store's persistent process pool (created on first use).

        Persistent on purpose: a fresh ``ProcessPoolExecutor`` per
        refill re-pays worker startup *and* worker warmup (CDT tables,
        NumPy kernel caches) on every pass, which is a large slice of
        why the old pooled row lost to single-process.  Warm workers
        amortize that across every later refill; :meth:`close` (or
        interpreter exit) shuts the pool down.
        """
        from concurrent.futures import ProcessPoolExecutor

        with self._executor_guard:
            if self._executor is None:
                self._executor = ProcessPoolExecutor(
                    max_workers=self.workers)
            return self._executor

    def generate_ahead(self, n: int, count: int) -> int:
        """Add ``count`` fresh keys to the degree-``n`` pool.

        Seeds derive from ``(master_seed, n, index)``; with
        ``workers > 1`` generation fans out over the store's persistent
        process pool in contiguous slot *blocks* — one task per worker,
        not one task per slot, so per-task dispatch and worker warmup
        amortize over the block (each worker ships back the canonical
        encodings).  Returns ``count``.
        """
        if count <= 0:
            return 0
        indices = self._claim_indices(n, count)
        generation = self._generation.get(n, 0)
        seeds = [derive_key_seed(self.master_seed, n, index)
                 for index in indices]
        if self.workers > 1 and count > 1:
            executor = self._process_pool()
            # ceil-split into at most `workers` contiguous blocks:
            # every worker gets one task, slot order is preserved by
            # gathering block results in submission order.
            block = -(-count // min(self.workers, count))
            blocks = [seeds[start:start + block]
                      for start in range(0, count, block)]
            encoded_keys = [
                encoded
                for task in [executor.submit(
                    generate_encoded_key_block, n, chunk, self.prng,
                    self.keygen_spine) for chunk in blocks]
                for encoded in task.result()]
        else:
            encoded_keys = [
                generate_encoded_key(n, seed, self.prng,
                                     self.keygen_spine)
                for seed in seeds]
        entries = []
        for index, encoded in zip(indices, encoded_keys):
            entry = _PoolEntry(encoded=encoded, index=index,
                               generation=generation)
            if self.directory is not None:
                entry.path = atomic_write_bytes(
                    self._key_path(n, index), encoded)
            entries.append(entry)
        with self._lock:
            # A rotation that ran while these keys were generating
            # retired their cohort before they ever reached the pool:
            # admit only indices at or past the (re-read) cohort
            # start, discarding the rest like any retired key.
            cohort_start = self._cohort_start.get(n, 0)
            pool = self._pools.setdefault(n, deque())
            for entry in entries:
                if entry.index < cohort_start:
                    if entry.path is not None:
                        entry.path.unlink(missing_ok=True)
                    self._stats.retired += 1
                    continue
                pool.append(entry)
            self._stats.generated += count
        return count

    def available(self, n: int) -> int:
        """Ready keys in the degree-``n`` pool (memory or disk)."""
        with self._lock:
            return len(self._pools.get(n, ()))

    def _claim_entry(self, entry: _PoolEntry) -> bytes | None:
        """Take exclusive ownership of a pool entry's key material.

        Disk-backed entries are claimed by atomically *renaming* the
        key file to a scratch name: exactly one claimant wins the
        rename, so two stores that adopted the same directory can
        never both serve the same slot (losing the race returns
        ``None`` and the caller moves to the next entry).  The scratch
        name is globally unique (pid + random token) — ``rename``
        replaces silently, so two claimants must never target the same
        scratch path.  A purely in-memory entry is exclusively ours
        already.

        Every transition is journaled (``claimed`` after the rename,
        ``served`` once the bytes are in memory), so a crash anywhere
        in between is recoverable at the next construction — rolled
        back into the pool if the caller never saw the key, rolled
        forward (scratch unlinked) if it did.
        """
        fault = (self._faults.claim_action()
                 if self._faults is not None else None)
        if fault == "fail":
            raise self._faults.error("injected claim failure")
        if entry.path is None:
            if fault == "crash":
                raise self._faults.error(
                    "injected claim crash (memory entry)")
            return entry.encoded
        import os
        from uuid import uuid4

        claim = entry.path.with_name(
            entry.path.name + f".claim-{os.getpid()}-{uuid4().hex}")
        try:
            entry.path.rename(claim)
        except FileNotFoundError:
            return None  # another store instance checked this slot out
        self._journal_append({"state": "claimed", "scratch": claim.name,
                              "slot": entry.path.name})
        if fault == "crash":
            # Simulate dying between claim-rename and serve: the
            # scratch file and its "claimed" journal entry stay on
            # disk for the next construction to roll back.
            raise self._faults.error(
                "injected crash between claim and serve")
        encoded = entry.encoded if entry.encoded is not None \
            else claim.read_bytes()
        self._journal_append({"state": "served", "scratch": claim.name})
        claim.unlink(missing_ok=True)
        return encoded

    def _pop_claimed(self, n: int) -> bytes:
        """Pop pool entries until one is exclusively claimed,
        generating inline once the pool runs dry."""
        while True:
            with self._lock:
                pool = self._pools.setdefault(n, deque())
                entry = pool.popleft() if pool else None
            if entry is None:
                self.generate_ahead(n, 1)
                continue
            encoded = self._claim_entry(entry)
            if encoded is not None:
                return encoded

    def acquire(self, n: int) -> SecretKey:
        """Check one key out of the pool (generating on a dry pool).

        The returned signer went through the full canonical decode; its
        disk copy, if any, is removed — an acquired key is no longer
        the store's to hand out again.  Checkouts that leave the pool
        below ``low_watermark`` schedule a background refill.
        """
        encoded = self._pop_claimed(n)
        from .serialize import decode_secret_key
        secret_key = decode_secret_key(encoded,
                                       base_backend=self.base_backend)
        with self._lock:
            self._stats.served += 1
        self._maybe_refill(n)
        return secret_key

    def peek(self, n: int) -> SecretKey:
        """Decode the pool's next key WITHOUT checking it out.

        The entry (and any disk copy) stays in the pool — this is for
        inspection and reporting; use :meth:`acquire` to take ownership.
        Generates one key first if the pool is dry.  A head entry whose
        file a concurrent store instance claimed meanwhile is dropped
        and the next live entry is peeked instead.
        """
        from .serialize import decode_secret_key

        while True:
            with self._lock:
                pool = self._pools.setdefault(n, deque())
                head = pool[0] if pool else None
            if head is None:
                self.generate_ahead(n, 1)
                continue
            try:
                return decode_secret_key(head.read(),
                                         base_backend=self.base_backend)
            except FileNotFoundError:
                with self._lock:
                    if pool and pool[0] is head:
                        pool.popleft()

    # -- watermark refill --------------------------------------------------

    def _maybe_refill(self, n: int) -> None:
        if self.low_watermark <= 0:
            return
        with self._lock:
            if len(self._pools.get(n, ())) >= self.low_watermark:
                return
            if n in self._refilling:
                return
            self._refilling.add(n)
            self._stats.watermark_triggers += 1

        def refill() -> None:
            try:
                if self._faults is not None:
                    stall = self._faults.refill_stall()
                    if stall > 0:
                        time.sleep(stall)
                    if self._faults.refill_should_fail():
                        raise self._faults.error(
                            "injected refill failure")
                deficit = self.refill_target - self.available(n)
                if deficit > 0:
                    started = time.perf_counter()
                    self.generate_ahead(n, deficit)
                    elapsed = time.perf_counter() - started
                    with self._lock:
                        self._stats.refills += 1
                        self._stats.last_refill_seconds = elapsed
                        self._stats.total_refill_seconds += elapsed
                with self._lock:
                    self._stats.last_refill_error = ""
            except BaseException as error:
                # A refill death is NEVER silent: record it where
                # stats() and as_dict() surface it.  The finally
                # below re-arms the watermark trigger either way, so
                # the next below-watermark checkout retries.
                with self._lock:
                    self._stats.refill_errors += 1
                    self._stats.last_refill_error = (
                        f"{type(error).__name__}: {error}")
                if not self.refill_async:
                    raise
            finally:
                with self._lock:
                    self._refilling.discard(n)

        if self.refill_async:
            thread = threading.Thread(target=refill, daemon=True,
                                      name=f"keystore-refill-n{n}")
            with self._lock:
                self._refill_threads = [t for t in self._refill_threads
                                        if t.is_alive()]
                self._refill_threads.append(thread)
            thread.start()
        else:
            refill()

    def join_refills(self, timeout: float | None = None) -> None:
        """Block until in-flight background refills finish (tests and
        orderly shutdown; the serving layer calls this on close)."""
        with self._lock:
            threads = list(self._refill_threads)
        for thread in threads:
            thread.join(timeout)

    def close(self) -> None:
        """Orderly shutdown: join refills, stop the warm process pool.

        Idempotent; the store remains usable afterwards (the pool is
        recreated lazily if another pooled refill runs).
        """
        self.join_refills()
        with self._executor_guard:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    # -- rotation ----------------------------------------------------------

    def rotate(self, n: int, regenerate: int | None = None) -> int:
        """Retire the degree-``n`` cohort; optionally regenerate.

        Bumps the generation, advances the cohort start past every
        claimed slot, discards all pooled keys of the old cohort
        (removing their files) and drops the cached signer so the next
        :meth:`signer` call checks out a fresh-generation key.  Retired
        slots are burned — the monotone index sequence guarantees their
        seeds are never derived again.  Returns the number of retired
        pool entries; with ``regenerate`` (or a configured
        ``refill_target``) a fresh cohort is generated immediately.
        """
        with self._manifest_lock():
            self._reload_state()
            self._generation[n] = self._generation.get(n, 0) + 1
            self._cohort_start[n] = self._next_index.get(n, 0)
            if self.directory is not None:
                self._write_state()
        with self._lock:
            pool = self._pools.get(n, deque())
            retired = len(pool)
            for entry in pool:
                if entry.path is not None:
                    entry.path.unlink(missing_ok=True)
            pool.clear()
            self._stats.retired += retired
            self._signers.pop(n, None)
        count = (regenerate if regenerate is not None
                 else self.refill_target)
        if count > 0:
            self.generate_ahead(n, count)
        return retired

    def generation(self, n: int) -> int:
        """The degree-``n`` cohort generation (0 until first rotation)."""
        with self._lock:
            return self._generation.get(n, 0)

    # -- serving -----------------------------------------------------------

    def checkout_current(self, n: int) -> tuple[SecretKey, int]:
        """Acquire a key fenced against concurrent rotation.

        Returns ``(key, generation)`` where the key's checkout began
        and ended in the same generation: if :meth:`rotate` ran while
        the (slow) acquire was in flight, the possibly-old-cohort key
        is discarded — its slot stays burned — and the checkout
        retries.  The shared primitive under every signer cache (this
        store's and the sharded layer's), so a rotation can never be
        undone by a racing checkout re-caching a retired key.
        """
        while True:
            generation = self.generation(n)
            acquired = self.acquire(n)
            if self.generation(n) == generation:
                return acquired, generation

    def signer(self, n: int) -> SecretKey:
        """The cached signing key for degree ``n`` (acquired on first
        use; reused so its ffLDL tree and sampler pools stay warm).

        Cold-cache checkouts are serialized per degree (concurrent
        first users wait for one checkout instead of each generating
        and discarding a key) and generation-fenced via
        :meth:`checkout_current`.
        """
        return fenced_signer_checkout(self, n, lock=self._lock,
                                      guards=self._signer_guards,
                                      cache=self._signers, key=n)

    def sign_many(self, n: int, messages: Sequence[bytes],
                  spine: str = "auto") -> list[Signature]:
        """Batch-sign ``messages`` with the cached degree-``n`` signer."""
        return self.signer(n).sign_many(messages, spine=spine)

    def verify_many(self, n: int, messages: Sequence[bytes],
                    signatures: Sequence[Signature]) -> list[bool]:
        """Batch-verify against the cached degree-``n`` signer's public
        key (the cached NTT of ``h`` is reused across rounds)."""
        return self.signer(n).public_key.verify_many(messages,
                                                     signatures)

    def stats(self) -> KeyStoreStats:
        """A point-in-time snapshot (callers may keep or mutate it
        freely without touching the store's live counters)."""
        with self._lock:
            return KeyStoreStats(
                generated=self._stats.generated,
                served=self._stats.served,
                loaded_from_disk=self._stats.loaded_from_disk,
                refills=self._stats.refills,
                watermark_triggers=self._stats.watermark_triggers,
                retired=self._stats.retired,
                last_refill_seconds=self._stats.last_refill_seconds,
                total_refill_seconds=self._stats.total_refill_seconds,
                refill_errors=self._stats.refill_errors,
                last_refill_error=self._stats.last_refill_error,
                claims_recovered=self._stats.claims_recovered,
                claims_rolled_forward=self._stats.claims_rolled_forward,
                available={n: len(pool)
                           for n, pool in self._pools.items() if pool},
                generation=dict(self._generation))
