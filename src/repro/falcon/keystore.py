"""Generate-ahead Falcon key store: pools, workers, disk persistence.

The serving deployments the ROADMAP targets do not generate a key per
request — they draw from a pre-filled pool and refill it off the hot
path.  :class:`KeyStore` is that layer:

* **generate-ahead pools** per ring degree, filled by
  :meth:`KeyStore.generate_ahead` — inline, or fanned out over a
  process pool (key generation is CPU-bound Python, so real
  parallelism needs processes, not threads);
* **deterministic provisioning**: every pool slot's seed derives from
  ``(master_seed, n, index)`` via SHA-256, so a store can be audited or
  rebuilt bit-for-bit (the keygen spines guarantee the same seed gives
  the same key with or without NumPy);
* **disk persistence** through the canonical ``serialize`` round-trip
  (`save_secret_key` / `load_secret_key`): keys survive restarts, and
  every acquisition exercises the full canonical decode — range
  checks, G recomputation, NTRU-equation verification;
* **signer cache**: :meth:`sign_many` keeps one decoded
  :class:`~repro.falcon.scheme.SecretKey` checked out per degree, so
  batch signing reuses its precomputed ffLDL tree instead of decoding
  per call.

The store is single-process-single-owner by design (the worker pool is
fan-out only); cross-process sharding is ROADMAP backlog.
"""

from __future__ import annotations

import re
from collections import deque
from dataclasses import dataclass, field
from hashlib import sha256
from pathlib import Path
from typing import Sequence

from .scheme import SecretKey, Signature
from .serialize import (
    SECRET_KEY_SUFFIX,
    atomic_write_bytes,
    load_secret_key,
    save_secret_key,
)

_KEY_FILE_PATTERN = re.compile(
    r"falcon_n(?P<n>\d+)_(?P<index>\d+)"
    + re.escape(SECRET_KEY_SUFFIX) + r"$")

#: Per-directory manifest holding the next unissued slot index per
#: ring degree.  Key files alone cannot carry that information —
#: :meth:`KeyStore.acquire` deletes the file it checks out, so a fully
#: drained store would otherwise restart at index 0 and re-issue key
#: material that is already in some caller's hands.
_STATE_FILE = "keystore-state.json"


def derive_key_seed(master_seed: int | bytes, n: int, index: int) -> bytes:
    """Deterministic 32-byte PRNG seed for pool slot ``(n, index)``.

    Integer master seeds of any sign and size are accepted (hashed via
    their decimal form, so ``-1`` and huge seeds work); byte seeds are
    hashed as-is.
    """
    if isinstance(master_seed, int):
        master = b"%d" % master_seed
    else:
        master = bytes(master_seed)
    material = b"falcon-keystore|%b|%d|%d" % (master, n, index)
    return sha256(material).digest()


def generate_encoded_key(n: int, seed: bytes, prng: str = "chacha20",
                         keygen_spine: str = "auto") -> bytes:
    """Generate one key and return its canonical encoding.

    Module-level (not a method) so process pools can pickle the job;
    returning the *encoded* bytes keeps the inter-process payload small
    and guarantees every pooled key round-trips the serializer.
    """
    secret_key = SecretKey.generate(n=n, seed=seed, prng=prng,
                                    keygen_spine=keygen_spine)
    from .serialize import encode_secret_key
    return encode_secret_key(secret_key)


@dataclass
class _PoolEntry:
    """One ready key: encoded bytes in memory, file on disk, or both."""

    encoded: bytes | None = None
    path: Path | None = None

    def read(self) -> bytes:
        if self.encoded is not None:
            return self.encoded
        return self.path.read_bytes()


@dataclass
class KeyStoreStats:
    """Counters for monitoring a store (returned by :meth:`stats`)."""

    generated: int = 0
    served: int = 0
    loaded_from_disk: int = 0
    available: dict[int, int] = field(default_factory=dict)


class KeyStore:
    """A generate-ahead pool of Falcon secret keys.

    ``directory=None`` keeps the store purely in memory; with a
    directory, every generated key is persisted (atomically) and
    existing persisted keys plus the slot-index manifest are read back
    at construction, so a restarted store resumes from disk without
    ever re-issuing a slot it already handed out.  A memory-only store
    has no such memory across processes — it is deterministic from
    ``master_seed`` by design, so two memory-only stores with the same
    seed serve the same keys.  ``workers > 1`` fans
    :meth:`generate_ahead` out over a process pool.
    """

    def __init__(self, directory: str | Path | None = None, *,
                 master_seed: int | bytes = 0,
                 prng: str = "chacha20",
                 base_backend: str = "bitsliced",
                 keygen_spine: str = "auto",
                 workers: int = 1) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.directory = Path(directory) if directory is not None else None
        self.master_seed = master_seed
        self.prng = prng
        self.base_backend = base_backend
        self.keygen_spine = keygen_spine
        self.workers = workers
        self._pools: dict[int, deque[_PoolEntry]] = {}
        self._next_index: dict[int, int] = {}
        self._signers: dict[int, SecretKey] = {}
        self._stats = KeyStoreStats()
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
            self._index_directory()

    # -- internal ----------------------------------------------------------

    def _index_directory(self) -> None:
        """Adopt keys already persisted under ``directory``.

        The next-slot counters come from the state manifest (written
        whenever indices are claimed), clamped up by any key files on
        disk — so even a drained-and-restarted store never re-issues a
        slot whose key was already handed out.
        """
        state_path = self.directory / _STATE_FILE
        if state_path.exists():
            import json

            state = json.loads(state_path.read_text(encoding="utf-8"))
            for n, next_index in state.get("next_index", {}).items():
                self._next_index[int(n)] = int(next_index)
        for path in sorted(self.directory.glob("falcon_n*" +
                                               SECRET_KEY_SUFFIX)):
            match = _KEY_FILE_PATTERN.match(path.name)
            if not match:
                continue
            n = int(match.group("n"))
            index = int(match.group("index"))
            self._pools.setdefault(n, deque()).append(_PoolEntry(path=path))
            self._next_index[n] = max(self._next_index.get(n, 0),
                                      index + 1)
            self._stats.loaded_from_disk += 1

    def _write_state(self) -> None:
        import json

        payload = {"next_index": {str(n): index
                                  for n, index in
                                  sorted(self._next_index.items())}}
        atomic_write_bytes(self.directory / _STATE_FILE,
                           json.dumps(payload, indent=1).encode())

    def _key_path(self, n: int, index: int) -> Path:
        return self.directory / (f"falcon_n{n:04d}_{index:06d}"
                                 + SECRET_KEY_SUFFIX)

    def _claim_indices(self, n: int, count: int) -> list[int]:
        start = self._next_index.get(n, 0)
        self._next_index[n] = start + count
        if self.directory is not None:
            self._write_state()
        return list(range(start, start + count))

    # -- pool management ---------------------------------------------------

    def generate_ahead(self, n: int, count: int) -> int:
        """Add ``count`` fresh keys to the degree-``n`` pool.

        Seeds derive from ``(master_seed, n, index)``; with
        ``workers > 1`` generation fans out over a process pool (each
        worker ships back the canonical encoding).  Returns ``count``.
        """
        if count <= 0:
            return 0
        indices = self._claim_indices(n, count)
        seeds = [derive_key_seed(self.master_seed, n, index)
                 for index in indices]
        if self.workers > 1 and count > 1:
            from concurrent.futures import ProcessPoolExecutor

            with ProcessPoolExecutor(
                    max_workers=min(self.workers, count)) as executor:
                encoded_keys = list(executor.map(
                    generate_encoded_key, [n] * count, seeds,
                    [self.prng] * count, [self.keygen_spine] * count))
        else:
            encoded_keys = [
                generate_encoded_key(n, seed, self.prng,
                                     self.keygen_spine)
                for seed in seeds]
        pool = self._pools.setdefault(n, deque())
        for index, encoded in zip(indices, encoded_keys):
            entry = _PoolEntry(encoded=encoded)
            if self.directory is not None:
                entry.path = atomic_write_bytes(
                    self._key_path(n, index), encoded)
            pool.append(entry)
        self._stats.generated += count
        return count

    def available(self, n: int) -> int:
        """Ready keys in the degree-``n`` pool (memory or disk)."""
        return len(self._pools.get(n, ()))

    def acquire(self, n: int) -> SecretKey:
        """Check one key out of the pool (generating on a dry pool).

        The returned signer went through the full canonical decode; its
        disk copy, if any, is removed — an acquired key is no longer
        the store's to hand out again.
        """
        pool = self._pools.setdefault(n, deque())
        if not pool:
            self.generate_ahead(n, 1)
        entry = pool.popleft()
        encoded = entry.read()
        if entry.path is not None:
            entry.path.unlink(missing_ok=True)
        from .serialize import decode_secret_key
        secret_key = decode_secret_key(encoded,
                                       base_backend=self.base_backend)
        self._stats.served += 1
        return secret_key

    def peek(self, n: int) -> SecretKey:
        """Decode the pool's next key WITHOUT checking it out.

        The entry (and any disk copy) stays in the pool — this is for
        inspection and reporting; use :meth:`acquire` to take ownership.
        Generates one key first if the pool is dry.
        """
        pool = self._pools.setdefault(n, deque())
        if not pool:
            self.generate_ahead(n, 1)
        from .serialize import decode_secret_key
        return decode_secret_key(pool[0].read(),
                                 base_backend=self.base_backend)

    # -- serving -----------------------------------------------------------

    def signer(self, n: int) -> SecretKey:
        """The cached signing key for degree ``n`` (acquired on first
        use; reused so its ffLDL tree and sampler pools stay warm)."""
        if n not in self._signers:
            self._signers[n] = self.acquire(n)
        return self._signers[n]

    def sign_many(self, n: int, messages: Sequence[bytes],
                  spine: str = "auto") -> list[Signature]:
        """Batch-sign ``messages`` with the cached degree-``n`` signer."""
        return self.signer(n).sign_many(messages, spine=spine)

    def stats(self) -> KeyStoreStats:
        """A point-in-time snapshot (callers may keep or mutate it
        freely without touching the store's live counters)."""
        return KeyStoreStats(
            generated=self._stats.generated,
            served=self._stats.served,
            loaded_from_disk=self._stats.loaded_from_disk,
            available={n: len(pool)
                       for n, pool in self._pools.items() if pool})
