"""NTRU key generation: sampling (f, g) and solving the NTRU equation.

Key generation finds short ``f, g`` and completes the basis with
``F, G`` satisfying

    f G - g F = q   (mod x^n + 1)

via the recursive tower descent of Pornin–Prest: take field norms down
to degree 1, solve with the extended Euclid there, lift the solution
back up (``F' = lift(F_half) * conj(g)``), and size-reduce against
``(f, g)`` with Babai rounding at every level.  All arithmetic on the
way down/up is exact big-integer; the Babai quotient is computed in
floating point through the FFT on block-scaled coefficients (the
coefficients grow to thousands of bits; only their top 53 bits matter
for the rounding).

The whole pipeline runs on one of two *spines* (mirroring the signing
path): ``"scalar"`` is pure Python, ``"numpy"`` draws candidate
coefficients through the bulk CDT block sampler, batch-checks
invertibility with the array NTT, batch-filters Gram–Schmidt quality
through the array FFT kernels and computes Babai quotients on the
block-scaled array FFT.  Both spines consume the identical PRNG byte
stream and perform bit-identical float arithmetic (the PR-3 kernel
guarantees), so a fixed seed yields the same ``NtruKeys`` on either —
pinned by the keygen KATs in both CI legs.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..baselines.cdt import cdt_sample_block
from ..core.gaussian import GaussianParams
from ..rng.source import RandomSource, default_source
from . import poly
from .fft import (
    HAVE_NUMPY,
    adj_fft,
    cdiv,
    cmul,
    div_fft,
    fft,
    fft_array,
    ifft,
    ifft_array,
    mul_fft,
)
from .ntt import Q, div_ntt, is_invertible, is_invertible_array
from .params import FalconParams, falcon_params

if HAVE_NUMPY:
    import numpy as _np
else:  # pragma: no cover - exercised in the no-numpy CI job
    _np = None

#: Babai reduction abandons (and keygen retries) after this many rounds.
_MAX_REDUCE_ROUNDS = 512

#: When the 53-bit quotient rounds to zero at a coarse block scale, zoom
#: the evaluation window in by this many bits and keep reducing (the
#: multi-scale schedule of the C reference's keygen loop).  Small enough
#: that float precision always re-exposes the remaining quotient, large
#: enough to reach scale 0 in a handful of rounds.
_REDUCE_WINDOW_STEP = 25

#: Never zoom more than this far below the actual coefficient size:
#: block-scaled values then stay below ~2^953 and ``float()`` cannot
#: overflow.  (A basis needing a deeper zoom is already reduced to
#: within noise of its intrinsic size.)
_MAX_WINDOW_ZOOM = 900

#: Extra quotient bits pulled into each Babai round by exact
#: power-of-two scaling before the integer rounding.  The block-scaled
#: quotient carries ~45 trustworthy bits; rounding at scale 2^44
#: strips ~44 bits of the quotient per round instead of the sliver
#: visible at scale 1 when ``bitsize(f)`` is close to the 53-bit
#: window.  Re-tuned at Level 3 (n=1024, PR 5): sweeping 36..52 bits
#: moves n=1024 keygen by under 3% (86-95 ms/key on the reference
#: host) with 44 at the optimum plateau, so the n<=512 tuning stands.
_QUOTIENT_EXTRA_BITS = 44

#: Keygen spine choices: ``"numpy"`` = bulk CDT + array NTT/FFT batch
#: kernels, ``"scalar"`` = pure Python, ``"auto"`` = numpy when
#: installed.  Identical byte streams and identical keys either way.
KEYGEN_SPINES = ("auto", "numpy", "scalar")

#: Candidates are sampled in blocks of this many (f, g) pairs so the
#: quality filters amortize over one batched NTT / FFT pass.  The block
#: size is part of the keygen stream contract: both spines draw whole
#: blocks, so rejected candidates consume the same randomness on each.
CANDIDATE_BLOCK = 16

#: Below this ring degree the array FFT's per-call overhead outweighs
#: its throughput; the numpy spine hands those levels to the scalar
#: kernels (bit-identical either way, so this is purely a speed knob).
_ARRAY_FFT_MIN_DEGREE = 64


class NtruSolveError(Exception):
    """The NTRU equation has no solution for this (f, g) — resample."""


def _resolve_keygen_spine(spine: str) -> str:
    if spine not in KEYGEN_SPINES:
        raise ValueError(f"unknown keygen spine {spine!r}; "
                         f"choose from {KEYGEN_SPINES}")
    if spine == "auto":
        return "numpy" if HAVE_NUMPY else "scalar"
    if spine == "numpy" and not HAVE_NUMPY:
        raise RuntimeError("NumPy is not installed; use spine='scalar'")
    return spine


def _xgcd(a: int, b: int) -> tuple[int, int, int]:
    """Extended Euclid: returns (gcd, u, v) with u*a + v*b = gcd."""
    old_r, r = a, b
    old_u, u = 1, 0
    old_v, v = 0, 1
    while r:
        quotient = old_r // r
        old_r, r = r, old_r - quotient * r
        old_u, u = u, old_u - quotient * u
        old_v, v = v, old_v - quotient * v
    return old_r, old_u, old_v


def _block_scaled_floats(values: list[int], drop_bits: int) -> list[float]:
    """``value / 2^drop_bits`` as floats, tolerating huge integers."""
    if drop_bits <= 0:
        return [float(v) for v in values]
    return [float(v >> drop_bits) for v in values]


#: At or below this ring degree, Babai reduction runs the one-shot
#: *exact* integer route instead of the iterated float loop: the deep
#: tower levels carry multi-thousand-bit coefficients whose quotients
#: the 53-bit float window could only peel off a sliver at a time.
#: Exact big-integer arithmetic is spine-independent by construction.
#: Re-tuned at Level 3 (n=1024, PR 5): thresholds 8 and 16 tie within
#: noise (~87 ms/key) while 32 and 64 regress 14%/44% (the exact
#: resultant chain grows quadratically past degree 16), so the deep-
#: tower handoff stays at 16 for every supported n.  The knobs only
#: steer *which route* computes the quotient — every setting converges
#: to the same reduced basis, so the keygen KATs (now including
#: n=1024) pin bit-identical keys across the whole tuning range.
_EXACT_BABAI_MAX_DEGREE = 16


def _round_div(numerator: int, denominator: int) -> int:
    """``round(numerator / denominator)`` exactly (denominator > 0,
    halves away from the floor)."""
    quotient, remainder = divmod(numerator, denominator)
    return quotient + (1 if 2 * remainder >= denominator else 0)


def _scaled_ring_inverse(den: list[int]) -> tuple[list[int], int]:
    """``(C, R)`` with ``den * C = R`` in ``Z[x]/(x^d + 1)``.

    ``R`` is the resultant of ``den`` with ``x^d + 1`` (the product of
    its Galois conjugates) and ``C`` the matching integer cofactor, via
    the same norm-chain descent NTRUSolve itself uses:
    ``den * galois_conjugate(den)`` has only even coefficients, so the
    inversion recurses on the half-degree norm.
    """
    if len(den) == 1:
        return [1], den[0]
    conjugate = poly.galois_conjugate(den)
    norm_half = poly.mul_negacyclic(den, conjugate)[0::2]
    cofactor_half, resultant = _scaled_ring_inverse(norm_half)
    cofactor = poly.mul_negacyclic(conjugate, poly.lift(cofactor_half))
    return cofactor, resultant


def _reduce_basis_exact(f: list[int], g: list[int], F: list[int],
                        G: list[int]) -> tuple[list[int], list[int]]:
    """One-shot exact Babai reduction (small degrees).

    Computes ``k = round((F f* + G g*) / (f f* + g g*))`` with exact
    rational arithmetic — the denominator is cleared through its
    resultant — so the whole quotient comes out at once, however many
    bits it has.  Pure big-integer work: both keygen spines share it
    bit for bit.
    """
    adj_f = poly.adjoint(f)
    adj_g = poly.adjoint(g)
    den = poly.add(poly.mul_negacyclic(f, adj_f),
                   poly.mul_negacyclic(g, adj_g))
    cofactor, resultant = _scaled_ring_inverse(den)
    if resultant <= 0:
        # den is positive definite for any nonzero (f, g); a zero
        # resultant means a degenerate candidate.
        raise NtruSolveError("degenerate basis in Babai reduction")
    numerator = poly.add(poly.mul_negacyclic(F, adj_f),
                         poly.mul_negacyclic(G, adj_g))
    scaled = poly.mul_negacyclic(numerator, cofactor)
    k = [_round_div(c, resultant) for c in scaled]
    if all(v == 0 for v in k):
        return F, G
    kf = poly.mul_negacyclic(k, f)
    kg = poly.mul_negacyclic(k, g)
    return ([a - b for a, b in zip(F, kf)],
            [a - b for a, b in zip(G, kg)])


class _BabaiQuotient:
    """Per-basis state for the Babai rounding ``k = round(num / den)``.

    Precomputes the (block-scaled) FFTs of ``f, g`` and the denominator
    ``f f* + g g*`` once, then serves one quotient per reduction round.
    The array route performs the exact scalar operation sequence on the
    PR-3 bit-identical kernels (``cmul``/``cdiv``/``ifft_array``/
    ``rint``), so both routes return the same integers every round.
    """

    def __init__(self, f_scaled: list[float], g_scaled: list[float],
                 use_array: bool) -> None:
        self.use_array = use_array
        if use_array:
            f_fft = fft_array(_np.asarray(f_scaled, dtype=_np.float64))
            g_fft = fft_array(_np.asarray(g_scaled, dtype=_np.float64))
            self._adj_f = _np.conj(f_fft)
            self._adj_g = _np.conj(g_fft)
            self._denominator = (cmul(f_fft, self._adj_f)
                                 + cmul(g_fft, self._adj_g))
        else:
            f_fft = fft(f_scaled)
            g_fft = fft(g_scaled)
            self._adj_f = adj_fft(f_fft)
            self._adj_g = adj_fft(g_fft)
            self._denominator = [
                x + y for x, y in zip(mul_fft(f_fft, self._adj_f),
                                      mul_fft(g_fft, self._adj_g))]

    def round(self, F_scaled: list[float], G_scaled: list[float],
              extra_bits: int = 0) -> list[int]:
        """``round(quotient * 2^extra_bits)`` per slot.

        The power-of-two scaling is exact in IEEE doubles, so it pulls
        ``extra_bits`` additional quotient bits into the integer round
        without perturbing them — one reduction round then strips
        ``~extra_bits`` instead of the handful visible at scale 1.
        """
        scale = float(1 << extra_bits)
        if self.use_array:
            F_fft = fft_array(_np.asarray(F_scaled, dtype=_np.float64))
            G_fft = fft_array(_np.asarray(G_scaled, dtype=_np.float64))
            numerator = (cmul(F_fft, self._adj_f)
                         + cmul(G_fft, self._adj_g))
            quotient = cdiv(numerator, self._denominator)
            return _np.rint(ifft_array(quotient) * scale) \
                .astype(_np.int64).tolist()
        F_fft = fft(F_scaled)
        G_fft = fft(G_scaled)
        numerator = [
            x + y for x, y in zip(mul_fft(F_fft, self._adj_f),
                                  mul_fft(G_fft, self._adj_g))]
        quotient = div_fft(numerator, self._denominator)
        return [round(c * scale) for c in ifft(quotient)]


def reduce_basis(f: list[int], g: list[int], F: list[int], G: list[int],
                 spine: str = "auto") -> tuple[list[int], list[int]]:
    """Babai-reduce (F, G) against (f, g); returns the new (F, G).

    Iterates ``k = round((F f* + G g*) / (f f* + g g*))``,
    ``(F, G) -= k * (f, g)``, with the quotient computed on the top 53
    bits of the coefficients (block scaling by powers of two), shifting
    the integer update back up.  When ``k`` rounds to zero at a coarse
    block scale the remaining quotient is merely *invisible at that
    scale*, not gone — the window zooms in by ``_REDUCE_WINDOW_STEP``
    bits and reduction continues (the multi-scale schedule of the C
    reference implementation).  Terminates only when ``k = 0`` with the
    window at scale 0, i.e. when (F, G) is fully reduced.
    """
    route = _resolve_keygen_spine(spine)
    if len(f) <= _EXACT_BABAI_MAX_DEGREE:
        return _reduce_basis_exact(f, g, F, G)
    use_array = route == "numpy" and len(f) >= _ARRAY_FFT_MIN_DEGREE
    fg_bits = poly.max_bitsize([f, g])
    size = max(53, fg_bits)
    quotient = _BabaiQuotient(_block_scaled_floats(f, size - 53),
                              _block_scaled_floats(g, size - 53),
                              use_array)
    # |quotient slot| <= 2^(size - fg_bits) * n-ish; cap the pre-round
    # scaling so the rounded k always fits comfortably in an int64.
    slack = (size - fg_bits) + len(f).bit_length() + 2
    max_extra = max(0, min(_QUOTIENT_EXTRA_BITS, 61 - slack))

    window: int | None = None
    for _ in range(_MAX_REDUCE_ROUNDS):
        big_size = max(size, poly.max_bitsize([F, G]))
        # The window is monotone non-increasing: a subtraction at scale
        # ``s`` leaves a residual quotient below ``2^(s-1)``, so content
        # never reappears above an already-cleared scale and re-probing
        # coarse scales would only burn rounds.
        window = big_size if window is None else \
            max(size, min(window, big_size))
        floor = max(size, big_size - _MAX_WINDOW_ZOOM)
        window = max(window, floor)
        extra = min(max_extra, window - size)
        k = quotient.round(_block_scaled_floats(F, window - 53),
                           _block_scaled_floats(G, window - 53),
                           extra)
        if all(v == 0 for v in k):
            if window == size:
                return F, G
            if window == floor > size:  # pragma: no cover - pathological
                break
            # Nothing visible even 2^-extra below this scale; zoom in.
            window = max(floor, window - extra - _REDUCE_WINDOW_STEP)
            continue
        shift = window - size - extra
        kf = poly.mul_negacyclic(k, f)
        kg = poly.mul_negacyclic(k, g)
        F = [a - (b << shift) for a, b in zip(F, kf)]
        G = [a - (b << shift) for a, b in zip(G, kg)]
    raise NtruSolveError("Babai reduction did not converge")


def ntru_solve(f: list[int], g: list[int],
               spine: str = "auto") -> tuple[list[int], list[int]]:
    """Solve ``f G - g F = q`` for short (F, G).

    Raises :class:`NtruSolveError` when the resultants share a factor
    with q's tower (caller resamples f, g).
    """
    route = _resolve_keygen_spine(spine)
    n = len(f)
    if n == 1:
        gcd, u, v = _xgcd(f[0], g[0])
        if gcd != 1:
            raise NtruSolveError("gcd(Res(f), Res(g)) != 1")
        # u f + v g = 1  =>  F = -v q, G = u q gives f G - g F = q.
        return [-v * Q], [u * Q]

    f_norm = poly.field_norm(f)
    g_norm = poly.field_norm(g)
    F_half, G_half = ntru_solve(f_norm, g_norm, spine=route)
    # F = lift(F_half) * conj(g), G = lift(G_half) * conj(f):
    # N(f) = f * conj(f) at the lifted level, so
    # f G - g F = lift(N(f) G_half - N(g) F_half) = lift(q) = q.
    F = poly.mul_negacyclic(poly.lift(F_half), poly.galois_conjugate(g))
    G = poly.mul_negacyclic(poly.lift(G_half), poly.galois_conjugate(f))
    F, G = reduce_basis(f, g, F, G, spine=route)
    return F, G


def _sequential_square_sum(values: list[complex]) -> float:
    """``0 + |v0|^2 + |v1|^2 + ...`` with per-slot ``re^2 + im^2`` and
    strict left-to-right accumulation — the scalar leg of the shared
    Gram–Schmidt norm expression (the array leg reproduces the same
    IEEE operation sequence with elementwise squares + ``cumsum``)."""
    total = 0.0
    for value in values:
        total += value.real * value.real + value.imag * value.imag
    return total


def gram_schmidt_norm_sq(f: list[int], g: list[int]) -> float:
    """``max(||(g,-f)||^2, ||(q f*/(ff*+gg*), q g*/(ff*+gg*))||^2)``.

    The keygen acceptance test: both Gram–Schmidt rows of the secret
    basis must be short enough for the signing sigma.
    """
    first = float(poly.square_norm(f) + poly.square_norm(g))
    f_fft = fft([float(c) for c in f])
    g_fft = fft([float(c) for c in g])
    denom = [x + y for x, y in zip(mul_fft(f_fft, adj_fft(f_fft)),
                                   mul_fft(g_fft, adj_fft(g_fft)))]
    ft = div_fft([Q * c for c in adj_fft(f_fft)], denom)
    gt = div_fft([Q * c for c in adj_fft(g_fft)], denom)
    # Norm via Parseval: sum |values|^2 / n.
    n = len(f)
    second = (_sequential_square_sum(ft)
              + _sequential_square_sum(gt)) / n
    return max(first, second)


def gram_schmidt_norms_batch(fs: list[list[int]],
                             gs: list[list[int]],
                             spine: str = "auto") -> list[float]:
    """:func:`gram_schmidt_norm_sq` for a block of candidate pairs.

    The numpy route runs one array-FFT pass over all rows, the exact
    pointwise kernel ops (``cmul``/``cdiv``), exact ``int64`` dot
    products for the first norm, and ``cumsum`` (sequential prefix
    sums — the same left-to-right IEEE additions as the scalar loop)
    for the second — each returned float is bit-identical to the
    scalar function's, so the accept/reject decisions cannot diverge
    between spines.
    """
    route = _resolve_keygen_spine(spine)
    if route != "numpy" or not fs:
        return [gram_schmidt_norm_sq(f, g) for f, g in zip(fs, gs)]
    from .fft import fft_of_int_rows

    n = len(fs[0])
    f_ints = _np.asarray(fs, dtype=_np.int64)
    g_ints = _np.asarray(gs, dtype=_np.int64)
    # Exact while |coeff| < sqrt(2^63 / n) — keygen coefficients are a
    # few hundred at most, far inside the bound for every supported n.
    firsts = (f_ints * f_ints).sum(axis=1) + (g_ints * g_ints).sum(axis=1)
    f_rows = fft_of_int_rows(fs)
    g_rows = fft_of_int_rows(gs)
    adj_f = _np.conj(f_rows)
    adj_g = _np.conj(g_rows)
    denom = cmul(f_rows, adj_f) + cmul(g_rows, adj_g)
    q_complex = _np.complex128(complex(Q, 0.0))
    ft = cdiv(cmul(q_complex, adj_f), denom)
    gt = cdiv(cmul(q_complex, adj_g), denom)
    ft_sums = _np.cumsum(ft.real * ft.real + ft.imag * ft.imag,
                         axis=1)[:, -1]
    gt_sums = _np.cumsum(gt.real * gt.real + gt.imag * gt.imag,
                         axis=1)[:, -1]
    out = []
    for index in range(len(fs)):
        first = float(int(firsts[index]))
        second = (float(ft_sums[index]) + float(gt_sums[index])) / n
        out.append(max(first, second))
    return out


@dataclass
class NtruKeys:
    """A complete NTRU trapdoor: short basis and public polynomial."""

    f: list[int]
    g: list[int]
    F: list[int]
    G: list[int]
    h: list[int]

    def verify_ntru_equation(self) -> bool:
        lhs = poly.sub(poly.mul_negacyclic(self.f, self.G),
                       poly.mul_negacyclic(self.g, self.F))
        want = [Q] + [0] * (len(self.f) - 1)
        return lhs == want


@lru_cache(maxsize=None)
def _keygen_table(sigma_rounded: float):
    from ..baselines.cdt import CdtTable

    gaussian = GaussianParams.from_sigma(sigma_rounded, precision=64)
    return CdtTable(gaussian)


def _sample_fg(params: FalconParams, source: RandomSource,
               spine: str = "auto") -> list[int]:
    """One secret polynomial with D_{sigma_fg} coefficients.

    All ``n`` coefficients come from one bulk CDT block draw (the PR-1/2
    batched word pipeline underneath); the scalar and numpy routes
    consume the identical byte stream.
    """
    sigma = round(params.keygen_sigma, 6)
    table = _keygen_table(sigma)
    return cdt_sample_block(table, source, params.n,
                            route=_resolve_keygen_spine(spine))


def _sample_candidate_block(params: FalconParams, source: RandomSource,
                            route: str, pairs: int,
                            ) -> list[tuple[list[int], list[int]]]:
    """``pairs`` candidate (f, g) polynomial pairs from ONE block draw.

    The whole block — ``2 * pairs * n`` coefficients — comes out of a
    single :func:`cdt_sample_block` call, so the per-call PRNG and
    kernel overhead amortizes across the candidate block.  The draw
    granularity is part of the keygen stream contract (both spines
    issue the same bulk reads).
    """
    sigma = round(params.keygen_sigma, 6)
    table = _keygen_table(sigma)
    n = params.n
    flat = cdt_sample_block(table, source, 2 * pairs * n, route=route)
    return [(flat[2 * i * n:(2 * i + 1) * n],
             flat[(2 * i + 1) * n:(2 * i + 2) * n])
            for i in range(pairs)]


def generate_keys(n: int, source: RandomSource | None = None,
                  max_attempts: int = 1024,
                  spine: str = "auto") -> NtruKeys:
    """Falcon key generation for ring degree ``n``.

    Candidate (f, g) pairs are drawn in blocks of
    :data:`CANDIDATE_BLOCK` and pushed through the filter ladder —
    parity pre-filter, invertibility (one batched NTT on the numpy
    spine), Gram–Schmidt quality (one batched FFT pass) — before the
    survivors run NTRUSolve in order; per-candidate acceptance is
    ~5-10% (the Gram–Schmidt bound dominates, as in the reference
    implementation), hence the generous attempt budget.  Whole blocks
    are drawn regardless of where acceptance lands, so the stream
    consumption (and therefore every key) is identical on both spines.
    """
    route = _resolve_keygen_spine(spine)
    params = falcon_params(n)
    rng = source if source is not None else default_source()
    bound = (1.17 ** 2) * Q
    examined = 0
    while examined < max_attempts:
        block = min(CANDIDATE_BLOCK, max_attempts - examined)
        candidates = _sample_candidate_block(params, rng, route, block)
        examined += block
        # Parity pre-filter: if f(1) and g(1) are both even, the two
        # resultants share the factor 2 and NTRUSolve must fail — skip
        # the expensive work (the reference implementation's trick).
        live = [i for i, (f, g) in enumerate(candidates)
                if sum(f) % 2 or sum(g) % 2]
        if live:
            if route == "numpy":
                invertible = is_invertible_array(
                    [candidates[i][0] for i in live])
                live = [i for i, ok in zip(live, invertible) if ok]
            else:
                live = [i for i in live
                        if is_invertible(candidates[i][0])]
        if live:
            norms = gram_schmidt_norms_batch(
                [candidates[i][0] for i in live],
                [candidates[i][1] for i in live], spine=route)
            live = [i for i, norm_sq in zip(live, norms)
                    if norm_sq <= bound]
        for i in live:
            f, g = candidates[i]
            try:
                F, G = ntru_solve(list(f), list(g), spine=route)
            except NtruSolveError:
                continue
            h = div_ntt(g, f)
            keys = NtruKeys(f=f, g=g, F=F, G=G, h=h)
            if not keys.verify_ntru_equation():  # pragma: no cover
                continue
            return keys
    raise RuntimeError(f"key generation failed after {max_attempts} tries")
